// Fig 8 — Jaccard index of the interface sets at a given hop-distance from
// the destinations, hitlist scan vs random scan (§5.1).
//
// Two exhaustive scans (every TTL 1..32 for every prefix) of the same
// universe, one using the hitlist representative of each /24, one using a
// random representative.  The paper's shape: the sets agree well along the
// route but diverge sharply at the one or two hops adjacent to the
// destinations — the stub interior that hitlist (gateway-appliance) targets
// never expose.

#include "analysis/route_compare.h"
#include "bench/common.h"

namespace flashroute {
namespace {

core::ScanResult exhaustive_scan(const bench::World& world,
                                 const std::vector<std::uint32_t>* targets) {
  auto config = bench::tracer_base(world);
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  config.target_override = targets;
  return bench::run_tracer(world, config);
}

void run() {
  auto world = bench::make_world();
  bench::print_banner("Fig 8: hitlist vs random scans, per-hop Jaccard",
                      world);

  const auto random_scan = exhaustive_scan(world, nullptr);
  const auto hitlist_scan = exhaustive_scan(world, &world.hitlist);

  std::printf("interfaces discovered: random scan %s, hitlist scan %s "
              "(paper: 829,338 vs 759,961 — hitlist finds %.1f%% fewer "
              "here, 8.4%% fewer in the paper)\n\n",
              util::format_count(
                  static_cast<std::uint64_t>(random_scan.interfaces.size()))
                  .c_str(),
              util::format_count(
                  static_cast<std::uint64_t>(hitlist_scan.interfaces.size()))
                  .c_str(),
              100.0 * (1.0 - static_cast<double>(
                                 hitlist_scan.interfaces.size()) /
                                 static_cast<double>(
                                     random_scan.interfaces.size())));

  const auto jaccard = analysis::jaccard_by_distance_from_destination(
      hitlist_scan, random_scan, /*max_distance=*/12);
  std::printf("%24s %10s\n", "hops from destination", "Jaccard");
  for (const auto& [distance, index] : jaccard) {
    std::printf("%24d %10.3f\n", distance, index);
  }

  if (jaccard.contains(1) && jaccard.contains(6)) {
    std::printf(
        "\nshape check: Jaccard at 1 hop from destination = %.2f vs %.2f "
        "at 6 hops (paper: the divergence concentrates on the last two "
        "hops)\n",
        jaccard.at(1), jaccard.at(6));
  }
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
