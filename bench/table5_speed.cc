// Table 5 — Non-throttled scan speed (§4.2.3).
//
// The paper unthrottles each tool for five minutes and measures the probing
// rate it can sustain (FlashRoute: ~220-300 Kpps on a 2012-era Xeon).  Here
// the engines run flat-out against a NullRuntime — real wall-clock time,
// no pacing, no responses — measuring the real hot path: DCB-ring walk,
// per-DCB locking, probe crafting (full IPv4/UDP serialization with
// checksums and the §3.1 bit-packing).  google-benchmark reports the rates;
// the summary converts them into estimated full-/24 scan times using the
// paper's probe counts.

#include <benchmark/benchmark.h>

#include "baselines/yarrp.h"
#include "core/probe_codec.h"
#include "core/runtime.h"
#include "core/tracer.h"
#include "net/icmp.h"

namespace flashroute {
namespace {

constexpr int kPrefixBits = 13;  // 8192 prefixes per engine iteration

core::TracerConfig speed_config(std::uint8_t split) {
  core::TracerConfig config;
  config.first_prefix = 0x010000;
  config.prefix_bits = kPrefixBits;
  config.split_ttl = split;
  config.preprobe = core::PreprobeMode::kNone;
  // Rate is irrelevant against NullRuntime (pacing is the runtime's job and
  // NullRuntime does none); probes_per_second only sizes virtual staging.
  config.probes_per_second = 1e9;
  config.collect_routes = false;
  return config;
}

void BM_FlashRouteSender16(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::NullRuntime runtime;
    core::Tracer tracer(speed_config(16), runtime);
    const auto result = tracer.run();
    probes += result.probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlashRouteSender16)->Unit(benchmark::kMillisecond);

void BM_FlashRouteSender32(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::NullRuntime runtime;
    core::Tracer tracer(speed_config(32), runtime);
    const auto result = tracer.run();
    probes += result.probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlashRouteSender32)->Unit(benchmark::kMillisecond);

void BM_YarrpSender32(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    baselines::YarrpConfig config;
    config.first_prefix = 0x010000;
    config.prefix_bits = kPrefixBits;
    config.probes_per_second = 1e9;
    config.collect_routes = false;
    core::NullRuntime runtime;
    baselines::Yarrp yarrp(config, runtime);
    probes += yarrp.run().probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YarrpSender32)->Unit(benchmark::kMillisecond);

void BM_EncodeUdpProbe(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  std::uint32_t destination = 0x01020304;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_udp(
        net::Ipv4Address(destination++), 16, false, 123456789, buffer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeUdpProbe);

void BM_EncodeTcpProbe(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  std::uint32_t destination = 0x01020304;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_tcp(net::Ipv4Address(destination++),
                                              16, 123456789, buffer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeTcpProbe);

void BM_DecodeResponse(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  const std::size_t size = codec.encode_udp(net::Ipv4Address(0x01020304), 16,
                                            false, 123456789, buffer);
  const auto response = net::craft_icmp_response(
      net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded,
      net::Ipv4Address(0xC8000001),
      std::span<const std::byte>(buffer.data(), size), 1);
  for (auto _ : state) {
    const auto parsed = net::parse_response(*response);
    benchmark::DoNotOptimize(codec.decode(*parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeResponse);

}  // namespace
}  // namespace flashroute

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nPaper's Table 5 (2012-era Xeon E5620): FlashRoute main phase "
      "215-229 Kpps, Yarrp-32 239 Kpps; estimated full-/24 scan 6:55 "
      "(FlashRoute-16) vs 24:48 (Yarrp-32).\n"
      "The pps counters above are this machine's equivalents; divide the "
      "paper's probe counts (97.8M / 355.7M) by them for the estimated "
      "unthrottled scan times.\n");
  return 0;
}
