// Table 5 — Non-throttled scan speed (§4.2.3).
//
// The paper unthrottles each tool for five minutes and measures the probing
// rate it can sustain (FlashRoute: ~220-300 Kpps on a 2012-era Xeon).  Here
// the engines run flat-out against a NullRuntime — real wall-clock time,
// no pacing, no responses — measuring the real hot path: DCB-ring walk,
// per-DCB locking, probe crafting (full IPv4/UDP serialization with
// checksums and the §3.1 bit-packing).  google-benchmark reports the rates;
// the summary converts them into estimated full-/24 scan times using the
// paper's probe counts.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/yarrp.h"
#include "core/probe_codec.h"
#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "net/icmp.h"

namespace flashroute {
namespace {

constexpr int kPrefixBits = 13;  // 8192 prefixes per engine iteration

core::TracerConfig speed_config(std::uint8_t split) {
  core::TracerConfig config;
  config.first_prefix = 0x010000;
  config.prefix_bits = kPrefixBits;
  config.split_ttl = split;
  config.preprobe = core::PreprobeMode::kNone;
  // Rate is irrelevant against NullRuntime (pacing is the runtime's job and
  // NullRuntime does none); probes_per_second only sizes virtual staging.
  config.probes_per_second = 1e9;
  config.collect_routes = false;
  return config;
}

void BM_FlashRouteSender16(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::NullRuntime runtime;
    core::Tracer tracer(speed_config(16), runtime);
    const auto result = tracer.run();
    probes += result.probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlashRouteSender16)->Unit(benchmark::kMillisecond);

void BM_FlashRouteSender32(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::NullRuntime runtime;
    core::Tracer tracer(speed_config(32), runtime);
    const auto result = tracer.run();
    probes += result.probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlashRouteSender32)->Unit(benchmark::kMillisecond);

void BM_YarrpSender32(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    baselines::YarrpConfig config;
    config.first_prefix = 0x010000;
    config.prefix_bits = kPrefixBits;
    config.probes_per_second = 1e9;
    config.collect_routes = false;
    core::NullRuntime runtime;
    baselines::Yarrp yarrp(config, runtime);
    probes += yarrp.run().probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YarrpSender32)->Unit(benchmark::kMillisecond);

/// One NullRuntime per shard: shards never share mutable state, so the
/// sharded sender runs lock-free end to end (the per-DCB spinlocks are
/// uncontended — no receiver).
class NullShardProvider final : public core::ShardRuntimeProvider {
 public:
  explicit NullShardProvider(std::size_t shards) {
    runtimes_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      runtimes_.push_back(std::make_unique<core::NullRuntime>());
    }
  }

  core::ScanRuntime& runtime_for(const core::ShardInfo& shard) override {
    return *runtimes_[static_cast<std::size_t>(shard.index)];
  }

 private:
  std::vector<std::unique_ptr<core::NullRuntime>> runtimes_;
};

/// The sharded engine's aggregate generation rate at 1/2/4/8 workers —
/// Table 5's unthrottled-sender measurement for the multi-core engine.
/// (On a single-core host the CPU-bound rates cannot exceed 1×; see
/// bench/shard_scaling.cc for the latency-bound wall-time scaling that
/// parallelism buys even there.)
void BM_ShardedSender16(benchmark::State& state) {
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::ShardedTracerConfig config;
    config.base = speed_config(16);
    config.num_workers = static_cast<int>(state.range(0));
    config.shard_prefix_bits = kPrefixBits - 3;  // 8 logical shards
    NullShardProvider provider(
        static_cast<std::size_t>(config.num_shards()));
    core::ShardedTracer tracer(config, provider);
    probes += tracer.run().probes_sent;
  }
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(probes),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedSender16)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Rate counters divide by wall time: the workers' CPU time is spent on
    // their own threads, which the main thread's CPU clock never sees.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EncodeUdpProbe(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  std::uint32_t destination = 0x01020304;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_udp(
        net::Ipv4Address(destination++), 16, false, 123456789, buffer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeUdpProbe);

void BM_EncodeTcpProbe(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  std::uint32_t destination = 0x01020304;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_tcp(net::Ipv4Address(destination++),
                                              16, 123456789, buffer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeTcpProbe);

void BM_DecodeResponse(benchmark::State& state) {
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  const std::size_t size = codec.encode_udp(net::Ipv4Address(0x01020304), 16,
                                            false, 123456789, buffer);
  const auto response = net::craft_icmp_response(
      net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded,
      net::Ipv4Address(0xC8000001),
      std::span<const std::byte>(buffer.data(), size), 1);
  for (auto _ : state) {
    const auto parsed = net::parse_response(*response);
    benchmark::DoNotOptimize(codec.decode(*parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeResponse);

}  // namespace
}  // namespace flashroute

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nPaper's Table 5 (2012-era Xeon E5620): FlashRoute main phase "
      "215-229 Kpps, Yarrp-32 239 Kpps; estimated full-/24 scan 6:55 "
      "(FlashRoute-16) vs 24:48 (Yarrp-32).\n"
      "The pps counters above are this machine's equivalents; divide the "
      "paper's probe counts (97.8M / 355.7M) by them for the estimated "
      "unthrottled scan times.\n");
  return 0;
}
