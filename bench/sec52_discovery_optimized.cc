// §5.2 — Discovery-optimized FlashRoute.
//
// A normal FlashRoute-32 scan followed by three backward-only extra scans
// with shifted source ports and random starting TTLs.  Different flow
// labels steer per-flow load balancers onto alternative branches; the
// shared stop set keeps the extra scans cheap.
//
// Paper's result: the whole mode takes 56 minutes at 100 Kpps and discovers
// 35,952 more interfaces than the simulated Yarrp-32-UDP does in about the
// same time (and 63,884 more than real Yarrp-32).

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Sec 5.2: discovery-optimized mode", world);
  bench::print_scan_header();

  // Plain FlashRoute-32 for reference.
  auto config = bench::tracer_base(world);
  config.split_ttl = 32;
  config.preprobe = core::PreprobeMode::kHitlist;
  config.hitlist = &world.hitlist;
  config.collect_routes = false;
  const auto plain = bench::run_tracer(world, config);
  bench::print_scan_row("FlashRoute-32 (plain)", plain);

  // Discovery-optimized: + four extra scans (the same probe budget as the
  // exhaustive comparator, as in the paper's same-time-budget framing).
  // Route collection feeds the ยง5.4 start-TTL heuristic for unresponsive
  // targets (deepest responding hop).
  config.extra_scans = 8;
  config.collect_routes = true;
  const auto optimized = bench::run_tracer(world, config);
  bench::print_scan_row("Discovery-optimized (+8)", optimized);

  // The comparator: simulated Yarrp-32-UDP (exhaustive, same rate).
  auto yudp = bench::tracer_base(world);
  yudp.split_ttl = 32;
  yudp.preprobe = core::PreprobeMode::kNone;
  yudp.forward_probing = false;
  yudp.redundancy_removal = false;
  yudp.collect_routes = false;
  const auto exhaustive = bench::run_tracer(world, yudp);
  bench::print_scan_row("Yarrp-32-UDP (simulation)", exhaustive);

  std::printf("\npaper reported: discovery-optimized 865,339 interfaces in "
              "56 min; Yarrp-32-UDP 829,387 in ~60 min (+35,952 for "
              "FlashRoute)\n");

  const auto delta =
      static_cast<std::int64_t>(optimized.interfaces.size()) -
      static_cast<std::int64_t>(exhaustive.interfaces.size());
  std::printf(
      "\nshape checks: extra scans add %s interfaces over plain "
      "FlashRoute-32; discovery-optimized vs exhaustive UDP: %s%s "
      "interfaces at %.2fx the scan time (paper: wins within the same "
      "time budget)\n",
      util::format_count(static_cast<std::int64_t>(
                             optimized.interfaces.size()) -
                         static_cast<std::int64_t>(plain.interfaces.size()))
          .c_str(),
      delta >= 0 ? "+" : "", util::format_count(delta).c_str(),
      static_cast<double>(optimized.scan_time) /
          static_cast<double>(exhaustive.scan_time));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
