// Full-IPv4-scale gate: peak RSS and probes/sec at 2^20 and 2^24 prefixes.
//
// The paper scans every routed /24 of IPv4 — 2^24 destination slots — and
// reports ~900 MB of control state for the DCB array plus bookkeeping
// (§3.4).  This bench proves the reproduction reaches the same scale on one
// machine: the succinct topology mode (sim/topology.h) derives the world
// on demand instead of materializing per-prefix tables, the packed 11-byte
// DCB (core/dcb.h) undercuts the paper's mutex-based DCB by an order of
// magnitude, and the trie-backed exclusion pass marks skipped prefixes in
// one DFS.  Stages run smallest-first because VmHWM is monotone; the final
// stage hard-fails when peak RSS exceeds the configured ceiling.
//
// Results land in BENCH_full_scale.json next to the paper's reference
// numbers.  CI runs a scaled-down smoke (FR_FULL_BITS=20) against the
// committed budget; the full 2^24 run is the local acceptance gate.
//
// Environment overrides:
//   FR_BASE_BITS     baseline universe exponent            (default 16)
//   FR_MID_BITS      mid-scale exponent                    (default 20)
//   FR_FULL_BITS     full-scale exponent                   (default 24)
//   FR_RSS_LIMIT_MB  hard peak-RSS ceiling for the run     (default 1800)
//   FR_PROBES        pipeline probes per measured pass     (default 2,000,000)
//   FR_FULL_SCAN     also run a real scan at FR_FULL_BITS  (default 1)
//   FR_SHARDED_SCAN  also run the sharded scan stage       (default FR_FULL_SCAN)
//   FR_WORKERS       worker threads for the sharded stage  (default 1)
//   FR_SCAN_PPS_FLOOR         hard floor on full_scan_pps    (default 0 = off)
//   FR_SHARDED_PPS_FLOOR      hard floor on sharded_scan_pps (default 0 = off)
//   FR_SEED          topology seed                         (default 1)

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "core/dcb_array.h"
#include "core/probe_codec.h"
#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "obs/cycle_ledger.h"
#include "sim/runtime.h"
#include "util/clock.h"
#include "util/permutation.h"

namespace flashroute {
namespace {

using bench::env_or;

constexpr std::uint8_t kMaxTtl = 16;

sim::SimParams world_params(int bits, std::uint64_t seed) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  params.topology_mode = sim::TopologyMode::kSuccinct;
  // Keep the universe inside IPv4 space; at 2^24 it IS IPv4 space
  // (first_prefix 0, the paper's configuration).
  params.first_prefix = std::min(
      params.first_prefix,
      static_cast<std::uint32_t>((std::uint64_t{1} << 24) -
                                 params.num_prefixes()));
  return params;
}

/// Destination-major TTL sweeps through SimNetwork::process_into — the same
/// probe stream bench/hotpath times, here to show throughput holds as the
/// universe grows past any cache level.
double pipeline_pps(const sim::Topology& topology,
                    const core::ProbeCodec& codec, std::uint64_t num_probes) {
  sim::SimNetwork network(topology);
  const sim::SimParams& params = topology.params();
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> probe;
  std::array<std::byte, net::kMaxResponseSize> response;
  util::Nanos when = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  while (sent < num_probes) {
    for (std::uint32_t block = 0;
         block < params.num_prefixes() && sent < num_probes; ++block) {
      const net::Ipv4Address dst(((params.first_prefix + block) << 8) | 0x64);
      for (std::uint8_t ttl = 1; ttl <= kMaxTtl && sent < num_probes; ++ttl) {
        const std::size_t size = codec.encode_udp(dst, ttl, false, when, probe);
        if (network.process_into(
                std::span<const std::byte>(probe.data(), size), when,
                response)) {
          ++delivered;
        }
        when += 1000;
        ++sent;
      }
    }
  }
  const util::Nanos elapsed = clock.now() - start;
  if (delivered == 0) {
    std::fprintf(stderr, "pipeline produced no responses\n");
    std::exit(1);
  }
  return static_cast<double>(sent) * util::kSecond /
         static_cast<double>(elapsed);
}

struct ScanStage {
  std::uint64_t probes = 0;
  double wall_seconds = 0.0;
  std::uint64_t interfaces = 0;
  double route_cache_hit_rate = 0.0;
  /// Per-stage cycle attribution (ns/unit), obs/cycle_ledger.h stages.
  double encode_ns = 0.0;
  double send_ns = 0.0;
  double deliver_ns = 0.0;
  double process_ns = 0.0;

  double pps() const {
    return static_cast<double>(probes) / wall_seconds;
  }
};

core::TracerConfig scan_config(const sim::Topology& topology) {
  core::TracerConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, topology.params().prefix_bits);
  config.preprobe = core::PreprobeMode::kNone;
  config.collect_routes = false;
  return config;
}

double hit_rate(const sim::NetworkStats& stats) {
  const std::uint64_t lookups =
      stats.route_cache_hits + stats.route_cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats.route_cache_hits) /
                            static_cast<double>(lookups);
}

/// A real end-to-end scan: DCB ring, Doubletree sets, exclusion bitmap —
/// everything the engine allocates at scale, with route collection off so
/// the control state dominates (the paper's configuration).  Runs the
/// batched pipeline (the default).  `attribute` attaches the per-stage
/// cycle ledger — only at the mid stage: the two clock reads per stage per
/// batch cost ~5% (steady-state batches run 1-2 probes), which doesn't
/// belong in the throughput-gated full-scale number.
ScanStage real_scan(const sim::Topology& topology, bool attribute) {
  core::TracerConfig config = scan_config(topology);
  obs::CycleLedger cycles;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  if (attribute) {
    config.cycles = &cycles;
    runtime.set_cycle_ledger(&cycles);
  }
  core::Tracer tracer(config, runtime);

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  const core::ScanResult result = tracer.run();
  const util::Nanos elapsed = clock.now() - start;

  ScanStage stage;
  stage.probes = result.probes_sent;
  stage.wall_seconds = static_cast<double>(elapsed) / util::kSecond;
  stage.interfaces = result.interfaces.size();
  stage.route_cache_hit_rate = hit_rate(network.stats());
  using Stage = obs::CycleLedger::Stage;
  stage.encode_ns = cycles.nanos_per_unit(Stage::kEncode);
  stage.send_ns = cycles.nanos_per_unit(Stage::kSend);
  stage.deliver_ns = cycles.nanos_per_unit(Stage::kDeliver);
  stage.process_ns = cycles.nanos_per_unit(Stage::kProcess);
  return stage;
}

/// The same full-scale scan through the sharded engine: the universe splits
/// into 2^3 logical shards, each a virtual-time sub-scan with its own DCB
/// ring, route cache, and delivery wheel.  Even on one core this buys
/// per-shard locality (a 2^21-slot working set instead of 2^24); on real
/// hardware the workers overlap round-barrier waits too.
ScanStage sharded_scan(const sim::Topology& topology, int workers) {
  core::ShardedTracerConfig config;
  config.base = scan_config(topology);
  config.shard_prefix_bits = topology.params().prefix_bits - 3;
  config.num_workers = workers;

  sim::SimShardRuntimeProvider provider(topology, config);
  core::ShardedTracer tracer(config, provider);

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  const core::ScanResult result = tracer.run();
  const util::Nanos elapsed = clock.now() - start;

  ScanStage stage;
  stage.probes = result.probes_sent;
  stage.wall_seconds = static_cast<double>(elapsed) / util::kSecond;
  stage.interfaces = result.interfaces.size();
  stage.route_cache_hit_rate = hit_rate(provider.stats());
  return stage;
}

struct StageReport {
  int bits = 0;
  double pipeline = 0.0;
  std::uint64_t rss_kb = 0;
  ScanStage scan;
  bool scanned = false;
};

StageReport run_stage(int bits, std::uint64_t seed,
                      const core::ProbeCodec& codec, std::uint64_t num_probes,
                      bool with_scan, bool attribute) {
  StageReport report;
  report.bits = bits;
  const sim::Topology topology(world_params(bits, seed));
  report.pipeline = pipeline_pps(topology, codec, num_probes);
  if (with_scan) {
    report.scan = real_scan(topology, attribute);
    report.scanned = true;
  }
  report.rss_kb = bench::peak_rss_kb();
  return report;
}

void print_stage(const StageReport& report) {
  std::printf("2^%-2d prefixes: pipeline %11.0f probes/s, peak RSS %7.1f MiB",
              report.bits, report.pipeline,
              static_cast<double>(report.rss_kb) / 1024.0);
  if (report.scanned) {
    std::printf(", scan %.0f probes/s (%llu probes, %llu interfaces, "
                "hit rate %.3f)",
                report.scan.pps(),
                static_cast<unsigned long long>(report.scan.probes),
                static_cast<unsigned long long>(report.scan.interfaces),
                report.scan.route_cache_hit_rate);
  }
  std::printf("\n");
  if (report.scanned && report.scan.send_ns > 0.0) {
    std::printf("      cycles/probe: encode %.0f ns, submit %.0f ns "
                "(process %.0f ns), deliver %.0f ns/resp\n",
                report.scan.encode_ns, report.scan.send_ns,
                report.scan.process_ns, report.scan.deliver_ns);
  }
}

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  const int base_bits = env_or<int>("FR_BASE_BITS", 16, 1, 24);
  const int mid_bits = env_or<int>("FR_MID_BITS", 20, 1, 24);
  const int full_bits = env_or<int>("FR_FULL_BITS", 24, 1, 24);
  const int rss_limit_mb = env_or<int>("FR_RSS_LIMIT_MB", 1800, 1, 1 << 20);
  const auto num_probes = env_or<std::uint64_t>("FR_PROBES", 2'000'000, 1,
                                                1'000'000'000'000ULL);
  const bool full_scan = env_or<int>("FR_FULL_SCAN", 1, 0, 1) != 0;
  const bool with_sharded =
      env_or<int>("FR_SHARDED_SCAN", full_scan ? 1 : 0, 0, 1) != 0;
  const int workers = env_or<int>("FR_WORKERS", 1, 1, 256);
  const double scan_pps_floor =
      env_or<double>("FR_SCAN_PPS_FLOOR", 0, 0, 1e9);
  const double sharded_pps_floor =
      env_or<double>("FR_SHARDED_PPS_FLOOR", 0, 0, 1e9);
  const auto seed =
      env_or<std::uint64_t>("FR_SEED", 1, 0, 1'000'000'000'000ULL);

  std::printf("=== full scale: RSS and throughput up to 2^%d prefixes ===\n",
              full_bits);
  std::printf("paper (§3.4): ~900 MB control state at 2^24; "
              "ceiling here: %d MiB\n\n", rss_limit_mb);

  sim::SimParams probe_params = world_params(base_bits, seed);
  const net::Ipv4Address vantage(probe_params.vantage_address);
  const core::ProbeCodec codec(vantage);

  // Smallest first: VmHWM only ever grows, so each stage's reading is the
  // high-water mark up to and including that stage.
  const StageReport base = run_stage(base_bits, seed, codec, num_probes,
                                     /*with_scan=*/false, /*attribute=*/false);
  print_stage(base);
  const StageReport mid = run_stage(mid_bits, seed, codec, num_probes,
                                    /*with_scan=*/true, /*attribute=*/true);
  print_stage(mid);
  const StageReport full = run_stage(full_bits, seed, codec, num_probes,
                                     /*with_scan=*/full_scan,
                                     /*attribute=*/false);
  print_stage(full);

  // The sharded engine over the same universe: identical probes per shard
  // decomposition, aggregated probes/sec across workers.
  ScanStage sharded;
  if (with_sharded) {
    const sim::Topology topology(world_params(full_bits, seed));
    sharded = sharded_scan(topology, workers);
    std::printf("2^%-2d sharded  : scan %.0f probes/s (%llu probes, %llu "
                "interfaces, hit rate %.3f, %d workers)\n",
                full_bits, sharded.pps(),
                static_cast<unsigned long long>(sharded.probes),
                static_cast<unsigned long long>(sharded.interfaces),
                sharded.route_cache_hit_rate, workers);
  }

  // The §3.4 control state itself, allocated for real at full scale.
  const std::uint64_t slots = std::uint64_t{1} << full_bits;
  core::DcbArray array(static_cast<std::uint32_t>(slots));
  const util::RandomPermutation permutation(
      static_cast<std::uint32_t>(slots), seed);
  const auto ring =
      array.build_ring(permutation, [](std::uint32_t) { return true; });
  const std::uint64_t final_rss_kb = bench::peak_rss_kb();
  std::printf("\nDCB array at 2^%d: %.1f MiB (%zu B/slot), ring of %u; "
              "final peak RSS %.1f MiB\n",
              full_bits,
              static_cast<double>(array.memory_bytes()) / (1024.0 * 1024.0),
              sizeof(core::Dcb), ring,
              static_cast<double>(final_rss_kb) / 1024.0);

  const double mid_vs_base = mid.pipeline / base.pipeline;
  std::printf("pipeline at 2^%d runs at %.1f%% of the 2^%d rate\n",
              mid_bits, 100.0 * mid_vs_base, base_bits);

  const bool rss_ok =
      final_rss_kb <= static_cast<std::uint64_t>(rss_limit_mb) * 1024;

  const char* path = "BENCH_full_scale.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"seed\": %llu,\n"
      "  \"probes_per_pass\": %llu,\n"
      "  \"base_bits\": %d,\n"
      "  \"base_pipeline_pps\": %.1f,\n"
      "  \"base_rss_kb\": %llu,\n"
      "  \"mid_bits\": %d,\n"
      "  \"mid_pipeline_pps\": %.1f,\n"
      "  \"mid_scan_pps\": %.1f,\n"
      "  \"mid_scan_probes\": %llu,\n"
      "  \"mid_rss_kb\": %llu,\n"
      "  \"mid_vs_base_pipeline\": %.4f,\n"
      "  \"full_bits\": %d,\n"
      "  \"full_pipeline_pps\": %.1f,\n"
      "  \"full_scan\": %s,\n"
      "  \"full_scan_pps\": %.1f,\n"
      "  \"full_scan_probes\": %llu,\n"
      "  \"full_scan_route_cache_hit_rate\": %.4f,\n"
      "  \"mid_scan_cycles_ns\": {\"encode\": %.1f, \"submit\": %.1f, "
      "\"process\": %.1f, \"deliver\": %.1f},\n"
      "  \"sharded_scan\": %s,\n"
      "  \"sharded_scan_pps\": %.1f,\n"
      "  \"sharded_scan_probes\": %llu,\n"
      "  \"sharded_scan_route_cache_hit_rate\": %.4f,\n"
      "  \"sharded_workers\": %d,\n"
      "  \"scan_pps_floor\": %.1f,\n"
      "  \"sharded_pps_floor\": %.1f,\n"
      "  \"dcb_bytes_per_slot\": %zu,\n"
      "  \"dcb_array_mib\": %.1f,\n"
      "  \"peak_rss_kb\": %llu,\n"
      "  \"rss_limit_mb\": %d,\n"
      "  \"paper_sec34_mb\": 900,\n"
      "  \"rss_within_limit\": %s\n"
      "}\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(num_probes), base.bits, base.pipeline,
      static_cast<unsigned long long>(base.rss_kb), mid.bits, mid.pipeline,
      mid.scan.pps(), static_cast<unsigned long long>(mid.scan.probes),
      static_cast<unsigned long long>(mid.rss_kb), mid_vs_base, full.bits,
      full.pipeline, full.scanned ? "true" : "false",
      full.scanned ? full.scan.pps() : 0.0,
      static_cast<unsigned long long>(full.scanned ? full.scan.probes : 0),
      full.scanned ? full.scan.route_cache_hit_rate : 0.0,
      mid.scan.encode_ns, mid.scan.send_ns, mid.scan.process_ns,
      mid.scan.deliver_ns,
      with_sharded ? "true" : "false", with_sharded ? sharded.pps() : 0.0,
      static_cast<unsigned long long>(with_sharded ? sharded.probes : 0),
      with_sharded ? sharded.route_cache_hit_rate : 0.0, workers,
      scan_pps_floor, sharded_pps_floor, sizeof(core::Dcb),
      static_cast<double>(array.memory_bytes()) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(final_rss_kb), rss_limit_mb,
      rss_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);

  bool ok = true;
  if (!rss_ok) {
    std::fprintf(stderr,
                 "FAIL: peak RSS %.1f MiB exceeds the %d MiB ceiling\n",
                 static_cast<double>(final_rss_kb) / 1024.0, rss_limit_mb);
    ok = false;
  } else {
    std::printf("PASS: peak RSS under the %d MiB ceiling\n", rss_limit_mb);
  }
  if (full.scanned && scan_pps_floor > 0.0) {
    if (full.scan.pps() < scan_pps_floor) {
      std::fprintf(stderr, "FAIL: full_scan_pps %.0f below floor %.0f\n",
                   full.scan.pps(), scan_pps_floor);
      ok = false;
    } else {
      std::printf("PASS: full_scan_pps %.0f over floor %.0f\n",
                  full.scan.pps(), scan_pps_floor);
    }
  }
  if (with_sharded && sharded_pps_floor > 0.0) {
    if (sharded.pps() < sharded_pps_floor) {
      std::fprintf(stderr, "FAIL: sharded_scan_pps %.0f below floor %.0f\n",
                   sharded.pps(), sharded_pps_floor);
      ok = false;
    } else {
      std::printf("PASS: sharded_scan_pps %.0f over floor %.0f\n",
                  sharded.pps(), sharded_pps_floor);
    }
  }
  return ok ? 0 : 1;
}
