// Shard-scaling benchmark for the real-time sharded engine.
//
// Runs the same scan — identical seed, identical shard decomposition, hence
// identical probes and discovered topology — on the threaded (real-time)
// runtime over the in-memory wire at 1/2/4/8 workers, and reports aggregate
// probes/sec and wall time per worker count in BENCH_shard_scaling.json.
//
// What is being measured — two distinct regimes, reported separately:
//
//  * Budget-bound (the original mode): a FlashRoute scan's wall time is
//    dominated by *waiting* — round barriers (min_round_duration) and
//    response RTTs — not by CPU.  A single worker serializes every shard's
//    waits; W workers overlap them, so wall time drops by ~W even on a
//    single-core host.  The absolute probes/sec here measures the *rate
//    budget* (200 kpps split across shards), NOT the engine: at the default
//    2^7 prefixes each worker paces at ~1.5 kpps and spends >99% of its
//    wall time asleep.  The speedup gate lives on this mode.
//
//  * Unthrottled (engine-bound): the virtual-time sharded engine at 2^16
//    and 2^20 prefixes with pacing and round barriers effectively removed —
//    every wall second is engine CPU, so probes/sec measures the batched
//    pipeline itself (compare BENCH_full_scale.json's scan stages).  No
//    scaling gate: on a single-core host extra workers only timeslice.
//
// Environment overrides:
//   FR_PREFIX_BITS   universe size exponent (default 7 = 128 /24s)
//   FR_SEED          topology seed (default 1)
//   FR_ROUND_MS      round barrier in milliseconds (default 20)
//   FR_UNTHROTTLED   run the engine-bound mode too (default 1)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/sharded_tracer.h"
#include "core/threaded_runtime.h"
#include "sim/runtime.h"
#include "sim/sim_wire.h"
#include "sim/topology.h"
#include "util/clock.h"

namespace flashroute {
namespace {

struct Run {
  int workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  std::size_t interfaces = 0;
  std::uint64_t dropped = 0;
  double pps() const { return static_cast<double>(probes) / wall_seconds; }
};

struct EngineRun {
  int bits = 0;
  int workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  double pps() const { return static_cast<double>(probes) / wall_seconds; }
};

/// Engine-bound sharded scan: virtual-time lanes, pacing interval ~0 and no
/// round barrier, so wall time is pure engine CPU.
EngineRun unthrottled_run(int bits, std::uint64_t seed, int workers) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  params.topology_mode = sim::TopologyMode::kSuccinct;
  params.first_prefix = std::min(
      params.first_prefix,
      static_cast<std::uint32_t>((std::uint64_t{1} << 24) -
                                 params.num_prefixes()));
  const sim::Topology topology(params);

  core::ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.preprobe = core::PreprobeMode::kNone;
  config.base.collect_routes = false;
  config.base.min_round_duration = 0;
  config.base.probes_per_second = 1e9;  // 1 ns pacing: never the bottleneck
  config.shard_prefix_bits = params.prefix_bits - 3;
  config.num_workers = workers;

  sim::SimShardRuntimeProvider provider(topology, config);
  core::ShardedTracer tracer(config, provider);

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  const core::ScanResult result = tracer.run();
  const util::Nanos elapsed = clock.now() - start;

  EngineRun run;
  run.bits = bits;
  run.workers = workers;
  run.wall_seconds = static_cast<double>(elapsed) / util::kSecond;
  run.probes = result.probes_sent;
  run.responses = result.responses;
  return run;
}

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  sim::SimParams params;
  params.prefix_bits = bench::env_or<int>("FR_PREFIX_BITS", 7, 1, 24);
  params.seed =
      bench::env_or<std::uint64_t>("FR_SEED", 1, 0, 1'000'000'000'000ULL);
  const int round_ms = bench::env_or<int>("FR_ROUND_MS", 20, 1, 60'000);
  // Short RTTs: responses land well inside the round barrier, so the barrier
  // (not response loss) sets the pace, as on a low-latency uplink.
  params.rtt_base = 200'000;     // 0.2 ms
  params.rtt_per_hop = 50'000;   // 0.05 ms
  params.rtt_jitter = 100'000;
  const sim::Topology topology(params);

  core::ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.preprobe = core::PreprobeMode::kNone;
  config.base.collect_routes = false;
  config.base.min_round_duration =
      static_cast<util::Nanos>(round_ms) * util::kMillisecond;
  // A generous budget: the throttle never binds, isolating the waiting time.
  config.base.probes_per_second = 200'000.0;
  config.shard_prefix_bits = config.base.prefix_bits - 3;  // 8 logical shards

  const auto shards = core::ShardedTracer::plan(config);
  std::printf("shard_scaling: 2^%d /24s in %zu logical shards, round %d ms\n",
              params.prefix_bits, shards.size(), round_ms);

  std::vector<Run> runs;
  for (const int workers : {1, 2, 4, 8}) {
    config.num_workers = workers;
    sim::RealTimeSimWire wire(topology, config.base.first_prefix,
                              config.base.num_prefixes(),
                              static_cast<std::uint32_t>(shards.size()));
    util::MonotonicClock clock;
    const util::Nanos start = clock.now();
    core::ScanResult result;
    std::uint64_t dropped = 0;
    {
      core::ShardedThreadedRuntime runtime(wire, config);
      core::ShardedTracer tracer(config, runtime);
      result = tracer.run();
      dropped = runtime.packets_dropped();
    }
    const double wall =
        static_cast<double>(clock.now() - start) / util::kSecond;

    Run run;
    run.workers = workers;
    run.wall_seconds = wall;
    run.probes = result.probes_sent;
    run.responses = result.responses;
    run.interfaces = result.interfaces.size();
    run.dropped = dropped;
    runs.push_back(run);
    std::printf(
        "  workers=%d  wall=%.3fs  probes=%llu  pps=%.0f  responses=%llu  "
        "interfaces=%zu  dropped=%llu\n",
        workers, wall, static_cast<unsigned long long>(run.probes), run.pps(),
        static_cast<unsigned long long>(run.responses), run.interfaces,
        static_cast<unsigned long long>(dropped));
  }

  double speedup4 = 0.0;
  for (const Run& run : runs) {
    if (run.workers == 4) speedup4 = run.pps() / runs.front().pps();
  }
  std::printf("speedup at 4 workers vs 1: %.2fx (probes/sec)\n", speedup4);

  // Engine-bound mode: what the sharded pipeline sustains when nothing
  // throttles it.
  std::vector<EngineRun> engine_runs;
  if (bench::env_or<int>("FR_UNTHROTTLED", 1, 0, 1) != 0) {
    std::printf("\nunthrottled engine throughput (virtual-time lanes):\n");
    for (const int bits : {16, 20}) {
      for (const int workers : {1, 2}) {
        const EngineRun run = unthrottled_run(bits, params.seed, workers);
        engine_runs.push_back(run);
        std::printf(
            "  2^%-2d workers=%d  wall=%.3fs  probes=%llu  pps=%.0f  "
            "responses=%llu\n",
            run.bits, run.workers, run.wall_seconds,
            static_cast<unsigned long long>(run.probes), run.pps(),
            static_cast<unsigned long long>(run.responses));
      }
    }
  }

  const char* path = "BENCH_shard_scaling.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"shard_scaling\",\n"
               "  \"prefix_bits\": %d,\n"
               "  \"logical_shards\": %zu,\n"
               "  \"round_ms\": %d,\n"
               "  \"probes_per_second_budget\": %.0f,\n"
               "  \"runs\": [\n",
               params.prefix_bits, shards.size(), round_ms,
               config.base.probes_per_second);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(out,
                 "    {\"workers\": %d, \"wall_seconds\": %.4f, "
                 "\"probes_sent\": %llu, \"probes_per_second\": %.1f, "
                 "\"responses\": %llu, \"interfaces\": %zu, "
                 "\"packets_dropped\": %llu}%s\n",
                 run.workers, run.wall_seconds,
                 static_cast<unsigned long long>(run.probes), run.pps(),
                 static_cast<unsigned long long>(run.responses),
                 run.interfaces, static_cast<unsigned long long>(run.dropped),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"unthrottled_runs\": [\n");
  for (std::size_t i = 0; i < engine_runs.size(); ++i) {
    const EngineRun& run = engine_runs[i];
    std::fprintf(out,
                 "    {\"prefix_bits\": %d, \"workers\": %d, "
                 "\"wall_seconds\": %.4f, \"probes_sent\": %llu, "
                 "\"probes_per_second\": %.1f, \"responses\": %llu}%s\n",
                 run.bits, run.workers, run.wall_seconds,
                 static_cast<unsigned long long>(run.probes), run.pps(),
                 static_cast<unsigned long long>(run.responses),
                 i + 1 < engine_runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_4_workers_vs_1\": %.3f\n"
               "}\n",
               speedup4);
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return speedup4 >= 2.0 ? 0 : 1;
}
