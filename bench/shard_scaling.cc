// Shard-scaling benchmark for the real-time sharded engine.
//
// Runs the same scan — identical seed, identical shard decomposition, hence
// identical probes and discovered topology — on the threaded (real-time)
// runtime over the in-memory wire at 1/2/4/8 workers, and reports aggregate
// probes/sec and wall time per worker count in BENCH_shard_scaling.json.
//
// What is being measured: a FlashRoute scan's wall time is dominated by
// *waiting* — round barriers (min_round_duration) and response RTTs — not by
// CPU.  A single worker serializes every shard's waits; W workers overlap
// them, so wall time drops by ~W even on a single-core host (each worker
// sleeps through its barriers while another runs).  This is the regime a
// real deployment with a fast uplink sits in whenever the probing budget,
// not the CPU, is the bottleneck.
//
// Environment overrides:
//   FR_PREFIX_BITS   universe size exponent (default 7 = 128 /24s)
//   FR_SEED          topology seed (default 1)
//   FR_ROUND_MS      round barrier in milliseconds (default 20)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sharded_tracer.h"
#include "core/threaded_runtime.h"
#include "sim/sim_wire.h"
#include "sim/topology.h"
#include "util/clock.h"

namespace flashroute {
namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct Run {
  int workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  std::size_t interfaces = 0;
  std::uint64_t dropped = 0;
  double pps() const { return static_cast<double>(probes) / wall_seconds; }
};

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  sim::SimParams params;
  params.prefix_bits = env_int("FR_PREFIX_BITS", 7);
  params.seed = static_cast<std::uint64_t>(env_int("FR_SEED", 1));
  // Short RTTs: responses land well inside the round barrier, so the barrier
  // (not response loss) sets the pace, as on a low-latency uplink.
  params.rtt_base = 200'000;     // 0.2 ms
  params.rtt_per_hop = 50'000;   // 0.05 ms
  params.rtt_jitter = 100'000;
  const sim::Topology topology(params);

  core::ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.preprobe = core::PreprobeMode::kNone;
  config.base.collect_routes = false;
  config.base.min_round_duration =
      static_cast<util::Nanos>(env_int("FR_ROUND_MS", 20)) *
      util::kMillisecond;
  // A generous budget: the throttle never binds, isolating the waiting time.
  config.base.probes_per_second = 200'000.0;
  config.shard_prefix_bits = config.base.prefix_bits - 3;  // 8 logical shards

  const auto shards = core::ShardedTracer::plan(config);
  std::printf("shard_scaling: 2^%d /24s in %zu logical shards, round %d ms\n",
              params.prefix_bits, shards.size(),
              env_int("FR_ROUND_MS", 20));

  std::vector<Run> runs;
  for (const int workers : {1, 2, 4, 8}) {
    config.num_workers = workers;
    sim::RealTimeSimWire wire(topology, config.base.first_prefix,
                              config.base.num_prefixes(),
                              static_cast<std::uint32_t>(shards.size()));
    util::MonotonicClock clock;
    const util::Nanos start = clock.now();
    core::ScanResult result;
    std::uint64_t dropped = 0;
    {
      core::ShardedThreadedRuntime runtime(wire, config);
      core::ShardedTracer tracer(config, runtime);
      result = tracer.run();
      dropped = runtime.packets_dropped();
    }
    const double wall =
        static_cast<double>(clock.now() - start) / util::kSecond;

    Run run;
    run.workers = workers;
    run.wall_seconds = wall;
    run.probes = result.probes_sent;
    run.responses = result.responses;
    run.interfaces = result.interfaces.size();
    run.dropped = dropped;
    runs.push_back(run);
    std::printf(
        "  workers=%d  wall=%.3fs  probes=%llu  pps=%.0f  responses=%llu  "
        "interfaces=%zu  dropped=%llu\n",
        workers, wall, static_cast<unsigned long long>(run.probes), run.pps(),
        static_cast<unsigned long long>(run.responses), run.interfaces,
        static_cast<unsigned long long>(dropped));
  }

  double speedup4 = 0.0;
  for (const Run& run : runs) {
    if (run.workers == 4) speedup4 = run.pps() / runs.front().pps();
  }
  std::printf("speedup at 4 workers vs 1: %.2fx (probes/sec)\n", speedup4);

  const char* path = "BENCH_shard_scaling.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"shard_scaling\",\n"
               "  \"prefix_bits\": %d,\n"
               "  \"logical_shards\": %zu,\n"
               "  \"round_ms\": %d,\n"
               "  \"probes_per_second_budget\": %.0f,\n"
               "  \"runs\": [\n",
               params.prefix_bits, shards.size(), env_int("FR_ROUND_MS", 20),
               config.base.probes_per_second);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(out,
                 "    {\"workers\": %d, \"wall_seconds\": %.4f, "
                 "\"probes_sent\": %llu, \"probes_per_second\": %.1f, "
                 "\"responses\": %llu, \"interfaces\": %zu, "
                 "\"packets_dropped\": %llu}%s\n",
                 run.workers, run.wall_seconds,
                 static_cast<unsigned long long>(run.probes), run.pps(),
                 static_cast<unsigned long long>(run.responses),
                 run.interfaces, static_cast<unsigned long long>(run.dropped),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_4_workers_vs_1\": %.3f\n"
               "}\n",
               speedup4);
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return speedup4 >= 2.0 ? 0 : 1;
}
