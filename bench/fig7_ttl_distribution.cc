// Fig 7 — Distribution of targets whose routes are probed at a given TTL
// (§4.2.1).
//
// For Scamper-16 and FlashRoute-16 we count, from the probe logs, how many
// distinct targets received a probe at each TTL.  The paper's shape:
// FlashRoute's count decays progressively below the split TTL (redundancy
// elimination terminates backward probing as convergence points are hit),
// while Scamper starts removing redundancy one hop later, keeps a constant
// level of redundant probing from TTL 14 down to 6, and plunges at 6.

#include <unordered_set>

#include "bench/common.h"

namespace flashroute {
namespace {

std::vector<std::uint64_t> targets_per_ttl(
    const std::vector<core::ProbeLogEntry>& log, int max_ttl) {
  std::vector<std::unordered_set<std::uint32_t>> targets(
      static_cast<std::size_t>(max_ttl) + 1);
  for (const auto& probe : log) {
    if (probe.preprobe) continue;  // preprobes are not route exploration
    if (probe.ttl == 0 || probe.ttl > max_ttl) continue;
    targets[probe.ttl].insert(probe.destination);
  }
  std::vector<std::uint64_t> counts(targets.size(), 0);
  for (std::size_t ttl = 0; ttl < targets.size(); ++ttl) {
    counts[ttl] = targets[ttl].size();
  }
  return counts;
}

void run() {
  auto world = bench::make_world();
  bench::print_banner("Fig 7: targets probed at each TTL", world);

  auto fr = bench::tracer_base(world);
  fr.preprobe = core::PreprobeMode::kHitlist;
  fr.hitlist = &world.hitlist;
  fr.collect_routes = false;
  fr.collect_probe_log = true;
  const auto fr_result = bench::run_tracer(world, fr);

  auto sc = bench::scamper_base(world);
  sc.collect_routes = false;
  sc.collect_probe_log = true;
  const auto sc_result = bench::run_scamper(world, sc);

  const auto fr_counts = targets_per_ttl(fr_result.probe_log, 32);
  const auto sc_counts = targets_per_ttl(sc_result.probe_log, 32);

  std::printf("%6s %14s %14s\n", "TTL", "FlashRoute-16", "Scamper-16");
  for (int ttl = 1; ttl <= 32; ++ttl) {
    std::printf("%6d %14s %14s\n", ttl,
                util::format_count(fr_counts[static_cast<std::size_t>(ttl)])
                    .c_str(),
                util::format_count(sc_counts[static_cast<std::size_t>(ttl)])
                    .c_str());
  }

  // Shape checks: Scamper's flat region (its per-TTL target count barely
  // decays from 13 down to 7), its plunge below that (convergence with
  // FlashRoute's curve by TTL 4), and FlashRoute's progressive decay.
  const double scamper_flatness =
      sc_counts[13] > 0
          ? static_cast<double>(sc_counts[7]) /
                static_cast<double>(sc_counts[13])
          : 0.0;
  const double scamper_plunge =
      sc_counts[7] > 0 ? static_cast<double>(sc_counts[4]) /
                             static_cast<double>(sc_counts[7])
                       : 0.0;
  const double fr_decay =
      fr_counts[13] > 0 ? static_cast<double>(fr_counts[7]) /
                              static_cast<double>(fr_counts[13])
                        : 0.0;
  const double convergence =
      fr_counts[4] > 0 ? static_cast<double>(sc_counts[4]) /
                             static_cast<double>(fr_counts[4])
                       : 0.0;
  std::printf(
      "\nshape checks: Scamper targets at TTL7 / TTL13 = %.2f (paper: ~1, "
      "flat); Scamper TTL4 / TTL7 = %.2f (paper: plunge, <<1); "
      "FlashRoute TTL7 / TTL13 = %.2f (paper: decayed, <<1); "
      "Scamper/FlashRoute at TTL4 = %.2f (paper: curves converge, ~1)\n",
      scamper_flatness, scamper_plunge, fr_decay, convergence);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
