// §3.4 / §5.4 — Control-state memory footprint.
//
// The paper reports ~900 MB for the full 2^24-slot DCB array with per-DCB
// std::mutex, notes that a test-and-set spinlock would shrink it, and
// extrapolates <15 GB for /28-granularity scanning and ~230 GB for /32.
// This bench reproduces the accounting with both lock variants (allocating
// the spinlock array for real, with the ring threaded through it) and
// prints the extrapolations.

#include <cinttypes>
#include <cstdio>

#include "bench/common.h"
#include "core/dcb_array.h"

namespace flashroute {
namespace {

void run() {
  std::printf("=== Sec 3.4: control-state memory footprint ===\n\n");

  std::printf("sizeof(DCB) with std::mutex lock: %zu bytes\n",
              sizeof(core::MutexDcb));
  std::printf("sizeof(DCB) with 1-byte spinlock: %zu bytes\n\n",
              sizeof(core::Dcb));

  const auto gib = [](double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); };
  const auto mib = [](double bytes) { return bytes / (1024.0 * 1024.0); };

  const double full24_mutex = static_cast<double>(sizeof(core::MutexDcb)) *
                              static_cast<double>(std::uint64_t{1} << 24);
  const double full24_spin = static_cast<double>(sizeof(core::Dcb)) *
                             static_cast<double>(std::uint64_t{1} << 24);
  std::printf("full /24 scan (2^24 DCBs):\n");
  std::printf("  mutex variant:    %7.1f MiB  (paper: ~900 MB including "
              "other overhead)\n",
              mib(full24_mutex));
  std::printf("  spinlock variant: %7.1f MiB  (the paper's suggested "
              "optimization)\n\n",
              mib(full24_spin));

  std::printf("extrapolations (spinlock variant; paper, mutex: <15 GB "
              "at /28, ~230 GB at /32):\n");
  for (const int bits : {28, 32}) {
    const double spin = static_cast<double>(sizeof(core::Dcb)) *
                        static_cast<double>(std::uint64_t{1} << bits);
    const double mutex = static_cast<double>(sizeof(core::MutexDcb)) *
                         static_cast<double>(std::uint64_t{1} << bits);
    std::printf("  /%d granularity: spinlock %6.1f GiB, mutex %6.1f GiB\n",
                bits, gib(spin), gib(mutex));
  }

  // Allocate a real (scaled) array and thread the ring to confirm the
  // accounting is not just arithmetic, then report the process's measured
  // peak RSS (VmHWM) next to it — the number the paper actually quotes.
  const std::uint64_t rss_before_kb = bench::peak_rss_kb();
  const int bits = bench::env_int("FR_PREFIX_BITS", 20);
  core::DcbArray array(std::uint32_t{1} << bits);
  const util::RandomPermutation permutation(std::uint32_t{1} << bits, 1);
  const auto ring = array.build_ring(permutation,
                                     [](std::uint32_t) { return true; });
  const std::uint64_t rss_after_kb = bench::peak_rss_kb();
  std::printf(
      "\nallocated for real: 2^%d DCBs -> %.1f MiB, ring of %" PRIu32
      " threaded\n",
      bits, mib(static_cast<double>(array.memory_bytes())), ring);
  std::printf(
      "measured peak RSS (VmHWM): %.1f MiB (%.1f MiB before the array; "
      "paper: ~900 MB total at 2^24)\n",
      mib(static_cast<double>(rss_after_kb) * 1024.0),
      mib(static_cast<double>(rss_before_kb) * 1024.0));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
