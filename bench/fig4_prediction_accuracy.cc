// Fig 4 — Accuracy of proximity-span distance prediction (§3.3.3-§3.3.4).
//
// Blocks with a measured distance are re-predicted from their nearest
// measured neighbour within the proximity span (default 5) and compared
// against the traceroute-style triggering TTL for the same destinations.
// The paper reports ~59.1% of predictions exact and ~84.5% within one hop,
// with ~89.5% of measured blocks having a measured neighbour in range.

#include "analysis/distance_eval.h"
#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Fig 4: proximity-span distance prediction", world);

  auto preprobe = bench::tracer_base(world);
  preprobe.preprobe = core::PreprobeMode::kRandom;
  preprobe.preprobe_only = true;
  preprobe.collect_routes = false;
  const auto measured_scan = bench::run_tracer(world, preprobe);

  auto sweep = bench::tracer_base(world);
  sweep.preprobe = core::PreprobeMode::kNone;
  sweep.split_ttl = 32;
  sweep.forward_probing = false;
  sweep.redundancy_removal = false;
  sweep.collect_routes = false;
  const auto sweep_scan = bench::run_tracer(world, sweep);

  const auto eval = analysis::evaluate_prediction(
      measured_scan.measured_distance, sweep_scan.trigger_ttl,
      /*span=*/5);

  std::printf("measured blocks: %s;  with a measured neighbour in span 5: "
              "%s (%.1f%%; paper 89.5%%)\n\n",
              util::format_count(eval.measured_blocks).c_str(),
              util::format_count(eval.predictable_blocks).c_str(),
              eval.measured_blocks
                  ? 100.0 * static_cast<double>(eval.predictable_blocks) /
                        static_cast<double>(eval.measured_blocks)
                  : 0.0);
  std::printf("%8s %10s %10s\n", "diff", "PDF", "CDF");
  for (int diff = -8; diff <= 8; ++diff) {
    if (eval.difference.count(diff) == 0 && (diff < -4 || diff > 4)) continue;
    std::printf("%8d %9.2f%% %9.2f%%\n", diff,
                100.0 * eval.difference.pdf(diff),
                100.0 * eval.difference.cdf(diff));
  }

  const double exact = eval.difference.pdf(0);
  const double within1 = eval.difference.pdf(-1) + eval.difference.pdf(0) +
                         eval.difference.pdf(1);
  std::printf("\nexact predictions: %5.1f%%   (paper: 59.1%%)\n",
              100 * exact);
  std::printf("within one hop:    %5.1f%%   (paper: 84.5%%)\n",
              100 * within1);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
