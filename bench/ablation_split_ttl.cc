// Ablation: the split-TTL parameter.
//
// The paper evaluates split TTLs 16 and 32 and explicitly leaves "a more
// careful exploration of other potential values of this parameter to future
// work" (§3.2.1, footnote 1).  This bench performs that exploration: full
// scans across split TTLs 8..32, reporting interfaces, probes, scan time,
// and the backward/forward balance, with preprobing disabled so the default
// split applies to every destination.
//
// Expected shape: small splits under-use backward redundancy elimination
// and push work into (silent-tail-limited) forward probing; large splits
// waste backward probes on unresponsive tails.  The sweet spot sits near
// the distance distribution's lower quartile — the paper's 16.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Ablation: split-TTL sweep (paper's future work, "
                      "footnote 1)",
                      world);

  std::printf("%10s %12s %14s %12s %16s\n", "split TTL", "interfaces",
              "probes", "time", "convergence stops");
  std::uint64_t best_probes = ~0ull;
  int best_split = 0;
  for (int split = 8; split <= 32; split += 4) {
    auto config = bench::tracer_base(world);
    config.split_ttl = static_cast<std::uint8_t>(split);
    config.preprobe = core::PreprobeMode::kNone;
    config.collect_routes = false;
    const auto result = bench::run_tracer(world, config);
    std::printf("%10d %12s %14s %12s %16s\n", split,
                util::format_count(
                    static_cast<std::uint64_t>(result.interfaces.size()))
                    .c_str(),
                util::format_count(result.probes_sent).c_str(),
                util::format_duration(result.scan_time).c_str(),
                util::format_count(result.convergence_stops).c_str());
    if (result.probes_sent < best_probes) {
      best_probes = result.probes_sent;
      best_split = split;
    }
  }
  std::printf(
      "\ncheapest split TTL in this world: %d (the paper's default of 16 "
      "balances probe cost against interface yield)\n",
      best_split);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
