// Reproduction robustness: the headline ratios across topology seeds.
//
// The paper's evaluation is one Internet; our simulator can generate many.
// This bench re-runs the Table 3 core comparison over several seeds and
// reports the spread of the headline ratios, demonstrating that the
// reproduction's conclusions are properties of the algorithms, not of one
// lucky topology.

#include <algorithm>
#include <vector>

#include "bench/common.h"

namespace flashroute {
namespace {

struct Ratios {
  double yarrp_time_ratio;       // Yarrp-32 time / FlashRoute-16 time
  double yarrp_probe_ratio;      // Yarrp-32 probes / FlashRoute-16 probes
  double fr16_deficit;           // 1 - FR16 interfaces / exhaustive-UDP
  double yarrp16_yield;          // Yarrp-16 interfaces / Yarrp-32 interfaces
};

void print_spread(const char* name, std::vector<double> values,
                  const char* paper) {
  std::sort(values.begin(), values.end());
  double sum = 0;
  for (const double v : values) sum += v;
  std::printf("%-34s mean %.2f   min %.2f   max %.2f   (paper: %s)\n", name,
              sum / static_cast<double>(values.size()), values.front(),
              values.back(), paper);
}

void run() {
  const int bits = bench::env_int("FR_PREFIX_BITS", 15);
  std::printf("=== Robustness: headline ratios across topology seeds ===\n");
  std::printf("universe: %u /24 blocks per seed\n\n", 1u << bits);

  std::vector<Ratios> all;
  for (const std::uint64_t seed : {1, 2, 3, 5, 8}) {
    sim::SimParams params;
    params.prefix_bits = bits;
    params.seed = seed;
    bench::World world;
    world.params = params;
    world.topology = std::make_unique<sim::Topology>(params);
    world.hitlist = world.topology->generate_hitlist();

    auto fr = bench::tracer_base(world);
    fr.preprobe = core::PreprobeMode::kHitlist;
    fr.hitlist = &world.hitlist;
    fr.collect_routes = false;
    const auto fr16 = bench::run_tracer(world, fr);

    auto yarrp16 = bench::yarrp_base(world);
    yarrp16.collect_routes = false;
    yarrp16.exhaustive_ttl = 16;
    yarrp16.fill_mode = true;
    const auto y16 = bench::run_yarrp(world, yarrp16);

    auto yarrp32 = bench::yarrp_base(world);
    yarrp32.collect_routes = false;
    const auto y32 = bench::run_yarrp(world, yarrp32);

    auto udp = bench::tracer_base(world);
    udp.preprobe = core::PreprobeMode::kNone;
    udp.split_ttl = 32;
    udp.forward_probing = false;
    udp.redundancy_removal = false;
    udp.collect_routes = false;
    const auto exhaustive = bench::run_tracer(world, udp);

    Ratios ratios;
    ratios.yarrp_time_ratio = static_cast<double>(y32.scan_time) /
                              static_cast<double>(fr16.scan_time);
    ratios.yarrp_probe_ratio = static_cast<double>(y32.probes_sent) /
                               static_cast<double>(fr16.probes_sent);
    ratios.fr16_deficit =
        1.0 - static_cast<double>(fr16.interfaces.size()) /
                  static_cast<double>(exhaustive.interfaces.size());
    ratios.yarrp16_yield = static_cast<double>(y16.interfaces.size()) /
                           static_cast<double>(y32.interfaces.size());
    all.push_back(ratios);
    std::printf("seed %llu: Yarrp/FR16 time %.2fx, probes %.2fx, FR16 "
                "deficit %.1f%%, Yarrp-16 yield %.0f%%\n",
                static_cast<unsigned long long>(seed),
                ratios.yarrp_time_ratio, ratios.yarrp_probe_ratio,
                100 * ratios.fr16_deficit, 100 * ratios.yarrp16_yield);
  }

  std::printf("\n");
  std::vector<double> v;
  for (const auto& r : all) v.push_back(r.yarrp_time_ratio);
  print_spread("Yarrp-32 / FlashRoute-16 time", v, "3.49x");
  v.clear();
  for (const auto& r : all) v.push_back(r.yarrp_probe_ratio);
  print_spread("Yarrp-32 / FlashRoute-16 probes", v, "3.64x");
  v.clear();
  for (const auto& r : all) v.push_back(r.fr16_deficit);
  print_spread("FlashRoute-16 interface deficit", v, "0.02");
  v.clear();
  for (const auto& r : all) v.push_back(r.yarrp16_yield);
  print_spread("Yarrp-16 / Yarrp-32 interfaces", v, "0.49");
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
