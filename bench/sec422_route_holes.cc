// §4.2.2's route-completeness claim, quantified.
//
// "While both configurations find the same total number of interfaces, the
// routes discovered by FlashRoute-32 will have fewer holes" — because
// FlashRoute-16's deterministic first-round blast at the split TTL
// overprobes popular mid-route interfaces, whose rate-limited silence
// punches probed-but-unanswered holes into the recorded routes.
//
// This bench counts holes (probed TTLs within a route's known extent that
// never got a response) for FlashRoute-16, FlashRoute-32, and — for
// context — Yarrp-32, whose randomized order spreads load differently.

#include "analysis/route_holes.h"
#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Sec 4.2.2: route holes (scan completeness)", world);

  std::printf("%-18s %10s %10s %14s %14s %12s\n", "Tool", "ifaces",
              "routes", "probed pos.", "holes", "holes/route");

  const auto report = [&](const char* name, const core::ScanResult& result) {
    const auto holes = analysis::count_route_holes(
        result, world.params.first_prefix);
    std::printf("%-18s %10zu %10s %14s %14s %12.3f\n", name,
                result.interfaces.size(),
                util::format_count(holes.routes_considered).c_str(),
                util::format_count(holes.probed_positions).c_str(),
                util::format_count(holes.holes).c_str(),
                holes.holes_per_route());
    return holes;
  };

  auto config = bench::tracer_base(world);
  config.preprobe = core::PreprobeMode::kHitlist;
  config.hitlist = &world.hitlist;
  config.collect_probe_log = true;

  config.split_ttl = 16;
  const auto fr16 = bench::run_tracer(world, config);
  const auto fr16_holes = report("FlashRoute-16", fr16);

  config.split_ttl = 32;
  const auto fr32 = bench::run_tracer(world, config);
  const auto fr32_holes = report("FlashRoute-32", fr32);

  auto yarrp_config = bench::yarrp_base(world);
  yarrp_config.collect_probe_log = true;
  const auto yarrp = bench::run_yarrp(world, yarrp_config);
  const auto yarrp_holes = report("Yarrp-32", yarrp);
  (void)yarrp_holes;

  std::printf(
      "\nshape check: FlashRoute-32 has %.2fx fewer holes per route than "
      "FlashRoute-16 (paper: FR-32's routes 'will have fewer holes'; its "
      "overprobing is far lower, Table 4), with a similar interface total "
      "(%zu vs %zu).\n",
      fr32_holes.holes_per_route() > 0
          ? fr16_holes.holes_per_route() / fr32_holes.holes_per_route()
          : 0.0,
      fr32.interfaces.size(), fr16.interfaces.size());
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
