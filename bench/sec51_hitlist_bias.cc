// §5.1 — The Census-hitlist bias, quantified.
//
// The same two exhaustive scans as Fig 8, analysed four ways:
//  1. interface totals (hitlist scan discovers significantly fewer);
//  2. per-prefix route lengths (routes to hitlist targets tend shorter) —
//     both over all prefixes and restricted to prefixes where *both*
//     targets responded (the paper's control for nonexistent destinations);
//  3. cross-appearance: hitlist addresses show up as intermediate hops on
//     routes to random targets far more often than the reverse — evidence
//     that the hitlist prefers gateway appliances on the block periphery;
//  4. loop prevalence on routes to unresponsive random targets (~1.7%).

#include "analysis/route_compare.h"
#include "bench/common.h"
#include "core/targets.h"

namespace flashroute {
namespace {

core::ScanResult exhaustive_scan(const bench::World& world,
                                 const std::vector<std::uint32_t>* targets) {
  auto config = bench::tracer_base(world);
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  config.target_override = targets;
  return bench::run_tracer(world, config);
}

void run() {
  auto world = bench::make_world();
  bench::print_banner("Sec 5.1: Census-hitlist bias", world);

  const auto random_scan = exhaustive_scan(world, nullptr);
  const auto hitlist_scan = exhaustive_scan(world, &world.hitlist);

  // 1. Interface totals.
  std::printf("interfaces: random %s, hitlist %s — deficit %s "
              "(paper: 829,338 vs 759,961, deficit 69,377)\n\n",
              util::format_count(
                  static_cast<std::uint64_t>(random_scan.interfaces.size()))
                  .c_str(),
              util::format_count(
                  static_cast<std::uint64_t>(hitlist_scan.interfaces.size()))
                  .c_str(),
              util::format_count(static_cast<std::int64_t>(
                                     random_scan.interfaces.size()) -
                                 static_cast<std::int64_t>(
                                     hitlist_scan.interfaces.size()))
                  .c_str());

  // 2. Route lengths.
  const auto all = analysis::compare_route_lengths(random_scan, hitlist_scan,
                                                   /*require_both_reached=*/
                                                   false);
  std::printf("route lengths (all comparable prefixes): random longer %s, "
              "hitlist longer %s (paper: 1,515,626 vs 1,349,814)\n",
              util::format_count(all.a_longer).c_str(),
              util::format_count(all.b_longer).c_str());
  const auto both = analysis::compare_route_lengths(random_scan, hitlist_scan,
                                                    /*require_both_reached=*/
                                                    true);
  std::printf("route lengths (both targets responsive): %s prefixes; random "
              "longer %s, hitlist longer %s (paper: 294,123; 64,279 vs "
              "34,057 — the bias survives the control)\n\n",
              util::format_count(both.comparable).c_str(),
              util::format_count(both.a_longer).c_str(),
              util::format_count(both.b_longer).c_str());

  // 3. Cross-appearance.
  std::vector<std::uint32_t> random_targets(world.params.num_prefixes());
  for (std::uint32_t i = 0; i < world.params.num_prefixes(); ++i) {
    random_targets[i] =
        core::random_target(42, world.params.first_prefix + i);
  }
  const auto cross = analysis::cross_appearance(
      random_scan, random_targets, hitlist_scan, world.hitlist);
  std::printf("hitlist addresses en route to random targets: %s; random "
              "addresses en route to hitlist targets: %s (paper: 27,203 vs "
              "6,421)\n",
              util::format_count(cross.b_targets_on_a_routes).c_str(),
              util::format_count(cross.a_targets_on_b_routes).c_str());
  std::printf("responsive targets: random %s, hitlist %s (paper: 540,060 vs "
              "1,273,230)\n\n",
              util::format_count(cross.a_targets_responsive).c_str(),
              util::format_count(cross.b_targets_responsive).c_str());

  // 4. Loops on routes to unresponsive random targets.
  const auto loops = analysis::count_loops(random_scan);
  std::printf("routes to unresponsive random targets: %s, containing a "
              "loop: %s (%.2f%%; paper: 1.7%%)\n",
              util::format_count(loops.unresponsive_routes).c_str(),
              util::format_count(loops.looped_routes).c_str(),
              loops.unresponsive_routes
                  ? 100.0 * static_cast<double>(loops.looped_routes) /
                        static_cast<double>(loops.unresponsive_routes)
                  : 0.0);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
