// Fig 6 — Discovered interfaces and scan time as a function of GapLimit
// (§4.1.2).
//
// Full scans with gap limit 0..8 (0 disables forward probing entirely);
// split 16, redundancy removal on, random preprobing with span-5 prediction.
// The paper's shape: scan time grows roughly linearly with the gap limit
// while the interface count flattens once the gap limit reaches 5 —
// re-validating Scamper's default.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Fig 6: gap limit sweep", world);

  std::printf("%8s %12s %14s %12s\n", "gap", "interfaces", "probes", "time");
  std::size_t interfaces_at_5 = 0;
  std::size_t interfaces_at_8 = 0;
  for (int gap = 0; gap <= 8; ++gap) {
    auto config = bench::tracer_base(world);
    config.gap_limit = static_cast<std::uint8_t>(gap);
    config.preprobe = core::PreprobeMode::kRandom;
    config.collect_routes = false;
    const auto result = bench::run_tracer(world, config);
    std::printf("%8d %12s %14s %12s\n", gap,
                util::format_count(
                    static_cast<std::uint64_t>(result.interfaces.size()))
                    .c_str(),
                util::format_count(result.probes_sent).c_str(),
                util::format_duration(result.scan_time).c_str());
    if (gap == 5) interfaces_at_5 = result.interfaces.size();
    if (gap == 8) interfaces_at_8 = result.interfaces.size();
  }

  std::printf(
      "\nshape check: interfaces at gap 5 = %.1f%% of gap 8 "
      "(paper: curve flattens at 5; Scamper's default re-validated)\n",
      interfaces_at_8
          ? 100.0 * static_cast<double>(interfaces_at_5) /
                static_cast<double>(interfaces_at_8)
          : 0.0);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
