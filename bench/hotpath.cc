// Hot-path microbenchmark for the allocation-free probe/response pipeline
// (DESIGN.md §6).  Reports, in BENCH_hotpath.json:
//
//  * probes/sec through SimNetwork::process_into with the route cache on
//    (sim defaults) vs bypassed (route_cache_bits = 0, the pre-cache
//    behaviour), plus the measured cache hit rate;
//  * the same pipeline with scan telemetry enabled (DESIGN.md §7) vs the
//    default-off telemetry, exercising the per-probe counter bump, the
//    per-response histogram record and the tracer tick exactly as the
//    engines do — the acceptance bar is <= 2% overhead;
//  * probe encodes/sec through the template-patching ProbeCodec vs a
//    reference encoder that serializes both headers from scratch and
//    recomputes the RFC 1071 checksum per probe (what the codec used to do).
//
// The probe stream is destination-major — for each /24, a TTL sweep against
// one representative target — matching how FlashRoute actually probes: each
// prefix is visited dozens of times with an identical (destination, flow,
// epoch) triple, which is exactly the redundancy the route cache collapses.
//
// Environment overrides:
//   FR_PREFIX_BITS  universe size exponent (default 16, the sim default)
//   FR_SEED         topology seed (default 1)
//   FR_PROBES       probes per measured pipeline pass (default 2,000,000)

#include <array>
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "core/probe_codec.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/scan_metrics.h"
#include "obs/scan_tracer.h"
#include "util/clock.h"

namespace flashroute {
namespace {

using bench::env_int;

constexpr std::uint8_t kMaxTtl = 16;

// The pre-template encoder: builds both headers field by field and lets
// Ipv4Header::serialize recompute the full header checksum.  Kept local to
// the bench as the comparison baseline.
std::size_t reference_encode_udp(net::Ipv4Address src, net::Ipv4Address dst,
                                 std::uint8_t ttl, util::Nanos when,
                                 std::span<std::byte> buffer) {
  const auto ts = static_cast<std::uint16_t>(
      (when / util::kMillisecond) & 0xFFFF);
  const std::size_t payload = (ts >> 10) & 0x3F;
  const std::size_t total =
      net::Ipv4Header::kSize + net::UdpHeader::kSize + payload;
  if (buffer.size() < total) return 0;
  std::memset(buffer.data(), 0, total);

  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.id = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>((ttl - 1) & 0x1F) << 11) | (ts & 0x03FF));
  ip.ttl = ttl;
  ip.protocol = net::kProtoUdp;
  ip.src = src;
  ip.dst = dst;
  net::UdpHeader udp;
  udp.src_port = net::address_checksum(dst);
  udp.dst_port = net::kTracerouteDstPort;
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kSize + payload);

  net::ByteWriter writer(buffer);
  ip.serialize(writer);
  udp.serialize(writer);
  return total;
}

struct PipelineRun {
  double wall_seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  double hit_rate = 0.0;

  double pps() const { return static_cast<double>(probes) / wall_seconds; }
};

/// Pushes `num_probes` probes (destination-major TTL sweeps over the whole
/// universe, wrapping) through one SimNetwork via the zero-copy entry point.
/// `telemetry` gets the same hooks the engines run per probe and per
/// response (core/tracer.cc send_probe/on_packet); the default disabled
/// handle measures the off cost (one predicted branch per hook).
PipelineRun run_pipeline(const sim::Topology& topology,
                         const core::ProbeCodec& codec,
                         std::uint64_t num_probes,
                         const obs::ScanTelemetry& telemetry_in = {}) {
  sim::SimNetwork network(topology);
  const sim::SimParams& params = topology.params();
  // Local by-value copy: nothing else holds its address, so the compiler can
  // keep the lane/tracer pointers in registers across the opaque
  // process_into call instead of reloading them every probe.
  const obs::ScanTelemetry telemetry = telemetry_in;

  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> probe;
  std::array<std::byte, net::kMaxResponseSize> response;
  util::Nanos when = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  while (sent < num_probes) {
    for (std::uint32_t block = 0;
         block < params.num_prefixes() && sent < num_probes; ++block) {
      const net::Ipv4Address dst(((params.first_prefix + block) << 8) | 0x64);
      for (std::uint8_t ttl = 1; ttl <= kMaxTtl && sent < num_probes; ++ttl) {
        const std::size_t size = codec.encode_udp(dst, ttl, false, when, probe);
        telemetry.count(telemetry.ids.probes_sent);
        if (telemetry.tracer != nullptr) telemetry.tick(when);
        if (network.process_into(
                std::span<const std::byte>(probe.data(), size), when,
                response)) {
          ++delivered;
          if (telemetry.enabled()) {
            telemetry.count(telemetry.ids.responses);
            telemetry.sample(telemetry.ids.rtt_us,
                             static_cast<std::uint64_t>(ttl) * 10);
            telemetry.tick(when);
          }
        }
        when += 1000;  // 1 µs per probe (1 Mpps virtual send rate)
        ++sent;
      }
    }
  }
  const util::Nanos elapsed = clock.now() - start;

  PipelineRun run;
  run.wall_seconds = static_cast<double>(elapsed) / util::kSecond;
  run.probes = sent;
  run.responses = delivered;
  const auto& stats = network.stats();
  run.hit_rate = static_cast<double>(stats.route_cache_hits) /
                 static_cast<double>(stats.route_cache_hits +
                                     stats.route_cache_misses);
  return run;
}

struct EncodeRun {
  double wall_seconds = 0.0;
  std::uint64_t encodes = 0;
  std::uint64_t bytes = 0;  // defeats dead-code elimination

  double pps() const { return static_cast<double>(encodes) / wall_seconds; }
};

template <typename Encode>
EncodeRun run_encode(const sim::SimParams& params, std::uint64_t num_probes,
                     Encode&& encode) {
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> probe;
  util::Nanos when = 0;
  std::uint64_t sent = 0;
  std::uint64_t bytes = 0;

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  while (sent < num_probes) {
    for (std::uint32_t block = 0;
         block < params.num_prefixes() && sent < num_probes; ++block) {
      const net::Ipv4Address dst(((params.first_prefix + block) << 8) | 0x64);
      for (std::uint8_t ttl = 1; ttl <= kMaxTtl && sent < num_probes; ++ttl) {
        bytes += encode(dst, ttl, when, probe);
        when += 1000;
        ++sent;
      }
    }
  }
  const util::Nanos elapsed = clock.now() - start;

  EncodeRun run;
  run.wall_seconds = static_cast<double>(elapsed) / util::kSecond;
  run.encodes = sent;
  run.bytes = bytes;
  return run;
}

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  sim::SimParams params;
  params.prefix_bits = env_int("FR_PREFIX_BITS", 16);
  params.seed = static_cast<std::uint64_t>(env_int("FR_SEED", 1));
  const auto num_probes =
      static_cast<std::uint64_t>(env_int("FR_PROBES", 2'000'000));

  std::printf("=== hot path: probe/response pipeline ===\n");
  std::printf("universe: %u /24 blocks, seed %llu, %llu probes per pass\n\n",
              params.num_prefixes(),
              static_cast<unsigned long long>(params.seed),
              static_cast<unsigned long long>(num_probes));

  const net::Ipv4Address vantage(params.vantage_address);
  const core::ProbeCodec codec(vantage);

  // Sanity: the template encoder and the reference encoder agree bit for bit
  // before either is timed.
  {
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> a{};
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> b{};
    for (std::uint32_t i = 0; i < 1000; ++i) {
      const net::Ipv4Address dst(((params.first_prefix + i * 7) << 8) | 0x64);
      const auto ttl = static_cast<std::uint8_t>(1 + i % 32);
      const util::Nanos when = static_cast<util::Nanos>(i) * 77 *
                               util::kMillisecond;
      const std::size_t sa = codec.encode_udp(dst, ttl, false, when, a);
      const std::size_t sb = reference_encode_udp(vantage, dst, ttl, when, b);
      if (sa != sb || std::memcmp(a.data(), b.data(), sa) != 0) {
        std::fprintf(stderr,
                     "template encoder diverges from reference at probe %u\n",
                     i);
        return 1;
      }
    }
  }

  // --- process(): cached vs bypassed ---------------------------------------
  sim::SimParams bypass_params = params;
  bypass_params.route_cache_bits = 0;
  const sim::Topology cached_topology(params);
  const sim::Topology bypass_topology(bypass_params);

  // Warm one untimed pass each (page in the topology, size the tables).
  (void)run_pipeline(cached_topology, codec, num_probes / 10);
  (void)run_pipeline(bypass_topology, codec, num_probes / 10);

  const PipelineRun cached = run_pipeline(cached_topology, codec, num_probes);
  const PipelineRun bypassed =
      run_pipeline(bypass_topology, codec, num_probes);
  const double process_speedup = cached.pps() / bypassed.pps();

  std::printf("process_into, route cache on : %11.0f probes/s  "
              "(hit rate %.1f%%, %llu responses)\n",
              cached.pps(), 100.0 * cached.hit_rate,
              static_cast<unsigned long long>(cached.responses));
  std::printf("process_into, cache bypassed : %11.0f probes/s  "
              "(%llu responses)\n",
              bypassed.pps(),
              static_cast<unsigned long long>(bypassed.responses));
  std::printf("speedup                      : %.2fx\n\n", process_speedup);
  if (cached.responses != bypassed.responses) {
    std::fprintf(stderr, "response counts diverge: cache is not transparent\n");
    return 1;
  }

  // --- process(): telemetry on vs off ---------------------------------------
  // The on pass wires a lane + tracer exactly as the CLI does and pays the
  // real per-probe hooks; the off pass carries the default (disabled)
  // telemetry handle through the same code path.  Passes are interleaved and
  // the best of two is kept to damp scheduler noise.
  obs::MetricsRegistry metrics_registry;
  obs::ScanTelemetry telemetry_on;
  telemetry_on.registry = &metrics_registry;
  telemetry_on.ids = obs::register_scan_metrics(metrics_registry);
  metrics_registry.freeze(1);
  obs::ScanTracer scan_tracer(metrics_registry, 100 * util::kMillisecond);
  telemetry_on.tracer = &scan_tracer;
  telemetry_on.lane = metrics_registry.lane(0);
  telemetry_on.lane_id = 0;
  scan_tracer.begin_phase(0, obs::ScanPhase::kMain, 0);

  PipelineRun metrics_off;
  PipelineRun metrics_on;
  for (int pass = 0; pass < 3; ++pass) {
    const PipelineRun off = run_pipeline(cached_topology, codec, num_probes);
    if (pass == 0 || off.pps() > metrics_off.pps()) metrics_off = off;
    const PipelineRun on =
        run_pipeline(cached_topology, codec, num_probes, telemetry_on);
    if (pass == 0 || on.pps() > metrics_on.pps()) metrics_on = on;
  }
  const double metrics_overhead_pct =
      100.0 * (1.0 - metrics_on.pps() / metrics_off.pps());

  std::printf("process_into, telemetry off  : %11.0f probes/s\n",
              metrics_off.pps());
  std::printf("process_into, telemetry on   : %11.0f probes/s\n",
              metrics_on.pps());
  std::printf("telemetry overhead           : %.2f%%\n\n",
              metrics_overhead_pct);
  if (telemetry_on.lane.counter(telemetry_on.ids.probes_sent) <
      2 * num_probes) {
    std::fprintf(stderr, "telemetry counters were not exercised\n");
    return 1;
  }

  // --- encode: template patching vs full serialization ---------------------
  const EncodeRun tmpl = run_encode(
      params, num_probes,
      [&codec](net::Ipv4Address dst, std::uint8_t ttl, util::Nanos when,
               std::span<std::byte> buf) {
        return codec.encode_udp(dst, ttl, false, when, buf);
      });
  const EncodeRun reference = run_encode(
      params, num_probes,
      [vantage](net::Ipv4Address dst, std::uint8_t ttl, util::Nanos when,
                std::span<std::byte> buf) {
        return reference_encode_udp(vantage, dst, ttl, when, buf);
      });
  const double encode_speedup = tmpl.pps() / reference.pps();

  std::printf("encode_udp, template + RFC1624: %11.0f probes/s\n", tmpl.pps());
  std::printf("encode_udp, full serialization: %11.0f probes/s\n",
              reference.pps());
  std::printf("speedup                       : %.2fx\n", encode_speedup);

  const char* path = "BENCH_hotpath.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"prefix_bits\": %d,\n"
      "  \"seed\": %llu,\n"
      "  \"probes_per_pass\": %llu,\n"
      "  \"process_cached_pps\": %.1f,\n"
      "  \"process_bypassed_pps\": %.1f,\n"
      "  \"process_speedup\": %.3f,\n"
      "  \"route_cache_hit_rate\": %.4f,\n"
      "  \"responses_per_pass\": %llu,\n"
      "  \"process_metrics_off_pps\": %.1f,\n"
      "  \"process_metrics_on_pps\": %.1f,\n"
      "  \"metrics_overhead_pct\": %.2f,\n"
      "  \"encode_template_pps\": %.1f,\n"
      "  \"encode_reference_pps\": %.1f,\n"
      "  \"encode_speedup\": %.3f\n"
      "}\n",
      params.prefix_bits, static_cast<unsigned long long>(params.seed),
      static_cast<unsigned long long>(num_probes), cached.pps(),
      bypassed.pps(), process_speedup, cached.hit_rate,
      static_cast<unsigned long long>(cached.responses), metrics_off.pps(),
      metrics_on.pps(), metrics_overhead_pct, tmpl.pps(), reference.pps(),
      encode_speedup);
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return 0;
}
