// Daemon throughput / admission / preemption gates (DESIGN.md §12).
//
// Boots real in-process frd daemons (AF_UNIX socket, worker pool, archive)
// and drives them through svc::Client exactly as frctl would, measuring the
// three service-level guarantees this PR promises:
//
//  A. Throughput — N identical sim jobs pushed through one worker (serial)
//     and through the multi-worker pool (concurrent).  The gate is that
//     multiplexing costs little: concurrent aggregate probes/sec must be
//     >= 85% of the serial aggregate.  (On a multi-core host it is usually
//     well above 100% — the workers overlap; the gate guards the floor, not
//     the speedup, so single-core CI still passes.)
//
//  B. Admission — rejections are deterministic and machine-readable:
//     an invalid spec yields "bad_spec", a spec whose rate alone exceeds
//     the global pps budget yields "rate_exceeds_global_budget", and a
//     full waiting queue yields "queue_full".
//
//  C. Preemption determinism — a low-priority job preempted mid-scan by a
//     high-priority arrival (1 worker forces the conflict) and later
//     resumed must leave a byte-identical archive payload (size + FNV-1a)
//     to the same spec run on an uncontended daemon.  This is the PR 5
//     checkpoint-equivalence contract surfaced at the service layer.
//
//  D. Journaling overhead — the concurrent workload rerun with the
//     write-ahead journal enabled (durability none, crash points
//     disarmed) must keep >= 80% of the serial aggregate: crash safety
//     that is not being exercised must be close to free (DESIGN.md §14).
//
// Writes BENCH_daemon.json; exits non-zero when any gate fails.
//
// Environment overrides:
//   FR_DAEMON_JOBS   jobs per throughput run (default 6)
//   FR_DAEMON_BITS   universe exponent per throughput job (default 12)
//   FR_WORKERS       concurrent-pool size (default 2)

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "svc/client.h"
#include "svc/daemon.h"
#include "svc/job.h"
#include "util/clock.h"

namespace flashroute {
namespace {

using bench::env_or;

std::string unique_path(const char* stem, int nonce) {
  return "/tmp/" + std::string(stem) + "." +
         std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(nonce);
}

/// One in-process daemon plus the paths it owns; the archive file is
/// removed on destruction (the socket unlinks itself).
struct TestDaemon {
  std::string socket_path;
  std::string archive_path;
  std::string journal_path;  // empty = journaling off
  std::string state_dir;
  std::ostringstream events;
  std::unique_ptr<svc::Daemon> daemon;

  static std::unique_ptr<TestDaemon> boot(
      int nonce, int workers, double budget, int max_queued,
      bool journaled = false,
      svc::Durability durability = svc::Durability::kNone) {
    auto td = std::make_unique<TestDaemon>();
    td->socket_path = unique_path("frd_bench", nonce);
    td->archive_path = unique_path("frd_bench_archive", nonce);
    svc::DaemonOptions options;
    options.socket_path = td->socket_path;
    options.archive_path = td->archive_path;
    options.events = &td->events;
    if (journaled) {
      td->journal_path = unique_path("frd_bench_journal", nonce);
      td->state_dir = unique_path("frd_bench_state", nonce);
      options.journal_path = td->journal_path;
      options.state_dir = td->state_dir;
      options.durability = durability;
    }
    options.scheduler.num_workers = workers;
    options.scheduler.global_pps_budget = budget;
    options.scheduler.max_queued = max_queued;
    td->daemon = std::make_unique<svc::Daemon>(options);
    if (!td->daemon->start()) return nullptr;
    return td;
  }

  void stop() {
    if (daemon) {
      daemon->request_shutdown();
      daemon->wait();
    }
  }

  ~TestDaemon() {
    stop();
    std::remove(archive_path.c_str());
    if (!journal_path.empty()) {
      std::remove(journal_path.c_str());
      for (int id = 1; id <= 128; ++id) {
        std::remove(
            (state_dir + "/job_" + std::to_string(id) + ".frck").c_str());
      }
      ::rmdir(state_dir.c_str());
    }
  }
};

svc::JobSpec throughput_spec(int bits, int index) {
  svc::JobSpec spec;
  spec.name = "tp" + std::to_string(index);
  spec.prefix_bits = bits;
  spec.scan_seed = 7 + static_cast<std::uint64_t>(index);
  spec.collect_routes = false;
  return spec;
}

struct ThroughputRun {
  int workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t completed = 0;
  double pps() const {
    return wall_seconds > 0.0 ? static_cast<double>(probes) / wall_seconds
                              : 0.0;
  }
};

/// Pushes `jobs` identical scans through a fresh daemon and measures the
/// wall time from first submit to last completion.
bool run_throughput(int nonce, int workers, int jobs, int bits,
                    ThroughputRun* out, bool journaled = false) {
  auto daemon = TestDaemon::boot(nonce, workers, 1e6, jobs + 1, journaled);
  if (!daemon) return false;
  auto client = svc::Client::connect(daemon->socket_path);
  if (!client) return false;

  util::MonotonicClock clock;
  const util::Nanos start = clock.now();
  for (int i = 0; i < jobs; ++i) {
    const auto submission = client->submit(throughput_spec(bits, i));
    if (!submission || !submission->admitted) return false;
  }
  if (!client->wait_all(2)) return false;
  const double wall =
      static_cast<double>(clock.now() - start) / util::kSecond;

  const auto views = client->list();
  if (!views) return false;
  out->workers = workers;
  out->wall_seconds = wall;
  for (const svc::JobView& view : *views) {
    out->probes += view.probes;
    if (view.state == svc::JobState::kCompleted) out->completed += 1;
  }
  daemon->stop();
  return out->completed == static_cast<std::uint64_t>(jobs);
}

/// Folds one measurement into a best-of accumulator.  Wall-clock noise on
/// a loaded single-core host is one-sided (scheduler stalls only ever slow
/// a run down), so the fastest rep estimates the true rate and keeps the
/// ratio gates from tripping on a hiccup in either numerator or
/// denominator.
bool keep_best(int nonce, int workers, int jobs, int bits, ThroughputRun* best,
               bool prior_ok, bool journaled = false) {
  ThroughputRun run;
  if (!run_throughput(nonce, workers, jobs, bits, &run, journaled)) {
    return prior_ok;
  }
  if (!prior_ok || run.pps() > best->pps()) *best = run;
  return true;
}

/// Spins on status() until the job leaves the queue (running, preempted, or
/// terminal).  Tight loop on purpose: the window before a fast sim job
/// finishes is small and the poll is a cheap local round trip.
bool wait_until_started(svc::Client& client, std::uint64_t id) {
  for (int spin = 0; spin < 2'000'000; ++spin) {
    const auto view = client.status(id);
    if (!view) return false;
    if (view->state != svc::JobState::kQueued) return true;
  }
  return false;
}

struct AdmissionResult {
  std::string bad_spec_reason;
  std::string over_budget_reason;
  std::string queue_full_reason;
  bool ok = false;
};

AdmissionResult run_admission(int nonce) {
  AdmissionResult result;
  auto daemon = TestDaemon::boot(nonce, /*workers=*/1, /*budget=*/10'000.0,
                                 /*max_queued=*/1);
  if (!daemon) return result;
  auto client = svc::Client::connect(daemon->socket_path);
  if (!client) return result;

  svc::JobSpec bad;
  bad.prefix_bits = 0;  // invalid: validate_spec wants [1, 20]
  const auto r1 = client->submit(bad);
  if (!r1 || r1->admitted) return result;
  result.bad_spec_reason = r1->reason;

  svc::JobSpec greedy;
  greedy.probes_per_second = 20'001.0;  // > the 10 kpps global budget
  const auto r2 = client->submit(greedy);
  if (!r2 || r2->admitted) return result;
  result.over_budget_reason = r2->reason;

  // Occupy the single worker with a long scan, queue one waiter behind it,
  // and watch the bounded queue turn the next submission away.
  svc::JobSpec runner;
  runner.name = "runner";
  runner.prefix_bits = 14;
  runner.probes_per_second = 9'000.0;
  const auto r3 = client->submit(runner);
  if (!r3 || !r3->admitted) return result;
  if (!wait_until_started(*client, r3->job_id)) return result;

  svc::JobSpec waiter = runner;
  waiter.name = "waiter";
  const auto r4 = client->submit(waiter);
  if (!r4 || !r4->admitted) return result;

  svc::JobSpec overflow = runner;
  overflow.name = "overflow";
  const auto r5 = client->submit(overflow);
  if (!r5 || r5->admitted) return result;
  result.queue_full_reason = r5->reason;

  // Tidy up: drop the queued waiter, let the runner finish.
  client->cancel(r4->job_id);
  if (!client->wait_all(2)) return result;
  daemon->stop();

  result.ok = result.bad_spec_reason == svc::kRejectBadSpec &&
              result.over_budget_reason ==
                  svc::kRejectRateExceedsGlobalBudget &&
              result.queue_full_reason == svc::kRejectQueueFull;
  return result;
}

struct PreemptionResult {
  bool preempted = false;       ///< contended run actually preempted L
  std::uint64_t slices = 0;     ///< L's slice count in the contended run
  std::uint64_t contended_size = 0;
  std::uint64_t contended_fnv = 0;
  std::uint64_t solo_size = 0;
  std::uint64_t solo_fnv = 0;
  int attempts = 0;
  bool ok = false;
};

svc::JobSpec preemption_victim() {
  svc::JobSpec spec;
  spec.name = "victim";
  spec.prefix_bits = 13;
  spec.probes_per_second = 20'000.0;
  spec.checkpoint_interval = 50 * util::kMillisecond;  // many barriers
  return spec;
}

/// One contended attempt: submit L, wait for it to hold the single worker,
/// then submit a higher-priority H.  True when L was preempted and both
/// jobs completed.
bool contended_attempt(int nonce, PreemptionResult* result) {
  auto daemon = TestDaemon::boot(nonce, /*workers=*/1, 1e6, 4);
  if (!daemon) return false;
  auto client = svc::Client::connect(daemon->socket_path);
  if (!client) return false;

  const auto victim = client->submit(preemption_victim());
  if (!victim || !victim->admitted) return false;
  if (!wait_until_started(*client, victim->job_id)) return false;

  svc::JobSpec intruder;
  intruder.name = "intruder";
  intruder.prefix_bits = 8;
  intruder.priority = 5;
  const auto high = client->submit(intruder);
  if (!high || !high->admitted) return false;

  if (!client->wait_all(2)) return false;
  const auto view = client->wait_job(victim->job_id);
  if (!view || view->state != svc::JobState::kCompleted) return false;

  const auto verify = client->verify(victim->job_id);
  if (!verify || !verify->found) return false;
  daemon->stop();

  const std::string events = daemon->events.str();
  const bool preempted =
      events.find("\"event\":\"preempted\"") != std::string::npos &&
      events.find("\"event\":\"resumed\"") != std::string::npos;
  if (!preempted || view->slices < 2) return false;

  result->preempted = true;
  result->slices = view->slices;
  result->contended_size = verify->payload_size;
  result->contended_fnv = verify->payload_fnv1a;
  return true;
}

PreemptionResult run_preemption(int nonce_base) {
  PreemptionResult result;

  // The intruder's arrival races the victim's (fast, virtual-time) scan, so
  // retry until an attempt lands inside the window.  Every successful
  // attempt must produce the same bytes, so retrying cannot mask a
  // determinism bug — only an arrival-timing miss.
  for (int attempt = 0; attempt < 10; ++attempt) {
    result.attempts = attempt + 1;
    if (contended_attempt(nonce_base + attempt, &result)) break;
    result.preempted = false;
  }
  if (!result.preempted) return result;

  auto daemon = TestDaemon::boot(nonce_base + 100, /*workers=*/1, 1e6, 4);
  if (!daemon) return result;
  auto client = svc::Client::connect(daemon->socket_path);
  if (!client) return result;
  const auto solo = client->submit(preemption_victim());
  if (!solo || !solo->admitted) return result;
  const auto view = client->wait_job(solo->job_id, 2);
  if (!view || view->state != svc::JobState::kCompleted) return result;
  const auto verify = client->verify(solo->job_id);
  if (!verify || !verify->found) return result;
  daemon->stop();

  result.solo_size = verify->payload_size;
  result.solo_fnv = verify->payload_fnv1a;
  result.ok = result.contended_size == result.solo_size &&
              result.contended_fnv == result.solo_fnv;
  return result;
}

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  const int jobs = env_or<int>("FR_DAEMON_JOBS", 6, 1, 64);
  const int bits = env_or<int>("FR_DAEMON_BITS", 12, 1, 20);
  const int workers = env_or<int>("FR_WORKERS", 2, 1, 64);

  std::printf("=== daemon: throughput / admission / preemption gates ===\n");

  // Stages A and D interleave their reps round-robin (serial, concurrent,
  // journaled, repeat) so a time-correlated slowdown — page-cache
  // pressure, a neighbour stealing the core — lands on every stage
  // instead of biasing whichever ran last; each stage keeps its best rep.
  ThroughputRun serial;
  ThroughputRun concurrent;
  ThroughputRun journaled;
  bool serial_ok = false;
  bool concurrent_ok = false;
  bool journaled_ok = false;
  for (int rep = 0; rep < 3; ++rep) {
    serial_ok = keep_best(100 + rep, 1, jobs, bits, &serial, serial_ok);
    concurrent_ok =
        keep_best(200 + rep, workers, jobs, bits, &concurrent, concurrent_ok);
    journaled_ok = keep_best(300 + rep, workers, jobs, bits, &journaled,
                             journaled_ok, /*journaled=*/true);
  }
  const double ratio =
      serial.pps() > 0.0 ? concurrent.pps() / serial.pps() : 0.0;
  const bool gate_throughput = serial_ok && concurrent_ok && ratio >= 0.85;
  std::printf(
      "throughput: %d jobs of 2^%d prefixes\n"
      "  serial     workers=1  wall=%.3fs  probes=%llu  pps=%.0f\n"
      "  concurrent workers=%d  wall=%.3fs  probes=%llu  pps=%.0f\n"
      "  concurrent/serial = %.2f (gate >= 0.85): %s\n",
      jobs, bits, serial.wall_seconds,
      static_cast<unsigned long long>(serial.probes), serial.pps(), workers,
      concurrent.wall_seconds,
      static_cast<unsigned long long>(concurrent.probes), concurrent.pps(),
      ratio, gate_throughput ? "PASS" : "FAIL");

  // D. Journaling overhead — the same concurrent workload with the
  // write-ahead journal on (durability none, crash points disarmed): the
  // crash-safety plumbing must cost little when it is not being exercised.
  const double journaled_ratio =
      serial.pps() > 0.0 ? journaled.pps() / serial.pps() : 0.0;
  const bool gate_journaled = journaled_ok && journaled_ratio >= 0.80;
  std::printf(
      "  journaled  workers=%d  wall=%.3fs  probes=%llu  pps=%.0f\n"
      "  journaled/serial = %.2f (gate >= 0.80): %s\n",
      workers, journaled.wall_seconds,
      static_cast<unsigned long long>(journaled.probes), journaled.pps(),
      journaled_ratio, gate_journaled ? "PASS" : "FAIL");

  const AdmissionResult admission = run_admission(10);
  std::printf(
      "admission: bad_spec='%s' over_budget='%s' queue_full='%s': %s\n",
      admission.bad_spec_reason.c_str(),
      admission.over_budget_reason.c_str(),
      admission.queue_full_reason.c_str(), admission.ok ? "PASS" : "FAIL");

  const PreemptionResult preemption = run_preemption(20);
  std::printf(
      "preemption: attempts=%d slices=%llu contended=(%llu, 0x%016llx) "
      "solo=(%llu, 0x%016llx): %s\n",
      preemption.attempts,
      static_cast<unsigned long long>(preemption.slices),
      static_cast<unsigned long long>(preemption.contended_size),
      static_cast<unsigned long long>(preemption.contended_fnv),
      static_cast<unsigned long long>(preemption.solo_size),
      static_cast<unsigned long long>(preemption.solo_fnv),
      preemption.ok ? "PASS" : "FAIL");

  const char* path = "BENCH_daemon.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"daemon\",\n"
      "  \"jobs\": %d,\n"
      "  \"prefix_bits\": %d,\n"
      "  \"serial\": {\"workers\": 1, \"wall_seconds\": %.4f, "
      "\"probes\": %llu, \"pps\": %.1f},\n"
      "  \"concurrent\": {\"workers\": %d, \"wall_seconds\": %.4f, "
      "\"probes\": %llu, \"pps\": %.1f},\n"
      "  \"concurrent_over_serial\": %.4f,\n"
      "  \"journaled\": {\"workers\": %d, \"wall_seconds\": %.4f, "
      "\"probes\": %llu, \"pps\": %.1f},\n"
      "  \"journaled_over_serial\": %.4f,\n"
      "  \"admission\": {\"bad_spec\": \"%s\", \"over_budget\": \"%s\", "
      "\"queue_full\": \"%s\"},\n"
      "  \"preemption\": {\"attempts\": %d, \"slices\": %llu, "
      "\"contended_size\": %llu, \"contended_fnv1a\": %llu, "
      "\"solo_size\": %llu, \"solo_fnv1a\": %llu},\n"
      "  \"gates\": {\"throughput\": %s, \"journaled\": %s, "
      "\"admission\": %s, \"preemption\": %s}\n"
      "}\n",
      jobs, bits, serial.wall_seconds,
      static_cast<unsigned long long>(serial.probes), serial.pps(), workers,
      concurrent.wall_seconds,
      static_cast<unsigned long long>(concurrent.probes), concurrent.pps(),
      ratio, workers, journaled.wall_seconds,
      static_cast<unsigned long long>(journaled.probes), journaled.pps(),
      journaled_ratio, admission.bad_spec_reason.c_str(),
      admission.over_budget_reason.c_str(),
      admission.queue_full_reason.c_str(), preemption.attempts,
      static_cast<unsigned long long>(preemption.slices),
      static_cast<unsigned long long>(preemption.contended_size),
      static_cast<unsigned long long>(preemption.contended_fnv),
      static_cast<unsigned long long>(preemption.solo_size),
      static_cast<unsigned long long>(preemption.solo_fnv),
      gate_throughput ? "true" : "false", gate_journaled ? "true" : "false",
      admission.ok ? "true" : "false", preemption.ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);

  return (gate_throughput && gate_journaled && admission.ok && preemption.ok)
             ? 0
             : 1;
}
