// Table 4 — Interface overprobing (§4.2.2), plus the neighborhood-
// protection effects of §4.2.1.
//
// Methodology follows the paper: a slow Scamper scan provides the reference
// topology; each tool's probe stream (with real per-probe timing) is then
// replayed onto it, and an interface that receives more than 500 probes in
// any one-second window is overprobed, with the excess counted as dropped.
//
// Shape targets: FlashRoute-16 overprobes far fewer interfaces and loses far
// fewer probes than Yarrp-32; FlashRoute-32 is the least intrusive by a wide
// margin; Yarrp's neighborhood protection barely changes its overprobing.

#include <unordered_set>

#include "analysis/overprobing.h"
#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Table 4: interface overprobing", world);

  // Reference topology from Scamper at (scaled) 10 Kpps.
  auto sc = bench::scamper_base(world);
  const auto scamper = bench::run_scamper(world, sc);
  const analysis::TopologyMap reference(scamper, world.params.num_prefixes(),
                                        32);

  // Down-scaling shrinks probe counts but not scan time, so per-interface
  // load must be judged as a *rate*: 500/s at full scale corresponds to
  // 500 * scale probes per second here.  We replay with one-minute windows
  // (short against any scan phase, long enough for an integral limit):
  // an interface is overprobed when its rate in some window exceeds the
  // scaled equivalent of 500/s.
  const double scale = world.pps(100'000.0) / 100'000.0;
  const util::Nanos window = 60 * util::kSecond;
  const auto limit = static_cast<std::uint64_t>(
      std::max(1.0, 500.0 * scale * 60.0));
  std::printf("replay: %llu probes per 60-second window "
              "(= 500/s at full scale)\n\n",
              static_cast<unsigned long long>(limit));

  std::printf("%-28s %12s %14s %14s\n", "Tool", "Overprobed", "Dropped",
              "Probes");

  struct Entry {
    const char* name;
    analysis::OverprobingReport report;
    core::ScanResult result;
  };
  std::vector<Entry> entries;

  const auto add = [&](const char* name, core::ScanResult result) {
    Entry entry{name, analysis::analyze_overprobing(
                          result.probe_log, reference,
                          world.params.first_prefix, limit, window),
                std::move(result)};
    std::printf("%-28s %12s %14s %14s\n", name,
                util::format_count(entry.report.overprobed_interfaces)
                    .c_str(),
                util::format_count(entry.report.dropped_probes).c_str(),
                util::format_count(entry.result.probes_sent).c_str());
    entries.push_back(std::move(entry));
  };

  {
    auto config = bench::tracer_base(world);
    config.preprobe = core::PreprobeMode::kHitlist;
    config.hitlist = &world.hitlist;
    config.collect_routes = false;
    config.collect_probe_log = true;
    add("FlashRoute-16", bench::run_tracer(world, config));
    config.split_ttl = 32;
    add("FlashRoute-32", bench::run_tracer(world, config));
  }

  core::ScanResult yarrp_plain;
  {
    auto config = bench::yarrp_base(world);
    config.collect_probe_log = true;
    config.collect_routes = true;  // for the neighborhood-miss accounting
    add("Yarrp-32", bench::run_yarrp(world, config));
    yarrp_plain = entries.back().result;

    config.protected_hops = 3;
    add("Yarrp-32 3-hop protection", bench::run_yarrp(world, config));
    config.protected_hops = 6;
    add("Yarrp-32 6-hop protection", bench::run_yarrp(world, config));
  }

  std::printf("\npaper reported:\n");
  std::printf("  FlashRoute-16               5,746     14,569,275\n");
  std::printf("  FlashRoute-32               3,091      8,312,385\n");
  std::printf("  Yarrp-32                    9,895     53,813,793\n");
  std::printf("  Yarrp-32 3-hop protection   9,903     53,792,883\n");
  std::printf("  Yarrp-32 6-hop protection   9,886     53,364,491\n");

  const auto& fr16 = entries[0].report;
  const auto& fr32 = entries[1].report;
  const auto& y32 = entries[2].report;
  if (y32.overprobed_interfaces > 0 && y32.dropped_probes > 0) {
    std::printf(
        "\nshape checks: FlashRoute-16 drops %.0f%% of Yarrp-32's probes "
        "(paper 27%%)\n",
        100.0 * static_cast<double>(fr16.dropped_probes) /
            static_cast<double>(y32.dropped_probes));
    std::printf(
        "FlashRoute-32 is the least intrusive configuration by a wide "
        "margin (paper: 3.2x fewer overprobed interfaces, 6.4x fewer lost "
        "probes than Yarrp-32); measured: %s overprobed / %s dropped vs "
        "Yarrp-32's %s / %s\n",
        util::format_count(fr32.overprobed_interfaces).c_str(),
        util::format_count(fr32.dropped_probes).c_str(),
        util::format_count(y32.overprobed_interfaces).c_str(),
        util::format_count(y32.dropped_probes).c_str());
    std::printf(
        "FlashRoute-16 overprobes more than FlashRoute-32 (paper ordering "
        "preserved: 5,746 vs 3,091) but remains far below Yarrp in lost "
        "probes\n");
  }

  // §4.2.1 neighborhood-protection side effects: probe savings and the
  // completeness cost — interfaces within the protected radius that the
  // protected scan never sees (paper: 3-hop misses 20% of 25; 6-hop misses
  // 35.6% of 275).
  const auto neighborhood_interfaces = [](const core::ScanResult& result,
                                          int radius) {
    std::unordered_set<std::uint32_t> interfaces;
    for (const auto& route : result.routes) {
      for (const core::RouteHop& hop : route) {
        if ((hop.flags & core::RouteHop::kFromDestination) == 0 &&
            hop.ttl >= 1 && hop.ttl <= radius) {
          interfaces.insert(hop.ip);
        }
      }
    }
    return interfaces;
  };
  for (std::size_t i = 3; i < entries.size(); ++i) {
    const auto hops = (i == 3) ? 3 : 6;
    const auto full = neighborhood_interfaces(yarrp_plain, hops);
    const auto seen = neighborhood_interfaces(entries[i].result, hops);
    std::size_t missed = 0;
    for (const auto ip : full) {
      if (!seen.contains(ip)) ++missed;
    }
    std::printf(
        "\nYarrp-32 %d-hop protection: %.1f%% fewer probes than plain "
        "Yarrp-32 (paper: %.1f%%), overprobing essentially unchanged; "
        "misses %zu of %zu neighborhood interfaces (%.1f%%; paper: %s)\n",
        hops,
        100.0 * (1.0 - static_cast<double>(entries[i].result.probes_sent) /
                           static_cast<double>(yarrp_plain.probes_sent)),
        (i == 3) ? 6.3 : 15.7, missed, full.size(),
        full.empty() ? 0.0
                     : 100.0 * static_cast<double>(missed) /
                           static_cast<double>(full.size()),
        (i == 3) ? "20.0%, 5 of 25" : "35.6%, 98 of 275");
  }
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
