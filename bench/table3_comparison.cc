// Table 3 — FlashRoute vs Yarrp vs Scamper on a full scan (§4.2.1).
//
// Six configurations, all probing the same per-/24 targets:
//   FlashRoute-16 / FlashRoute-32  (hitlist preprobing, gap 5, removal on)
//   Yarrp-16 (fill mode, TCP-ACK)  / Yarrp-32 (TCP-ACK)
//   Scamper-16                      (Paris-UDP, 10 Kpps, one probe per hop)
//   Yarrp-32-UDP                    (simulated with a restricted FlashRoute,
//                                    exactly as the paper does)
//
// Shape targets: FlashRoute-16 finishes fastest with the fewest probes
// (~3.5x faster than Yarrp-32); Yarrp-16 discovers far fewer interfaces;
// Scamper finds slightly more interfaces than FlashRoute-16 at ~1.35x the
// probes and >10x the time; Yarrp-TCP finds fewer interfaces than UDP.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Table 3: tool comparison on a full scan", world);
  bench::print_scan_header();

  // FlashRoute-16 and FlashRoute-32.
  core::ScanResult fr16, fr32;
  {
    auto config = bench::tracer_base(world);
    config.split_ttl = 16;
    config.preprobe = core::PreprobeMode::kHitlist;
    config.hitlist = &world.hitlist;
    config.collect_routes = false;
    fr16 = bench::run_tracer(world, config);
    bench::print_scan_row("FlashRoute-16", fr16);
    config.split_ttl = 32;
    fr32 = bench::run_tracer(world, config);
    bench::print_scan_row("FlashRoute-32", fr32);
  }

  // Yarrp-16 (fill mode) and Yarrp-32, Paris-TCP-ACK.
  core::ScanResult y16, y32;
  {
    auto config = bench::yarrp_base(world);
    config.collect_routes = false;
    config.exhaustive_ttl = 16;
    config.fill_mode = true;
    config.fill_max_ttl = 32;
    y16 = bench::run_yarrp(world, config);
    bench::print_scan_row("Yarrp-16", y16);
    config.exhaustive_ttl = 32;
    config.fill_mode = false;
    y32 = bench::run_yarrp(world, config);
    bench::print_scan_row("Yarrp-32", y32);
  }

  // Scamper-16.
  core::ScanResult scamper;
  {
    auto config = bench::scamper_base(world);
    config.collect_routes = false;
    scamper = bench::run_scamper(world, config);
    bench::print_scan_row("Scamper-16", scamper);
  }

  // Yarrp-32-UDP, simulated with FlashRoute as in the paper: no preprobing,
  // no forward probing, no redundancy removal, split 32 — one UDP probe to
  // every hop 1..32 of every destination.
  core::ScanResult yudp;
  {
    auto config = bench::tracer_base(world);
    config.split_ttl = 32;
    config.preprobe = core::PreprobeMode::kNone;
    config.forward_probing = false;
    config.redundancy_removal = false;
    config.collect_routes = false;
    yudp = bench::run_tracer(world, config);
    bench::print_scan_row("Yarrp-32-UDP (simulation)", yudp);
  }

  std::printf("\npaper reported:\n");
  std::printf("  FlashRoute-16              812,403   97,807,092     17:16\n");
  std::printf("  FlashRoute-32              807,588  159,185,459     27:31\n");
  std::printf("  Yarrp-16                   393,433  177,851,221     30:14\n");
  std::printf("  Yarrp-32                   801,455  355,702,000   1:00:15\n");
  std::printf("  Scamper-16                 819,149  131,833,846   3:43:27\n");
  std::printf("  Yarrp-32-UDP (simulation)  829,387  355,701,952     59:58\n");

  const auto frac = [](double a, double b) { return a / b; };
  std::printf("\nshape checks (measured vs paper):\n");
  std::printf("  Yarrp-32 / FlashRoute-16 scan time: %.2fx (paper 3.49x)\n",
              frac(static_cast<double>(y32.scan_time),
                   static_cast<double>(fr16.scan_time)));
  std::printf("  Yarrp-32 / FlashRoute-16 probes:    %.2fx (paper 3.64x)\n",
              frac(static_cast<double>(y32.probes_sent),
                   static_cast<double>(fr16.probes_sent)));
  std::printf("  Scamper / FlashRoute-16 probes:     %.2fx (paper 1.35x)\n",
              frac(static_cast<double>(scamper.probes_sent),
                   static_cast<double>(fr16.probes_sent)));
  std::printf("  Scamper / FlashRoute-16 time:       %.1fx (paper 12.9x)\n",
              frac(static_cast<double>(scamper.scan_time),
                   static_cast<double>(fr16.scan_time)));
  std::printf(
      "  interface deficit of FlashRoute-16 vs Yarrp-32-UDP: %.1f%% "
      "(paper 2.0%%)\n",
      100.0 * (1.0 - frac(static_cast<double>(fr16.interfaces.size()),
                          static_cast<double>(yudp.interfaces.size()))));
  std::printf(
      "  interface deficit of Yarrp-32 (TCP) vs Yarrp-32-UDP: %.1f%% "
      "(paper 3.4%%)\n",
      100.0 * (1.0 - frac(static_cast<double>(y32.interfaces.size()),
                          static_cast<double>(yudp.interfaces.size()))));
  std::printf(
      "  Yarrp-16 finds %.0f%% of Yarrp-32's interfaces (paper 49%%)\n",
      100.0 * frac(static_cast<double>(y16.interfaces.size()),
                   static_cast<double>(y32.interfaces.size())));
  std::printf(
      "  Scamper finds %+.1f%% interfaces vs FlashRoute-16 (paper +0.8%%)\n",
      100.0 * (frac(static_cast<double>(scamper.interfaces.size()),
                    static_cast<double>(fr16.interfaces.size())) -
               1.0));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
