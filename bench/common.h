// Shared plumbing for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper against
// the simulated Internet and prints the paper's reported values next to the
// measured ones.  Absolute numbers differ — the default universe is 2^14
// /24 blocks (one /8, 1/256 of IPv4) and the probing rate is scaled accordingly
// (see sim::scaled_probe_rate) — but the *shape* (orderings, ratios,
// crossovers) is the reproduction target, as recorded in EXPERIMENTS.md.
//
// Environment overrides:
//   FR_PREFIX_BITS  universe size exponent (default 16 = one /8)
//   FR_SEED         topology seed (default 1)

#pragma once

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/scamper.h"
#include "baselines/yarrp.h"
#include "core/targets.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

namespace flashroute::bench {

/// Parses the FR_* environment override `name` as a number of type T,
/// validating both the syntax (the whole string must parse) and the
/// inclusive [lo, hi] range.  A malformed or out-of-range value terminates
/// the bench with a diagnostic and exit code 2 — a perf gate run with a
/// silently mis-parsed knob (the old atoi behaviour: "FR_WORKERS=four" → 0)
/// would otherwise measure the wrong configuration and pass or fail for the
/// wrong reason.  Unset / empty returns `fallback` unchecked.
template <typename T>
inline T env_or(const char* name, T fallback, T lo, T hi) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bench: %s='%s' is not a number\n", name, value);
    std::exit(2);
  }
  if (parsed < static_cast<double>(lo) || parsed > static_cast<double>(hi)) {
    std::fprintf(stderr, "bench: %s=%s out of range [%g, %g]\n", name, value,
                 static_cast<double>(lo), static_cast<double>(hi));
    std::exit(2);
  }
  return static_cast<T>(parsed);
}

inline int env_int(const char* name, int fallback) {
  return env_or<int>(name, fallback, std::numeric_limits<int>::min(),
                     std::numeric_limits<int>::max());
}

/// Peak resident set size (VmHWM) of this process in kB, parsed from
/// /proc/self/status; 0 when unavailable (non-Linux).  The kernel counter is
/// monotone, so benches must measure small configurations before large ones.
inline std::uint64_t peak_rss_kb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb;
}

/// The simulated world shared by one bench run.
struct World {
  sim::SimParams params;
  std::unique_ptr<sim::Topology> topology;
  std::vector<std::uint32_t> hitlist;

  double pps(double full_scale) const {
    return sim::scaled_probe_rate(full_scale, params.prefix_bits);
  }
};

inline World make_world(int default_bits = 16) {
  World world;
  world.params.prefix_bits = env_or<int>("FR_PREFIX_BITS", default_bits, 1, 24);
  world.params.seed =
      env_or<std::uint64_t>("FR_SEED", 1, 0, 1'000'000'000'000ULL);
  world.topology = std::make_unique<sim::Topology>(world.params);
  world.hitlist = world.topology->generate_hitlist();
  return world;
}

inline core::TracerConfig tracer_base(const World& world) {
  core::TracerConfig config;
  config.first_prefix = world.params.first_prefix;
  config.prefix_bits = world.params.prefix_bits;
  config.vantage = net::Ipv4Address(world.params.vantage_address);
  config.probes_per_second = world.pps(100'000.0);
  return config;
}

inline baselines::YarrpConfig yarrp_base(const World& world) {
  baselines::YarrpConfig config;
  config.first_prefix = world.params.first_prefix;
  config.prefix_bits = world.params.prefix_bits;
  config.vantage = net::Ipv4Address(world.params.vantage_address);
  config.probes_per_second = world.pps(100'000.0);
  return config;
}

inline baselines::ScamperConfig scamper_base(const World& world) {
  baselines::ScamperConfig config;
  config.first_prefix = world.params.first_prefix;
  config.prefix_bits = world.params.prefix_bits;
  config.vantage = net::Ipv4Address(world.params.vantage_address);
  config.probes_per_second = world.pps(10'000.0);
  return config;
}

/// Runs a FlashRoute configuration against a fresh network state (so rate
/// limiters and counters never leak between scans of one bench).
inline core::ScanResult run_tracer(const World& world,
                                   const core::TracerConfig& config) {
  sim::SimNetwork network(*world.topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

inline core::ScanResult run_yarrp(const World& world,
                                  const baselines::YarrpConfig& config) {
  sim::SimNetwork network(*world.topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Yarrp yarrp(config, runtime);
  return yarrp.run();
}

inline core::ScanResult run_scamper(const World& world,
                                    const baselines::ScamperConfig& config) {
  sim::SimNetwork network(*world.topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Scamper scamper(config, runtime);
  return scamper.run();
}

inline void print_banner(const char* experiment, const World& world) {
  std::printf("=== %s ===\n", experiment);
  std::printf(
      "universe: %u /24 blocks (scale 1/%u of IPv4), seed %llu, "
      "probing rate scaled accordingly\n\n",
      world.params.num_prefixes(),
      (1u << 24) / world.params.num_prefixes(),
      static_cast<unsigned long long>(world.params.seed));
}

/// One row in a Tables-1/2/3-shaped report.
inline void print_scan_row(const char* name, const core::ScanResult& result) {
  std::printf("%-28s %10s %14s %12s\n", name,
              util::format_count(
                  static_cast<std::uint64_t>(result.interfaces.size()))
                  .c_str(),
              util::format_count(result.probes_sent).c_str(),
              util::format_duration(result.scan_time).c_str());
}

inline void print_scan_header() {
  std::printf("%-28s %10s %14s %12s\n", "Configuration", "Interfaces",
              "Probes", "Scan time");
  std::printf("%-28s %10s %14s %12s\n", "----", "----", "----", "----");
}

}  // namespace flashroute::bench
