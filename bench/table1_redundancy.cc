// Table 1 — Impact of redundancy elimination during backward probing.
//
// Four full scans: split-TTL {32, 16} x redundancy removal {on, off}, with
// preprobing (random targets, proximity span 5) and forward probing
// (gap limit 5) held fixed, exactly as §4.1.1 configures them.
//
// Paper's result: removal cuts probes and scan time by more than half while
// losing only 2.5% (split 32) / 0.3% (split 16) of interfaces.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Table 1: redundancy elimination in backward probing",
                      world);

  struct Row {
    const char* name;
    std::uint8_t split;
    bool removal;
    const char* paper;
  };
  const Row rows[] = {
      {"split 32 / removal on", 32, true,
       "805,472 ifaces  164,882,469 probes  27:54"},
      {"split 32 / removal off", 32, false,
       "826,701 ifaces  338,063,800 probes  56:36"},
      {"split 16 / removal on", 16, true,
       "814,801 ifaces  101,314,451 probes  17:16"},
      {"split 16 / removal off", 16, false,
       "817,509 ifaces  257,983,117 probes  43:33"},
  };

  bench::print_scan_header();
  core::ScanResult results[4];
  int i = 0;
  for (const Row& row : rows) {
    auto config = bench::tracer_base(world);
    config.split_ttl = row.split;
    config.preprobe = core::PreprobeMode::kRandom;
    config.redundancy_removal = row.removal;
    config.collect_routes = false;
    results[i] = bench::run_tracer(world, config);
    bench::print_scan_row(row.name, results[i]);
    ++i;
  }

  std::printf("\npaper reported:\n");
  for (const Row& row : rows) {
    std::printf("  %-24s %s\n", row.name, row.paper);
  }

  const auto ratio = [](const core::ScanResult& off,
                        const core::ScanResult& on) {
    return static_cast<double>(off.probes_sent) /
           static_cast<double>(on.probes_sent);
  };
  std::printf(
      "\nshape check: probe reduction by removal — split 32: %.2fx "
      "(paper 2.05x), split 16: %.2fx (paper 2.55x)\n",
      ratio(results[1], results[0]), ratio(results[3], results[2]));
  std::printf(
      "interface loss from removal — split 32: %.1f%% (paper 2.5%%), "
      "split 16: %.1f%% (paper 0.3%%)\n",
      100.0 * (1.0 - static_cast<double>(results[0].interfaces.size()) /
                         static_cast<double>(results[1].interfaces.size())),
      100.0 * (1.0 - static_cast<double>(results[2].interfaces.size()) /
                         static_cast<double>(results[3].interfaces.size())));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
