// Ablation: the proximity-span parameter of distance prediction.
//
// §5.4: "our current choice of the default value for proximity span is
// rather arbitrary ... We plan additional experiments to find a
// substantiated recommended value, which can potentially increase the
// coverage of distance prediction and hence further improve the tool
// efficiency."  This bench runs those experiments: spans 0..16, reporting
// prediction coverage, prediction accuracy against the traceroute-style
// triggering TTLs, and the end-to-end probe cost of a hitlist-preprobed
// FlashRoute-16 scan using that span.

#include "analysis/distance_eval.h"
#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner(
      "Ablation: proximity-span sweep (paper's future work, Sec 5.4)",
      world);

  // Reference triggering TTLs from one exhaustive sweep.
  auto sweep = bench::tracer_base(world);
  sweep.preprobe = core::PreprobeMode::kNone;
  sweep.split_ttl = 32;
  sweep.forward_probing = false;
  sweep.redundancy_removal = false;
  sweep.collect_routes = false;
  const auto reference = bench::run_tracer(world, sweep);

  std::printf("%6s %10s %12s %12s %14s %12s\n", "span", "coverage",
              "pred exact", "pred +/-1", "scan probes", "scan time");
  for (const int span : {0, 1, 2, 3, 5, 8, 12, 16}) {
    // Prediction quality at this span.
    auto preprobe = bench::tracer_base(world);
    preprobe.preprobe = core::PreprobeMode::kHitlist;
    preprobe.hitlist = &world.hitlist;
    preprobe.proximity_span = static_cast<std::uint8_t>(span);
    preprobe.preprobe_only = true;
    preprobe.collect_routes = false;
    const auto measured = bench::run_tracer(world, preprobe);
    const double coverage =
        static_cast<double>(measured.distances_measured +
                            measured.distances_predicted) /
        world.params.num_prefixes();

    const auto eval = analysis::evaluate_prediction(
        measured.measured_distance, reference.trigger_ttl, std::max(span, 1));
    const double exact = eval.difference.pdf(0);
    const double within1 = eval.difference.pdf(-1) + eval.difference.pdf(0) +
                           eval.difference.pdf(1);

    // End-to-end cost of a full scan using this span.
    auto scan = preprobe;
    scan.preprobe_only = false;
    const auto result = bench::run_tracer(world, scan);

    std::printf("%6d %9.1f%% %11.1f%% %11.1f%% %14s %12s\n", span,
                100.0 * coverage, 100.0 * exact, 100.0 * within1,
                util::format_count(result.probes_sent).c_str(),
                util::format_duration(result.scan_time).c_str());
  }

  std::printf(
      "\ninterpretation: prediction coverage rises steadily with the span "
      "while per-prediction hint quality stays roughly flat (note it is "
      "measured against *random-target* trigger TTLs while the hitlist "
      "measures gateway appliances — the Sec 5.1 bias makes hints ~1 hop "
      "short, which is why 'exact' is low but '+/-1' is high); the "
      "end-to-end probe cost bottoms out around span 5-8, supporting the "
      "paper's default of 5.\n");
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
