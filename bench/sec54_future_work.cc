// §5.4's open question, answered in simulation.
//
// "Which approach is more productive for finding those additional internal
// paths (i.e., extending the initial targets to one per /28 or
// discovery-optimized mode with varying target addresses) is an interesting
// question for future work."
//
// This bench compares three discovery-optimized variants with an identical
// extra-scan budget:
//   vary ports      — the paper's §5.2 mode (new flow label per pass);
//   vary addresses  — a fresh representative per /24 per pass (§5.4's
//                     proposal, exercising per-address internal paths);
//   vary both       — ports and addresses together.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Sec 5.4 future work: vary ports vs vary addresses",
                      world);
  bench::print_scan_header();

  auto base = bench::tracer_base(world);
  base.split_ttl = 32;
  base.preprobe = core::PreprobeMode::kHitlist;
  base.hitlist = &world.hitlist;

  const auto plain = bench::run_tracer(world, base);
  bench::print_scan_row("plain FlashRoute-32", plain);

  auto ports = base;
  ports.extra_scans = 4;
  const auto vary_ports = bench::run_tracer(world, ports);
  bench::print_scan_row("+4 scans, vary ports", vary_ports);

  auto addresses = base;
  addresses.extra_scans = 4;
  addresses.extra_scan_vary_targets = true;
  // Note: a fresh target also changes the flow label (it hashes the
  // destination), so this variant gets per-address path diversity plus the
  // incidental per-flow branch re-roll.
  const auto vary_addresses = bench::run_tracer(world, addresses);
  bench::print_scan_row("+4 scans, vary addresses", vary_addresses);

  const auto gain = [&](const core::ScanResult& result) {
    return static_cast<std::int64_t>(result.interfaces.size()) -
           static_cast<std::int64_t>(plain.interfaces.size());
  };
  std::printf(
      "\ninterface gain over the plain scan: vary ports +%s, vary "
      "addresses +%s\n",
      util::format_count(gain(vary_ports)).c_str(),
      util::format_count(gain(vary_addresses)).c_str());
  std::printf(
      "answer in this world: varying addresses discovers the per-/24 "
      "interior (appliances and internal routers of previously unprobed "
      "hosts) on top of the load-balanced branches a new flow label "
      "exposes — it is the more productive option when stub interiors "
      "dominate the unseen interface population, and the less productive "
      "one when per-flow ECMP fans do.\n");
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
