// Fig 3 — Accuracy of one-probe hop-distance measurement (§3.3.1-§3.3.2).
//
// Phase 1: FlashRoute's preprobe — a single TTL-32 probe per target; the
// distance is derived from the residual TTL quoted in the port-unreachable.
// Phase 2: the traditional sweep — probes at every TTL 1..32; the distance
// is the first ("triggering") TTL that elicits the port-unreachable.
// The sweep runs later in virtual time, so routing dynamics (and the
// TTL-rewriting middleboxes at some stub entrances) produce the same
// discrepancy structure the paper reports:
//   ~89.7% exact, +7% within one hop, ~3.3% off by more than one.

#include "analysis/distance_eval.h"
#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Fig 3: one-probe distance vs triggering TTL", world);

  // Phase 1: preprobe only (random targets, the main-scan representatives).
  auto preprobe = bench::tracer_base(world);
  preprobe.preprobe = core::PreprobeMode::kRandom;
  preprobe.preprobe_only = true;
  preprobe.collect_routes = false;
  const auto measured_scan = bench::run_tracer(world, preprobe);

  // Phase 2: exhaustive TTL sweep over the same targets.
  auto sweep = bench::tracer_base(world);
  sweep.preprobe = core::PreprobeMode::kNone;
  sweep.split_ttl = 32;
  sweep.forward_probing = false;
  sweep.redundancy_removal = false;
  sweep.collect_routes = false;
  const auto sweep_scan = bench::run_tracer(world, sweep);

  const auto histogram = analysis::distance_difference(
      measured_scan.measured_distance, sweep_scan.trigger_ttl);

  std::printf("destinations with both measurements: %s\n\n",
              util::format_count(histogram.total()).c_str());
  std::printf("%8s %10s %10s\n", "diff", "PDF", "CDF");
  for (int diff = -8; diff <= 8; ++diff) {
    if (histogram.count(diff) == 0 && (diff < -3 || diff > 3)) continue;
    std::printf("%8d %9.2f%% %9.2f%%\n", diff, 100.0 * histogram.pdf(diff),
                100.0 * histogram.cdf(diff));
  }

  const double exact = histogram.pdf(0);
  const double within1 =
      histogram.pdf(-1) + histogram.pdf(0) + histogram.pdf(1);
  std::printf("\nexact matches:   %5.1f%%   (paper: 89.7%%)\n", 100 * exact);
  std::printf("within one hop:  %5.1f%%   (paper: 96.7%%)\n", 100 * within1);
  std::printf("off by more:     %5.1f%%   (paper:  3.3%%)\n",
              100 * (1.0 - within1));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
