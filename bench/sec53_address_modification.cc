// §5.3 — In-flight destination address modification.
//
// FlashRoute's source port carries the checksum of the intended destination;
// a response whose quoted destination fails that check reveals a middlebox
// that rewrote the address en route, and is dropped.  The paper observes
// mismatch rates between 0.007% and 0.054% of probes across scans.

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Sec 5.3: in-flight address modification", world);

  struct Row {
    const char* name;
    std::uint8_t split;
    core::PreprobeMode mode;
  };
  const Row rows[] = {
      {"FlashRoute-16 hitlist", 16, core::PreprobeMode::kHitlist},
      {"FlashRoute-16 random", 16, core::PreprobeMode::kRandom},
      {"FlashRoute-32 hitlist", 32, core::PreprobeMode::kHitlist},
      {"FlashRoute-32 random", 32, core::PreprobeMode::kRandom},
      {"Exhaustive UDP sweep", 32, core::PreprobeMode::kNone},
  };

  std::printf("%-24s %14s %12s %12s\n", "Scan", "Probes", "Mismatches",
              "Rate");
  double min_rate = 1.0, max_rate = 0.0;
  for (const Row& row : rows) {
    auto config = bench::tracer_base(world);
    config.split_ttl = row.split;
    config.preprobe = row.mode;
    config.hitlist = &world.hitlist;
    config.collect_routes = false;
    if (row.mode == core::PreprobeMode::kNone) {
      config.forward_probing = false;
      config.redundancy_removal = false;
    }
    const auto result = bench::run_tracer(world, config);
    const double rate = result.probes_sent
                            ? static_cast<double>(result.mismatches) /
                                  static_cast<double>(result.probes_sent)
                            : 0.0;
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
    std::printf("%-24s %14s %12s %11.4f%%\n", row.name,
                util::format_count(result.probes_sent).c_str(),
                util::format_count(result.mismatches).c_str(), 100 * rate);
  }

  std::printf(
      "\nmeasured mismatch rates span %.4f%% .. %.4f%% of probes "
      "(paper: 0.007%% .. 0.054%%)\n",
      100 * min_rate, 100 * max_rate);
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
