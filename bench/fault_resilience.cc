// Fault-resilience benchmark: accuracy vs network loss (DESIGN.md §9).
//
// Sweeps a symmetric loss rate (probes and responses dropped with equal
// probability) over the same simulated world and measures how much of the
// zero-loss topology each tool still discovers:
//
//   flashroute        FlashRoute-16, no retransmission — the paper's tool,
//                     which trades per-probe reliability for speed;
//   flashroute_retx2  the same scan with a 2-probe retransmission budget
//                     per /24 (this repo's resilience layer);
//   yarrp             Yarrp-32, stateless by design: a lost probe is
//                     indistinguishable from a silent hop, nothing retries;
//   scamper_retry1    Scamper-16 with one retry per hop — the classic
//                     stateful prober's answer to loss, paid in probes.
//
// Shape targets: every tool's discovery ratio (interfaces at loss L over
// its own interfaces at zero loss) decays as L grows; FlashRoute's decay is
// monotone; retransmission flattens the curve; Scamper's retries keep its
// probe count within its (1 + retries) budget of the zero-loss count.
//
// Environment overrides:
//   FR_PREFIX_BITS  universe size exponent (default 12)
//   FR_SEED         topology seed (default 1)

#include <array>
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace flashroute {
namespace {

constexpr std::array<double, 5> kLossSweep = {0.0, 0.05, 0.1, 0.2, 0.4};

struct Point {
  double loss = 0.0;
  std::size_t interfaces = 0;
  std::uint64_t probes = 0;
  std::uint64_t retransmits = 0;
  double ratio = 0.0;  // interfaces / tool's zero-loss interfaces
};

struct Curve {
  const char* name;
  std::vector<Point> points;
};

sim::FaultParams faults_for(double loss) {
  sim::FaultParams faults;
  faults.probe_loss = loss;
  faults.response_loss = loss;
  return faults;
}

core::ScanResult run_tracer_under(const bench::World& world,
                                  const core::TracerConfig& config,
                                  double loss) {
  sim::SimNetwork network(*world.topology, faults_for(loss));
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

core::ScanResult run_yarrp_under(const bench::World& world,
                                 const baselines::YarrpConfig& config,
                                 double loss) {
  sim::SimNetwork network(*world.topology, faults_for(loss));
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Yarrp yarrp(config, runtime);
  return yarrp.run();
}

core::ScanResult run_scamper_under(const bench::World& world,
                                   const baselines::ScamperConfig& config,
                                   double loss) {
  sim::SimNetwork network(*world.topology, faults_for(loss));
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Scamper scamper(config, runtime);
  return scamper.run();
}

void finish_curve(Curve& curve) {
  const double base = static_cast<double>(curve.points.front().interfaces);
  for (Point& point : curve.points) {
    point.ratio = base > 0 ? static_cast<double>(point.interfaces) / base
                           : 0.0;
  }
  std::printf("  %-18s", curve.name);
  for (const Point& point : curve.points) {
    std::printf("  %.3f", point.ratio);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace flashroute

int main() {
  using namespace flashroute;

  auto world = bench::make_world(/*default_bits=*/12);
  bench::print_banner("Fault resilience: discovery vs loss rate", world);

  Curve flashroute_curve{"flashroute", {}};
  Curve retx_curve{"flashroute_retx2", {}};
  Curve yarrp_curve{"yarrp", {}};
  Curve scamper_curve{"scamper_retry1", {}};

  constexpr int kScamperRetries = 1;
  for (const double loss : kLossSweep) {
    {
      auto config = bench::tracer_base(world);
      config.split_ttl = 16;
      config.preprobe = core::PreprobeMode::kHitlist;
      config.hitlist = &world.hitlist;
      config.collect_routes = false;
      const auto result = run_tracer_under(world, config, loss);
      flashroute_curve.points.push_back(
          {loss, result.interfaces.size(), result.probes_sent,
           result.retransmits, 0.0});

      config.max_retransmits = 2;
      const auto retx = run_tracer_under(world, config, loss);
      retx_curve.points.push_back({loss, retx.interfaces.size(),
                                   retx.probes_sent, retx.retransmits, 0.0});
    }
    {
      auto config = bench::yarrp_base(world);
      config.collect_routes = false;
      config.exhaustive_ttl = 32;
      const auto result = run_yarrp_under(world, config, loss);
      yarrp_curve.points.push_back({loss, result.interfaces.size(),
                                    result.probes_sent, 0, 0.0});
    }
    {
      auto config = bench::scamper_base(world);
      config.collect_routes = false;
      config.max_retries = kScamperRetries;
      const auto result = run_scamper_under(world, config, loss);
      scamper_curve.points.push_back({loss, result.interfaces.size(),
                                      result.probes_sent, result.retransmits,
                                      0.0});
    }
    std::printf("loss %.2f done\n", loss);
  }

  std::printf("\ndiscovery ratio vs own zero-loss baseline "
              "(loss = 0 / .05 / .1 / .2 / .4):\n");
  finish_curve(flashroute_curve);
  finish_curve(retx_curve);
  finish_curve(yarrp_curve);
  finish_curve(scamper_curve);

  // Assertion 1: FlashRoute's accuracy degrades monotonically with loss
  // (within a small tolerance for topology-sampling noise).
  bool monotone = true;
  for (std::size_t i = 1; i < flashroute_curve.points.size(); ++i) {
    if (flashroute_curve.points[i].ratio >
        flashroute_curve.points[i - 1].ratio + 0.02) {
      monotone = false;
    }
  }
  std::printf("\nflashroute ratio monotone non-increasing: %s\n",
              monotone ? "yes" : "NO");

  // Assertion 2: Scamper's retries stay within budget — at any loss its
  // probe count is at most (1 + retries) x its zero-loss count (+10%).
  const double scamper_budget =
      static_cast<double>(scamper_curve.points.front().probes) *
      (1.0 + kScamperRetries) * 1.1;
  bool within_budget = true;
  for (const Point& point : scamper_curve.points) {
    if (static_cast<double>(point.probes) > scamper_budget) {
      within_budget = false;
    }
  }
  std::printf("scamper probes within (1+retries) budget: %s\n",
              within_budget ? "yes" : "NO");

  // Assertion 3: the retransmission budget helps — at the highest loss the
  // resilient scan discovers at least as much as the plain one.
  const bool retx_helps = retx_curve.points.back().ratio + 0.02 >=
                          flashroute_curve.points.back().ratio;
  std::printf("retransmission flattens the curve: %s\n",
              retx_helps ? "yes" : "NO");

  const char* path = "BENCH_fault_resilience.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fault_resilience\",\n"
               "  \"prefix_bits\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"scamper_retries\": %d,\n"
               "  \"tools\": [\n",
               world.params.prefix_bits,
               static_cast<unsigned long long>(world.params.seed),
               kScamperRetries);
  const std::array<const Curve*, 4> curves = {
      &flashroute_curve, &retx_curve, &yarrp_curve, &scamper_curve};
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const Curve& curve = *curves[c];
    std::fprintf(out, "    {\"tool\": \"%s\", \"points\": [\n", curve.name);
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      const Point& point = curve.points[i];
      std::fprintf(out,
                   "      {\"loss\": %.2f, \"interfaces\": %zu, "
                   "\"probes\": %llu, \"retransmits\": %llu, "
                   "\"discovery_ratio\": %.4f}%s\n",
                   point.loss, point.interfaces,
                   static_cast<unsigned long long>(point.probes),
                   static_cast<unsigned long long>(point.retransmits),
                   point.ratio, i + 1 < curve.points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", c + 1 < curves.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"flashroute_monotone\": %s,\n"
               "  \"scamper_within_budget\": %s,\n"
               "  \"retransmit_flattens\": %s\n"
               "}\n",
               monotone ? "true" : "false",
               within_budget ? "true" : "false",
               retx_helps ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return (monotone && within_budget && retx_helps) ? 0 : 1;
}
