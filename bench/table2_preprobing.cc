// Table 2 — Effect of preprobing on FlashRoute performance (§4.1.3).
//
// Six scans: split-TTL {32, 16} x preprobing {hitlist, random, none}.
// All use proximity span 5, gap limit 5, redundancy removal on.
//
// Paper's findings reproduced here:
//  * at split 32, preprobing pays: random preprobing folds into round one
//    (§3.3.5) and saves ~10%; hitlist preprobing measures more distances and
//    saves slightly more;
//  * at split 16, the preprobing overhead roughly cancels the gains —
//    no-preprobing is cheapest;
//  * preprobing coverage: ~4% of random targets measured (~23% with
//    prediction); ~10% of hitlist targets measured (~38% with prediction).

#include "bench/common.h"

namespace flashroute {
namespace {

void run() {
  auto world = bench::make_world();
  bench::print_banner("Table 2: effect of preprobing", world);

  struct Row {
    const char* name;
    std::uint8_t split;
    core::PreprobeMode mode;
    const char* paper;
  };
  const Row rows[] = {
      {"32/hitlist preprobing", 32, core::PreprobeMode::kHitlist,
       "807,588 ifaces  159,185,459 probes  27:31"},
      {"32/random preprobing", 32, core::PreprobeMode::kRandom,
       "805,472 ifaces  164,882,469 probes  27:54"},
      {"32/no preprobing", 32, core::PreprobeMode::kNone,
       "799,562 ifaces  181,757,638 probes  30:48"},
      {"16/hitlist preprobing", 16, core::PreprobeMode::kHitlist,
       "812,403 ifaces   97,807,092 probes  17:16"},
      {"16/random preprobing", 16, core::PreprobeMode::kRandom,
       "814,801 ifaces  101,314,451 probes  17:16"},
      {"16/no preprobing", 16, core::PreprobeMode::kNone,
       "802,524 ifaces   96,687,844 probes  16:39"},
  };

  bench::print_scan_header();
  core::ScanResult results[6];
  int i = 0;
  for (const Row& row : rows) {
    auto config = bench::tracer_base(world);
    config.split_ttl = row.split;
    config.preprobe = row.mode;
    config.hitlist = &world.hitlist;
    config.collect_routes = false;
    results[i] = bench::run_tracer(world, config);
    bench::print_scan_row(row.name, results[i]);
    if (row.mode != core::PreprobeMode::kNone) {
      const auto n = world.params.num_prefixes();
      std::printf(
          "%-28s   measured %.1f%%, +predicted %.1f%% -> coverage %.1f%%\n",
          "",
          100.0 * static_cast<double>(results[i].distances_measured) / n,
          100.0 * static_cast<double>(results[i].distances_predicted) / n,
          100.0 *
              static_cast<double>(results[i].distances_measured +
                                  results[i].distances_predicted) /
              n);
    }
    ++i;
  }

  std::printf("\npaper reported:\n");
  for (const Row& row : rows) {
    std::printf("  %-24s %s\n", row.name, row.paper);
  }
  std::printf(
      "  coverage: random 4.0%% measured / 22.95%% total; hitlist 10.0%% "
      "measured / 38.2%% total\n");

  std::printf(
      "\nshape check (split 32): hitlist saves %.1f%% of probes vs none "
      "(paper 12%%), random saves %.1f%% (paper 10%%)\n",
      100.0 * (1.0 - static_cast<double>(results[0].probes_sent) /
                         static_cast<double>(results[2].probes_sent)),
      100.0 * (1.0 - static_cast<double>(results[1].probes_sent) /
                         static_cast<double>(results[2].probes_sent)));
  std::printf(
      "shape check (split 16): preprobing overhead vs none — hitlist "
      "%+.1f%%, random %+.1f%% (paper +1.1%% / +4.8%%)\n",
      100.0 * (static_cast<double>(results[3].probes_sent) /
                   static_cast<double>(results[5].probes_sent) -
               1.0),
      100.0 * (static_cast<double>(results[4].probes_sent) /
                   static_cast<double>(results[5].probes_sent) -
               1.0));
}

}  // namespace
}  // namespace flashroute

int main() {
  flashroute::run();
  return 0;
}
