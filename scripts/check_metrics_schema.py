#!/usr/bin/env python3
"""Validates a FlashRoute telemetry JSONL stream (DESIGN.md §7, §12).

Usage: check_metrics_schema.py [--require-counters a,b,c] METRICS.jsonl
       check_metrics_schema.py --job-events EVENTS.jsonl

With --require-counters, additionally fails unless every named counter is
present in the summary (used by CI to pin the resilience counters of
DESIGN.md §9 — e.g. scan.retransmits — into the exported stream).

With --job-events, the input is an frd job-event stream (DESIGN.md §12)
instead: "job_event" records closed by one "job_summary".  Checks:
  * seq increases by exactly 1 from 1 (nothing dropped or reordered) and
    t_ns is monotone non-decreasing;
  * every job's lifecycle follows the legal state machine
    (submitted -> admitted | rejected; admitted -> running | cancelled;
    running -> preempted | completed | failed | cancelled;
    preempted -> resumed | cancelled; resumed behaves like running —
    shutdown may cancel a job that never got to run);
  * rejected events carry a machine-readable reason;
  * the summary's per-event counts equal the observed counts, and the
    embedded svc.* counters agree with the event stream.

A job-event file may hold several concatenated segments: a crash-recovered
daemon appends to the same file (DESIGN.md §14), so a seq that restarts at
1 opens a new segment with a fresh clock, fresh event counts, and its own
summary.  Only the final segment must be closed by a job_summary — a
crashed segment ends mid-stream, and the next segment's "recovered" events
(reason = the job's recovered state) re-establish each journaled job's
position in the state machine.

Checks, using only the standard library:
  * every line is a standalone JSON object with "type" of "interval" or
    "summary";
  * exactly one summary record exists and it is the last line;
  * interval records carry lane (int >= 0), t_ns (int >= 0), phase (one of
    the exported phase names), deltas (str -> non-negative int, zero deltas
    omitted) and gauges (str -> number);
  * per lane, interval timestamps are strictly increasing;
  * the summary's lane count covers every lane seen in the intervals;
  * summary histograms are log2-bucketed: bucket indices in [0, 65), counts
    positive, bucket counts summing to the histogram's total;
  * for every counter, the sum of interval deltas equals the summary total
    (the stream is self-consistent, not two unrelated exports).

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import sys

PHASES = {"init", "preprobe", "main", "extra", "done"}
LOG2_BUCKETS = 65


def fail(line_no, message):
    print(f"check_metrics_schema: line {line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def check_interval(line_no, record, last_t_by_lane, delta_sums):
    lane = record.get("lane")
    if not isinstance(lane, int) or lane < 0:
        fail(line_no, f"bad lane: {lane!r}")
    t_ns = record.get("t_ns")
    if not isinstance(t_ns, int) or t_ns < 0:
        fail(line_no, f"bad t_ns: {t_ns!r}")
    if lane in last_t_by_lane and t_ns <= last_t_by_lane[lane]:
        fail(line_no,
             f"lane {lane} t_ns {t_ns} not after {last_t_by_lane[lane]}")
    last_t_by_lane[lane] = t_ns
    phase = record.get("phase")
    if phase not in PHASES:
        fail(line_no, f"bad phase: {phase!r}")
    deltas = record.get("deltas")
    if not isinstance(deltas, dict):
        fail(line_no, "deltas is not an object")
    for name, value in deltas.items():
        if not isinstance(value, int) or value <= 0:
            fail(line_no, f"delta {name!r} must be a positive int: {value!r}")
        delta_sums[name] = delta_sums.get(name, 0) + value
    gauges = record.get("gauges")
    if not isinstance(gauges, dict):
        fail(line_no, "gauges is not an object")
    for name, value in gauges.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(line_no, f"gauge {name!r} is not a number: {value!r}")


def check_summary(line_no, record, last_t_by_lane, delta_sums):
    lanes = record.get("lanes")
    if not isinstance(lanes, int) or lanes < 1:
        fail(line_no, f"bad lanes: {lanes!r}")
    if last_t_by_lane and max(last_t_by_lane) >= lanes:
        fail(line_no,
             f"interval lane {max(last_t_by_lane)} >= summary lanes {lanes}")
    for field in ("scan_time_ns", "interval_ns"):
        if not isinstance(record.get(field), int):
            fail(line_no, f"bad {field}: {record.get(field)!r}")

    phases = record.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(line_no, "phases must be a non-empty array")
    for entry in phases:
        if (not isinstance(entry, dict) or entry.get("phase") not in PHASES
                or not isinstance(entry.get("t_ns"), int)
                or not isinstance(entry.get("lane"), int)):
            fail(line_no, f"bad phase transition: {entry!r}")

    counters = record.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail(line_no, "counters must be a non-empty object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(line_no, f"counter {name!r} must be a non-negative int")
    # Interval deltas must reconcile with the summary totals: phase-boundary
    # and finish() captures flush every lane's tail, so nothing is lost.
    for name, total in delta_sums.items():
        if counters.get(name) != total:
            fail(line_no, f"counter {name!r}: summary {counters.get(name)} "
                          f"!= sum of interval deltas {total}")

    histograms = record.get("histograms")
    if not isinstance(histograms, dict):
        fail(line_no, "histograms is not an object")
    for name, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(line_no, f"histogram {name!r} is not an object")
        total = hist.get("total")
        buckets = hist.get("buckets")
        if not isinstance(total, int) or total < 0:
            fail(line_no, f"histogram {name!r} bad total: {total!r}")
        if not isinstance(buckets, list):
            fail(line_no, f"histogram {name!r} buckets is not an array")
        seen = set()
        bucket_sum = 0
        for pair in buckets:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not isinstance(pair[0], int)
                    or not isinstance(pair[1], int)):
                fail(line_no, f"histogram {name!r} bad bucket: {pair!r}")
            index, count = pair
            if not 0 <= index < LOG2_BUCKETS:
                fail(line_no, f"histogram {name!r} bucket {index} out of "
                              f"range [0, {LOG2_BUCKETS})")
            if index in seen:
                fail(line_no, f"histogram {name!r} duplicate bucket {index}")
            seen.add(index)
            if count <= 0:
                fail(line_no, f"histogram {name!r} bucket {index} "
                              f"non-positive count {count}")
            bucket_sum += count
        if bucket_sum != total:
            fail(line_no, f"histogram {name!r} buckets sum to {bucket_sum}, "
                          f"total says {total}")

    gauges = record.get("gauges")
    if not isinstance(gauges, list):
        fail(line_no, "summary gauges is not an array")
    for entry in gauges:
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("lane"), int)
                or not isinstance(entry.get("name"), str)
                or not isinstance(entry.get("value"), (int, float))):
            fail(line_no, f"bad gauge entry: {entry!r}")


# Job lifecycle (svc/job.h): state after each event, and the events legal
# from each state.  "admitted" may go straight to "cancelled" — a client
# cancel or a daemon shutdown can reap a job that never reached a worker.
JOB_EVENT_NEXT = {
    None: {"submitted"},
    "submitted": {"admitted", "rejected"},
    "admitted": {"running", "cancelled"},
    "running": {"preempted", "completed", "failed", "cancelled"},
    "preempted": {"resumed", "cancelled"},
    "resumed": {"preempted", "completed", "failed", "cancelled"},
    "rejected": set(),
    "completed": set(),
    "failed": set(),
    "cancelled": set(),
}

# svc.* counter in the summary -> event name it must agree with.
JOB_COUNTER_EVENTS = {
    "svc.jobs_submitted": "submitted",
    "svc.jobs_admitted": "admitted",
    "svc.jobs_rejected": "rejected",
    "svc.jobs_preempted": "preempted",
    "svc.jobs_resumed": "resumed",
    "svc.jobs_completed": "completed",
    "svc.jobs_failed": "failed",
    "svc.jobs_cancelled": "cancelled",
    "svc.jobs_recovered": "recovered",
}

# A boot-time "recovered" event's reason names the state the journal replay
# landed the job in; it overrides whatever this job's state was in earlier
# segments (the journal, not the event stream, is authoritative across a
# crash).  "queued" re-enters the machine where an admitted job sits.
RECOVERED_STATE = {
    "queued": "admitted",
    "preempted": "preempted",
    "completed": "completed",
    "failed": "failed",
    "cancelled": "cancelled",
    "rejected": "rejected",
}


def check_job_event(line_no, record, state_by_job, event_counts):
    job = record.get("job")
    if not isinstance(job, int) or job < 1:
        fail(line_no, f"bad job id: {job!r}")
    event = record.get("event")
    if event == "recovered":
        reason = record.get("reason")
        if reason not in RECOVERED_STATE:
            fail(line_no, f"recovered event with bad state: {reason!r}")
        state_by_job[job] = RECOVERED_STATE[reason]
        event_counts[event] = event_counts.get(event, 0) + 1
        return
    if event not in JOB_EVENT_NEXT:
        fail(line_no, f"unknown event: {event!r}")
    state = state_by_job.get(job)
    if event not in JOB_EVENT_NEXT[state]:
        fail(line_no, f"job {job}: illegal transition {state!r} -> {event!r}")
    state_by_job[job] = event
    event_counts[event] = event_counts.get(event, 0) + 1
    if event == "rejected" and not record.get("reason"):
        fail(line_no, "rejected event without a machine-readable reason")
    worker = record.get("worker")
    if worker is not None and (not isinstance(worker, int) or worker < 0):
        fail(line_no, f"bad worker: {worker!r}")


def check_job_summary(line_no, record, event_counts):
    for field in ("drained", "clean_shutdown"):
        if not isinstance(record.get(field), bool):
            fail(line_no, f"bad {field}: {record.get(field)!r}")
    events = record.get("events")
    if not isinstance(events, dict):
        fail(line_no, "events is not an object")
    if events != event_counts:
        fail(line_no, f"summary event counts {events} != observed "
                      f"{event_counts}")
    counters = record.get("counters")
    if not isinstance(counters, dict):
        fail(line_no, "counters is not an object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(line_no, f"counter {name!r} must be a non-negative int")
    for name, event in JOB_COUNTER_EVENTS.items():
        if name not in counters:
            fail(line_no, f"summary is missing counter {name!r}")
        if counters[name] != event_counts.get(event, 0):
            fail(line_no, f"counter {name!r} = {counters[name]} but the "
                          f"stream has {event_counts.get(event, 0)} "
                          f"{event!r} event(s)")


def check_job_stream(path):
    state_by_job = {}
    event_counts = {}
    last_seq = 0
    last_t = -1
    summary_line = None
    segments = 0
    total_events = 0

    with open(path, encoding="utf-8") as stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                fail(line_no, "blank line in JSONL stream")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(line_no, f"invalid JSON: {error}")
            if not isinstance(record, dict):
                fail(line_no, "record is not a JSON object")
            seq = record.get("seq")
            if seq == 1:
                # A fresh daemon (first boot, or a restart appending to the
                # same file) opens a new segment: fresh clock, fresh event
                # counts, its own summary.  state_by_job persists — a job's
                # lifecycle spans the crash, re-anchored by "recovered".
                segments += 1
                event_counts = {}
                last_seq = 0
                last_t = -1
                summary_line = None
            if summary_line is not None:
                fail(line_no, f"record after the summary (line "
                              f"{summary_line}) without a segment restart")
            if seq != last_seq + 1:
                fail(line_no, f"seq {seq!r} does not follow {last_seq}")
            last_seq = seq
            t_ns = record.get("t_ns")
            if not isinstance(t_ns, int) or t_ns < 0:
                fail(line_no, f"bad t_ns: {t_ns!r}")
            if t_ns < last_t:
                fail(line_no, f"t_ns {t_ns} went backwards from {last_t}")
            last_t = t_ns
            kind = record.get("type")
            if kind == "job_event":
                total_events += 1
                check_job_event(line_no, record, state_by_job, event_counts)
            elif kind == "job_summary":
                summary_line = line_no
                check_job_summary(line_no, record, event_counts)
            else:
                fail(line_no, f"unknown record type: {kind!r}")

    if segments == 0:
        fail(0, "stream has no job events")
    if summary_line is None:
        fail(0, "final segment has no job_summary record")
    print(f"check_metrics_schema: OK — {total_events} job event(s) across "
          f"{len(state_by_job)} job(s) in {segments} segment(s), final "
          f"summary on line {summary_line}")
    return 0


def main():
    argv = sys.argv[1:]
    required = []
    if argv and argv[0] == "--job-events":
        if len(argv) != 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return check_job_stream(argv[1])
    if argv and argv[0] == "--require-counters":
        if len(argv) < 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        required = [name for name in argv[1].split(",") if name]
        argv = argv[2:]
    elif argv and argv[0].startswith("--require-counters="):
        required = [name
                    for name in argv[0].split("=", 1)[1].split(",") if name]
        argv = argv[1:]
    if len(argv) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    last_t_by_lane = {}
    delta_sums = {}
    intervals = 0
    summary_line = None
    summary_counters = {}

    with open(argv[0], encoding="utf-8") as stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                fail(line_no, "blank line in JSONL stream")
            if summary_line is not None:
                fail(line_no, f"record after the summary (line {summary_line})")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(line_no, f"invalid JSON: {error}")
            if not isinstance(record, dict):
                fail(line_no, "record is not a JSON object")
            kind = record.get("type")
            if kind == "interval":
                intervals += 1
                check_interval(line_no, record, last_t_by_lane, delta_sums)
            elif kind == "summary":
                summary_line = line_no
                check_summary(line_no, record, last_t_by_lane, delta_sums)
                summary_counters = record["counters"]
            else:
                fail(line_no, f"unknown record type: {kind!r}")

    if summary_line is None:
        fail(0, "stream has no summary record")
    missing = [name for name in required if name not in summary_counters]
    if missing:
        fail(summary_line,
             f"summary is missing required counter(s): {', '.join(missing)}")
    print(f"check_metrics_schema: OK — {intervals} interval record(s) across "
          f"{len(last_t_by_lane)} lane(s), summary on line {summary_line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
