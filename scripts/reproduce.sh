#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite, and
# regenerate every table and figure of the paper into bench_output.txt.
#
# Environment knobs (see bench/common.h):
#   FR_PREFIX_BITS  simulated universe size exponent (default 16 = one /8)
#   FR_SEED         topology seed (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done.  Compare bench_output.txt against EXPERIMENTS.md."
