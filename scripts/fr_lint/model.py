"""Shared source model for fr-lint engines.

The fallback engine works on a *scrubbed* view of each translation unit:
comments and string/character literals are blanked out (newlines preserved,
so line numbers survive), while the comment text is retained separately to
parse `// fr-lint: allow(<rule>): <reason>` suppressions and
`// fr-atomic: <role>` annotations.
"""

from __future__ import annotations

import dataclasses
import re


@dataclasses.dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # repo-relative
    line: int  # 1-based
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_ALLOW_RE = re.compile(r"fr-lint:\s*allow\(([a-z-]+)\)")
_ATOMIC_ROLE_RE = re.compile(r"fr-atomic:\s*\S")


@dataclasses.dataclass
class ScrubbedSource:
    """A file with literals/comments blanked and suppression data extracted."""

    path: str
    text: str  # scrubbed: same length/line structure as the original
    raw: str
    # line (1-based) -> set of rule names allowed on that line
    allows: dict[int, set[str]]
    # lines (1-based) carrying an `fr-atomic:` role comment
    atomic_roles: set[int]
    _comment_only: set[int] | None = None

    def line_of(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1

    def _comment_only_lines(self) -> set[int]:
        if self._comment_only is None:
            self._comment_only = set()
            for i, (raw_line, clean_line) in enumerate(
                    zip(self.raw.split("\n"), self.text.split("\n")),
                    start=1):
                if raw_line.strip() and not clean_line.strip():
                    self._comment_only.add(i)
        return self._comment_only

    def _probe_lines(self, line: int):
        """The line itself, then the contiguous run of comment-only lines
        directly above it (a multi-line comment suppresses the first code
        line below it)."""
        yield line
        probe = line - 1
        comment_only = self._comment_only_lines()
        while probe in comment_only:
            yield probe
            probe -= 1

    def allowed(self, rule: str, line: int) -> bool:
        return any(rule in self.allows.get(probe, set())
                   for probe in self._probe_lines(line))

    def has_atomic_role(self, line: int) -> bool:
        return any(probe in self.atomic_roles
                   for probe in self._probe_lines(line))


def scrub(path: str, raw: str) -> ScrubbedSource:
    """Blanks comments and string/char literals; keeps newlines in place."""
    out = []
    allows: dict[int, set[str]] = {}
    atomic_roles: set[int] = set()
    i = 0
    n = len(raw)
    line = 1

    def record_comment(text: str, start_line: int) -> None:
        for delta, comment_line in enumerate(text.split("\n")):
            for match in _ALLOW_RE.finditer(comment_line):
                allows.setdefault(start_line + delta, set()).add(match.group(1))
            if _ATOMIC_ROLE_RE.search(comment_line):
                atomic_roles.add(start_line + delta)

    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = raw.find("\n", i)
            if end == -1:
                end = n
            record_comment(raw[i:end], line)
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = raw.find("*/", i + 2)
            end = n if end == -1 else end + 2
            text = raw[i:end]
            record_comment(text, line)
            out.append(re.sub(r"[^\n]", " ", text))
            line += text.count("\n")
            i = end
        elif c == '"':
            j = i + 1
            while j < n and raw[j] != '"':
                j += 2 if raw[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + " " * (j - i - 2))
            i = j
        elif c == "'":
            j = i + 1
            while j < n and raw[j] != "'":
                j += 2 if raw[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("''" + " " * (j - i - 2))
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1

    return ScrubbedSource(
        path=path,
        text="".join(out),
        raw=raw,
        allows=allows,
        atomic_roles=atomic_roles,
    )


def match_brace(text: str, open_index: int) -> int:
    """Index just past the `}` matching the `{` at open_index (or len)."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)
