#!/usr/bin/env python3
"""clang-tidy changed-baseline gate.

Runs clang-tidy (profile: .clang-tidy) over every first-party translation
unit in compile_commands.json and compares the findings against the
checked-in baseline, scripts/fr_lint/clang_tidy_baseline.txt:

  * a finding in the baseline      -> tolerated (pre-existing debt)
  * a finding NOT in the baseline  -> NEW, exit 1 (CI fails)
  * a baseline line with no match  -> reported as stale (fix landed:
                                      delete the line), exit stays 0

Findings are keyed as `path:check-name:message` — line numbers are left
out so unrelated edits that shift code don't churn the baseline.

Exception: `concurrency-*` findings are hard failures (DESIGN.md §13).
They fail the run even if a matching line exists in the baseline, and
--update-baseline refuses to record them.

Usage:
  python3 scripts/fr_lint/run_clang_tidy.py --build-dir build
  python3 scripts/fr_lint/run_clang_tidy.py --build-dir build \
      --update-baseline      # rewrite the baseline from current findings

Exit status: 0 = no new findings, 1 = new findings, 2 = environment error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

_FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[^\]]+)\]$"
)

BASELINE = pathlib.Path(__file__).resolve().parent / "clang_tidy_baseline.txt"

# Check prefixes that may never be baselined: a finding here fails the run
# even with --update-baseline (see main()).
HARD_FAIL_CHECK_PREFIXES = ("concurrency-",)


def _is_hard_fail(finding: str) -> bool:
    """True if the `path:check:message` key names a hard-gated check."""
    _, _, rest = finding.partition(":")
    return rest.startswith(HARD_FAIL_CHECK_PREFIXES)


def repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent.parent


def first_party_sources(build_dir: pathlib.Path,
                        root: pathlib.Path) -> list[str]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        print(f"run_clang_tidy: no {db} (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        raise SystemExit(2)
    sources = []
    for entry in json.loads(db.read_text(encoding="utf-8")):
        path = pathlib.Path(entry["directory"], entry["file"]).resolve()
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue
        if rel.parts[0] in ("src", "examples"):
            sources.append(str(path))
    return sorted(set(sources))


def run_tidy(tidy: str, build_dir: pathlib.Path, sources: list[str],
             jobs: int) -> list[str]:
    findings: set[str] = set()
    root = repo_root()
    for batch_start in range(0, len(sources), jobs):
        batch = sources[batch_start: batch_start + jobs]
        procs = [
            subprocess.Popen(
                [tidy, "-p", str(build_dir), "--quiet", source],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
            for source in batch
        ]
        for proc in procs:
            out, _ = proc.communicate()
            for line in out.splitlines():
                m = _FINDING_RE.match(line)
                if not m:
                    continue
                path = pathlib.Path(m.group("path"))
                try:
                    rel = path.resolve().relative_to(root).as_posix()
                except ValueError:
                    continue  # system/third-party header
                findings.add(f"{rel}:{m.group('check')}:{m.group('message')}")
    return sorted(findings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first on PATH)")
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if tidy is None:
        for version in range(20, 12, -1):
            tidy = shutil.which(f"clang-tidy-{version}")
            if tidy:
                break
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH",
              file=sys.stderr)
        return 2

    root = repo_root()
    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir
    sources = first_party_sources(build_dir, root)
    if not sources:
        print("run_clang_tidy: no first-party sources in the compilation "
              "database", file=sys.stderr)
        return 2
    findings = run_tidy(tidy, build_dir, sources, max(1, args.jobs))

    # concurrency-* findings are a hard gate (DESIGN.md §13): they can never
    # be baselined as tolerated debt, and --update-baseline refuses to
    # record them.  A concurrency finding means a real locking bug or a
    # missing annotation — fix the code, not the baseline.
    hard = [f for f in findings if _is_hard_fail(f)]
    findings = [f for f in findings if not _is_hard_fail(f)]
    if hard:
        print(f"run_clang_tidy: {len(hard)} concurrency finding(s) — these "
              "are hard failures and cannot be baselined:", file=sys.stderr)
        for finding in hard:
            print(f"  {finding}", file=sys.stderr)
        return 1

    if args.update_baseline:
        BASELINE.write_text(
            "".join(f"{finding}\n" for finding in findings),
            encoding="utf-8",
        )
        print(f"run_clang_tidy: baseline rewritten with {len(findings)} "
              f"finding(s)")
        return 0

    baseline = set()
    if BASELINE.is_file():
        baseline = {
            line.strip()
            for line in BASELINE.read_text(encoding="utf-8").splitlines()
            if line.strip() and not line.startswith("#")
        }
    new = [f for f in findings if f not in baseline]
    stale = sorted(baseline - set(findings))
    for finding in stale:
        print(f"stale baseline entry (fixed? delete it): {finding}")
    if new:
        print(f"run_clang_tidy: {len(new)} NEW finding(s) "
              f"(not in clang_tidy_baseline.txt):", file=sys.stderr)
        for finding in new:
            print(f"  {finding}", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean ({len(sources)} TUs, "
          f"{len(findings)} baselined finding(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
