// fr-lint fixture: cap-boundary must FIRE.
// A blocking socket-boundary call (read_frame) runs while the session
// mutex is held: a stalled peer now parks every thread that wants the
// lock.
#include <fr_lint_fixture_prelude.h>

class Session {
 public:
  void pump(Connection& connection) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int frames_ FR_GUARDED_BY(mutex_) = 0;
};

void Session::pump(Connection& connection) {
  const util::MutexLock lock(mutex_);
  ++frames_;
  connection.read_frame();  // blocks on the peer with mutex_ held
}
