// fr-lint fixture: single-writer must FIRE.
// An FR_SINGLE_WRITER lane uses an atomic RMW and acquire/seq_cst
// orderings; single-writer lanes only need plain relaxed load+store.
#include <fr_lint_fixture_prelude.h>

#include <atomic>
#include <cstdint>

class FR_SINGLE_WRITER Counter {
 public:
  void bump() { total_.fetch_add(1, std::memory_order_seq_cst); }
  uint64_t total() const { return total_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> total_{0};
};
