// fr-lint fixture: hot-banned must PASS.
// The hot writer fills a preallocated slab; the one deliberate growth
// site carries a documented inline suppression.
#include <fr_lint_fixture_prelude.h>

#include <vector>

FR_HOT void record(int* slots, int& cursor, int value) {
  slots[cursor] = value;
  ++cursor;
}

FR_HOT void record_diagnostic(std::vector<int>& log, int value) {
  // fr-lint: allow(hot-banned): diagnostic-only path, off in production
  // scans; growth is bounded by the fixture's tiny input
  log.push_back(value);
}
