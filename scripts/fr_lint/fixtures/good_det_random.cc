// fr-lint fixture: det-random must PASS.
// Randomness comes from an explicitly seeded generator whose state the
// caller owns, so runs replay exactly.
#include <cstdint>

inline uint64_t next_offset(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
