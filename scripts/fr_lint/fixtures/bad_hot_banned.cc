// fr-lint fixture: hot-banned must FIRE.
// An FR_HOT function grows a vector (heap allocation on the hot path).
#include <fr_lint_fixture_prelude.h>

#include <vector>

FR_HOT void record(std::vector<int>& log, int value) {
  log.push_back(value);
}
