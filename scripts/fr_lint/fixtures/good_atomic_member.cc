// fr-lint fixture: atomic-member must PASS.
// Each raw atomic member states its sharing role, either trailing the
// declaration or in the comment block directly above it.
#include <atomic>
#include <cstdint>

class DropCounter {
 public:
  void bump() { drops_.store(drops_.load() + 1); }

 private:
  std::atomic<uint64_t> drops_{0};  // fr-atomic: receiver-thread counter

  // fr-atomic: destructor -> receiver-thread stop request, relaxed;
  // spans two comment lines to exercise the block-scan suppression path
  std::atomic<bool> stopping_{false};
};
