// fr-lint fixture: single-writer must PASS.
// The lane's one writer uses relaxed load+store, never RMW; readers
// tolerate a stale value by design.
#include <fr_lint_fixture_prelude.h>

#include <atomic>
#include <cstdint>

class FR_SINGLE_WRITER Counter {
 public:
  void bump() {
    total_.store(total_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> total_{0};
};
