// fr-lint fixture: hot-virtual must PASS.
// Overriding classes are final (or the overriding method is), so the
// compiler may devirtualize hot-path calls.
class Wire {
 public:
  virtual ~Wire() = default;
  virtual int transmit(int frame) = 0;
};

class LoopbackWire final : public Wire {
 public:
  int transmit(int frame) override { return frame; }
};

class CountingWire : public Wire {
 public:
  int transmit(int frame) override final { return frame + 1; }
};
