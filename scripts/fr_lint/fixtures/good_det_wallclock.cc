// fr-lint fixture: det-wallclock must PASS.
// Time reaches engines only as util::Nanos handed in by the injected
// Clock; code under test records the value it is given.
#include <cstdint>

int64_t stamp(int64_t now_ns) { return now_ns; }
