// fr-lint fixture: hot-call must FIRE.
// classify() is FR_HOT but calls lookup_table(), which is neither FR_HOT
// nor on the call allowlist, so the hot-path discipline is broken.
#include <fr_lint_fixture_prelude.h>

int lookup_table(int key);

FR_HOT int classify(int key) {
  return lookup_table(key) + 1;
}
