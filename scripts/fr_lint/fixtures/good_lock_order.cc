// fr-lint fixture: lock-order must PASS.
// The same two classes, but every thread acquires in the one documented
// order (Dispatcher::mutex_ before SinkQueue::mutex_): the acquisition
// graph has a single edge and no cycle.
#include <fr_lint_fixture_prelude.h>

class SinkQueue;

class Dispatcher {
 public:
  void push_to_sink(SinkQueue& sink) FR_EXCLUDES(mutex_);
  void enqueue(int probe) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int pending_ FR_GUARDED_BY(mutex_) = 0;
};

class SinkQueue {
 public:
  void drain_one(int probe) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int depth_ FR_GUARDED_BY(mutex_) = 0;
};

void Dispatcher::push_to_sink(SinkQueue& sink) {
  const util::MutexLock lock(mutex_);
  --pending_;
  sink.drain_one(pending_);  // Dispatcher::mutex_ -> SinkQueue::mutex_ only
}

void Dispatcher::enqueue(int probe) {
  const util::MutexLock lock(mutex_);
  pending_ += probe;
}

void SinkQueue::drain_one(int probe) {
  const util::MutexLock lock(mutex_);
  depth_ -= probe;
}
