// fr-lint fixture: det-wallclock must FIRE.
// Reading system_clock outside src/util/clock.h couples results to the
// host's wall time; the sim runtime could never replay it.
#include <chrono>

long long stamp_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
