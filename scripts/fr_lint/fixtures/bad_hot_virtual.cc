// fr-lint fixture: hot-virtual must FIRE.
// LoopbackWire overrides transmit() but neither the class nor the method
// is final, so calls through Wire* cannot be devirtualized.
class Wire {
 public:
  virtual ~Wire() = default;
  virtual int transmit(int frame) = 0;
};

class LoopbackWire : public Wire {
 public:
  int transmit(int frame) override { return frame; }
};
