// fr-lint fixture: guarded-member must FIRE.
// A class owning a mutex has mutable fields with no FR_GUARDED_BY, no
// `// fr-atomic:` role, and no allow — nothing says what protects them.
#include <fr_lint_fixture_prelude.h>

class ProbeBudget {
 public:
  void spend(int probes) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int remaining_ = 0;        // unguarded mutable state
  long total_spent_ = 0;     // unguarded mutable state
};

void ProbeBudget::spend(int probes) {
  const util::MutexLock lock(mutex_);
  remaining_ -= probes;
  total_spent_ += probes;
}
