// fr-lint fixture: lock-order must FIRE.
// Two classes acquire each other's locks in opposite orders: one thread
// in Dispatcher::push_to_sink holds Dispatcher::mutex_ and takes
// SinkQueue::mutex_; another in SinkQueue::pull_from_dispatcher does the
// reverse.  The acquisition graph has the cycle
// Dispatcher::mutex_ -> SinkQueue::mutex_ -> Dispatcher::mutex_.
#include <fr_lint_fixture_prelude.h>

class SinkQueue;
class Dispatcher;

class Dispatcher {
 public:
  void push_to_sink(SinkQueue& sink) FR_EXCLUDES(mutex_);
  void enqueue(int probe) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int pending_ FR_GUARDED_BY(mutex_) = 0;
};

class SinkQueue {
 public:
  void pull_from_dispatcher(Dispatcher& dispatcher) FR_EXCLUDES(mutex_);
  void drain_one(int probe) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int depth_ FR_GUARDED_BY(mutex_) = 0;
};

void Dispatcher::push_to_sink(SinkQueue& sink) {
  const util::MutexLock lock(mutex_);
  --pending_;
  sink.drain_one(pending_);  // acquires SinkQueue::mutex_ under ours
}

void Dispatcher::enqueue(int probe) {
  const util::MutexLock lock(mutex_);
  pending_ += probe;
}

void SinkQueue::pull_from_dispatcher(Dispatcher& dispatcher) {
  const util::MutexLock lock(mutex_);
  ++depth_;
  dispatcher.enqueue(depth_);  // acquires Dispatcher::mutex_ under ours
}

void SinkQueue::drain_one(int probe) {
  const util::MutexLock lock(mutex_);
  depth_ -= probe;
}
