// fr-lint fixture: det-random must FIRE.
// rand() draws from hidden process-global state; two runs with the same
// scan seed would probe different targets.
#include <cstdlib>

int pick_offset() { return rand() % 255; }
