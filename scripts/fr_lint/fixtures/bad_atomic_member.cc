// fr-lint fixture: atomic-member must FIRE.
// A raw std::atomic member with no `// fr-atomic: <role>` comment and no
// FR_SINGLE_WRITER on the owning class: the sharing contract is unstated.
#include <atomic>
#include <cstdint>

class DropCounter {
 public:
  void bump() { drops_.store(drops_.load() + 1); }

 private:
  std::atomic<uint64_t> drops_{0};
};
