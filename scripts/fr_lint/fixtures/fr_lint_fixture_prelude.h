// Self-contained stand-in for src/util/annotations.h (plus the util/sync.h
// lock vocabulary), so fixtures compile under the libclang engine without
// reaching into src/.  Included with angle brackets (selftest passes -I for
// this directory) so the layering rule, which only inspects quoted
// includes, never sees it.
#pragma once

#if defined(__clang__)
#define FR_HOT [[clang::annotate("fr::hot")]]
#define FR_SINGLE_WRITER [[clang::annotate("fr::single_writer")]]
#define FR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FR_HOT
#define FR_SINGLE_WRITER
#define FR_THREAD_ANNOTATION(x)
#endif

#define FR_CAPABILITY(name) FR_THREAD_ANNOTATION(capability(name))
#define FR_SCOPED_CAPABILITY FR_THREAD_ANNOTATION(scoped_lockable)
#define FR_GUARDED_BY(x) FR_THREAD_ANNOTATION(guarded_by(x))
#define FR_PT_GUARDED_BY(x) FR_THREAD_ANNOTATION(pt_guarded_by(x))
#define FR_REQUIRES(...) \
  FR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FR_ACQUIRE(...) FR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FR_RELEASE(...) FR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FR_EXCLUDES(...) FR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Minimal mirrors of util::Mutex / util::MutexLock for the lock-discipline
// fixtures (the fallback engine matches these by *name*, exactly as it
// does in src/).
namespace util {

class FR_CAPABILITY("mutex") Mutex {
 public:
  void lock() FR_ACQUIRE();
  void unlock() FR_RELEASE();
};

class FR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FR_ACQUIRE(mutex);
  ~MutexLock() FR_RELEASE();
};

}  // namespace util

// Stand-in for the svc socket boundary (src/svc/socket.h): read_frame /
// write_frame block on peer behavior, so the cap-boundary rule bans calling
// them with any capability held.
class Connection {
 public:
  bool read_frame();
  bool write_frame();
};
