// Self-contained stand-in for src/util/annotations.h, so fixtures compile
// under the libclang engine without reaching into src/.  Included with
// angle brackets (selftest passes -I for this directory) so the layering
// rule, which only inspects quoted includes, never sees it.
#pragma once

#if defined(__clang__)
#define FR_HOT [[clang::annotate("fr::hot")]]
#define FR_SINGLE_WRITER [[clang::annotate("fr::single_writer")]]
#else
#define FR_HOT
#define FR_SINGLE_WRITER
#endif
