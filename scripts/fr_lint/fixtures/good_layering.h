// fr-lint fixture: layering must PASS (scanned as src/sim/good_layering.h).
// sim/ includes its own layer, the layers below it, and core/ interface
// headers only.
#pragma once

#include "core/runtime.h"
#include "net/ipv4.h"
#include "util/clock.h"
