// fr-lint fixture: layering must FIRE (scanned as src/sim/bad_layering.h).
// sim/ may only reach core/ through the interface headers; core/dcb.h is
// engine-internal state.
#pragma once

#include "core/dcb.h"
#include "util/clock.h"
