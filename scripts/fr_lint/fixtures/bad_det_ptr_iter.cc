// fr-lint fixture: det-ptr-iter must FIRE.
// Pointer-keyed unordered containers hash addresses: iteration order
// changes run to run with the allocator, breaking replay determinism.
#include <unordered_map>

struct Session;

using SessionIndex = std::unordered_map<Session*, int>;
