// fr-lint fixture: guarded-member must PASS.
// Every mutable field of the mutex-owning class states its protection:
// FR_GUARDED_BY for lock-protected state, an explicit allow (with the
// reason) for init-once state the lock never covers.
#include <fr_lint_fixture_prelude.h>

class ProbeBudget {
 public:
  explicit ProbeBudget(int limit) : limit_(limit) {}

  void spend(int probes) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int remaining_ FR_GUARDED_BY(mutex_) = 0;
  long total_spent_ FR_GUARDED_BY(mutex_) = 0;
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  int limit_;
};

void ProbeBudget::spend(int probes) {
  const util::MutexLock lock(mutex_);
  remaining_ -= probes;
  total_spent_ += probes;
}
