// fr-lint fixture: hot-call must PASS.
// Every callee of an FR_HOT function is itself FR_HOT (inductive closure),
// a local lambda, or an allowlisted primitive.
#include <fr_lint_fixture_prelude.h>

#include <cstring>

FR_HOT int lookup_table(int key) { return key * 2; }

FR_HOT int classify(int key) {
  const auto fold = [](int v) { return v & 0xff; };
  unsigned char scratch[4];
  std::memset(scratch, 0, sizeof scratch);
  return fold(lookup_table(key)) + static_cast<int>(scratch[0]);
}
