// fr-lint fixture: cap-boundary must PASS.
// The lock covers only the in-memory bookkeeping; the blocking
// socket-boundary call happens after the guard's block closes.
#include <fr_lint_fixture_prelude.h>

class Session {
 public:
  void pump(Connection& connection) FR_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_;
  int frames_ FR_GUARDED_BY(mutex_) = 0;
};

void Session::pump(Connection& connection) {
  {
    const util::MutexLock lock(mutex_);
    ++frames_;
  }
  connection.read_frame();  // lock released: blocking is now harmless
}
