// fr-lint fixture: det-ptr-iter must PASS.
// Keyed by a stable integer id (as the scan state is: addresses and /24
// indices), iteration order is a pure function of the inserted keys.
#include <cstdint>
#include <unordered_map>

using SessionIndex = std::unordered_map<uint64_t, int>;
