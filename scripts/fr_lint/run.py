#!/usr/bin/env python3
"""fr-lint driver.

Usage:
  python3 scripts/fr_lint/run.py --all                 # lint src/ (fallback)
  python3 scripts/fr_lint/run.py --all --engine clang  # libclang engine
  python3 scripts/fr_lint/run.py --selftest            # fixture corpus
  python3 scripts/fr_lint/run.py src/core/tracer.cc    # specific files

Exit status: 0 = no findings, 1 = findings, 2 = usage/environment error.

The fallback engine needs nothing beyond the Python stdlib and is the
engine CI gates on.  The clang engine needs the libclang Python bindings
(python3-clang) and a compile_commands.json (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON);
`--engine auto` uses it when importable and falls back otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from fr_lint import RULES, config  # type: ignore
    from fr_lint.fallback_engine import FallbackEngine  # type: ignore
else:
    from . import RULES, config
    from .fallback_engine import FallbackEngine


def repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent.parent


def collect_sources(root: pathlib.Path) -> list[str]:
    files = []
    for src_dir in config.SOURCE_DIRS:
        base = root / src_dir
        for path in sorted(base.rglob("*")):
            if path.suffix in config.SOURCE_SUFFIXES and path.is_file():
                files.append(path.relative_to(root).as_posix())
    return files


def make_engine(engine: str, root: pathlib.Path, files: list[str],
                compile_commands: str | None):
    if engine in ("clang", "auto"):
        try:
            if __package__ in (None, ""):
                from fr_lint.clang_engine import ClangEngine  # type: ignore
            else:
                from .clang_engine import ClangEngine
            return ClangEngine.from_files(root, files, compile_commands)
        except Exception as error:  # noqa: BLE001 - env probe, not logic
            if engine == "clang":
                print(f"fr-lint: clang engine unavailable: {error}",
                      file=sys.stderr)
                raise SystemExit(2)
            print(f"fr-lint: falling back to token engine ({error})",
                  file=sys.stderr)
    return FallbackEngine.from_files(root, files)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="fr-lint", description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="repo-relative files to lint (default: --all)")
    parser.add_argument("--all", action="store_true",
                        help="lint every .h/.cc under src/")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--engine", choices=("fallback", "clang", "auto"),
                        default="fallback")
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json (clang engine)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self-test and exit")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="restrict output to these rules")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root).resolve() if args.root else repo_root()

    if args.selftest:
        if __package__ in (None, ""):
            from fr_lint.selftest import run_selftest  # type: ignore
        else:
            from .selftest import run_selftest
        return run_selftest(engine=args.engine)

    if args.all or not args.files:
        files = collect_sources(root)
    else:
        files = []
        for name in args.files:
            rel = pathlib.Path(name)
            if rel.is_absolute():
                rel = rel.relative_to(root)
            if not (root / rel).is_file():
                print(f"fr-lint: no such file: {name}", file=sys.stderr)
                return 2
            files.append(rel.as_posix())

    engine = make_engine(args.engine, root, files, args.compile_commands)
    findings = engine.analyze()
    if args.rule:
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule in wanted]

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"fr-lint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"fr-lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
