"""Token-level fr-lint engine (no dependencies beyond the Python stdlib).

The engine is deliberately *name-based*: FR_HOT functions are collected
repo-wide, and a call inside an FR_HOT body resolves against (local lambdas
| FR_HOT names | allowlist).  That makes the hot-path discipline inductive —
if every FR_HOT function only calls FR_HOT or allowlisted callees, the whole
annotated call graph is transitively free of allocation, throwing, blocking
and I/O — at the cost of treating same-named functions alike.  The libclang
engine (clang_engine.py) resolves calls semantically when available; this
engine is the floor that always runs.
"""

from __future__ import annotations

import re

from . import config
from .model import Finding, ScrubbedSource, match_brace, scrub

_HOT_TOKEN_RE = re.compile(r"\bFR_HOT\b")
_SW_TOKEN_RE = re.compile(r"\bFR_SINGLE_WRITER\b")
_NAME_BEFORE_PAREN_RE = re.compile(
    r"(operator\s*[^\s(]+|[A-Za-z_]\w*)\s*\($"
)
_CALL_RE = re.compile(r"(\boperator\s*[^\s\w(]+\s*|\b[A-Za-z_]\w*\s*)\(")
_LOCAL_LAMBDA_RE = re.compile(r"\b(?:const\s+)?auto\s+([A-Za-z_]\w*)\s*=\s*\[")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:FR_\w+\s+)?(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)(\s+final)?\s*:\s*(?:public|protected|private)\s+"
)
_OVERRIDE_RE = re.compile(r"\boverride\b")
_RMW_RE = re.compile(
    r"\b(fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\("
)
_NONRELAXED_ORDER_RE = re.compile(
    r"\bmemory_order_(acquire|release|acq_rel|seq_cst|consume)\b|"
    r"\bmemory_order::(acquire|release|acq_rel|seq_cst|consume)\b"
)
_ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag)?\b")
_PTR_UNORDERED_RE = re.compile(r"\bunordered_(?:map|set)\s*<[^;{}()]*\*")

# Tokens that, when found as the word immediately before a call-looking
# identifier, mean "this is a call, not a declaration".
_NOT_A_TYPE = frozenset({
    "return", "else", "case", "goto", "co_return", "co_yield", "in",
    "and", "or", "not",
})


def _find_declarator_end(text: str, start: int) -> tuple[int, str]:
    """From `start` (just past FR_HOT), finds the end of the declaration:
    returns (index, kind) where kind is '{' (definition) or ';' (declaration
    only).  Scans at paren depth 0 so default arguments don't confuse it."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif depth == 0 and c in "{;":
            return i, c
    return len(text), ";"


def _declared_name(decl: str) -> str | None:
    """Function name from the declaration text before its parameter list."""
    paren = _first_param_paren(decl)
    if paren is None:
        return None
    m = _NAME_BEFORE_PAREN_RE.search(decl[: paren + 1])
    if not m:
        return None
    name = m.group(1)
    if name.startswith("operator"):
        return "operator" + name[len("operator"):].strip()
    return name


def _first_param_paren(decl: str) -> int | None:
    """Index of the '(' opening the parameter list (the first paren at
    angle-bracket depth 0 — return types like std::optional<T> have none)."""
    angle = 0
    for i, c in enumerate(decl):
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(" and angle == 0:
            return i
    return None


class FallbackEngine:
    def __init__(self, sources: list[ScrubbedSource]):
        self.sources = sources
        self.hot_names: set[str] = set()
        self.findings: list[Finding] = []
        self._collect_hot_names()

    @classmethod
    def from_files(cls, root, paths: list[str]) -> "FallbackEngine":
        sources = []
        for rel in paths:
            raw = (root / rel).read_text(encoding="utf-8", errors="replace")
            sources.append(scrub(rel, raw))
        return cls(sources)

    # -- collection ----------------------------------------------------------

    def _collect_hot_names(self) -> None:
        for src in self.sources:
            for m in _HOT_TOKEN_RE.finditer(src.text):
                end, _ = _find_declarator_end(src.text, m.end())
                name = _declared_name(src.text[m.end(): end])
                if name:
                    self.hot_names.add(name)

    # -- entry point ---------------------------------------------------------

    def analyze(self) -> list[Finding]:
        for src in self.sources:
            self._check_hot_bodies(src)
            self._check_hot_virtual(src)
            self._check_single_writer(src)
            self._check_atomic_members(src)
            self._check_tokens(src, "det-random", config.DET_RANDOM_TOKENS)
            if src.path not in config.DET_WALLCLOCK_FILE_ALLOWLIST:
                self._check_tokens(
                    src, "det-wallclock", config.DET_WALLCLOCK_TOKENS
                )
            self._check_ptr_iter(src)
            self._check_svc_boundary(src)
            self._check_layering(src)
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        )

    def _emit(self, rule: str, src: ScrubbedSource, line: int,
              message: str) -> None:
        if not src.allowed(rule, line):
            self.findings.append(Finding(rule, src.path, line, message))

    # -- hot-path purity -----------------------------------------------------

    def _hot_bodies(self, src: ScrubbedSource):
        for m in _HOT_TOKEN_RE.finditer(src.text):
            end, kind = _find_declarator_end(src.text, m.end())
            if kind != "{":
                continue
            name = _declared_name(src.text[m.end(): end])
            body_end = match_brace(src.text, end)
            yield name or "<unknown>", end, body_end

    def _check_hot_bodies(self, src: ScrubbedSource) -> None:
        for name, body_start, body_end in self._hot_bodies(src):
            body = src.text[body_start:body_end]
            local_ok = set(_LOCAL_LAMBDA_RE.findall(body))
            self._scan_banned_tokens(src, name, body, body_start)
            self._scan_calls(src, name, body, body_start, local_ok)

    def _scan_banned_tokens(self, src: ScrubbedSource, name: str,
                            body: str, base: int) -> None:
        for pattern, what in config.BANNED_TOKENS:
            for m in re.finditer(pattern, body):
                line = src.line_of(base + m.start())
                self._emit(
                    "hot-banned", src, line,
                    f"{what} in FR_HOT function '{name}'",
                )

    def _scan_calls(self, src: ScrubbedSource, name: str, body: str,
                    base: int, local_ok: set[str]) -> None:
        for m in _CALL_RE.finditer(body):
            callee = m.group(1).strip()
            if callee in config.CALL_KEYWORDS:
                continue
            if callee.startswith("operator"):
                continue  # operator calls resolve like methods; keep lenient
            line = src.line_of(base + m.start())
            prev = body[: m.start()].rstrip()
            prev_char = prev[-1:] if prev else ""
            if prev_char and (prev_char.isalnum() or prev_char == "_"):
                prev_word = re.search(r"([A-Za-z_]\w*)$", prev)
                word = prev_word.group(1) if prev_word else ""
                if word not in _NOT_A_TYPE and word not in config.CALL_KEYWORDS:
                    # `Type name(args)` — a declaration; vet the type.
                    type_name = word
                    if (type_name in config.TYPE_ALLOWLIST
                            or type_name in self.hot_names):
                        continue
                    self._emit(
                        "hot-call", src, line,
                        f"FR_HOT function '{name}' constructs "
                        f"'{type_name}', which is neither FR_HOT nor "
                        "allowlisted",
                    )
                    continue
            if callee in local_ok:
                continue
            if callee in self.hot_names:
                continue
            if callee in config.CALL_ALLOWLIST:
                continue
            if callee in config.TYPE_ALLOWLIST:
                continue  # functional cast / temporary of a vetted type
            if callee in config.BANNED_CALLS:
                self._emit(
                    "hot-banned", src, line,
                    f"call to '{callee}' (allocating or I/O) in FR_HOT "
                    f"function '{name}'",
                )
                continue
            self._emit(
                "hot-call", src, line,
                f"FR_HOT function '{name}' calls '{callee}', which is "
                "neither FR_HOT nor allowlisted",
            )

    def _check_hot_virtual(self, src: ScrubbedSource) -> None:
        for m in _CLASS_RE.finditer(src.text):
            is_final = bool(m.group(3))
            if is_final:
                continue
            class_name = m.group(2)
            open_brace = src.text.find("{", m.end())
            if open_brace == -1:
                continue
            body_end = match_brace(src.text, open_brace)
            body = src.text[open_brace:body_end]
            for om in _OVERRIDE_RE.finditer(body):
                # `override final` (either order) devirtualizes the slot.
                window = body[max(0, om.start() - 48): om.start() + 48]
                if re.search(r"\bfinal\b", window):
                    continue
                line = src.line_of(open_brace + om.start())
                self._emit(
                    "hot-virtual", src, line,
                    f"'{class_name}' overrides a virtual method but neither "
                    "the class nor the method is final; hot-path calls "
                    "cannot be devirtualized",
                )

    # -- atomics discipline --------------------------------------------------

    def _single_writer_regions(self, src: ScrubbedSource):
        for m in _SW_TOKEN_RE.finditer(src.text):
            open_brace = src.text.find("{", m.end())
            if open_brace == -1:
                continue
            yield open_brace, match_brace(src.text, open_brace)

    def _check_single_writer(self, src: ScrubbedSource) -> None:
        for start, end in self._single_writer_regions(src):
            body = src.text[start:end]
            for m in _RMW_RE.finditer(body):
                line = src.line_of(start + m.start())
                self._emit(
                    "single-writer", src, line,
                    f"read-modify-write atomic '{m.group(1)}' inside an "
                    "FR_SINGLE_WRITER lane (single-writer lanes use plain "
                    "load+store)",
                )
            for m in _NONRELAXED_ORDER_RE.finditer(body):
                line = src.line_of(start + m.start())
                self._emit(
                    "single-writer", src, line,
                    "non-relaxed memory order inside an FR_SINGLE_WRITER "
                    "lane",
                )

    def _check_atomic_members(self, src: ScrubbedSource) -> None:
        sw_regions = list(self._single_writer_regions(src))
        offset = 0
        for lineno, line in enumerate(src.text.split("\n"), start=1):
            start = offset
            offset += len(line) + 1
            stripped = line.strip()
            if (not _ATOMIC_DECL_RE.search(line)
                    or stripped.startswith("#")
                    or stripped.startswith("using ")
                    or stripped.startswith("template")):
                continue
            if any(s <= start < e for s, e in sw_regions):
                continue
            decl = re.sub(r"alignas\s*\([^)]*\)", "", line)
            if "(" in decl:
                continue  # parameter, local with ctor args, or expression
            if not decl.rstrip().endswith((";", "{", "}")):
                continue
            if src.has_atomic_role(lineno):
                continue
            self._emit(
                "atomic-member", src, lineno,
                "raw std::atomic member without an `// fr-atomic: <role>` "
                "comment (or FR_SINGLE_WRITER on the owning class)",
            )

    # -- determinism ---------------------------------------------------------

    def _check_tokens(self, src: ScrubbedSource, rule: str,
                      tokens) -> None:
        for pattern, what in tokens:
            for m in re.finditer(pattern, src.text):
                line = src.line_of(m.start())
                self._emit(
                    rule, src, line,
                    f"{what} is nondeterministic; engines must stay "
                    "seed-deterministic (DESIGN.md §8)",
                )

    def _check_ptr_iter(self, src: ScrubbedSource) -> None:
        if src.path in config.DET_PTR_ITER_FILE_ALLOWLIST:
            return
        for m in _PTR_UNORDERED_RE.finditer(src.text):
            line = src.line_of(m.start())
            self._emit(
                "det-ptr-iter", src, line,
                "pointer-keyed unordered container: iteration order depends "
                "on the allocator and breaks run-to-run determinism",
            )

    # -- service I/O boundary ------------------------------------------------

    def _check_svc_boundary(self, src: ScrubbedSource) -> None:
        """The svc socket files are the service's sanctioned blocking-syscall
        site (config.SVC_IO_BOUNDARY_FILES); FR_HOT inside them would claim
        a blocking I/O path is allocation- and wait-free."""
        if src.path not in config.SVC_IO_BOUNDARY_FILES:
            return
        for m in _HOT_TOKEN_RE.finditer(src.text):
            self._emit(
                "hot-banned", src, src.line_of(m.start()),
                f"FR_HOT inside the svc I/O boundary ({src.path} is the "
                "documented blocking-syscall site and must stay cold)",
            )

    # -- layering ------------------------------------------------------------

    def _check_layering(self, src: ScrubbedSource) -> None:
        parts = src.path.split("/")
        if len(parts) < 3 or parts[0] != "src":
            return
        layer = parts[1]
        rule = config.LAYERING.get(layer)
        if rule is None:
            return
        allowed_dirs, core_interface = rule
        scrub_lines = src.text.split("\n")
        # Include paths are string literals, which scrub() blanks — match on
        # the raw text, then drop matches whose line was comment-scrubbed.
        for m in _INCLUDE_RE.finditer(src.raw):
            # Anchor on the path capture: `^\s*` may have swallowed the
            # newline of a preceding blank line.
            line = src.raw.count("\n", 0, m.start(1)) + 1
            if "include" not in scrub_lines[line - 1]:
                continue  # commented-out include
            target = m.group(1)
            target_dir = target.split("/", 1)[0]
            if target_dir in allowed_dirs:
                continue
            if core_interface and target in config.CORE_INTERFACE_HEADERS:
                continue
            self._emit(
                "layering", src, line,
                f"{layer}/ may not include \"{target}\" (allowed: "
                f"{', '.join(sorted(allowed_dirs))}"
                + (", plus core interface headers" if core_interface else "")
                + ")",
            )
