"""Token-level fr-lint engine (no dependencies beyond the Python stdlib).

The engine is deliberately *name-based*: FR_HOT functions are collected
repo-wide, and a call inside an FR_HOT body resolves against (local lambdas
| FR_HOT names | allowlist).  That makes the hot-path discipline inductive —
if every FR_HOT function only calls FR_HOT or allowlisted callees, the whole
annotated call graph is transitively free of allocation, throwing, blocking
and I/O — at the cost of treating same-named functions alike.  The libclang
engine (clang_engine.py) resolves calls semantically when available; this
engine is the floor that always runs.
"""

from __future__ import annotations

import re

from . import config
from .model import Finding, ScrubbedSource, match_brace, scrub

_HOT_TOKEN_RE = re.compile(r"\bFR_HOT\b")
_SW_TOKEN_RE = re.compile(r"\bFR_SINGLE_WRITER\b")
_NAME_BEFORE_PAREN_RE = re.compile(
    r"(operator\s*[^\s(]+|[A-Za-z_]\w*)\s*\($"
)
_CALL_RE = re.compile(r"(\boperator\s*[^\s\w(]+\s*|\b[A-Za-z_]\w*\s*)\(")
_LOCAL_LAMBDA_RE = re.compile(r"\b(?:const\s+)?auto\s+([A-Za-z_]\w*)\s*=\s*\[")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:FR_\w+\s+)?(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)(\s+final)?\s*:\s*(?:public|protected|private)\s+"
)
_OVERRIDE_RE = re.compile(r"\boverride\b")
_RMW_RE = re.compile(
    r"\b(fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\("
)
_NONRELAXED_ORDER_RE = re.compile(
    r"\bmemory_order_(acquire|release|acq_rel|seq_cst|consume)\b|"
    r"\bmemory_order::(acquire|release|acq_rel|seq_cst|consume)\b"
)
_ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag)?\b")
_PTR_UNORDERED_RE = re.compile(r"\bunordered_(?:map|set)\s*<[^;{}()]*\*")

# -- lock-discipline patterns (DESIGN.md §13) ---------------------------------

_CLASS_KEY_RE = re.compile(r"\b(?:class|struct)\s+")
# Name after `class`/`struct`, skipping capability macros / attributes.
_CLASS_NAME_RE = re.compile(
    r"(?:FR_[A-Z_]+\s*(?:\([^()]*\))?\s*|\[\[[^\]]*\]\]\s*"
    r"|alignas\s*\([^()]*\)\s*)*([A-Za-z_]\w*)"
)
_MUTEX_MEMBER_RE = re.compile(
    r"(?<![\w:])(?:mutable\s+)?("
    + "|".join(sorted((re.escape(t) for t in config.MUTEX_TYPES),
                      key=len, reverse=True))
    + r")\s+([A-Za-z_]\w*)\s*;"
)
_GUARD_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:std::|util::)?("
    + "|".join(sorted(config.GUARD_TYPES))
    + r")(?:\s*<[^;{}]*>)?\s+[A-Za-z_]\w*\s*\(([^;{}]*)\)"
)
_EXCLUDES_ANN_RE = re.compile(r"\bFR_EXCLUDES\s*\(([^()]*)\)")
_REQUIRES_ANN_RE = re.compile(r"\bFR_REQUIRES\s*\(([^()]*)\)")
_GUARDED_BY_ANN_RE = re.compile(r"\bFR_(?:PT_)?GUARDED_BY\s*\(")
_FR_MACRO_ANY_RE = re.compile(r"\bFR_[A-Z_]+\s*(?:\([^()]*\))?")
_ACCESS_SPEC_RE = re.compile(r"\b(?:public|protected|private)\s*:(?!:)")
_METHOD_DEF_RE = re.compile(r"\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\(")

# First tokens that mark a class-body statement as not-a-data-member.
_MEMBER_SKIP_FIRST = frozenset({
    "public", "protected", "private", "using", "typedef", "friend",
    "static", "template", "enum", "class", "struct", "operator",
    "virtual", "explicit", "inline", "constexpr", "static_assert",
})


def _class_extents(text: str) -> list[tuple[str, int, int]]:
    """(name, open_brace, end) for every class/struct *definition*."""
    extents = []
    for m in _CLASS_KEY_RE.finditer(text):
        before = text[: m.start()].rstrip()
        # `enum class`, `friend class`, and template parameter lists
        # (`template <class T>`) introduce no new class body here.
        if re.search(r"\benum$|\bfriend$", before) or before[-1:] in "<,":
            continue
        nm = _CLASS_NAME_RE.match(text, m.end())
        if not nm or not nm.group(1):
            continue
        depth = 0
        open_brace = None
        for i in range(nm.end(), len(text)):
            c = text[i]
            if c in "(<":
                depth += 1
            elif c in ")>":
                depth = max(0, depth - 1)
            elif depth == 0 and c == "{":
                open_brace = i
                break
            elif depth == 0 and c == ";":
                break
        if open_brace is not None:
            extents.append(
                (nm.group(1), open_brace, match_brace(text, open_brace))
            )
    return extents


def _innermost(extents, pos: int) -> str | None:
    best = None
    for name, start, end in extents:
        if start < pos < end and (best is None or end - start < best[1]):
            best = (name, end - start)
    return best[0] if best else None


def _method_spans(text: str) -> list[tuple[str, int, int]]:
    """(class, body_start, body_end) for out-of-class `Cls::name(...) {`
    definitions — the context used to qualify bare `mutex_` in .cc files."""
    spans = []
    for m in _METHOD_DEF_RE.finditer(text):
        body = _body_after_params(text, m.end() - 1)
        if body is not None:
            spans.append((m.group(1), body[0], body[1]))
    return spans


def _body_after_params(text: str, open_paren: int) -> tuple[int, int] | None:
    """From the `(` of a parameter list, finds the `{...}` body that follows
    it at paren depth 0 (skipping ctor init lists and trailing annotation
    macros).  Returns None for declarations and call expressions."""
    depth = 0
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth < 0:
                return None  # call expression inside a larger paren
        elif depth == 0:
            if c == "{":
                return i, match_brace(text, i)
            if c == ";":
                return None
    return None


def _brace_intervals(text: str) -> list[tuple[int, int]]:
    stack: list[int] = []
    intervals = []
    for i, c in enumerate(text):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            intervals.append((stack.pop(), i))
    return intervals


def _enclosing_block_end(intervals, pos: int) -> int | None:
    best = None
    for start, end in intervals:
        if start < pos <= end and (best is None or end - start < best[1]):
            best = (end, end - start)
    return best[0] if best else None


def _split_args(args: str) -> list[str]:
    """Splits an argument list on top-level commas."""
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _statements(body: str):
    """Splits a class-body string into top-level statements, collapsing
    nested brace groups (methods, nested classes, brace initializers) to
    `{}`.  Yields (statement_text, offset_of_statement_start)."""
    i, n, start, depth = 0, len(body), 0, 0
    while i < n:
        c = body[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c == "{" and depth == 0:
            group_end = match_brace(body, i)  # just past '}'
            j = group_end
            while j < n and body[j] in " \t\n":
                j += 1
            if j < n and body[j] == ";":
                yield body[start:i] + "{};", start
                i = j + 1
            else:
                yield body[start:i] + "{}", start
                i = group_end
            start = i
            continue
        elif c == ";" and depth == 0:
            yield body[start:i + 1], start
            i += 1
            start = i
            continue
        i += 1

# Tokens that, when found as the word immediately before a call-looking
# identifier, mean "this is a call, not a declaration".
_NOT_A_TYPE = frozenset({
    "return", "else", "case", "goto", "co_return", "co_yield", "in",
    "and", "or", "not",
})


def _find_declarator_end(text: str, start: int) -> tuple[int, str]:
    """From `start` (just past FR_HOT), finds the end of the declaration:
    returns (index, kind) where kind is '{' (definition) or ';' (declaration
    only).  Scans at paren depth 0 so default arguments don't confuse it."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif depth == 0 and c in "{;":
            return i, c
    return len(text), ";"


def _declared_name(decl: str) -> str | None:
    """Function name from the declaration text before its parameter list."""
    paren = _first_param_paren(decl)
    if paren is None:
        return None
    m = _NAME_BEFORE_PAREN_RE.search(decl[: paren + 1])
    if not m:
        return None
    name = m.group(1)
    if name.startswith("operator"):
        return "operator" + name[len("operator"):].strip()
    return name


def _first_param_paren(decl: str) -> int | None:
    """Index of the '(' opening the parameter list (the first paren at
    angle-bracket depth 0 — return types like std::optional<T> have none)."""
    angle = 0
    for i, c in enumerate(decl):
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(" and angle == 0:
            return i
    return None


class FallbackEngine:
    def __init__(self, sources: list[ScrubbedSource]):
        self.sources = sources
        self.hot_names: set[str] = set()
        self.findings: list[Finding] = []
        self._collect_hot_names()

    @classmethod
    def from_files(cls, root, paths: list[str]) -> "FallbackEngine":
        sources = []
        for rel in paths:
            raw = (root / rel).read_text(encoding="utf-8", errors="replace")
            sources.append(scrub(rel, raw))
        return cls(sources)

    # -- collection ----------------------------------------------------------

    def _collect_hot_names(self) -> None:
        for src in self.sources:
            for m in _HOT_TOKEN_RE.finditer(src.text):
                end, _ = _find_declarator_end(src.text, m.end())
                name = _declared_name(src.text[m.end(): end])
                if name:
                    self.hot_names.add(name)

    # -- entry point ---------------------------------------------------------

    def analyze(self) -> list[Finding]:
        for src in self.sources:
            self._check_hot_bodies(src)
            self._check_hot_virtual(src)
            self._check_single_writer(src)
            self._check_atomic_members(src)
            self._check_tokens(src, "det-random", config.DET_RANDOM_TOKENS)
            if src.path not in config.DET_WALLCLOCK_FILE_ALLOWLIST:
                self._check_tokens(
                    src, "det-wallclock", config.DET_WALLCLOCK_TOKENS
                )
            self._check_ptr_iter(src)
            self._check_svc_boundary(src)
            self._check_layering(src)
        self._check_lock_rules()
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        )

    def _emit(self, rule: str, src: ScrubbedSource, line: int,
              message: str) -> None:
        if not src.allowed(rule, line):
            self.findings.append(Finding(rule, src.path, line, message))

    # -- hot-path purity -----------------------------------------------------

    def _hot_bodies(self, src: ScrubbedSource):
        for m in _HOT_TOKEN_RE.finditer(src.text):
            end, kind = _find_declarator_end(src.text, m.end())
            if kind != "{":
                continue
            name = _declared_name(src.text[m.end(): end])
            body_end = match_brace(src.text, end)
            yield name or "<unknown>", end, body_end

    def _check_hot_bodies(self, src: ScrubbedSource) -> None:
        for name, body_start, body_end in self._hot_bodies(src):
            body = src.text[body_start:body_end]
            local_ok = set(_LOCAL_LAMBDA_RE.findall(body))
            self._scan_banned_tokens(src, name, body, body_start)
            self._scan_calls(src, name, body, body_start, local_ok)

    def _scan_banned_tokens(self, src: ScrubbedSource, name: str,
                            body: str, base: int) -> None:
        for pattern, what in config.BANNED_TOKENS:
            for m in re.finditer(pattern, body):
                line = src.line_of(base + m.start())
                self._emit(
                    "hot-banned", src, line,
                    f"{what} in FR_HOT function '{name}'",
                )

    def _scan_calls(self, src: ScrubbedSource, name: str, body: str,
                    base: int, local_ok: set[str]) -> None:
        for m in _CALL_RE.finditer(body):
            callee = m.group(1).strip()
            if callee in config.CALL_KEYWORDS:
                continue
            if callee.startswith("operator"):
                continue  # operator calls resolve like methods; keep lenient
            line = src.line_of(base + m.start())
            prev = body[: m.start()].rstrip()
            prev_char = prev[-1:] if prev else ""
            if prev_char and (prev_char.isalnum() or prev_char == "_"):
                prev_word = re.search(r"([A-Za-z_]\w*)$", prev)
                word = prev_word.group(1) if prev_word else ""
                if word not in _NOT_A_TYPE and word not in config.CALL_KEYWORDS:
                    # `Type name(args)` — a declaration; vet the type.
                    type_name = word
                    if (type_name in config.TYPE_ALLOWLIST
                            or type_name in self.hot_names):
                        continue
                    self._emit(
                        "hot-call", src, line,
                        f"FR_HOT function '{name}' constructs "
                        f"'{type_name}', which is neither FR_HOT nor "
                        "allowlisted",
                    )
                    continue
            if callee in local_ok:
                continue
            if callee in self.hot_names:
                continue
            if callee in config.CALL_ALLOWLIST:
                continue
            if callee in config.TYPE_ALLOWLIST:
                continue  # functional cast / temporary of a vetted type
            if callee in config.BANNED_CALLS:
                self._emit(
                    "hot-banned", src, line,
                    f"call to '{callee}' (allocating or I/O) in FR_HOT "
                    f"function '{name}'",
                )
                continue
            self._emit(
                "hot-call", src, line,
                f"FR_HOT function '{name}' calls '{callee}', which is "
                "neither FR_HOT nor allowlisted",
            )

    def _check_hot_virtual(self, src: ScrubbedSource) -> None:
        for m in _CLASS_RE.finditer(src.text):
            is_final = bool(m.group(3))
            if is_final:
                continue
            class_name = m.group(2)
            open_brace = src.text.find("{", m.end())
            if open_brace == -1:
                continue
            body_end = match_brace(src.text, open_brace)
            body = src.text[open_brace:body_end]
            for om in _OVERRIDE_RE.finditer(body):
                # `override final` (either order) devirtualizes the slot.
                window = body[max(0, om.start() - 48): om.start() + 48]
                if re.search(r"\bfinal\b", window):
                    continue
                line = src.line_of(open_brace + om.start())
                self._emit(
                    "hot-virtual", src, line,
                    f"'{class_name}' overrides a virtual method but neither "
                    "the class nor the method is final; hot-path calls "
                    "cannot be devirtualized",
                )

    # -- atomics discipline --------------------------------------------------

    def _single_writer_regions(self, src: ScrubbedSource):
        for m in _SW_TOKEN_RE.finditer(src.text):
            open_brace = src.text.find("{", m.end())
            if open_brace == -1:
                continue
            yield open_brace, match_brace(src.text, open_brace)

    def _check_single_writer(self, src: ScrubbedSource) -> None:
        for start, end in self._single_writer_regions(src):
            body = src.text[start:end]
            for m in _RMW_RE.finditer(body):
                line = src.line_of(start + m.start())
                self._emit(
                    "single-writer", src, line,
                    f"read-modify-write atomic '{m.group(1)}' inside an "
                    "FR_SINGLE_WRITER lane (single-writer lanes use plain "
                    "load+store)",
                )
            for m in _NONRELAXED_ORDER_RE.finditer(body):
                line = src.line_of(start + m.start())
                self._emit(
                    "single-writer", src, line,
                    "non-relaxed memory order inside an FR_SINGLE_WRITER "
                    "lane",
                )

    def _check_atomic_members(self, src: ScrubbedSource) -> None:
        sw_regions = list(self._single_writer_regions(src))
        offset = 0
        for lineno, line in enumerate(src.text.split("\n"), start=1):
            start = offset
            offset += len(line) + 1
            stripped = line.strip()
            if (not _ATOMIC_DECL_RE.search(line)
                    or stripped.startswith("#")
                    or stripped.startswith("using ")
                    or stripped.startswith("template")):
                continue
            if any(s <= start < e for s, e in sw_regions):
                continue
            decl = re.sub(r"alignas\s*\([^)]*\)", "", line)
            if "(" in decl:
                continue  # parameter, local with ctor args, or expression
            if not decl.rstrip().endswith((";", "{", "}")):
                continue
            if src.has_atomic_role(lineno):
                continue
            self._emit(
                "atomic-member", src, lineno,
                "raw std::atomic member without an `// fr-atomic: <role>` "
                "comment (or FR_SINGLE_WRITER on the owning class)",
            )

    # -- determinism ---------------------------------------------------------

    def _check_tokens(self, src: ScrubbedSource, rule: str,
                      tokens) -> None:
        for pattern, what in tokens:
            for m in re.finditer(pattern, src.text):
                line = src.line_of(m.start())
                self._emit(
                    rule, src, line,
                    f"{what} is nondeterministic; engines must stay "
                    "seed-deterministic (DESIGN.md §8)",
                )

    def _check_ptr_iter(self, src: ScrubbedSource) -> None:
        if src.path in config.DET_PTR_ITER_FILE_ALLOWLIST:
            return
        for m in _PTR_UNORDERED_RE.finditer(src.text):
            line = src.line_of(m.start())
            self._emit(
                "det-ptr-iter", src, line,
                "pointer-keyed unordered container: iteration order depends "
                "on the allocator and breaks run-to-run determinism",
            )

    # -- service I/O boundary ------------------------------------------------

    def _check_svc_boundary(self, src: ScrubbedSource) -> None:
        """The svc socket files are the service's sanctioned blocking-syscall
        site (config.SVC_IO_BOUNDARY_FILES); FR_HOT inside them would claim
        a blocking I/O path is allocation- and wait-free."""
        if src.path not in config.SVC_IO_BOUNDARY_FILES:
            return
        for m in _HOT_TOKEN_RE.finditer(src.text):
            self._emit(
                "hot-banned", src, src.line_of(m.start()),
                f"FR_HOT inside the svc I/O boundary ({src.path} is the "
                "documented blocking-syscall site and must stay cold)",
            )

    # -- layering ------------------------------------------------------------

    def _check_layering(self, src: ScrubbedSource) -> None:
        parts = src.path.split("/")
        if len(parts) < 3 or parts[0] != "src":
            return
        layer = parts[1]
        rule = config.LAYERING.get(layer)
        if rule is None:
            return
        allowed_dirs, core_interface = rule
        scrub_lines = src.text.split("\n")
        # Include paths are string literals, which scrub() blanks — match on
        # the raw text, then drop matches whose line was comment-scrubbed.
        for m in _INCLUDE_RE.finditer(src.raw):
            # Anchor on the path capture: `^\s*` may have swallowed the
            # newline of a preceding blank line.
            line = src.raw.count("\n", 0, m.start(1)) + 1
            if "include" not in scrub_lines[line - 1]:
                continue  # commented-out include
            target = m.group(1)
            target_dir = target.split("/", 1)[0]
            if target_dir in allowed_dirs:
                continue
            if core_interface and target in config.CORE_INTERFACE_HEADERS:
                continue
            self._emit(
                "layering", src, line,
                f"{layer}/ may not include \"{target}\" (allowed: "
                f"{', '.join(sorted(allowed_dirs))}"
                + (", plus core interface headers" if core_interface else "")
                + ")",
            )

    # -- lock discipline (DESIGN.md §13) -------------------------------------
    #
    # Three rules over one shared model of the tree's locks:
    #   guarded-member  every mutable field of a mutex-owning class carries
    #                   FR_GUARDED_BY, an `// fr-atomic:` role, or an allow
    #   lock-order      the cross-TU acquisition graph (lexical guard scopes
    #                   + FR_EXCLUDES edges) must be acyclic
    #   cap-boundary    no svc socket blocking call with a capability held
    #
    # The model is lexical and name-based, like the hot-path rules: a guard
    # declaration holds its capability to the end of the enclosing block, and
    # a call to a method annotated FR_EXCLUDES(m) counts as acquiring m.

    def _check_lock_rules(self) -> None:
        model = self._collect_lock_model()
        edges: list[tuple[str, str, ScrubbedSource, int]] = []
        for src in self.sources:
            self._check_guarded_members(src, model)
            self._scan_held_scopes(src, model, edges)
        self._check_lock_cycles(edges)

    def _collect_lock_model(self) -> dict:
        model: dict = {
            "extents": {}, "spans": {},
            "class_mutexes": {}, "mutex_owners": {}, "extent_mutexes": {},
            "excludes": {}, "linked_requires": {},
        }
        for src in self.sources:
            extents = _class_extents(src.text)
            model["extents"][src.path] = extents
            model["spans"][src.path] = _method_spans(src.text)
            for m in _MUTEX_MEMBER_RE.finditer(src.text):
                member = m.group(2)
                best = None
                for name, start, end in extents:
                    if start < m.start() < end and (
                            best is None or end - start < best[2] - best[1]):
                        best = (name, start, end)
                if best is None:
                    continue
                cls = best[0]
                model["class_mutexes"].setdefault(cls, set()).add(member)
                model["mutex_owners"].setdefault(member, set()).add(cls)
                # Ownership is per class *body*, not per name: two classes
                # may share a name across TUs (sim has two `Lane`s).
                model["extent_mutexes"].setdefault(
                    (src.path, best[1]), set()).add(member)
        for src in self.sources:
            self._collect_annotated_methods(src, model)
        return model

    def _normalize_cap(self, arg: str, ctx: str | None, model: dict) -> str:
        """Canonical `Class::member` key for a capability expression, so the
        same lock names alike across translation units."""
        arg = re.sub(r"^this->", "", arg.strip())
        if re.fullmatch(r"[A-Za-z_]\w*", arg):
            if ctx and arg in model["class_mutexes"].get(ctx, ()):
                return f"{ctx}::{arg}"
            owners = model["mutex_owners"].get(arg)
            if owners and len(owners) == 1:
                return f"{next(iter(owners))}::{arg}"
            return arg
        m = re.search(r"(?:\.|->)([A-Za-z_]\w*)\s*$", arg)
        if m:
            owners = model["mutex_owners"].get(m.group(1))
            if owners and len(owners) == 1:
                return f"{next(iter(owners))}::{m.group(1)}"
            return m.group(1)
        return arg

    def _context_class(self, src: ScrubbedSource, pos: int,
                       model: dict) -> str | None:
        cls = _innermost(model["extents"][src.path], pos)
        if cls is not None:
            return cls
        return _innermost(model["spans"][src.path], pos)

    def _collect_annotated_methods(self, src: ScrubbedSource,
                                   model: dict) -> None:
        for ann_re, table in ((_EXCLUDES_ANN_RE, "excludes"),
                              (_REQUIRES_ANN_RE, "linked_requires")):
            for m in ann_re.finditer(src.text):
                line_start = src.text.rfind("\n", 0, m.start()) + 1
                if src.text[line_start: m.start()].lstrip().startswith("#"):
                    continue  # the macro's own #define in annotations.h
                stmt_start = max(
                    src.text.rfind(t, 0, m.start()) for t in ";{}")
                decl = src.text[stmt_start + 1: m.start()]
                name = _declared_name(decl)
                if name is None:
                    continue
                if table == "linked_requires":
                    # A capability that names a *parameter* (CondVar::wait)
                    # cannot be resolved by name at call sites; skip it.
                    paren = _first_param_paren(decl)
                    params = decl[paren:] if paren is not None else ""
                    if any(re.search(rf"\b{re.escape(a)}\b", params)
                           for a in _split_args(m.group(1))):
                        continue
                ctx = self._context_class(src, m.start(), model)
                for arg in _split_args(m.group(1)):
                    key = self._normalize_cap(arg, ctx, model)
                    model[table].setdefault(name, set()).add(key)

    # -- rule: guarded-member ------------------------------------------------

    def _check_guarded_members(self, src: ScrubbedSource,
                               model: dict) -> None:
        for cls, open_brace, end in model["extents"][src.path]:
            if not model["extent_mutexes"].get((src.path, open_brace)):
                continue
            base = open_brace + 1
            body = _ACCESS_SPEC_RE.sub(
                lambda m: " " * len(m.group(0)),
                src.text[base: end - 1])
            for stmt, offset in _statements(body):
                lead = len(stmt) - len(stmt.lstrip())
                line = src.line_of(base + offset + lead)
                if self._member_needs_guard(stmt, src, line):
                    self._emit(
                        "guarded-member", src, line,
                        f"mutable field of mutex-owning class '{cls}' has "
                        "no FR_GUARDED_BY (annotate it, give it an "
                        "`// fr-atomic:` role, or allow with a reason)",
                    )

    def _member_needs_guard(self, stmt: str, src: ScrubbedSource,
                            line: int) -> bool:
        if _GUARDED_BY_ANN_RE.search(stmt) or src.has_atomic_role(line):
            return False
        s = _FR_MACRO_ANY_RE.sub(" ", stmt)
        s = re.sub(r"\balignas\s*\([^()]*\)|\[\[[^\]]*\]\]", " ", s).strip()
        if not s.endswith(";") or s.startswith("#"):
            return False
        first = re.match(r"~?[A-Za-z_]\w*", s)
        if not first or first.group(0) in _MEMBER_SKIP_FIRST:
            return False
        if "(" in s:
            return False  # method, ctor, or paren-initialized — not a field
        flat = s
        for _ in range(4):  # drop template arguments (nested up to 4 deep)
            flat = re.sub(r"<[^<>]*>", "", flat)
        if re.search(r"\bconst\b", flat) or "&" in flat:
            return False  # immutable or reference member
        if _ATOMIC_DECL_RE.search(s):
            return False  # the atomic-member rule owns atomics
        if any(re.search(rf"(?<![\w:]){re.escape(t)}\b", s)
               for t in config.SYNC_MEMBER_TYPES):
            return False  # the synchronizer itself, not data
        return True

    # -- rules: lock-order, cap-boundary -------------------------------------

    def _held_scopes(self, src: ScrubbedSource, model: dict):
        """(capability, start, end, line) for every region of `src` that
        lexically holds a lock: RAII guard declarations to end-of-block,
        plus bodies of functions annotated FR_REQUIRES(member)."""
        intervals = _brace_intervals(src.text)
        scopes = []
        for m in _GUARD_DECL_RE.finditer(src.text):
            block_end = _enclosing_block_end(intervals, m.start())
            if block_end is None:
                continue
            ctx = self._context_class(src, m.start(), model)
            for arg in _split_args(m.group(2)):
                scopes.append((self._normalize_cap(arg, ctx, model),
                               m.end(), block_end,
                               src.line_of(m.start())))
        for name, caps in model["linked_requires"].items():
            for dm in re.finditer(rf"\b{re.escape(name)}\s*\(", src.text):
                body = _body_after_params(src.text, dm.end() - 1)
                if body is None:
                    continue
                for key in caps:
                    scopes.append((key, body[0] + 1, body[1] - 1,
                                   src.line_of(body[0])))
        return scopes

    def _scan_held_scopes(self, src: ScrubbedSource, model: dict,
                          edges: list) -> None:
        scopes = self._held_scopes(src, model)
        if not scopes:
            return
        excludes = model["excludes"]
        call_res = []
        if excludes:
            call_res.append((re.compile(
                r"\b(" + "|".join(sorted(map(re.escape, excludes)))
                + r")\s*\("), "excludes"))
        call_res.append((re.compile(
            r"\b(" + "|".join(sorted(map(re.escape,
                                         config.CAP_BOUNDARY_CALLS)))
            + r")\s*\("), "boundary"))
        for held, start, end, _hline in scopes:
            for call_re, kind in call_res:
                for m in call_re.finditer(src.text, start, end):
                    name = m.group(1)
                    line = src.line_of(m.start())
                    if kind == "boundary":
                        self._emit(
                            "cap-boundary", src, line,
                            f"blocking svc I/O call '{name}' while holding "
                            f"'{held}' (the socket boundary parks the lock "
                            "on peer behavior; release before blocking)",
                        )
                        continue
                    for cap in excludes[name]:
                        edges.append((held, cap, src, line))
            # A guard declared while another guard's capability is held is
            # a direct acquisition edge.
            for other, ostart, _oe, oline in scopes:
                if start < ostart < end:
                    edges.append((held, other, src, oline))

    def _check_lock_cycles(self, edges: list) -> None:
        graph: dict[str, list] = {}
        seen: set[tuple[str, str]] = set()
        for held, target, src, line in sorted(
                edges, key=lambda e: (e[0], e[1], e[2].path, e[3])):
            if (held, target) in seen:
                continue
            seen.add((held, target))
            graph.setdefault(held, []).append((target, src, line))
        state: dict[str, int] = {}
        stack: list[str] = []

        def visit(node: str) -> None:
            state[node] = 1
            stack.append(node)
            for target, src, line in graph.get(node, ()):
                if state.get(target, 0) == 1:
                    cycle = stack[stack.index(target):] + [target]
                    self._emit(
                        "lock-order", src, line,
                        "lock acquisition cycle: "
                        + " -> ".join(cycle)
                        + " (threads taking these locks in different "
                        "orders can deadlock)",
                    )
                elif state.get(target, 0) == 0:
                    visit(target)
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                visit(node)
