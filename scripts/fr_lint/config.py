"""Rule configuration for fr-lint: allowlists, banned tokens, layering map.

Policy (DESIGN.md §8): allowlists are the *documented* escape hatches.  A
name belongs here only when every use of it in hot code is allocation-free
and non-blocking by construction (or is the designed boundary, like the
Sink handoff).  One-off exceptions belong at the use site as an inline
`// fr-lint: allow(<rule>): <reason>` suppression instead, so the reason
sits next to the code it excuses.
"""

from __future__ import annotations

# --- hot-path purity ---------------------------------------------------------

# Annotation tokens (src/util/annotations.h).
HOT_ANNOTATION = "FR_HOT"
SINGLE_WRITER_ANNOTATION = "FR_SINGLE_WRITER"

# Call names an FR_HOT body may always make: known allocation-free,
# non-blocking primitives and containers-by-reference accessors.
CALL_ALLOWLIST = frozenset({
    # libc / builtin memory and math primitives (no allocation)
    "memcpy", "memset", "memcmp", "memmove", "abs", "assert",
    # <algorithm>/<numeric>/<bit> value helpers (in-place / pure)
    "min", "max", "clamp", "swap", "move", "forward", "exchange_value",
    "bit_width", "popcount", "countl_zero", "countr_zero",
    # in-place heap maintenance over a preallocated vector
    "push_heap", "pop_heap",
    # std::byte conversion
    "to_integer",
    # container/span/optional accessors (no allocation, by reference)
    "size", "empty", "data", "begin", "end", "rbegin", "rend",
    "front", "back", "first", "last", "subspan", "capacity",
    "value", "value_or", "has_value", "contains", "count",
    "time_since_epoch",
    "pop_back",  # shrinks, never allocates
    # atomics: allowed in hot code generally; the single-writer rule
    # separately bans RMW inside FR_SINGLE_WRITER lanes
    "load", "store", "test_and_set", "clear", "fetch_add", "fetch_sub",
    "fetch_or", "fetch_and", "exchange",
    "compare_exchange_weak", "compare_exchange_strong",
    # pacing primitives of the real-time runtimes: send() spins on the
    # token bucket and idle_until() sleeps by design (the round barrier)
    "yield", "sleep_for",
    # the ScanRuntime::Sink handoff — one indirect call per packet is the
    # receive contract; its target is the engine's FR_HOT on_packet
    "sink",
})

# Type names allowed in constructor position inside an FR_HOT body
# (trivial/POD construction, no heap).
TYPE_ALLOWLIST = frozenset({
    "byte", "span", "array", "optional", "pair", "tuple",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "size_t", "ptrdiff_t", "Nanos",
    # SpinLock meets BasicLockable; lock_guard over it is two atomic ops.
    # Real mutexes are caught separately by the std::mutex token ban.
    "lock_guard",
    # repo POD/value types constructed on hot paths
    "Ipv4Address", "ByteReader", "ByteWriter", "PacketSlot", "TokenBucket",
    "ProcessedResponse", "Pending", "Slot", "Entry", "RouteHop",
    "Ipv4Header", "UdpHeader", "TcpHeader", "IcmpHeader", "ParsedResponse",
    "DecodedProbe", "Route", "RouteSilence",
})

# Call names that mean heap allocation (or unbounded growth) — banned in
# FR_HOT bodies unless suppressed at the use site with a documented reason.
BANNED_CALLS = frozenset({
    "malloc", "calloc", "realloc", "free", "strdup",
    "push_back", "emplace_back", "emplace", "resize", "reserve",
    "assign", "append", "insert", "make_unique", "make_shared",
    "to_string", "str", "substr", "stoi", "stol", "stoul", "stoull",
    # I/O
    "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs",
    "fopen", "fclose", "fwrite", "fread", "fflush", "getline", "flush",
    "open", "close", "write", "read",
})

# Raw tokens banned in FR_HOT bodies (keywords and types; matched on the
# scrubbed source, so comments and strings never trigger them).
BANNED_TOKENS = (
    (r"\bnew\b", "heap allocation (new)"),
    (r"\bdelete\b", "heap deallocation (delete)"),
    (r"\bthrow\b", "throw expression"),
    (r"\bstd::mutex\b", "std::mutex"),
    (r"\bstd::recursive_mutex\b", "std::recursive_mutex"),
    (r"\bstd::shared_mutex\b", "std::shared_mutex"),
    (r"\bstd::condition_variable\b", "std::condition_variable"),
    (r"\bpthread_mutex\w*\b", "pthread mutex"),
    (r"\bstd::string\b", "std::string construction"),
    (r"\bostringstream\b|\bstringstream\b", "string stream"),
    (r"\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b", "stream I/O"),
    (r"\bofstream\b|\bifstream\b|\bfstream\b", "file stream"),
)

# --- determinism -------------------------------------------------------------

DET_RANDOM_TOKENS = (
    (r"\bstd::random_device\b|\brandom_device\b", "std::random_device"),
    (r"\bsrand\s*\(", "srand()"),
    (r"\brand\s*\(\s*\)", "rand()"),
    (r"\bdrand48\s*\(|\blrand48\s*\(|\bmrand48\s*\(", "*rand48()"),
)

DET_WALLCLOCK_TOKENS = (
    (r"\bsystem_clock\b", "std::chrono::system_clock"),
    (r"\bsteady_clock\b", "std::chrono::steady_clock"),
    (r"\bhigh_resolution_clock\b", "std::chrono::high_resolution_clock"),
    (r"\bgettimeofday\s*\(", "gettimeofday()"),
    (r"\bclock_gettime\s*\(", "clock_gettime()"),
    (r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)", "time()"),
    (r"\blocaltime\s*\(|\bgmtime\s*\(", "broken-down wall time"),
)

# Files allowed to read the wall clock: the Clock implementations are the
# single sanctioned boundary (engines only ever see util::Nanos).
DET_WALLCLOCK_FILE_ALLOWLIST = frozenset({
    "src/util/clock.h",
})

# Pointer-keyed unordered containers: iteration order depends on the
# allocator, which breaks run-to-run determinism.  No file in src/ needs
# one; scan outputs are keyed by integers (addresses, /24 indices).
DET_PTR_ITER_FILE_ALLOWLIST: frozenset[str] = frozenset()

# --- layering ----------------------------------------------------------------

# core/ headers that form the engine's *interface* to the rest of the tree:
# runtime abstractions, results, and the codec/target helpers baselines and
# transports legitimately share.  Everything else under core/ (DCBs, the
# tracer itself) is internal.
CORE_INTERFACE_HEADERS = frozenset({
    "core/runtime.h",
    "core/result.h",
    "core/threaded_runtime.h",
    "core/sharded_tracer.h",
    "core/probe_codec.h",
    "core/targets.h",
})

# Directory (relative to src/) -> directories it may include from.  A file
# may always include its own directory.  `+core-interface` grants the
# CORE_INTERFACE_HEADERS exception.
LAYERING: dict[str, tuple[frozenset[str], bool]] = {
    "util": (frozenset({"util"}), False),
    "net": (frozenset({"net", "util"}), True),
    "obs": (frozenset({"obs", "util"}), False),
    "io": (frozenset({"io", "net", "util"}), True),
    "core": (frozenset({"core", "net", "util", "obs", "io"}), False),
    "baselines": (frozenset({"baselines", "net", "util", "obs"}), True),
    "sim": (frozenset({"sim", "net", "util", "obs"}), True),
    "analysis": (
        frozenset({"analysis", "core", "net", "util", "obs", "io"}),
        False,
    ),
    # The scan-job service orchestrates everything below it: engines (core),
    # simulated worlds (sim), persistence (io), churn queries (analysis).
    "svc": (
        frozenset({"svc", "core", "net", "util", "obs", "io", "sim",
                   "analysis"}),
        False,
    ),
}

# The service's documented syscall boundary (DESIGN.md §12, §14): every
# socket / poll / pipe call in src/svc lives in the socket files, and every
# journal file write lives in the journal files — nowhere else.  Blocking
# I/O is their whole purpose, so a hot-path annotation inside them is a
# contradiction — the engine flags FR_HOT there as hot-banned.
SVC_IO_BOUNDARY_FILES = frozenset({
    "src/svc/socket.h",
    "src/svc/socket.cc",
    "src/svc/journal.h",
    "src/svc/journal.cc",
})

# --- lock discipline (DESIGN.md §13) -----------------------------------------

# Type names that make a class "mutex-owning" when held by value: every
# other mutable field of such a class must carry FR_GUARDED_BY, an
# `// fr-atomic: <role>` comment, or an explicit allow (rule guarded-member).
MUTEX_TYPES = frozenset({
    "std::mutex", "util::Mutex", "Mutex",
})

# RAII guard types whose declaration lexically acquires a capability for
# the rest of the enclosing block (rules lock-order, cap-boundary).
GUARD_TYPES = frozenset({
    "lock_guard", "unique_lock", "scoped_lock", "MutexLock",
})

# Synchronization-primitive member types that are not "data" for the
# guarded-member rule (they synchronize; nothing guards them).
SYNC_MEMBER_TYPES = frozenset({
    "std::mutex", "util::Mutex", "Mutex",
    "std::condition_variable", "std::condition_variable_any",
    "util::CondVar", "CondVar",
})

# The blocking entry points of the svc I/O boundary (socket.h): calling one
# with any capability held parks a lock on peer behavior (rule
# cap-boundary).  WakePipe::wake()/drain() are deliberately absent — both
# are single-syscall, non-blocking, and documented as cross-thread-safe.
CAP_BOUNDARY_CALLS = frozenset({
    "read_frame", "write_frame", "accept_client", "wait_readable",
    "connect_unix", "bind_and_listen",
})

# --- scan scope --------------------------------------------------------------

SOURCE_DIRS = ("src",)
SOURCE_SUFFIXES = (".h", ".cc")

# C++ keywords that look like calls to the token scanner.
CALL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "catch", "case",
    "do", "else", "goto", "new", "delete", "throw", "defined", "requires",
    "operator",
})
