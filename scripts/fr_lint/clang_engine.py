"""libclang fr-lint engine: semantic call resolution for the hot-path rules.

Subclasses the fallback engine and replaces only the hot-body analysis
(rules hot-call / hot-banned) with an AST walk: FR_HOT functions are found
by their `[[clang::annotate("fr::hot")]]` attribute and each call inside a
hot body resolves to its *referenced declaration*, so same-named functions
are no longer conflated.  The textual rules (determinism, layering,
atomics, hot-virtual) are inherited — they are token properties of the
source, and the fallback passes are already exact for them.

Requires the libclang Python bindings (Debian/Ubuntu: python3-clang).
Import and library loading are probed by run.py; when either is missing,
run.py falls back to the token engine (or exits 2 under --engine clang).
A compile_commands.json (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON) supplies
per-file flags; without one, files parse with default C++20 flags plus any
`extra_args` (the selftest passes -I for the fixture prelude).
"""

from __future__ import annotations

import json
import pathlib

from clang import cindex

from . import config
from .fallback_engine import FallbackEngine
from .model import ScrubbedSource, scrub

_HOT_ANNOTATION = "fr::hot"
_DEFAULT_ARGS = ["-x", "c++", "-std=c++20"]

_LIBRARY_CANDIDATES = (
    "libclang.so",
    "libclang-18.so.1", "libclang-17.so.1", "libclang-16.so.1",
    "libclang-15.so.1", "libclang-14.so.1", "libclang-13.so.1",
)


def _make_index() -> "cindex.Index":
    try:
        return cindex.Index.create()
    except cindex.LibclangError:
        for name in _LIBRARY_CANDIDATES:
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
                return cindex.Index.create()
            except cindex.LibclangError:
                continue
        raise


def _is_hot(cursor) -> bool:
    return any(
        child.kind == cindex.CursorKind.ANNOTATE_ATTR
        and child.spelling == _HOT_ANNOTATION
        for child in cursor.get_children()
    )


def _load_compile_args(path: str | None) -> dict[str, list[str]]:
    """Maps absolute source path -> compiler args (flags only, no -c/-o)."""
    if path is None:
        return {}
    args_by_file: dict[str, list[str]] = {}
    for entry in json.loads(pathlib.Path(path).read_text(encoding="utf-8")):
        raw = entry.get("arguments") or entry["command"].split()
        args: list[str] = []
        skip = False
        for token in raw[1:]:
            if skip:
                skip = False
                continue
            if token in ("-c", "-o"):
                skip = token == "-o"
                continue
            args.append(token)
        source = str(
            (pathlib.Path(entry["directory"]) / entry["file"]).resolve()
        )
        args_by_file[source] = [a for a in args if a != entry["file"]]
    return args_by_file


class ClangEngine(FallbackEngine):
    def __init__(self, sources: list[ScrubbedSource],
                 real_paths: dict[str, str],
                 compile_commands: str | None = None,
                 extra_args: list[str] | None = None):
        super().__init__(sources)
        self.real_paths = real_paths
        self.compile_args = _load_compile_args(compile_commands)
        self.extra_args = list(extra_args or [])
        self.index = _make_index()

    @classmethod
    def from_files(cls, root, paths: list[str],
                   compile_commands: str | None = None,
                   extra_args: list[str] | None = None) -> "ClangEngine":
        sources = []
        real_paths = {}
        for rel in paths:
            real = str((pathlib.Path(root) / rel).resolve())
            raw = pathlib.Path(real).read_text(
                encoding="utf-8", errors="replace"
            )
            sources.append(scrub(rel, raw))
            real_paths[rel] = real
        if compile_commands is None:
            default = pathlib.Path(root) / "build" / "compile_commands.json"
            if default.is_file():
                compile_commands = str(default)
        return cls(sources, real_paths, compile_commands, extra_args)

    # -- semantic hot-body analysis ------------------------------------------

    def _check_hot_bodies(self, src: ScrubbedSource) -> None:
        real = self.real_paths.get(src.path, src.path)
        args = self.compile_args.get(real)
        if args is None:
            args = _DEFAULT_ARGS + self.extra_args
        try:
            tu = self.index.parse(real, args=args)
        except cindex.TranslationUnitLoadError:
            super()._check_hot_bodies(src)  # parse failed: textual floor
            return
        main_file = str(pathlib.Path(real).resolve())
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (
                cindex.CursorKind.FUNCTION_DECL,
                cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.CONSTRUCTOR,
                cindex.CursorKind.CONVERSION_FUNCTION,
            ):
                continue
            if not cursor.is_definition() or not _is_hot(cursor):
                continue
            location = cursor.location
            if location.file is None or str(
                pathlib.Path(str(location.file)).resolve()
            ) != main_file:
                continue
            self._walk_hot_body(src, cursor)

    def _walk_hot_body(self, src: ScrubbedSource, fn) -> None:
        name = fn.spelling or "<unknown>"
        extent = fn.extent
        for node in fn.walk_preorder():
            kind = node.kind
            line = node.location.line
            if kind == cindex.CursorKind.CXX_NEW_EXPR:
                self._emit("hot-banned", src, line,
                           f"heap allocation (new) in FR_HOT function "
                           f"'{name}'")
            elif kind == cindex.CursorKind.CXX_DELETE_EXPR:
                self._emit("hot-banned", src, line,
                           f"heap deallocation (delete) in FR_HOT function "
                           f"'{name}'")
            elif kind == cindex.CursorKind.CXX_THROW_EXPR:
                self._emit("hot-banned", src, line,
                           f"throw expression in FR_HOT function '{name}'")
            elif kind == cindex.CursorKind.CALL_EXPR:
                self._check_call(src, name, extent, node)

    def _check_call(self, src: ScrubbedSource, name: str, extent,
                    node) -> None:
        ref = node.referenced
        callee = (ref.spelling if ref is not None else node.spelling) or ""
        if not callee:
            return  # indirect call through a function pointer/std::function
        if ref is not None:
            if _is_hot(ref) or _is_hot(ref.canonical):
                return
            # Calls into a lambda (or helper) defined inside this hot body
            # inherit its discipline: the lambda's own calls are walked too.
            loc = ref.location
            if (loc.file is not None and extent.start.file is not None
                    and str(loc.file) == str(extent.start.file)
                    and extent.start.line <= loc.line <= extent.end.line):
                return
            # Compiler-defaulted/trivial special members never allocate.
            if ref.kind == cindex.CursorKind.CONSTRUCTOR and (
                    ref.is_default_constructor() or ref.is_copy_constructor()
                    or ref.is_move_constructor()) and ref.is_defaulted_method():
                return
        if callee in config.CALL_ALLOWLIST or callee in config.TYPE_ALLOWLIST:
            return
        line = node.location.line
        if callee in config.BANNED_CALLS:
            self._emit("hot-banned", src, line,
                       f"call to '{callee}' (allocating or I/O) in FR_HOT "
                       f"function '{name}'")
            return
        self._emit("hot-call", src, line,
                   f"FR_HOT function '{name}' calls '{callee}', which is "
                   "neither FR_HOT nor allowlisted")
