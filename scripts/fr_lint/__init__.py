"""fr-lint: repo-specific static analysis for the FlashRoute reproduction.

Enforces the invariants DESIGN.md §8 documents:

  * hot-path purity    (rules hot-call, hot-banned, hot-virtual)
  * atomics discipline (rules single-writer, atomic-member)
  * determinism        (rules det-random, det-wallclock, det-ptr-iter)
  * include layering   (rule layering)
  * lock discipline    (rules guarded-member, lock-order, cap-boundary;
                        DESIGN.md §13)

Two engines produce findings: a libclang engine over the CMake-exported
compile_commands.json (engine=clang) and a pure-stdlib token-level engine
(engine=fallback) that needs nothing beyond Python 3.  Both are driven by
run.py and checked against the fixture corpus by selftest.py.
"""

RULES = (
    "hot-call",
    "hot-banned",
    "hot-virtual",
    "single-writer",
    "atomic-member",
    "det-random",
    "det-wallclock",
    "det-ptr-iter",
    "layering",
    "guarded-member",
    "lock-order",
    "cap-boundary",
)
