"""fr-lint self-test: prove every rule fires on a violating fixture and
stays silent on a conforming one.

Each rule has a bad_/good_ pair under fixtures/.  A fixture is scanned in
isolation under a *scan path* chosen per rule (the layering pair poses as
src/sim/ files; the wall-clock pair must not pose as src/util/clock.h),
so the path-sensitive rules see the paths they key on.  The bad fixture
must produce at least one finding of its target rule and nothing else;
the good fixture must produce no findings at all — fixtures double as the
documentation corpus, so incidental noise in them is itself a failure.
"""

from __future__ import annotations

import pathlib
import sys

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from fr_lint.fallback_engine import FallbackEngine  # type: ignore
    from fr_lint.model import scrub  # type: ignore
else:
    from .fallback_engine import FallbackEngine
    from .model import scrub

FIXTURES_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"

# rule -> (bad fixture, good fixture, scan directory the engine sees)
CASES = (
    ("hot-call", "bad_hot_call.cc", "good_hot_call.cc", "src/core"),
    ("hot-banned", "bad_hot_banned.cc", "good_hot_banned.cc", "src/core"),
    ("hot-virtual", "bad_hot_virtual.cc", "good_hot_virtual.cc", "src/core"),
    ("single-writer", "bad_single_writer.cc", "good_single_writer.cc",
     "src/core"),
    ("atomic-member", "bad_atomic_member.cc", "good_atomic_member.cc",
     "src/core"),
    ("det-random", "bad_det_random.cc", "good_det_random.cc", "src/core"),
    ("det-wallclock", "bad_det_wallclock.cc", "good_det_wallclock.cc",
     "src/core"),
    ("det-ptr-iter", "bad_det_ptr_iter.cc", "good_det_ptr_iter.cc",
     "src/core"),
    ("layering", "bad_layering.h", "good_layering.h", "src/sim"),
    ("guarded-member", "bad_guarded_member.cc", "good_guarded_member.cc",
     "src/core"),
    ("lock-order", "bad_lock_order.cc", "good_lock_order.cc", "src/core"),
    ("cap-boundary", "bad_cap_boundary.cc", "good_cap_boundary.cc",
     "src/core"),
)


def _engine_for(mode: str, scan_path: str, fixture: pathlib.Path,
                clang_engine_cls):
    raw = fixture.read_text(encoding="utf-8")
    source = scrub(scan_path, raw)
    if mode == "clang":
        return clang_engine_cls(
            [source], {scan_path: str(fixture)},
            compile_commands=None,
            extra_args=["-I", str(FIXTURES_DIR)],
        )
    return FallbackEngine([source])


def _check_fixture(mode: str, rule: str, filename: str, scan_dir: str,
                   expect_fire: bool, clang_engine_cls) -> list[str]:
    fixture = FIXTURES_DIR / filename
    scan_path = f"{scan_dir}/{filename}"
    engine = _engine_for(mode, scan_path, fixture, clang_engine_cls)
    findings = engine.analyze()
    errors = []
    if expect_fire:
        if not any(f.rule == rule for f in findings):
            errors.append(
                f"{filename}: expected a [{rule}] finding, got "
                + (", ".join(f.format() for f in findings) or "none")
            )
        for f in findings:
            if f.rule != rule:
                errors.append(f"{filename}: stray finding {f.format()}")
    elif findings:
        for f in findings:
            errors.append(f"{filename}: expected clean, got {f.format()}")
    return errors


def run_selftest(engine: str = "fallback") -> int:
    modes = []
    clang_engine_cls = None
    if engine in ("clang", "auto"):
        try:
            if __package__ in (None, ""):
                from fr_lint.clang_engine import ClangEngine  # type: ignore
            else:
                from .clang_engine import ClangEngine
            clang_engine_cls = ClangEngine
            modes.append("clang")
        except Exception as error:  # noqa: BLE001 - env probe
            if engine == "clang":
                print(f"fr-lint selftest: clang engine unavailable: {error}",
                      file=sys.stderr)
                return 2
            print(f"fr-lint selftest: clang engine unavailable ({error}); "
                  "running fallback only", file=sys.stderr)
    if engine in ("fallback", "auto") or not modes:
        modes.insert(0, "fallback")

    failures: list[str] = []
    for mode in modes:
        for rule, bad, good, scan_dir in CASES:
            for filename, expect_fire in ((bad, True), (good, False)):
                try:
                    errors = _check_fixture(
                        mode, rule, filename, scan_dir, expect_fire,
                        clang_engine_cls,
                    )
                except Exception as error:  # noqa: BLE001 - surface, don't die
                    errors = [f"{filename}: engine error: {error!r}"]
                status = "ok" if not errors else "FAIL"
                print(f"[{mode}] {rule:<14} {filename:<26} {status}")
                failures.extend(f"[{mode}] {e}" for e in errors)

    if failures:
        print(f"\nfr-lint selftest: {len(failures)} failure(s)",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    total = len(CASES) * 2 * len(modes)
    print(f"fr-lint selftest: {total} fixture checks passed "
          f"({' + '.join(modes)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(run_selftest(
        sys.argv[1] if len(sys.argv) > 1 else "fallback"
    ))
