// Tests for the multi-job archive (io::JobArchive): framed append +
// round-trip, latest-record-wins lookups, concurrent appends from many
// threads, and crash-mid-append truncation recovery on reopen.

#include "io/scan_archive.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace flashroute::io {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/fr_job_archive_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".bin";
}

core::ScanResult sample_result(std::uint64_t salt) {
  core::ScanResult result;
  result.probes_sent = 100 + salt;
  result.responses = 50 + salt;
  result.interfaces.insert(static_cast<std::uint32_t>(0x0A000001 + salt));
  result.interfaces.insert(static_cast<std::uint32_t>(0x0A000100 + salt));
  result.destination_distance.assign(4, static_cast<std::uint8_t>(salt % 30));
  return result;
}

ArchiveHeader sample_header() {
  ArchiveHeader header;
  header.first_prefix = 0x010000;
  header.prefix_bits = 2;
  header.seed = 7;
  return header;
}

TEST(JobArchive, AppendsAndLoadsFramedRecords) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());
    EXPECT_EQ(archive.recovered_bytes_dropped(), 0u);
    EXPECT_TRUE(archive.index().empty());
    EXPECT_FALSE(archive.load(1).has_value());

    ASSERT_TRUE(archive.append(1, sample_result(1), sample_header()));
    ASSERT_TRUE(archive.append(2, sample_result(2), sample_header()));

    const auto index = archive.index();
    ASSERT_EQ(index.size(), 2u);
    EXPECT_EQ(index[0].job_id, 1u);
    EXPECT_EQ(index[1].job_id, 2u);

    const auto loaded = archive.load(2);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->result.probes_sent, 102u);
    EXPECT_EQ(loaded->header.first_prefix, 0x010000u);

    // The stored payload is exactly the standalone FRSC encoding.
    std::ostringstream expected;
    write_archive(sample_result(1), sample_header(), expected);
    const auto payload = archive.payload_bytes(1);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, expected.str());
  }
  // Reopen: the index is rebuilt from the frames on disk.
  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());
    EXPECT_EQ(archive.recovered_bytes_dropped(), 0u);
    EXPECT_EQ(archive.index().size(), 2u);
    EXPECT_TRUE(archive.load(1).has_value());
  }
  std::remove(path.c_str());
}

TEST(JobArchive, LatestRecordWinsForARepeatedJobId) {
  const std::string path = temp_path("latest");
  std::remove(path.c_str());
  JobArchive archive(path);
  ASSERT_TRUE(archive.ok());
  ASSERT_TRUE(archive.append(5, sample_result(1), sample_header()));
  ASSERT_TRUE(archive.append(5, sample_result(9), sample_header()));
  const auto loaded = archive.load(5);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->result.probes_sent, 109u);
  std::remove(path.c_str());
}

TEST(JobArchive, ConcurrentAppendsNeverInterleave) {
  const std::string path = temp_path("concurrent");
  std::remove(path.c_str());
  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());

    constexpr int kThreads = 8;
    constexpr int kPerThread = 16;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&archive, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto job =
              static_cast<std::uint64_t>(t * kPerThread + i + 1);
          ASSERT_TRUE(archive.append(job, sample_result(job),
                                     sample_header()));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    const auto index = archive.index();
    ASSERT_EQ(index.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    // Every record is intact and attributed to the right job.
    for (std::uint64_t job = 1; job <= kThreads * kPerThread; ++job) {
      const auto loaded = archive.load(job);
      ASSERT_TRUE(loaded.has_value()) << "job " << job;
      EXPECT_EQ(loaded->result.probes_sent, 100 + job);
    }
  }
  // The file on disk is frame-clean: a reopen recovers nothing.
  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());
    EXPECT_EQ(archive.recovered_bytes_dropped(), 0u);
  }
  std::remove(path.c_str());
}

TEST(JobArchive, TruncationRecoveryDropsOnlyTheTornTail) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  std::uint64_t full_size = 0;
  std::uint64_t first_record_end = 0;
  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());
    ASSERT_TRUE(archive.append(1, sample_result(1), sample_header()));
    const auto index = archive.index();
    ASSERT_EQ(index.size(), 1u);
    // payload end + "JEND" trailer + size echo
    first_record_end = index[0].payload_offset + index[0].payload_size + 8;
    ASSERT_TRUE(archive.append(2, sample_result(2), sample_header()));
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full_size = static_cast<std::uint64_t>(in.tellg());
  }
  ASSERT_GT(full_size, first_record_end);

  // Tear the second record: keep its header but drop its tail, as a crash
  // mid-append would.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes(static_cast<std::size_t>(full_size), '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(full_size));
    bytes.resize(static_cast<std::size_t>(full_size - 5));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  {
    JobArchive archive(path);
    ASSERT_TRUE(archive.ok());
    EXPECT_GT(archive.recovered_bytes_dropped(), 0u);
    const auto index = archive.index();
    ASSERT_EQ(index.size(), 1u);  // the torn record is gone
    EXPECT_EQ(index[0].job_id, 1u);
    EXPECT_TRUE(archive.load(1).has_value());
    EXPECT_FALSE(archive.load(2).has_value());

    // The next append lands cleanly on the recovered boundary.
    ASSERT_TRUE(archive.append(3, sample_result(3), sample_header()));
    EXPECT_EQ(archive.index().size(), 2u);
    EXPECT_TRUE(archive.load(3).has_value());
  }
  std::remove(path.c_str());
}

TEST(JobArchive, GarbageFileIsTruncatedToEmpty) {
  const std::string path = temp_path("garbage");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not an archive at all";
  }
  JobArchive archive(path);
  ASSERT_TRUE(archive.ok());
  EXPECT_GT(archive.recovered_bytes_dropped(), 0u);
  EXPECT_TRUE(archive.index().empty());
  ASSERT_TRUE(archive.append(1, sample_result(1), sample_header()));
  EXPECT_TRUE(archive.load(1).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flashroute::io
