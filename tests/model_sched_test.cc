// Unit tests for the fr_model interleaving harness itself
// (util/model_sched.h): exact schedule counts, store-buffer forwarding,
// the PSO reordering a missing release permits (and that a release
// forbids), and schedule-string replay.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <utility>

#include "util/model_sched.h"

namespace model = flashroute::util::model;

namespace {

TEST(ModelSched, TwoThreadsTwoLoadsEnumerateAllSixInterleavings) {
  // Loads buffer nothing, so schedules are exactly the interleavings of
  // r0 r0 r1 r1: C(4,2) = 6.  This pins the enumeration itself.
  model::Explorer explorer;
  const model::Result result = explorer.explore([] {
    auto x = std::make_shared<model::Atomic<int>>(0);
    model::Execution execution;
    execution.threads = {
        [x] {
          x->load(std::memory_order_relaxed);
          x->load(std::memory_order_relaxed);
        },
        [x] {
          x->load(std::memory_order_relaxed);
          x->load(std::memory_order_relaxed);
        },
    };
    execution.check = [] { return true; };
    return execution;
  });
  EXPECT_FALSE(result.failed) << "schedule: " << result.schedule;
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.executions, 6);
}

TEST(ModelSched, StoreForwardingAndCommitBranching) {
  // One thread: buffered store then load.  The load must see the thread's
  // own pending store (store-to-load forwarding), whether or not the
  // commit has happened yet — and the explorer must branch on the commit
  // while the thread is alive: schedules are
  //   r0(store) r0(load) [drain]   and   r0(store) c0 r0(load),
  // exactly 2 executions.
  model::Explorer explorer;
  const model::Result result = explorer.explore([] {
    auto x = std::make_shared<model::Atomic<int>>(0);
    auto seen = std::make_shared<int>(-1);
    model::Execution execution;
    execution.threads = {
        [x, seen] {
          x->store(42, std::memory_order_relaxed);
          *seen = x->load(std::memory_order_relaxed);
        },
    };
    execution.check = [x, seen] {
      // Post-check runs unscheduled, after every store has drained.
      return *seen == 42 && x->load() == 42;
    };
    return execution;
  });
  EXPECT_FALSE(result.failed) << "schedule: " << result.schedule;
  EXPECT_EQ(result.executions, 2);
}

// Message-passing litmus: writer publishes data x then flag y; reader
// polls y then reads x.  Returns the set of (flag, data) outcomes seen
// across every schedule.
std::set<std::pair<int, int>> mp_outcomes(std::memory_order publish_order) {
  auto outcomes = std::make_shared<std::set<std::pair<int, int>>>();
  model::Explorer explorer;
  const model::Result result =
      explorer.explore([outcomes, publish_order] {
        auto x = std::make_shared<model::Atomic<int>>(0);
        auto y = std::make_shared<model::Atomic<int>>(0);
        auto flag = std::make_shared<int>(0);
        auto data = std::make_shared<int>(0);
        model::Execution execution;
        execution.threads = {
            [x, y, publish_order] {
              x->store(1, std::memory_order_relaxed);
              y->store(1, publish_order);
            },
            [x, y, flag, data] {
              *flag = y->load(std::memory_order_acquire);
              *data = x->load(std::memory_order_acquire);
            },
        };
        execution.check = [outcomes, flag, data] {
          outcomes->insert({*flag, *data});
          return true;
        };
        return execution;
      });
  EXPECT_FALSE(result.failed);
  EXPECT_FALSE(result.exhausted);
  return *outcomes;
}

TEST(ModelSched, RelaxedPublishPermitsFlagBeforeData) {
  // With a relaxed publish the two pending stores target different
  // locations, so PSO lets the flag commit first: the reader can observe
  // flag=1 with stale data=0.  This is the bug class the harness exists
  // to catch — the model must be able to represent it.
  const auto outcomes = mp_outcomes(std::memory_order_relaxed);
  EXPECT_TRUE(outcomes.count({1, 0}))
      << "PSO store reordering not reachable — model too strong";
  EXPECT_TRUE(outcomes.count({0, 0}));
  EXPECT_TRUE(outcomes.count({1, 1}));
}

TEST(ModelSched, ReleasePublishForbidsFlagBeforeData) {
  // A release publish may commit only once every earlier pending store
  // has: flag=1 implies data visible.  No schedule may show {1, 0}.
  const auto outcomes = mp_outcomes(std::memory_order_release);
  EXPECT_FALSE(outcomes.count({1, 0}))
      << "release ordering violated by the model";
  EXPECT_TRUE(outcomes.count({1, 1}));
}

// The MP litmus again, with the check *asserting* no reordering — under a
// relaxed publish this must fail, yielding a replayable schedule.
model::Execution mp_assert_no_reorder() {
  auto x = std::make_shared<model::Atomic<int>>(0);
  auto y = std::make_shared<model::Atomic<int>>(0);
  auto flag = std::make_shared<int>(0);
  auto data = std::make_shared<int>(0);
  model::Execution execution;
  execution.threads = {
      [x, y] {
        x->store(1, std::memory_order_relaxed);
        y->store(1, std::memory_order_relaxed);  // bug: should be release
      },
      [x, y, flag, data] {
        *flag = y->load(std::memory_order_acquire);
        *data = x->load(std::memory_order_acquire);
      },
  };
  execution.check = [flag, data] { return !(*flag == 1 && *data == 0); };
  return execution;
}

TEST(ModelSched, FailureYieldsReplayableSchedule) {
  model::Explorer explorer;
  const model::Result found = explorer.explore(mp_assert_no_reorder);
  ASSERT_TRUE(found.failed);
  ASSERT_FALSE(found.schedule.empty());
  std::cout << "counterexample schedule: " << found.schedule << "\n";

  // Replaying the printed schedule reproduces the failure exactly.
  const model::Result replayed =
      explorer.replay(found.schedule, mp_assert_no_reorder);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.executions, 1);
  EXPECT_EQ(replayed.schedule, found.schedule);
}

TEST(ModelSched, ScheduleStringsRoundTrip) {
  const std::vector<model::Sched::Choice> trace = {
      {false, 0, 0}, {false, 1, 0}, {true, 0, 2}, {true, 1, 17},
  };
  const std::string text = model::format_schedule(trace);
  EXPECT_EQ(text, "r0.r1.c0:2.c1:17");
  EXPECT_EQ(model::parse_schedule(text), trace);
  EXPECT_THROW(model::parse_schedule("r0.zzz"), std::invalid_argument);
}

TEST(ModelSched, RmwFlushesAndActsOnSharedMemory) {
  // fetch_or is atomic under every schedule: two concurrent RMWs on the
  // same byte never lose an update (this is the PackedDcb claim in
  // miniature; model_dcb_test.cc exercises the full protocol).
  model::Explorer explorer;
  const model::Result result = explorer.explore([] {
    auto flags = std::make_shared<model::Atomic<unsigned>>(0u);
    model::Execution execution;
    execution.threads = {
        [flags] { flags->fetch_or(0x1u, std::memory_order_acq_rel); },
        [flags] { flags->fetch_or(0x2u, std::memory_order_acq_rel); },
    };
    execution.check = [flags] { return flags->load() == 0x3u; };
    return execution;
  });
  EXPECT_FALSE(result.failed) << "schedule: " << result.schedule;
  EXPECT_EQ(result.executions, 2);  // r0 r1 and r1 r0
}

}  // namespace
