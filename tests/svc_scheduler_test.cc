// Tests for the multi-tenant scan-job scheduler (svc/scheduler.h) and its
// coupling to slice execution (svc/job_runner.h): admission reasons,
// dispatch order, fair-share alternation, budget metering, drain, and the
// headline determinism contract — a job preempted at a checkpoint barrier
// and resumed later produces a byte-identical archive payload to the same
// spec run uncontended.
//
// Everything here is single-threaded and runs on virtual time: the
// scheduler takes `now` explicitly, so the tests replay the exact decision
// sequence the daemon would make without threads or wall clocks.

#include "svc/scheduler.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/scan_archive.h"
#include "svc/event_log.h"
#include "svc/job.h"
#include "svc/job_runner.h"
#include "util/clock.h"

namespace flashroute::svc {
namespace {

JobSpec small_spec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.prefix_bits = 6;
  spec.collect_routes = true;
  spec.checkpoint_interval = util::kMillisecond;  // a barrier every round
  return spec;
}

/// Single-threaded re-enactment of the daemon's dispatch loop: one worker
/// slot, virtual time, optional event stream mirroring the daemon's
/// emission points.  Tests inject mid-scan submissions through
/// `at_barrier(job, ordinal)`, which runs before the scheduler's verdict —
/// exactly where another client's submit would land.
struct Service {
  explicit Service(const SchedulerConfig& config, JobEventLog* log = nullptr)
      : scheduler(config), events(log) {}

  Scheduler scheduler;
  JobEventLog* events;
  std::map<std::uint64_t, std::unique_ptr<JobRunner>> runners;
  util::Nanos now = 0;

  std::uint64_t submit(const JobSpec& spec) {
    const Submission sub = scheduler.submit(spec, now);
    if (events) {
      JobEvent submitted;
      submitted.job_id = sub.job_id;
      submitted.event = "submitted";
      submitted.name = spec.name;
      submitted.has_priority = true;
      submitted.priority = spec.priority;
      events->emit(submitted);
      JobEvent outcome;
      outcome.job_id = sub.job_id;
      outcome.event = sub.admitted ? "admitted" : "rejected";
      outcome.reason = sub.reason;
      outcome.detail = sub.detail;
      events->emit(outcome);
    }
    if (sub.admitted) {
      runners[sub.job_id] = std::make_unique<JobRunner>(spec);
    }
    return sub.job_id;
  }

  void emit_progress(std::uint64_t id, const char* name,
                     std::uint64_t probes, std::uint64_t slice) {
    if (!events) return;
    JobEvent event;
    event.job_id = id;
    event.event = name;
    event.probes = probes;
    event.slice = slice;
    event.worker = 0;
    events->emit(event);
  }

  /// Runs one slice of the best dispatchable job; false when none.
  bool step(const std::function<void(std::uint64_t, int)>& at_barrier = {},
            std::vector<std::uint64_t>* order = nullptr,
            io::JobArchive* archive = nullptr) {
    const auto id = scheduler.acquire(now);
    if (!id) return false;
    if (order) order->push_back(*id);
    auto resume = scheduler.take_checkpoint(*id);
    const std::uint64_t slice_no = scheduler.view(*id)->slices;
    const std::uint64_t base =
        resume ? resume->result.probes_sent : 0;
    emit_progress(*id, slice_no == 1 ? "running" : "resumed", base,
                  slice_no);
    JobRunner& runner = *runners.at(*id);
    int barriers = 0;
    SliceResult slice =
        runner.run_slice(resume, [&](const io::ScanCheckpoint& cp) {
          ++barriers;
          if (at_barrier) at_barrier(*id, barriers);
          now += util::kMillisecond;  // one control-plane tick per barrier
          return scheduler.on_barrier(*id, cp.result.probes_sent, now);
        });
    switch (slice.outcome) {
      case SliceOutcome::kCompleted:
        if (archive) {
          archive->append(*id, slice.result, runner.archive_header());
        }
        scheduler.release_completed(*id, slice.probes_total, now);
        emit_progress(*id, "completed", slice.probes_total, slice_no);
        break;
      case SliceOutcome::kPreempted:
        scheduler.release_preempted(*id, std::move(*slice.checkpoint));
        emit_progress(*id, "preempted", slice.probes_total, slice_no);
        break;
      case SliceOutcome::kCancelled:
        scheduler.release_cancelled(*id);
        emit_progress(*id, "cancelled", slice.probes_total, slice_no);
        break;
    }
    return true;
  }

  void run_all(const std::function<void(std::uint64_t, int)>& at_barrier = {},
               std::vector<std::uint64_t>* order = nullptr,
               io::JobArchive* archive = nullptr) {
    while (step(at_barrier, order, archive)) {
    }
  }
};

std::string temp_archive_path(const char* tag) {
  return "/tmp/fr_svc_sched_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".bin";
}

TEST(SvcAdmission, MachineReadableRejectReasons) {
  SchedulerConfig config;
  config.max_queued = 1;
  config.global_pps_budget = 100'000.0;
  Scheduler scheduler(config);

  JobSpec bad = small_spec("bad");
  bad.prefix_bits = 0;
  const Submission r1 = scheduler.submit(bad, 0);
  EXPECT_FALSE(r1.admitted);
  EXPECT_EQ(r1.reason, kRejectBadSpec);
  EXPECT_FALSE(r1.detail.empty());

  JobSpec greedy = small_spec("greedy");
  greedy.probes_per_second = 200'000.0;
  const Submission r2 = scheduler.submit(greedy, 0);
  EXPECT_FALSE(r2.admitted);
  EXPECT_EQ(r2.reason, kRejectRateExceedsGlobalBudget);

  const Submission r3 = scheduler.submit(small_spec("ok"), 0);
  EXPECT_TRUE(r3.admitted);
  EXPECT_EQ(scheduler.queue_depth(), 1);

  const Submission r4 = scheduler.submit(small_spec("overflow"), 0);
  EXPECT_FALSE(r4.admitted);
  EXPECT_EQ(r4.reason, kRejectQueueFull);

  scheduler.drain();
  const Submission r5 = scheduler.submit(small_spec("late"), 0);
  EXPECT_FALSE(r5.admitted);
  EXPECT_EQ(r5.reason, kRejectDraining);

  // Every submission got a distinct id, and rejected jobs answer status.
  EXPECT_EQ(r1.job_id, 1u);
  EXPECT_EQ(r5.job_id, 5u);
  const auto view = scheduler.view(r1.job_id);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->state, JobState::kRejected);
  EXPECT_FALSE(view->detail.empty());
}

TEST(SvcAdmission, ExactBudgetSumAdmitsAndDispatches) {
  SchedulerConfig config;
  config.global_pps_budget = 40'000.0;
  Scheduler scheduler(config);
  JobSpec spec = small_spec("half");
  spec.probes_per_second = 20'000.0;
  const Submission a = scheduler.submit(spec, 0);
  const Submission b = scheduler.submit(spec, 0);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_TRUE(scheduler.acquire(0).has_value());
  EXPECT_TRUE(scheduler.acquire(0).has_value());  // sums exactly to budget
  EXPECT_DOUBLE_EQ(scheduler.running_pps(), 40'000.0);
}

TEST(SvcDispatch, PriorityBeforeFairShareBeforeId) {
  Service service(SchedulerConfig{});
  const std::uint64_t low1 = service.submit(small_spec("low1"));
  JobSpec high = small_spec("high");
  high.priority = 5;
  const std::uint64_t high_id = service.submit(high);
  const std::uint64_t low2 = service.submit(small_spec("low2"));

  std::vector<std::uint64_t> order;
  service.run_all({}, &order);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), high_id);  // priority wins over id order
  EXPECT_EQ(service.scheduler.view(low1)->state, JobState::kCompleted);
  EXPECT_EQ(service.scheduler.view(low2)->state, JobState::kCompleted);
  EXPECT_TRUE(service.scheduler.all_terminal());
}

TEST(SvcDispatch, FairShareAlternatesAtBarriers) {
  Service service(SchedulerConfig{});
  const std::uint64_t a = service.submit(small_spec("a"));
  const std::uint64_t b = service.submit(small_spec("b"));

  std::vector<std::uint64_t> order;
  service.run_all({}, &order);

  // The running job yields to the equal-priority peer that has fallen
  // behind, so the single worker alternates at barrier granularity: both
  // jobs ran more than one slice.
  EXPECT_GE(service.scheduler.view(a)->slices, 2u);
  EXPECT_GE(service.scheduler.view(b)->slices, 2u);
  ASSERT_GE(order.size(), 3u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_EQ(service.scheduler.view(a)->state, JobState::kCompleted);
  EXPECT_EQ(service.scheduler.view(b)->state, JobState::kCompleted);
}

TEST(SvcDispatch, PreemptionFreesBudgetForQueuedJob) {
  SchedulerConfig config;
  config.global_pps_budget = 30'000.0;
  Service service(config);
  JobSpec big = small_spec("big");
  big.probes_per_second = 25'000.0;
  JobSpec small = small_spec("small");
  small.probes_per_second = 10'000.0;
  const std::uint64_t big_id = service.submit(big);
  const std::uint64_t small_id = service.submit(small);

  // While `big` runs, `small` is admitted but cannot fit beside it.
  bool checked = false;
  std::vector<std::uint64_t> order;
  service.run_all(
      [&](std::uint64_t job, int barrier) {
        if (job == big_id && barrier == 1 && !checked) {
          checked = true;
          EXPECT_FALSE(service.scheduler.has_dispatchable(service.now));
        }
      },
      &order);

  ASSERT_TRUE(checked);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], big_id);
  EXPECT_EQ(order[1], small_id);  // dispatched into the freed budget
  EXPECT_EQ(service.scheduler.view(big_id)->state, JobState::kCompleted);
  EXPECT_EQ(service.scheduler.view(small_id)->state, JobState::kCompleted);
}

TEST(SvcBudget, MeteredJobYieldsOnlyWhenPeerWaits) {
  SchedulerConfig config;
  config.rate_multiplier = 0.001;  // 20 kpps spec → 20 credit tokens/sec
  Scheduler scheduler(config);
  const Submission only = scheduler.submit(small_spec("only"), 0);
  ASSERT_TRUE(only.admitted);
  ASSERT_TRUE(scheduler.acquire(0).has_value());

  // Deep in debt but alone: work conservation keeps it running.
  EXPECT_EQ(scheduler.on_barrier(only.job_id, 10'000, 0),
            BarrierDecision::kContinue);

  // A waiting peer turns the same debt into a preemption.
  const Submission peer = scheduler.submit(small_spec("peer"), 0);
  ASSERT_TRUE(peer.admitted);
  EXPECT_EQ(scheduler.on_barrier(only.job_id, 20'000, 0),
            BarrierDecision::kPreempt);
}

TEST(SvcCancel, OutcomesFollowJobState) {
  Scheduler scheduler(SchedulerConfig{});
  EXPECT_EQ(scheduler.cancel(99), CancelOutcome::kNotFound);

  const Submission queued = scheduler.submit(small_spec("queued"), 0);
  EXPECT_EQ(scheduler.cancel(queued.job_id), CancelOutcome::kCancelled);
  EXPECT_EQ(scheduler.view(queued.job_id)->state, JobState::kCancelled);
  EXPECT_EQ(scheduler.cancel(queued.job_id),
            CancelOutcome::kAlreadyTerminal);

  const Submission running = scheduler.submit(small_spec("running"), 0);
  ASSERT_TRUE(scheduler.acquire(0).has_value());
  EXPECT_EQ(scheduler.cancel(running.job_id), CancelOutcome::kSignalled);
  EXPECT_EQ(scheduler.on_barrier(running.job_id, 10, 0),
            BarrierDecision::kCancel);
  scheduler.release_cancelled(running.job_id);
  EXPECT_EQ(scheduler.view(running.job_id)->state, JobState::kCancelled);
  EXPECT_TRUE(scheduler.all_terminal());
}

TEST(SvcDrain, RunningJobsPreemptAndNothingDispatches) {
  Scheduler scheduler(SchedulerConfig{});
  const Submission job = scheduler.submit(small_spec("job"), 0);
  ASSERT_TRUE(scheduler.acquire(0).has_value());
  scheduler.drain();
  EXPECT_TRUE(scheduler.draining());
  EXPECT_EQ(scheduler.on_barrier(job.job_id, 10, 0),
            BarrierDecision::kPreempt);
  io::ScanCheckpoint checkpoint;
  scheduler.release_preempted(job.job_id, checkpoint);
  EXPECT_EQ(scheduler.view(job.job_id)->state, JobState::kPreempted);
  EXPECT_FALSE(scheduler.acquire(0).has_value());
  EXPECT_FALSE(scheduler.all_terminal());
  // The daemon's shutdown reap cancels what drain stranded.
  EXPECT_EQ(scheduler.cancel(job.job_id), CancelOutcome::kCancelled);
  EXPECT_TRUE(scheduler.all_terminal());
}

// The tentpole determinism gate, scheduler edition: a job preempted by a
// mid-scan high-priority arrival and resumed afterwards archives exactly
// the bytes of an uncontended run of the same spec.
TEST(SvcPreemption, ResumedJobIsByteIdenticalToUncontendedRun) {
  const std::string path = temp_archive_path("identity");
  std::remove(path.c_str());
  {
    io::JobArchive archive(path);
    ASSERT_TRUE(archive.ok());

    Service service(SchedulerConfig{});
    JobSpec victim_spec = small_spec("victim");
    victim_spec.prefix_bits = 7;
    const std::uint64_t victim = service.submit(victim_spec);

    JobSpec intruder = small_spec("intruder");
    intruder.priority = 5;
    bool submitted_intruder = false;
    std::vector<std::uint64_t> order;
    service.run_all(
        [&](std::uint64_t job, int barrier) {
          if (job == victim && barrier == 2 && !submitted_intruder) {
            submitted_intruder = true;
            service.submit(intruder);
          }
        },
        &order, &archive);

    ASSERT_TRUE(submitted_intruder);
    const auto view = service.scheduler.view(victim);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->state, JobState::kCompleted);
    EXPECT_GE(view->slices, 2u) << "the victim was never preempted";

    // Uncontended reference: same spec, no scheduler in the way.
    JobRunner solo(victim_spec);
    const SliceResult solo_run = solo.run_slice(
        std::nullopt,
        [](const io::ScanCheckpoint&) { return BarrierDecision::kContinue; });
    ASSERT_EQ(solo_run.outcome, SliceOutcome::kCompleted);

    std::ostringstream expected;
    io::write_archive(solo_run.result, solo.archive_header(), expected);
    const auto archived = archive.payload_bytes(victim);
    ASSERT_TRUE(archived.has_value());
    EXPECT_EQ(*archived, expected.str());
    EXPECT_EQ(view->probes, solo_run.probes_total);
  }
  std::remove(path.c_str());
}

// Two identical workloads driven on virtual time emit byte-identical JSONL
// event streams — the replayability the daemon's tests and CI validator
// build on.
TEST(SvcEvents, VirtualTimeStreamIsDeterministic) {
  const auto run_once = [](std::string* out) {
    std::ostringstream stream;
    util::Nanos virtual_now = 0;
    JobEventLog log(&stream, [&] {
      return static_cast<std::uint64_t>(virtual_now);
    });
    Service service(SchedulerConfig{}, &log);
    service.submit(small_spec("a"));
    service.submit(small_spec("b"));
    JobSpec bad = small_spec("bad");
    bad.prefix_bits = 0;
    service.submit(bad);
    // Tie the log's clock to the service's virtual clock.
    virtual_now = service.now;
    std::vector<std::uint64_t> order;
    service.run_all(
        [&](std::uint64_t, int) { virtual_now = service.now; }, &order);
    log.summary(false, true, {{"svc.events", log.events_emitted()}});
    *out = stream.str();
  };

  std::string first;
  std::string second;
  run_once(&first);
  run_once(&second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"event\":\"preempted\""), std::string::npos);
  EXPECT_NE(first.find("\"event\":\"rejected\""), std::string::npos);
  EXPECT_NE(first.find("\"type\":\"job_summary\""), std::string::npos);
}

}  // namespace
}  // namespace flashroute::svc
