// Hot-path guarantees of the allocation-free probe/response pipeline
// (DESIGN.md §6): route memoization is bit-identical to re-resolving every
// probe, pooled response slots are stable and recycled, the flat rate-limit
// table matches the semantics of per-IP token buckets, and the steady-state
// sim pipeline performs zero heap allocations per probe.
//
// Suites here are named Hotpath* so the CI sanitizer jobs can select them
// with a single -R filter.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "core/probe_codec.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/response_pool.h"
#include "sim/rate_limit_table.h"
#include "sim/runtime.h"
#include "sim/topology.h"

// --- Thread-local allocation counting for the zero-allocation test ---------
//
// Replacing the global operators is binary-wide, so the counter is
// thread-local: only allocations made by the calling thread are charged.

namespace {
thread_local std::uint64_t g_thread_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_thread_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flashroute {
namespace {

sim::SimParams world_params(std::uint64_t seed, int bits) {
  sim::SimParams params;
  params.seed = seed;
  params.prefix_bits = bits;
  return params;
}

core::TracerConfig scan_config(const sim::SimParams& params) {
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  return config;
}

core::ScanResult run_scan(const sim::Topology& topology,
                          const core::TracerConfig& config) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

bool hops_equal(const std::vector<core::RouteHop>& a,
                const std::vector<core::RouteHop>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ip != b[i].ip || a[i].ttl != b[i].ttl ||
        a[i].flags != b[i].flags) {
      return false;
    }
  }
  return true;
}

void expect_results_identical(const core::ScanResult& a,
                              const core::ScanResult& b) {
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.trigger_ttl, b.trigger_ttl);
  EXPECT_EQ(a.measured_distance, b.measured_distance);
  EXPECT_EQ(a.predicted_distance, b.predicted_distance);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.preprobe_probes, b.preprobe_probes);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.destinations_reached, b.destinations_reached);
  EXPECT_EQ(a.distances_measured, b.distances_measured);
  EXPECT_EQ(a.distances_predicted, b.distances_predicted);
  EXPECT_EQ(a.convergence_stops, b.convergence_stops);
  EXPECT_EQ(a.scan_time, b.scan_time);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_TRUE(hops_equal(a.routes[i], b.routes[i]))
        << "routes diverge at prefix offset " << i;
  }
}

// --- Route-cache determinism ------------------------------------------------

// A full scan — preprobing, forward/backward probing, and two
// discovery-optimized extra scans whose shifted source ports change the flow
// label — must produce a bit-identical ScanResult whether SimNetwork resolves
// every probe from scratch (route_cache_bits = 0, the seed behaviour) or
// memoizes resolutions in the direct-mapped cache.  The dynamics epoch is
// shrunk so the scan crosses many epoch boundaries, exercising the epoch
// component of the cache tag.
TEST(HotpathDeterminism, CachedAndBypassedScansAreBitIdentical) {
  for (const std::uint64_t seed : {3u, 11u}) {
    sim::SimParams cached_params = world_params(seed, 9);
    cached_params.dynamics_epoch = 200 * util::kSecond;
    cached_params.route_cache_bits = -1;  // auto-sized cache

    sim::SimParams bypass_params = cached_params;
    bypass_params.route_cache_bits = 0;  // resolve every probe

    const sim::Topology cached_topology(cached_params);
    const sim::Topology bypass_topology(bypass_params);

    auto config = scan_config(cached_params);
    config.preprobe = core::PreprobeMode::kRandom;
    config.extra_scans = 2;
    config.collect_routes = true;

    const auto cached = run_scan(cached_topology, config);
    const auto bypassed = run_scan(bypass_topology, config);
    expect_results_identical(cached, bypassed);
  }
}

// Byte-level check on the network boundary itself: identical probe streams —
// spanning several destinations, TTLs, differing flow labels (shifted source
// ports) and several dynamics epochs — must elicit identical response bytes
// and arrival times from a cached and a bypassed SimNetwork.
TEST(HotpathDeterminism, CachedResponsesMatchBypassedByteForByte) {
  sim::SimParams cached_params = world_params(7, 8);
  cached_params.route_cache_bits = 6;  // tiny: forces collision evictions
  sim::SimParams bypass_params = cached_params;
  bypass_params.route_cache_bits = 0;

  const sim::Topology cached_topology(cached_params);
  const sim::Topology bypass_topology(bypass_params);
  sim::SimNetwork cached(cached_topology);
  sim::SimNetwork bypassed(bypass_topology);

  const net::Ipv4Address vantage(cached_params.vantage_address);
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> probe;
  util::Nanos when = 0;
  std::uint64_t responses = 0;
  for (int port_offset = 0; port_offset < 3; ++port_offset) {
    const core::ProbeCodec codec(vantage,
                                 static_cast<std::uint16_t>(port_offset));
    for (std::uint32_t block = 0; block < 64; ++block) {
      const net::Ipv4Address dst(
          ((cached_params.first_prefix + block * 4) << 8) | 0x64);
      for (std::uint8_t ttl = 1; ttl <= 16; ++ttl) {
        const std::size_t size =
            codec.encode_udp(dst, ttl, false, when, probe);
        ASSERT_GT(size, 0u);
        const std::span<const std::byte> wire(probe.data(), size);
        const auto a = cached.process(wire, when);
        const auto b = bypassed.process(wire, when);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          EXPECT_EQ(a->arrival, b->arrival);
          EXPECT_EQ(a->packet, b->packet);
          ++responses;
        }
        // Straddle several dynamics epochs over the stream.
        when += cached_params.dynamics_epoch / 100;
      }
    }
  }
  EXPECT_GT(responses, 100u);
  EXPECT_GT(cached.stats().route_cache_hits, 0u);
  EXPECT_EQ(bypassed.stats().route_cache_hits, 0u);
  EXPECT_EQ(cached.stats().route_cache_hits + cached.stats().route_cache_misses,
            bypassed.stats().route_cache_misses);
}

// --- Response pool ----------------------------------------------------------

TEST(HotpathPool, BuffersAreStableAcrossGrowthAndRecycled) {
  sim::ResponsePool pool;
  // Span over several growth blocks; pointers handed out earlier must not
  // move when later acquisitions grow the pool (block-based storage).
  std::vector<sim::ResponsePool::Slot> slots;
  std::vector<std::byte*> pointers;
  for (int i = 0; i < 300; ++i) {
    const auto slot = pool.acquire();
    slots.push_back(slot);
    pointers.push_back(pool.buffer(slot).data());
    pool.buffer(slot)[0] = std::byte(i & 0xFF);
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(pool.buffer(slots[i]).data(), pointers[i]);
    EXPECT_EQ(pool.buffer(slots[i])[0], std::byte(i & 0xFF));
    EXPECT_GE(pool.buffer(slots[i]).size(), net::kMaxResponseSize);
  }
  // Full release then re-acquire: the pool recycles slots instead of growing.
  for (const auto slot : slots) pool.release(slot);
  std::set<sim::ResponsePool::Slot> recycled;
  for (int i = 0; i < 300; ++i) recycled.insert(pool.acquire());
  EXPECT_EQ(recycled.size(), 300u);
  for (const auto slot : recycled) {
    EXPECT_LT(slot, 320u) << "release/acquire grew the pool";
  }
}

// --- Flat rate-limit table --------------------------------------------------

TEST(HotpathRateLimit, DenseAndSparseEntriesShareBucketSemantics) {
  // 4-token bucket: exactly 4 admits at t=0, refill after one second.
  const std::uint32_t pool_base = 0xC8000000;
  sim::RateLimitTable table(/*rate=*/4.0, /*burst=*/4.0, pool_base,
                            /*pool_size=*/16);
  const std::uint32_t dense_ip = pool_base + 3;       // inside the pool range
  const std::uint32_t sparse_ip = 0x01020304;          // stub-interior address
  for (const std::uint32_t ip : {dense_ip, sparse_ip}) {
    auto& entry = table.entry(ip, 0);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(entry.bucket.try_consume(0)) << "admit " << i;
    }
    EXPECT_FALSE(entry.bucket.try_consume(0));
    ++entry.drops;
    EXPECT_TRUE(entry.bucket.try_consume(util::kSecond));
  }
  const auto drops = table.drops();
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops.at(dense_ip), 1u);
  EXPECT_EQ(drops.at(sparse_ip), 1u);
}

TEST(HotpathRateLimit, SparseTableSurvivesRehash) {
  sim::RateLimitTable table(1.0, 1.0, /*pool_base=*/0, /*pool_size=*/0);
  // Insert well past the initial sparse capacity to force several rehashes;
  // every entry must keep its identity (drops counter) across growth.
  constexpr std::uint32_t kEntries = 5000;
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    auto& entry = table.entry(0x0A000000 + i * 977, 0);
    entry.drops = i;
  }
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    EXPECT_EQ(table.entry(0x0A000000 + i * 977, 0).drops, i);
  }
  EXPECT_EQ(table.drops().size(), kEntries - 1);  // entry 0 has drops == 0
}

// --- Zero allocations in steady state ---------------------------------------

// After warmup (pool blocks allocated, route cache filled, pending heap and
// limiter tables grown), pushing a full probe sweep through encode -> process
// -> pooled delivery -> sink must not allocate at all.
TEST(HotpathAllocation, SteadyStateProbeResponsePipelineIsAllocationFree) {
  sim::SimParams params = world_params(5, 8);
  const sim::Topology topology(params);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, 1'000'000.0);

  const core::ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  std::uint64_t delivered = 0;
  const core::ScanRuntime::Sink sink =
      [&delivered](std::span<const std::byte>, util::Nanos) { ++delivered; };

  const auto sweep = [&] {
    for (std::uint32_t block = 0; block < 256; ++block) {
      const net::Ipv4Address dst(((params.first_prefix + block) << 8) | 0x64);
      for (std::uint8_t ttl = 1; ttl <= 24; ++ttl) {
        const std::size_t size =
            codec.encode_udp(dst, ttl, false, runtime.now(), buf);
        ASSERT_GT(size, 0u);
        runtime.send(std::span<const std::byte>(buf.data(), size));
      }
      runtime.drain(sink);
    }
    runtime.idle_until(runtime.now() + util::kSecond, sink);
  };

  sweep();  // warmup: grows every container the pipeline touches
  const std::uint64_t warm_delivered = delivered;

  const std::uint64_t before = g_thread_allocations;
  sweep();
  const std::uint64_t after = g_thread_allocations;

  EXPECT_GT(delivered, warm_delivered);
  EXPECT_EQ(after - before, 0u)
      << "probe/response pipeline allocated during the steady-state sweep ("
      << delivered - warm_delivered << " responses delivered)";
}

}  // namespace
}  // namespace flashroute
