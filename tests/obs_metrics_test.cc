// Tests for the lock-free metrics registry (obs/metrics.h) and the
// virtual-time scan tracer (obs/scan_tracer.h): lane layout and padding,
// snapshot merging, log2 histogram recording, gauge sampling, the
// single-writer-per-lane concurrency contract (the TSan target — the
// thread-sanitizer CI job runs MetricsRegistry.* under TSan), and the
// tracer's deterministic tick grid.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/scan_metrics.h"
#include "obs/scan_tracer.h"

namespace flashroute::obs {
namespace {

TEST(MetricsRegistry, LanesArePaddedToCacheLines) {
  static_assert(sizeof(detail::CellBlock) == 64);
  static_assert(alignof(detail::CellBlock) == 64);

  // 9 counters need two blocks per lane; lane pointers must land 128 bytes
  // apart so two shards never share a line.
  MetricsRegistry registry;
  for (int i = 0; i < 9; ++i) {
    registry.add_counter("c" + std::to_string(i));
  }
  registry.freeze(2);
  const MetricsLane a = registry.lane(0);
  const MetricsLane b = registry.lane(1);
  a.inc(8);
  EXPECT_EQ(a.counter(8), 1u);
  EXPECT_EQ(b.counter(8), 0u);  // lane isolation across the block boundary
}

TEST(MetricsRegistry, CountersMergeAcrossLanes) {
  MetricsRegistry registry;
  const CounterId sent = registry.add_counter("sent");
  const CounterId recv = registry.add_counter("recv");
  registry.freeze(3);

  for (int lane = 0; lane < 3; ++lane) {
    const MetricsLane l = registry.lane(lane);
    l.inc(sent, static_cast<std::uint64_t>(10 * (lane + 1)));
    l.inc(recv);
  }

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counter_names.size(), 2u);
  EXPECT_EQ(snap.counter_names[0], "sent");
  EXPECT_EQ(snap.counters[sent], 60u);
  EXPECT_EQ(snap.counters[recv], 3u);
}

TEST(MetricsRegistry, HistogramRecordsLandInLog2Buckets) {
  MetricsRegistry registry;
  registry.add_counter("pad");  // histogram cells sit after the counters
  const HistogramId rtt = registry.add_histogram("rtt");
  const HistogramId hops = registry.add_histogram("hops");
  registry.freeze(2);

  const MetricsLane a = registry.lane(0);
  const MetricsLane b = registry.lane(1);
  a.record(rtt, 0);     // bucket 0
  a.record(rtt, 1);     // bucket 1
  a.record(rtt, 1000);  // bucket 10: [512, 1024)
  b.record(rtt, 1023);  // bucket 10 again, merged from the other lane
  b.record(hops, 12);   // bucket 4: [8, 16)

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 2u);
  const util::Log2Histogram& h = snap.histograms[rtt];
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 2u);
  EXPECT_EQ(snap.histograms[hops].bucket_count(4), 1u);
  EXPECT_EQ(snap.histograms[hops].total(), 1u);
  // The histogram cells must not alias the counter cells.
  EXPECT_EQ(snap.counters[0], 0u);
}

TEST(MetricsRegistry, GaugesSampleAtSnapshotTime) {
  MetricsRegistry registry;
  registry.add_counter("c");
  registry.freeze(2);

  double source = 1.5;
  registry.add_gauge("load", /*lane=*/1, [&source] { return source; });
  registry.add_gauge("fixed", /*lane=*/0, [] { return 7.0; });

  source = 2.5;  // snapshot must see the value at sample time
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauge_names.size(), 2u);
  EXPECT_EQ(snap.gauge_names[0], "load");
  EXPECT_EQ(snap.gauge_lanes[0], 1);
  EXPECT_DOUBLE_EQ(snap.gauges[0], 2.5);
  EXPECT_DOUBLE_EQ(snap.gauges[1], 7.0);

  // Per-lane sampling returns only that lane's gauges, registration order.
  const auto lane1 = registry.sample_lane_gauges(1);
  ASSERT_EQ(lane1.size(), 1u);
  EXPECT_EQ(lane1[0].first, "load");
  EXPECT_DOUBLE_EQ(lane1[0].second, 2.5);
  EXPECT_TRUE(registry.sample_lane_gauges(0).size() == 1);
}

TEST(MetricsRegistry, DisabledTelemetryIsInert) {
  // A default ScanTelemetry (no registry, no tracer, invalid lane) must make
  // every hook a no-op — this is the runtime off switch the engines rely on.
  const ScanTelemetry tel;
  EXPECT_FALSE(tel.enabled());
  tel.count(tel.ids.probes_sent);
  tel.sample(tel.ids.rtt_us, 123);
  tel.begin_phase(ScanPhase::kMain, 0);
  tel.tick(1'000'000);
  tel.finish(2'000'000);
}

// The TSan anchor: four single-writer lanes hammered from four threads while
// the main thread snapshots concurrently.  Relaxed load+store per lane plus
// relaxed snapshot loads must be torn-free and race-free.
TEST(MetricsRegistry, ConcurrentWritersAndSnapshotsMergeExactly) {
  constexpr int kLanes = 4;
  constexpr std::uint64_t kIncrements = 50'000;

  MetricsRegistry registry;
  const CounterId counter = registry.add_counter("scan.probes_sent");
  const HistogramId hist = registry.add_histogram("scan.rtt_us");
  registry.freeze(kLanes);

  std::atomic<int> running{kLanes};
  std::vector<std::thread> writers;
  writers.reserve(kLanes);
  for (int lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&registry, &running, counter, hist, lane] {
      const MetricsLane l = registry.lane(lane);
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        l.inc(counter);
        l.record(hist, i & 0xFFF);
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  // Concurrent snapshots: values may be stale but never torn or above the
  // final total.
  while (running.load(std::memory_order_acquire) > 0) {
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_LE(snap.counters[counter], kLanes * kIncrements);
    EXPECT_LE(snap.histograms[hist].total(), kLanes * kIncrements);
  }
  for (auto& t : writers) t.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters[counter], kLanes * kIncrements);
  EXPECT_EQ(snap.histograms[hist].total(), kLanes * kIncrements);
  // values 0..4095 span log2 buckets 0..12 and nothing else.
  for (int b = 13; b < util::Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(snap.histograms[hist].bucket_count(b), 0u);
  }
}

TEST(ScanTracer, RecordsPhaseTransitionsAndDeltas) {
  MetricsRegistry registry;
  const CounterId sent = registry.add_counter("sent");
  registry.freeze(1);
  ScanTracer tracer(registry, /*interval=*/0);  // transitions only
  const MetricsLane lane = registry.lane(0);

  tracer.begin_phase(0, ScanPhase::kPreprobe, 100);
  lane.inc(sent, 5);
  tracer.tick(0, 1'000'000);  // interval capture disabled: must be inert
  tracer.begin_phase(0, ScanPhase::kMain, 200);
  lane.inc(sent, 7);
  tracer.finish(0, 300);

  // Periodic ticks are off, but phase boundaries still close out the
  // outgoing phase so its tail shows up in the stream.
  const auto& iv = tracer.intervals(0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0].t, 200);
  EXPECT_EQ(iv[0].phase, ScanPhase::kPreprobe);
  EXPECT_EQ(iv[0].deltas[sent], 5u);
  EXPECT_EQ(iv[1].t, 300);
  EXPECT_EQ(iv[1].phase, ScanPhase::kMain);
  EXPECT_EQ(iv[1].deltas[sent], 7u);
  const auto& tr = tracer.transitions(0);
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr[0].t, 100);
  EXPECT_EQ(tr[0].phase, ScanPhase::kPreprobe);
  EXPECT_EQ(tr[1].t, 200);
  EXPECT_EQ(tr[1].phase, ScanPhase::kMain);
  EXPECT_EQ(tr[2].t, 300);
  EXPECT_EQ(tr[2].phase, ScanPhase::kDone);
}

TEST(ScanTracer, TickGridIsDeterministicAndCatchUpEmitsOneInterval) {
  MetricsRegistry registry;
  const CounterId sent = registry.add_counter("sent");
  registry.freeze(1);
  ScanTracer tracer(registry, /*interval=*/100);
  const MetricsLane lane = registry.lane(0);

  tracer.begin_phase(0, ScanPhase::kMain, 50);  // grid anchored: 150, 250, …
  lane.inc(sent, 3);
  tracer.tick(0, 149);  // before the first tick: no capture
  EXPECT_TRUE(tracer.intervals(0).empty());
  tracer.tick(0, 150);  // on the tick: capture [50, 150)
  lane.inc(sent, 4);
  tracer.tick(0, 555);  // long stall: ONE catch-up capture, grid realigns
  tracer.tick(0, 649);  // still before the realigned tick at 650
  tracer.finish(0, 700);

  const auto& iv = tracer.intervals(0);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].t, 150);
  EXPECT_EQ(iv[0].phase, ScanPhase::kMain);
  EXPECT_EQ(iv[0].deltas[sent], 3u);
  EXPECT_EQ(iv[1].t, 555);
  EXPECT_EQ(iv[1].deltas[sent], 4u);
  EXPECT_EQ(iv[2].t, 700);  // final capture from finish()
  EXPECT_EQ(iv[2].deltas[sent], 0u);
  EXPECT_EQ(tracer.transitions(0).back().phase, ScanPhase::kDone);
}

TEST(ScanTracer, LanesTickIndependently) {
  MetricsRegistry registry;
  registry.add_counter("sent");
  registry.freeze(2);
  ScanTracer tracer(registry, /*interval=*/100);

  tracer.begin_phase(0, ScanPhase::kMain, 0);
  // Lane 1 never begins a phase: its grid stays unanchored and tick() is
  // inert no matter how large `now` gets.
  tracer.tick(1, 1'000'000'000);
  tracer.tick(0, 100);
  EXPECT_EQ(tracer.intervals(0).size(), 1u);
  EXPECT_TRUE(tracer.intervals(1).empty());
}

}  // namespace
}  // namespace flashroute::obs
