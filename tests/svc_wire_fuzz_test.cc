// Deterministic structure-aware fuzz of the frd wire codec (svc/wire.h):
// seeded byte mutations over valid frames, every truncation prefix, and
// crafted varint / length-prefix edge cases around the 1 MiB kMaxFrame
// cap.  The contract under test is wire.h's "a malformed payload never
// traps": Reader must stay in-bounds for arbitrary input (its sticky
// error flag yields zeros), and the message decoders must return either
// nullopt or a value that survives an encode/decode round trip.  Seeds
// are fixed (util::Xoshiro256), so a failure is a unit-test failure with
// a printable seed+iteration, not a flaky repro.  CI runs this under
// ASan/UBSan, which turns any out-of-bounds read into a hard fault.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/wire.h"
#include "util/rng.h"

namespace flashroute::svc {
namespace {

JobSpec sample_spec() {
  JobSpec spec;
  spec.name = "fuzz-corpus-job";
  spec.prefix_bits = 12;
  spec.first_prefix = 0x0a0000;
  spec.topology_seed = 11;
  spec.scan_seed = 22;
  spec.target_seed = 33;
  spec.probes_per_second = 12'345.5;
  spec.split_ttl = 14;
  spec.gap_limit = 4;
  spec.max_ttl = 30;
  spec.preprobe_random = true;
  spec.collect_routes = true;
  spec.max_retransmits = 2;
  spec.adaptive_backoff = true;
  spec.priority = 3;
  spec.weight = 2.5;
  spec.request_key = "fuzz-request-key";
  return spec;
}

JobView sample_view() {
  JobView view;
  view.id = 77;
  view.state = JobState::kRunning;
  view.name = "fuzz-view";
  view.priority = 1;
  view.probes_per_second = 999.25;
  view.probes = 123456;
  view.slices = 9;
  view.has_checkpoint = true;
  view.detail = "slice 9 of many";
  return view;
}

bool specs_equal(const JobSpec& a, const JobSpec& b) {
  return a.name == b.name && a.prefix_bits == b.prefix_bits &&
         a.first_prefix == b.first_prefix &&
         a.topology_seed == b.topology_seed && a.scan_seed == b.scan_seed &&
         a.target_seed == b.target_seed &&
         a.probes_per_second == b.probes_per_second &&
         a.split_ttl == b.split_ttl && a.gap_limit == b.gap_limit &&
         a.max_ttl == b.max_ttl && a.preprobe_random == b.preprobe_random &&
         a.collect_routes == b.collect_routes &&
         a.max_retransmits == b.max_retransmits &&
         a.adaptive_backoff == b.adaptive_backoff &&
         a.min_round_duration == b.min_round_duration &&
         a.priority == b.priority && a.weight == b.weight &&
         a.checkpoint_interval == b.checkpoint_interval &&
         a.request_key == b.request_key;
}

std::string valid_submit_payload() {
  Writer w(MsgType::kSubmit);
  encode_spec(w, sample_spec());
  return w.bytes();
}

std::string valid_view_payload() {
  Writer w(MsgType::kListReply);
  encode_view(w, sample_view());
  return w.bytes();
}

// Runs a payload through the full decode surface.  The assertions are the
// no-trap contract: decoders return nullopt or a round-trippable value;
// Reader primitives afterwards still behave (sticky error, zero yields).
void exercise_payload(std::string_view payload, const std::string& context) {
  SCOPED_TRACE(context);
  (void)peek_type(payload);

  {
    Reader r(payload);
    r.u8();  // type byte, as Daemon::handle_request does
    const std::optional<JobSpec> spec = decode_spec(r);
    if (spec.has_value()) {
      ASSERT_TRUE(r.ok());
      // Canonicalization: whatever bytes produced it, a decoded spec
      // round-trips exactly through its own encoding.
      Writer w(MsgType::kSubmit);
      encode_spec(w, *spec);
      Reader r2(w.bytes());
      r2.u8();
      const std::optional<JobSpec> again = decode_spec(r2);
      ASSERT_TRUE(again.has_value());
      EXPECT_TRUE(specs_equal(*spec, *again));
    }
  }
  {
    Reader r(payload);
    r.u8();
    (void)decode_view(r);
  }
  {
    // Drain with mismatched primitive types: sticky error, zeros after.
    Reader r(payload);
    (void)r.string();
    (void)r.varint();
    (void)r.u64();
    (void)r.f64();
    (void)r.u32();
    (void)r.boolean();
    if (!r.ok()) {
      EXPECT_EQ(r.u64(), 0u);       // error is sticky: reads yield zero
      EXPECT_EQ(r.string(), "");    // and empty
      EXPECT_FALSE(r.done());
    }
  }
}

TEST(SvcWireFuzz, EveryTruncationPrefixIsRejectedCleanly) {
  for (const std::string& payload :
       {valid_submit_payload(), valid_view_payload()}) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view prefix(payload.data(), cut);
      exercise_payload(prefix, "truncate at " + std::to_string(cut));
      if (cut > 1) {
        // A strictly truncated submit can never decode to a spec: the
        // field sequence ends with a non-empty length-prefixed string
        // after fixed-width integers, so any cut starves some read.
        Reader r(prefix);
        r.u8();
        EXPECT_FALSE(decode_spec(r).has_value());
      }
    }
    // The untruncated payload still decodes (the corpus is live).
    exercise_payload(payload, "full payload");
  }
}

TEST(SvcWireFuzz, SeededByteMutationsNeverTrap) {
  const std::string submit = valid_submit_payload();
  const std::string view = valid_view_payload();
  util::Xoshiro256 rng(0xF1A5'11CE'5EEDULL);
  constexpr int kIterations = 4000;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::string bytes = (iteration % 2 == 0) ? submit : view;
    // 1-8 point mutations: flip, overwrite, truncate, or extend.
    const int edits = 1 + static_cast<int>(rng.bounded(8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.bounded(4)) {
        case 0: {  // bit flip
          const std::size_t at = rng.bounded(bytes.size());
          bytes[at] = static_cast<char>(
              static_cast<std::uint8_t>(bytes[at]) ^
              static_cast<std::uint8_t>(1u << rng.bounded(8)));
          break;
        }
        case 1: {  // byte overwrite (0x00/0xFF/random — length-prefix bait)
          const std::size_t at = rng.bounded(bytes.size());
          const std::uint8_t pick[] = {0x00, 0xFF, 0x80,
                                       static_cast<std::uint8_t>(rng())};
          bytes[at] = static_cast<char>(pick[rng.bounded(4)]);
          break;
        }
        case 2:  // truncate a random tail
          bytes.resize(rng.bounded(bytes.size()) + 1);
          break;
        default:  // extend with random garbage
          for (std::uint64_t n = rng.bounded(9); n > 0; --n) {
            bytes += static_cast<char>(rng());
          }
          break;
      }
      if (bytes.empty()) bytes = "\x01";
    }
    exercise_payload(bytes, "seeded mutation iteration " +
                                std::to_string(iteration));
  }
}

TEST(SvcWireFuzz, VarintAndLengthPrefixEdgesAroundTheFrameCap) {
  // String length claims straddling kMaxFrame: 1 MiB is the framing cap,
  // so any claim above it (or any claim the buffer cannot satisfy) must
  // flip the sticky error, not allocate or walk out of bounds.
  const std::uint64_t claims[] = {
      0,  1,  kMaxFrame - 1, kMaxFrame, std::uint64_t{kMaxFrame} + 1,
      std::uint64_t{1} << 32, ~std::uint64_t{0}};
  for (const std::uint64_t claim : claims) {
    Writer w(MsgType::kSubmit);
    w.put_varint(claim);
    // Supply only 4 bytes of "string" body regardless of the claim.
    w.put_u32(0xDEADBEEF);
    Reader r(w.bytes());
    r.u8();
    const std::string s = r.string();
    if (claim <= 4) {
      EXPECT_TRUE(r.ok()) << claim;
      EXPECT_EQ(s.size(), claim);
    } else {
      EXPECT_FALSE(r.ok()) << claim;
      EXPECT_TRUE(s.empty());
    }
  }

  // Over-long varint: eleven continuation bytes exceed the 64-bit shift
  // budget; the Reader must stop with the sticky error set.
  {
    std::string bytes(1, static_cast<char>(MsgType::kSubmit));
    bytes.append(11, static_cast<char>(0xFF));
    Reader r(bytes);
    r.u8();
    EXPECT_EQ(r.varint(), 0u);
    EXPECT_FALSE(r.ok());
  }

  // A varint that terminates exactly at the shift limit stays valid.
  {
    Writer w(MsgType::kSubmit);
    w.put_varint(~std::uint64_t{0});
    Reader r(w.bytes());
    r.u8();
    EXPECT_EQ(r.varint(), ~std::uint64_t{0});
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace flashroute::svc
