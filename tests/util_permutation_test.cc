// Tests for the keyed cycle-walking Feistel permutation (util/permutation.h).
//
// Both FlashRoute's DCB ring order and Yarrp's (prefix, TTL) walk depend on
// this being a true bijection for arbitrary domain sizes.

#include "util/permutation.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace flashroute::util {
namespace {

class PermutationBijection
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationBijection, CoversDomainExactlyOnce) {
  const std::uint64_t n = GetParam();
  const RandomPermutation perm(n, /*seed=*/0xBEEF);
  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = perm(i);
    ASSERT_LT(v, n) << "image escaped the domain at " << i;
    ASSERT_FALSE(seen[v]) << "collision at " << i << " -> " << v;
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(DomainSizes, PermutationBijection,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           100, 255, 256, 257, 1000, 4096,
                                           5000, 65536, 100000));

TEST(Permutation, DeterministicForSameSeed) {
  const RandomPermutation a(1000, 42);
  const RandomPermutation b(1000, 42);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(a(i), b(i));
}

TEST(Permutation, DifferentSeedsGiveDifferentOrders) {
  const RandomPermutation a(1000, 1);
  const RandomPermutation b(1000, 2);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a(i) == b(i)) ++same;
  }
  // Two random permutations of 1000 elements agree on ~1 position.
  EXPECT_LT(same, 20);
}

TEST(Permutation, ActuallyShuffles) {
  const RandomPermutation perm(10000, 7);
  // Count fixed points and adjacent mappings; identity-like behaviour would
  // make probing bursts hit adjacent prefixes.
  int fixed = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (perm(i) == i) ++fixed;
  }
  EXPECT_LT(fixed, 30);
}

TEST(Permutation, SpreadsNeighbours) {
  // Consecutive ranks should land far apart on average — this is the
  // anti-hotspot property Yarrp relies on.
  const std::uint64_t n = 65536;
  const RandomPermutation perm(n, 3);
  std::uint64_t sum_distance = 0;
  const int samples = 1000;
  for (int i = 0; i < samples; ++i) {
    const auto a = perm(static_cast<std::uint64_t>(i));
    const auto b = perm(static_cast<std::uint64_t>(i) + 1);
    sum_distance += a > b ? a - b : b - a;
  }
  // Random pairs average n/3 apart.
  EXPECT_GT(sum_distance / samples, n / 8);
}

TEST(Permutation, SizeAccessor) {
  EXPECT_EQ(RandomPermutation(123, 1).size(), 123u);
  EXPECT_EQ(RandomPermutation(0, 1).size(), 0u);
}

TEST(Permutation, HugeDomainPointQueriesStayInRange) {
  const std::uint64_t n = std::uint64_t{1} << 40;
  const RandomPermutation perm(n, 99);
  std::unordered_set<std::uint64_t> images;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto v = perm(i * 0x10000001ULL % n);
    ASSERT_LT(v, n);
    images.insert(v);
  }
  EXPECT_EQ(images.size(), 1000u);  // injective on the sampled points
}

}  // namespace
}  // namespace flashroute::util
