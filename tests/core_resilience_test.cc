// Tests for the engine resilience layer (DESIGN.md §9): retransmission
// recovering discovery under loss, send-failure accounting, adaptive rate
// backoff, telemetry counters, and worker-count invariance of a sharded
// scan under an active fault plane.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "obs/metrics.h"
#include "obs/scan_metrics.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

sim::SimParams world_params(int bits = 8) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = 6;
  return params;
}

TracerConfig base_config(const sim::SimParams& params) {
  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = 20'000.0;
  config.preprobe = PreprobeMode::kNone;
  config.min_round_duration = 50 * util::kMillisecond;
  return config;
}

ScanResult scan(const sim::Topology& topology, const sim::FaultParams& faults,
                const TracerConfig& config) {
  sim::SimNetwork network(topology, faults);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(Resilience, RetransmissionRecoversDiscoveryUnderLoss) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);
  sim::FaultParams faults;
  faults.probe_loss = 0.25;
  faults.response_loss = 0.25;

  TracerConfig config = base_config(params);
  const ScanResult plain = scan(topology, faults, config);
  EXPECT_EQ(plain.retransmits, 0u);

  config.max_retransmits = 3;
  const ScanResult resilient = scan(topology, faults, config);
  EXPECT_GT(resilient.retransmits, 0u);
  // The retransmission budget buys back lost probes: strictly more probes,
  // at least as many interfaces (comfortably more at 25% loss).
  EXPECT_GT(resilient.probes_sent, plain.probes_sent);
  EXPECT_GT(resilient.interfaces.size(), plain.interfaces.size());
}

TEST(Resilience, ZeroLossKeepsDiscoveryIdentical) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);

  TracerConfig config = base_config(params);
  // Slow enough that the sim's per-interface ICMP rate limiters never
  // engage: retransmissions shift later probes' send times, and a scan fast
  // enough to trip the limiters would see *different* drops, not none.
  config.probes_per_second = 2'000.0;
  const ScanResult plain = scan(topology, sim::FaultParams{}, config);

  config.max_retransmits = 2;
  const ScanResult resilient = scan(topology, sim::FaultParams{}, config);
  // With nothing lost, retransmission only re-probes genuinely silent hops;
  // it discovers exactly the same topology.
  EXPECT_EQ(resilient.interfaces, plain.interfaces);
  EXPECT_EQ(resilient.destinations_reached, plain.destinations_reached);
}

TEST(Resilience, SendFailuresAreCountedAndRecovered) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);
  sim::FaultParams faults;
  faults.send_fail_prob = 0.2;

  TracerConfig config = base_config(params);
  config.max_retransmits = 3;
  const ScanResult result = scan(topology, faults, config);
  EXPECT_GT(result.send_failures, 0u);

  // Retransmission treats a failed send like a lost probe, so discovery
  // stays close to the clean scan.
  const ScanResult clean = scan(topology, sim::FaultParams{},
                                base_config(params));
  EXPECT_GT(result.interfaces.size(), clean.interfaces.size() * 9 / 10);
}

TEST(Resilience, AdaptiveBackoffEngagesUnderHeavyLoss) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);
  sim::FaultParams faults;
  faults.probe_loss = 0.7;
  faults.response_loss = 0.5;

  TracerConfig config = base_config(params);
  config.max_retransmits = 1;
  config.adaptive_backoff = true;
  config.backoff_loss_threshold = 0.3;
  const ScanResult result = scan(topology, faults, config);
  EXPECT_GT(result.rate_backoffs, 0u);
  // Backed-off rounds stretch the virtual timeline beyond the clean scan's.
  const ScanResult clean = scan(topology, sim::FaultParams{},
                                base_config(params));
  EXPECT_GT(result.scan_time, clean.scan_time);
}

TEST(Resilience, TelemetryCountsResilienceEvents) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);
  sim::FaultParams faults;
  faults.probe_loss = 0.3;
  faults.response_loss = 0.3;
  faults.send_fail_prob = 0.1;

  obs::MetricsRegistry registry;
  TracerConfig config = base_config(params);
  config.max_retransmits = 2;
  config.telemetry.registry = &registry;
  config.telemetry.ids = obs::register_scan_metrics(registry,
                                                    /*resilience=*/true);
  registry.freeze(1);
  config.telemetry.lane = registry.lane(0);
  config.telemetry.lane_id = 0;

  const ScanResult result = scan(topology, faults, config);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    for (std::size_t i = 0; i < snapshot.counter_names.size(); ++i) {
      if (snapshot.counter_names[i] == name) return snapshot.counters[i];
    }
    return 0;
  };
  EXPECT_EQ(counter("scan.retransmits"), result.retransmits);
  EXPECT_EQ(counter("scan.send_failures"), result.send_failures);
  EXPECT_EQ(counter("scan.probe_timeouts"), result.probe_timeouts);
  EXPECT_GT(result.retransmits, 0u);
  EXPECT_GT(result.send_failures, 0u);
}

TEST(Resilience, ShardedScanUnderFaultsIsWorkerCountInvariant) {
  sim::SimParams params = world_params(9);
  params.faults.probe_loss = 0.2;
  params.faults.response_loss = 0.15;
  params.faults.blackhole_fraction = 0.05;
  params.faults.send_fail_prob = 0.05;
  const sim::Topology topology(params);

  ShardedTracerConfig config;
  config.base = base_config(params);
  config.base.max_retransmits = 2;
  config.base.adaptive_backoff = true;
  config.shard_prefix_bits = config.base.prefix_bits - 2;  // 4 shards

  const auto run_with = [&](int workers) {
    config.num_workers = workers;
    sim::SimShardRuntimeProvider provider(topology, config);
    ShardedTracer tracer(config, provider);
    return tracer.run();
  };

  const ScanResult one = run_with(1);
  const ScanResult four = run_with(4);
  EXPECT_GT(one.retransmits, 0u);
  EXPECT_EQ(one.interfaces, four.interfaces);
  EXPECT_EQ(one.probes_sent, four.probes_sent);
  EXPECT_EQ(one.responses, four.responses);
  EXPECT_EQ(one.routes, four.routes);
  EXPECT_EQ(one.retransmits, four.retransmits);
  EXPECT_EQ(one.send_failures, four.send_failures);
  EXPECT_EQ(one.probe_timeouts, four.probe_timeouts);
  EXPECT_EQ(one.rate_backoffs, four.rate_backoffs);
  EXPECT_EQ(one.destination_distance, four.destination_distance);
}

}  // namespace
}  // namespace flashroute::core
