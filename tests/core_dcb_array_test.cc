// Tests for the §3.4 control-state structure: the DCB array with its
// overlaid circular doubly linked list in random permutation order (Fig 5).

#include "core/dcb_array.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace flashroute::core {
namespace {

std::vector<std::uint32_t> walk_ring(const DcbArray& array) {
  std::vector<std::uint32_t> order;
  if (array.ring_size() == 0) return order;
  std::uint32_t index = array.head();
  for (std::uint32_t i = 0; i < array.ring_size(); ++i) {
    order.push_back(index);
    index = array.next(index);
  }
  return order;
}

TEST(DcbArray, RingFollowsPermutationOrder) {
  DcbArray array(16);
  const util::RandomPermutation perm(16, 5);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  ASSERT_EQ(array.ring_size(), 16u);

  std::vector<std::uint32_t> expected;
  for (std::uint64_t rank = 0; rank < 16; ++rank) {
    expected.push_back(static_cast<std::uint32_t>(perm(rank)));
  }
  EXPECT_EQ(walk_ring(array), expected);
}

TEST(DcbArray, RingIsCircularBothWays) {
  DcbArray array(8);
  const util::RandomPermutation perm(8, 1);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  // Forward walk returns to head; backward pointers mirror forward ones.
  std::uint32_t index = array.head();
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t next = array[index].next_index();
    EXPECT_EQ(array[next].previous_index(), index);
    index = next;
  }
  EXPECT_EQ(index, array.head());
}

TEST(DcbArray, ExcludedSlotsKeepTheirPlaceButStayOut) {
  // "Prefixes excluded from the scan still occupy their slots" (§3.4).
  DcbArray array(10);
  const util::RandomPermutation perm(10, 2);
  const auto size = array.build_ring(
      perm, [](std::uint32_t index) { return index % 2 == 0; });
  EXPECT_EQ(size, 5u);
  EXPECT_EQ(array.ring_size(), 5u);
  for (const std::uint32_t index : walk_ring(array)) {
    EXPECT_EQ(index % 2, 0u);
  }
  EXPECT_FALSE(array.in_ring(1));
  EXPECT_TRUE(array.in_ring(0));
}

TEST(DcbArray, RemoveUnlinksInO1) {
  DcbArray array(5);
  const util::RandomPermutation perm(5, 3);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  const auto before = walk_ring(array);
  const std::uint32_t victim = before[2];
  array.remove(victim);
  EXPECT_EQ(array.ring_size(), 4u);
  EXPECT_FALSE(array.in_ring(victim));
  for (const std::uint32_t index : walk_ring(array)) {
    EXPECT_NE(index, victim);
  }
}

TEST(DcbArray, RemoveHeadMovesHead) {
  DcbArray array(4);
  const util::RandomPermutation perm(4, 4);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  const std::uint32_t old_head = array.head();
  ASSERT_LT(old_head, 4u);
  const std::uint32_t next = array.next(old_head);
  array.remove(old_head);
  EXPECT_EQ(array.head(), next);
  EXPECT_EQ(array.ring_size(), 3u);
}

TEST(DcbArray, RemoveLastEmptiesRing) {
  DcbArray array(1);
  const util::RandomPermutation perm(1, 1);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  EXPECT_EQ(array.ring_size(), 1u);
  array.remove(0);
  EXPECT_EQ(array.ring_size(), 0u);
  EXPECT_EQ(array.head(), DcbArray::kNone);
}

TEST(DcbArray, DoubleRemoveIsIdempotent) {
  DcbArray array(3);
  const util::RandomPermutation perm(3, 1);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  array.remove(1);
  array.remove(1);
  EXPECT_EQ(array.ring_size(), 2u);
}

TEST(DcbArray, RemoveAllInRandomOrder) {
  DcbArray array(100);
  const util::RandomPermutation perm(100, 9);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  // Remove in array order (different from ring order) and verify
  // consistency at every step.
  for (std::uint32_t i = 0; i < 100; ++i) {
    array.remove(i);
    ASSERT_EQ(array.ring_size(), 99u - i);
    if (array.ring_size() > 0) {
      ASSERT_EQ(walk_ring(array).size(), array.ring_size());
    }
  }
  EXPECT_EQ(array.head(), DcbArray::kNone);
}

TEST(DcbArray, RebuildAfterRemovalRestoresRing) {
  // The discovery-optimized mode re-threads the ring per extra scan.
  DcbArray array(32);
  const util::RandomPermutation perm(32, 11);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  for (std::uint32_t i = 0; i < 32; i += 2) array.remove(i);
  EXPECT_EQ(array.ring_size(), 16u);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  EXPECT_EQ(array.ring_size(), 32u);
  EXPECT_EQ(walk_ring(array).size(), 32u);
}

TEST(DcbArray, MemoryAccountingMatchesPaper) {
  // §3.4: ~900 MB for 2^24 DCBs with mutexes; the packed layout (host octet
  // only, 24-bit links, spinlock folded into the flags byte) is the
  // full-scale variant.  (Small arrays here; the full-size accounting runs
  // in bench/sec34_memory_footprint.)
  EXPECT_EQ(DcbArray(1000).memory_bytes(), 1000 * sizeof(Dcb));
  EXPECT_EQ(MutexDcbArray(1000).memory_bytes(), 1000 * sizeof(MutexDcb));
  EXPECT_LT(sizeof(Dcb), sizeof(PaddedDcb));
  EXPECT_LT(sizeof(PaddedDcb), sizeof(MutexDcb));
  EXPECT_LE(sizeof(Dcb), 12u);  // octet + 3 bytes state + 2x24-bit links + flags
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  int counter = 0;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::lock_guard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4 * kPerThread);
}

TEST(Dcb, PaperFieldsPresent) {
  // Listing 1's layout: destination, backward/forward hops, horizon, links.
  Dcb dcb;
  dcb.set_dest_octet(0x04);
  dcb.set_next_backward_hop(16);
  dcb.set_next_forward_hop(17);
  dcb.set_forward_horizon(21);
  dcb.set_next_index(1);
  dcb.set_previous_index(2);
  EXPECT_EQ(dcb.dest_octet(), 0x04);
  EXPECT_EQ(dcb.next_backward_hop(), 16);
  EXPECT_EQ(dcb.next_forward_hop(), 17);
  EXPECT_EQ(dcb.forward_horizon(), 21);
  EXPECT_EQ(dcb.next_index(), 1u);
  EXPECT_EQ(dcb.previous_index(), 2u);
}

}  // namespace
}  // namespace flashroute::core
