// Fine-grained behavioural tests for mechanisms whose effects the benches
// only show in aggregate: fold-mode prediction (§3.3.5 + §3.3.3), the
// backward-jump on preprobe measurements, Scamper's one-hop-late
// convergence stop, and composition of runtime decorators with exclusions.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "baselines/scamper.h"
#include "core/exclusion.h"
#include "core/tracer.h"
#include "io/pcap.h"
#include "io/scan_archive.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute {
namespace {

sim::SimParams world_params(std::uint64_t seed = 1, int bits = 10) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  return params;
}

core::TracerConfig base_config(const sim::SimParams& params) {
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  return config;
}

core::ScanResult scan(const sim::Topology& topology,
                      const core::TracerConfig& config) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(FoldMode, PredictionSavesProbesOverMeasurementAlone) {
  // §3.3.5 + §3.3.3: after the folded first round, the engine predicts the
  // neighbours of measured blocks and jumps their backward probing.  With
  // prediction disabled (span 0) the same scan must cost more probes.
  const sim::Topology topology(world_params(6, 11));
  auto config = base_config(topology.params());
  config.split_ttl = 32;
  config.preprobe = core::PreprobeMode::kRandom;  // fold applies

  config.proximity_span = 5;
  const auto with_prediction = scan(topology, config);
  EXPECT_GT(with_prediction.distances_predicted, 0u);

  config.proximity_span = 0;
  const auto without_prediction = scan(topology, config);
  EXPECT_EQ(without_prediction.distances_predicted, 0u);

  EXPECT_LT(with_prediction.probes_sent, without_prediction.probes_sent);
  // Both still measure the same distances in round one.
  EXPECT_EQ(with_prediction.distances_measured,
            without_prediction.distances_measured);
}

TEST(FoldMode, MeasuredDestinationsSkipTheirUnreachableTail) {
  // A destination measured at distance d in the folded round must not be
  // probed backward through (d, 32): the jump goes straight below d.
  const sim::Topology topology(world_params(6, 9));
  auto config = base_config(topology.params());
  config.split_ttl = 32;
  config.preprobe = core::PreprobeMode::kRandom;
  config.proximity_span = 0;  // isolate the measurement jump
  config.collect_probe_log = true;
  const auto result = scan(topology, config);

  std::map<std::uint32_t, std::set<int>> probed;
  for (const auto& probe : result.probe_log) {
    probed[(probe.destination >> 8) - config.first_prefix].insert(probe.ttl);
  }
  int checked = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    const auto measured = result.measured_distance[i];
    if (measured == 0 || measured > 28) continue;
    // TTLs strictly between measured+1 and 31 should be skipped (32 was the
    // folded first round; allow measured+1 as the one-round overshoot).
    int deep_probes = 0;
    for (const int ttl : probed[i]) {
      if (ttl > measured + 1 && ttl < 32) ++deep_probes;
    }
    EXPECT_LE(deep_probes, 1) << "prefix offset " << i << " measured "
                              << int(measured);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(Scamper, StopsOneHopLaterThanSingleKnownHop) {
  // Above the pause region Scamper requires two consecutive known hops —
  // so for destinations converging there, its minimum backward TTL is one
  // below what a single-known-hop rule would give.  Verify the mechanism
  // directly: no destination stops backward at the very first known hop
  // above redundancy_pause_high.
  sim::SimParams params = world_params(4, 9);
  params.interface_silent_prob = 0.0;  // make responses deterministic
  for (auto& p : params.filtered_tail_cum_pct) p = 100;
  const sim::Topology topology(params);

  baselines::ScamperConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(10'000.0, params.prefix_bits);
  config.window = 64;
  config.first_ttl = 20;  // backward region spans the pause-high threshold
  config.redundancy_pause_high = 16;
  config.redundancy_pause_low = 4;
  config.collect_probe_log = true;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Scamper scamper(config, runtime);
  const auto result = scamper.run();

  // Count destinations whose backward walk stopped at each TTL (their
  // minimum probed TTL).  Stops at TTL >= pause_high require two known
  // hops: a stop at 19 means 19 and... 19's stop required a known streak of
  // 2 — i.e. the hop at 20 (forward-phase start) was also known.  The
  // mechanism's observable: nobody stops at the first backward probe
  // unless its predecessor already hit a known hop, so stops at TTL ==
  // first_ttl - 1 are rare compared to TTL == first_ttl - 2.
  std::map<std::uint32_t, int> min_ttl;
  for (const auto& probe : result.probe_log) {
    auto [it, inserted] = min_ttl.try_emplace(probe.destination, probe.ttl);
    if (!inserted) it->second = std::min<int>(it->second, probe.ttl);
  }
  std::map<int, int> stops;
  for (const auto& [destination, ttl] : min_ttl) ++stops[ttl];
  // The pause region [5, 15] must show essentially no stops.
  int pause_stops = 0;
  for (int ttl = config.redundancy_pause_low + 1;
       ttl < config.redundancy_pause_high; ++ttl) {
    pause_stops += stops[ttl];
  }
  int below_stops = 0;
  for (int ttl = 1; ttl <= config.redundancy_pause_low; ++ttl) {
    below_stops += stops[ttl];
  }
  EXPECT_EQ(pause_stops, 0);
  EXPECT_GT(below_stops, 0);
}

TEST(Composition, CapturingRuntimeWithExclusionsAndArchive) {
  // All the optional plumbing at once: exclusions narrow the scan, the
  // capture decorator records it, and the archive round-trips the result.
  const sim::Topology topology(world_params(8, 8));
  auto config = base_config(topology.params());
  config.preprobe = core::PreprobeMode::kRandom;

  core::ExclusionList exclusions;
  ASSERT_TRUE(exclusions.add_entry("1.0.0.0/18"));  // first quarter
  config.exclusions = &exclusions;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime inner(network, config.probes_per_second);
  std::stringstream capture;
  io::CapturingRuntime runtime(inner, capture);
  core::Tracer tracer(config, runtime);
  const auto result = tracer.run();

  EXPECT_GT(result.probes_sent, 0u);
  const auto packets = io::read_pcap(capture);
  ASSERT_TRUE(packets);
  EXPECT_EQ(packets->size(), result.probes_sent + result.responses);

  std::stringstream archive;
  io::write_archive(result, {config.first_prefix, config.prefix_bits, 8},
                    archive);
  const auto loaded = io::read_archive(archive);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->result.interfaces, result.interfaces);
  // The excluded quarter has no recorded hops.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(loaded->result.routes[i].empty()) << i;
  }
}

}  // namespace
}  // namespace flashroute
