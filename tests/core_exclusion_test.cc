// Tests for exclusion lists (ethics appendix) and target-list loading
// (§3.4's exterior-file option).

#include "core/exclusion.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

TEST(ExclusionList, SingleAddress) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("1.2.3.4"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.5")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.3")));
}

TEST(ExclusionList, CidrRanges) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("10.20.0.0/16"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("10.20.0.0")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("10.20.255.255")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("10.21.0.0")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("10.19.255.255")));
}

TEST(ExclusionList, HostBitsAreMasked) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("192.168.77.200/24"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("192.168.77.1")));
}

TEST(ExclusionList, SlashZeroCoversEverything) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("0.0.0.0/0"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("8.8.8.8")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("255.255.255.255")));
}

TEST(ExclusionList, RejectsMalformedEntries) {
  ExclusionList list;
  EXPECT_FALSE(list.add_entry("1.2.3"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/33"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/-1"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/"));
  EXPECT_FALSE(list.add_entry("hello"));
  EXPECT_TRUE(list.empty());
}

TEST(ExclusionList, OverlappingRangesMerge) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("1.0.0.0/24"));
  EXPECT_TRUE(list.add_entry("1.0.0.128/25"));
  EXPECT_TRUE(list.add_entry("1.0.1.0/24"));
  // Merging happens lazily; all queries consistent.
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.0.5")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.1.200")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.0.2.0")));
}

TEST(ExclusionList, Prefix24Overlap) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("9.9.9.77"));  // single host
  // The conservative opt-out: the whole /24 around it is off limits.
  EXPECT_TRUE(list.excludes_prefix24(0x090909));
  EXPECT_FALSE(list.excludes_prefix24(0x090908));
  EXPECT_FALSE(list.excludes_prefix24(0x09090A));

  EXPECT_TRUE(list.add_entry("20.0.0.0/14"));
  EXPECT_TRUE(list.excludes_prefix24(0x140000));  // 20.0.0.0/24
  EXPECT_TRUE(list.excludes_prefix24(0x1403FF));  // 20.3.255.0/24
  EXPECT_FALSE(list.excludes_prefix24(0x140400)); // 20.4.0.0/24
}

TEST(ExclusionList, LoadWithCommentsAndBlanks) {
  ExclusionList list;
  std::istringstream input(
      "# opt-outs received 2020-09-17\n"
      "\n"
      "1.2.3.0/24   # complaint A\n"
      "  5.6.7.8\n"
      "\t9.0.0.0/8\n");
  const auto added = list.load(input);
  ASSERT_TRUE(added);
  EXPECT_EQ(*added, 3u);
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("9.200.1.1")));
}

TEST(ExclusionList, LoadIsAllOrNothing) {
  ExclusionList list;
  ASSERT_TRUE(list.add_entry("7.7.7.7"));
  std::istringstream input("1.2.3.0/24\nnot-an-address\n");
  EXPECT_FALSE(list.load(input));
  // The bad file changed nothing; the pre-existing entry survived.
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("7.7.7.7")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.4")));
}

TEST(TargetList, LoadsOnePerPrefix) {
  std::istringstream input(
      "# curated targets\n"
      "1.0.0.55\n"
      "1.0.0.77\n"   // second entry for the same /24: ignored (§3.4)
      "1.0.2.1\n"
      "9.9.9.9\n");  // outside the universe
  std::size_t skipped = 0;
  const auto targets = load_target_list(input, 0x010000, 4, &skipped);
  ASSERT_TRUE(targets);
  EXPECT_EQ(targets->size(), 4u);
  EXPECT_EQ((*targets)[0], 0x01000037u);  // 1.0.0.55 — first entry wins
  EXPECT_EQ((*targets)[1], 0u);
  EXPECT_EQ((*targets)[2], 0x01000201u);
  EXPECT_EQ(skipped, 1u);
}

TEST(TargetList, RejectsMalformed) {
  std::istringstream input("1.0.0.55\nbogus\n");
  EXPECT_FALSE(load_target_list(input, 0x010000, 4));
}

TEST(TracerWithExclusions, SkipsExcludedBlocks) {
  sim::SimParams params;
  params.prefix_bits = 8;
  const sim::Topology topology(params);

  ExclusionList exclusions;
  // Exclude the first half of the universe: 1.0.0.0/17 covers offsets 0..127.
  ASSERT_TRUE(exclusions.add_entry("1.0.0.0/17"));

  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = PreprobeMode::kNone;
  config.exclusions = &exclusions;
  config.collect_probe_log = true;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Tracer tracer(config, runtime);
  const auto result = tracer.run();

  EXPECT_GT(result.probes_sent, 0u);
  for (const auto& probe : result.probe_log) {
    EXPECT_FALSE(exclusions.contains(net::Ipv4Address(probe.destination)))
        << net::Ipv4Address(probe.destination).to_string();
    EXPECT_GE(probe.destination >> 8, 0x010080u);  // second half only
  }
}

}  // namespace
}  // namespace flashroute::core
