// Tests for exclusion lists (ethics appendix) and target-list loading
// (§3.4's exterior-file option).

#include "core/exclusion.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

TEST(ExclusionList, SingleAddress) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("1.2.3.4"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.5")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.3")));
}

TEST(ExclusionList, CidrRanges) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("10.20.0.0/16"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("10.20.0.0")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("10.20.255.255")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("10.21.0.0")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("10.19.255.255")));
}

TEST(ExclusionList, HostBitsAreMasked) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("192.168.77.200/24"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("192.168.77.1")));
}

TEST(ExclusionList, SlashZeroCoversEverything) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("0.0.0.0/0"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("8.8.8.8")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("255.255.255.255")));
}

TEST(ExclusionList, RejectsMalformedEntries) {
  ExclusionList list;
  EXPECT_FALSE(list.add_entry("1.2.3"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/33"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/-1"));
  EXPECT_FALSE(list.add_entry("1.2.3.4/"));
  EXPECT_FALSE(list.add_entry("hello"));
  EXPECT_TRUE(list.empty());
}

TEST(ExclusionList, OverlappingRangesMerge) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("1.0.0.0/24"));
  EXPECT_TRUE(list.add_entry("1.0.0.128/25"));
  EXPECT_TRUE(list.add_entry("1.0.1.0/24"));
  // Merging happens lazily; all queries consistent.
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.0.5")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.1.200")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.0.2.0")));
}

TEST(ExclusionList, Prefix24Overlap) {
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("9.9.9.77"));  // single host
  // The conservative opt-out: the whole /24 around it is off limits.
  EXPECT_TRUE(list.excludes_prefix24(0x090909));
  EXPECT_FALSE(list.excludes_prefix24(0x090908));
  EXPECT_FALSE(list.excludes_prefix24(0x09090A));

  EXPECT_TRUE(list.add_entry("20.0.0.0/14"));
  EXPECT_TRUE(list.excludes_prefix24(0x140000));  // 20.0.0.0/24
  EXPECT_TRUE(list.excludes_prefix24(0x1403FF));  // 20.3.255.0/24
  EXPECT_FALSE(list.excludes_prefix24(0x140400)); // 20.4.0.0/24
}

TEST(ExclusionList, SlashZeroAbsorbsLaterRanges) {
  // Regression (ISSUE 6): after a saturated range (last == 255.255.255.255)
  // the merge in normalize() must keep absorbing later ranges, and every
  // query must stay covered.
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("0.0.0.0/0"));
  EXPECT_TRUE(list.add_entry("1.2.3.0/24"));
  EXPECT_TRUE(list.add_entry("200.0.0.0/8"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.2.3.4")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("199.9.9.9")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("255.255.255.255")));
  EXPECT_TRUE(list.excludes_prefix24(0x000000));
  EXPECT_TRUE(list.excludes_prefix24(0xFFFFFF));
}

TEST(ExclusionList, SaturatedEndStillMergesAdjacent) {
  // Two ranges meeting exactly at the top of the address space.
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("255.255.254.0/24"));
  EXPECT_TRUE(list.add_entry("255.255.255.0/24"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("255.255.254.1")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("255.255.255.255")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("255.255.253.255")));
  EXPECT_TRUE(list.excludes_prefix24(0xFFFFFE));
  EXPECT_TRUE(list.excludes_prefix24(0xFFFFFF));
  EXPECT_FALSE(list.excludes_prefix24(0xFFFFFD));
}

TEST(ExclusionList, AdjacentRangesMergeAcrossPrefixBoundary) {
  // 1.0.0.0/24 + 1.0.1.0/24 are adjacent, not overlapping: they must merge
  // into one span so the /23 between them reads as fully covered.
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("1.0.0.0/24"));
  EXPECT_TRUE(list.add_entry("1.0.1.0/24"));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.0.255")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.1.0")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.0.2.0")));
  EXPECT_TRUE(list.excludes_prefix24(0x010000));
  EXPECT_TRUE(list.excludes_prefix24(0x010001));
  EXPECT_FALSE(list.excludes_prefix24(0x010002));
}

TEST(ExclusionList, Slash32AtPrefix24BoundaryExcludesExactlyOneBlock) {
  // A single host at x.y.z.0 (the /24's first address) must exclude only
  // its own block, not the neighbour below it.
  ExclusionList list;
  EXPECT_TRUE(list.add_entry("9.9.9.0/32"));
  EXPECT_TRUE(list.excludes_prefix24(0x090909));
  EXPECT_FALSE(list.excludes_prefix24(0x090908));
  EXPECT_FALSE(list.excludes_prefix24(0x09090A));
  // ...and at x.y.z.255 (the /24's last address) likewise.
  ExclusionList top;
  EXPECT_TRUE(top.add_entry("9.9.9.255/32"));
  EXPECT_TRUE(top.excludes_prefix24(0x090909));
  EXPECT_FALSE(top.excludes_prefix24(0x090908));
  EXPECT_FALSE(top.excludes_prefix24(0x09090A));
}

TEST(ExclusionList, ReservedDefaultsMatchProbeExclusions) {
  // The bogon defaults must agree with net::is_probe_excluded everywhere.
  ExclusionList list;
  list.add_reserved_defaults();
  for (const std::uint32_t value :
       {0x00000001u, 0x0A000001u, 0x64400001u, 0x7F000001u, 0xA9FE0001u,
        0xAC100001u, 0xC0A80001u, 0xE0000001u, 0xF0000001u, 0xFFFFFFFFu,
        0x01020304u, 0x08080808u, 0xCB007101u}) {
    const net::Ipv4Address address(value);
    EXPECT_EQ(list.contains(address), net::is_probe_excluded(address))
        << address.to_string();
  }
}

TEST(ExclusionList, BulkBitmapMatchesPerPrefixQueries) {
  // The trie's one-pass DFS must agree bit-for-bit with excludes_prefix24.
  ExclusionList list;
  ASSERT_TRUE(list.add_entry("1.0.3.7"));          // single host
  ASSERT_TRUE(list.add_entry("1.0.16.0/20"));      // spans 16 /24s
  ASSERT_TRUE(list.add_entry("1.0.64.0/18"));      // spans 64 /24s
  ASSERT_TRUE(list.add_entry("0.255.255.0/24"));   // just below the window
  ASSERT_TRUE(list.add_entry("1.1.0.0/24"));       // just above the window
  const std::uint32_t first = 0x010000;
  const std::uint32_t count = 256;
  std::vector<std::uint64_t> bitmap((count + 63) / 64, 0);
  list.mark_excluded_prefix24(first, count, bitmap);
  for (std::uint32_t i = 0; i < count; ++i) {
    const bool bit = ((bitmap[i >> 6] >> (i & 63)) & 1) != 0;
    EXPECT_EQ(bit, list.excludes_prefix24(first + i)) << i;
  }
}

TEST(ExclusionList, LoadWithCommentsAndBlanks) {
  ExclusionList list;
  std::istringstream input(
      "# opt-outs received 2020-09-17\n"
      "\n"
      "1.2.3.0/24   # complaint A\n"
      "  5.6.7.8\n"
      "\t9.0.0.0/8\n");
  const auto added = list.load(input);
  ASSERT_TRUE(added);
  EXPECT_EQ(*added, 3u);
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("9.200.1.1")));
}

TEST(ExclusionList, LoadIsAllOrNothing) {
  ExclusionList list;
  ASSERT_TRUE(list.add_entry("7.7.7.7"));
  std::istringstream input("1.2.3.0/24\nnot-an-address\n");
  EXPECT_FALSE(list.load(input));
  // The bad file changed nothing; the pre-existing entry survived.
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("7.7.7.7")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.2.3.4")));
}

TEST(TargetList, LoadsOnePerPrefix) {
  std::istringstream input(
      "# curated targets\n"
      "1.0.0.55\n"
      "1.0.0.77\n"   // second entry for the same /24: ignored (§3.4)
      "1.0.2.1\n"
      "9.9.9.9\n");  // outside the universe
  std::size_t skipped = 0;
  const auto targets = load_target_list(input, 0x010000, 4, &skipped);
  ASSERT_TRUE(targets);
  EXPECT_EQ(targets->size(), 4u);
  EXPECT_EQ((*targets)[0], 0x01000037u);  // 1.0.0.55 — first entry wins
  EXPECT_EQ((*targets)[1], 0u);
  EXPECT_EQ((*targets)[2], 0x01000201u);
  EXPECT_EQ(skipped, 1u);
}

TEST(TargetList, RejectsMalformed) {
  std::istringstream input("1.0.0.55\nbogus\n");
  EXPECT_FALSE(load_target_list(input, 0x010000, 4));
}

TEST(TracerWithExclusions, SkipsExcludedBlocks) {
  sim::SimParams params;
  params.prefix_bits = 8;
  const sim::Topology topology(params);

  ExclusionList exclusions;
  // Exclude the first half of the universe: 1.0.0.0/17 covers offsets 0..127.
  ASSERT_TRUE(exclusions.add_entry("1.0.0.0/17"));

  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = PreprobeMode::kNone;
  config.exclusions = &exclusions;
  config.collect_probe_log = true;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Tracer tracer(config, runtime);
  const auto result = tracer.run();

  EXPECT_GT(result.probes_sent, 0u);
  for (const auto& probe : result.probe_log) {
    EXPECT_FALSE(exclusions.contains(net::Ipv4Address(probe.destination)))
        << net::Ipv4Address(probe.destination).to_string();
    EXPECT_GE(probe.destination >> 8, 0x010080u);  // second half only
  }
}

}  // namespace
}  // namespace flashroute::core
