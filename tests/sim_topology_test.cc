// Tests for the simulated Internet topology (sim/topology.h): routing
// invariants, Paris-consistency, the hitlist's gateway bias, dark space,
// middleboxes, and dynamics.  Parameterized sweeps check the invariants
// over several seeds.

#include "sim/topology.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/targets.h"
#include "net/headers.h"

namespace flashroute::sim {
namespace {

SimParams tiny_params(std::uint64_t seed = 1) {
  SimParams params;
  params.prefix_bits = 10;
  params.seed = seed;
  return params;
}

TEST(Topology, RejectsBadConfiguration) {
  SimParams params;
  params.prefix_bits = 0;
  EXPECT_THROW(Topology{params}, std::invalid_argument);
  params.prefix_bits = 25;
  EXPECT_THROW(Topology{params}, std::invalid_argument);

  // Universe overlapping the interface pool.
  params = tiny_params();
  params.first_prefix = params.interface_pool_base >> 8;
  EXPECT_THROW(Topology{params}, std::invalid_argument);

  // Universe overflowing IPv4 space.
  params = tiny_params();
  params.first_prefix = 0xFFFFFF;
  params.prefix_bits = 8;
  EXPECT_THROW(Topology{params}, std::invalid_argument);
}

TEST(Topology, InUniverse) {
  const Topology topo(tiny_params());
  EXPECT_TRUE(topo.in_universe(net::Ipv4Address(0x01000000)));
  EXPECT_TRUE(topo.in_universe(net::Ipv4Address(0x0103FFFF)));
  EXPECT_FALSE(topo.in_universe(net::Ipv4Address(0x01040000)));
  EXPECT_FALSE(topo.in_universe(net::Ipv4Address(0x00FFFFFF)));
}

TEST(Topology, ResolveFailsOutsideUniverse) {
  const Topology topo(tiny_params());
  Route route;
  EXPECT_FALSE(topo.resolve(net::Ipv4Address(0x7F000001), 1, 0, route));
}

TEST(Topology, DeterministicForSameSeed) {
  const Topology a(tiny_params(3));
  const Topology b(tiny_params(3));
  for (std::uint32_t i = 0; i < 1024; i += 7) {
    const net::Ipv4Address dest(((a.params().first_prefix + i) << 8) | 77);
    Route ra, rb;
    ASSERT_EQ(a.resolve(dest, 123, 0, ra), b.resolve(dest, 123, 0, rb));
    ASSERT_EQ(ra.num_hops, rb.num_hops);
    for (int h = 0; h < ra.num_hops; ++h) {
      ASSERT_EQ(ra.hops[static_cast<std::size_t>(h)],
                rb.hops[static_cast<std::size_t>(h)]);
    }
    ASSERT_EQ(ra.delivers, rb.delivers);
  }
}

TEST(Topology, DifferentSeedsDiffer) {
  const Topology a(tiny_params(1));
  const Topology b(tiny_params(2));
  int differing = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const net::Ipv4Address dest(((a.params().first_prefix + i) << 8) | 50);
    Route ra, rb;
    EXPECT_TRUE(a.resolve(dest, 1, 0, ra));
    EXPECT_TRUE(b.resolve(dest, 1, 0, rb));
    if (ra.num_hops != rb.num_hops) ++differing;
  }
  EXPECT_GT(differing, 32);
}

class TopologyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyInvariants, RoutesAreWellFormed) {
  const Topology topo(tiny_params(GetParam()));
  const auto& params = topo.params();
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    for (const int octet : {1, 42, 200, 254}) {
      const net::Ipv4Address dest((prefix << 8) | octet);
      Route route;
      ASSERT_TRUE(topo.resolve(dest, 99, 0, route));
      ASSERT_GT(route.num_hops, 0);
      ASSERT_LE(route.num_hops, Route::kMaxHops);
      // Paths stay within the paper's 32-hop world (very few exceed it).
      ASSERT_LE(route.num_hops, 40);
      if (route.delivers) {
        ASSERT_NE(route.delivered_address, 0u);
        ASSERT_TRUE(topo.host_exists(
            net::Ipv4Address(route.delivered_address)));
      }
      if (route.loops) {
        ASSERT_FALSE(route.delivers);
        ASSERT_NE(route.loop_a, 0u);
        ASSERT_NE(route.loop_b, 0u);
        ASSERT_NE(route.loop_a, route.loop_b);
      }
      // Every hop interface is an allocated pool IP or inside the prefix.
      for (int h = 0; h < route.num_hops; ++h) {
        const std::uint32_t ip = route.hops[static_cast<std::size_t>(h)];
        const bool in_pool =
            ip >= params.interface_pool_base &&
            ip < params.interface_pool_base +
                     topo.allocated_pool_interfaces();
        const bool in_prefix = (ip >> 8) == prefix;
        ASSERT_TRUE(in_pool || in_prefix)
            << net::Ipv4Address(ip).to_string();
      }
    }
  }
}

TEST_P(TopologyInvariants, ParisConsistency) {
  // Same flow label -> identical path (the Paris property FlashRoute's
  // fixed ports rely on); different flows may only diverge at diamonds.
  const Topology topo(tiny_params(GetParam()));
  const auto& params = topo.params();
  for (std::uint32_t i = 0; i < params.num_prefixes(); i += 13) {
    const net::Ipv4Address dest(((params.first_prefix + i) << 8) | 99);
    Route r1, r2, r3;
    EXPECT_TRUE(topo.resolve(dest, 0xAAAA, 0, r1));
    EXPECT_TRUE(topo.resolve(dest, 0xAAAA, 0, r2));
    EXPECT_TRUE(topo.resolve(dest, 0xBBBB, 0, r3));
    ASSERT_EQ(r1.num_hops, r2.num_hops);
    for (int h = 0; h < r1.num_hops; ++h) {
      ASSERT_EQ(r1.hops[static_cast<std::size_t>(h)],
                r2.hops[static_cast<std::size_t>(h)]);
    }
    // A different flow keeps the same length (diamonds are hop-parallel).
    ASSERT_EQ(r1.num_hops, r3.num_hops);
    ASSERT_EQ(r1.delivers, r3.delivers);
  }
}

TEST_P(TopologyInvariants, SomeFlowsDiverge) {
  // Load balancing must actually do something: across many destinations
  // and two flows, at least some paths differ at some hop.
  const Topology topo(tiny_params(GetParam()));
  const auto& params = topo.params();
  int divergent = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const net::Ipv4Address dest(((params.first_prefix + i) << 8) | 99);
    Route r1, r2;
    EXPECT_TRUE(topo.resolve(dest, 1, 0, r1));
    EXPECT_TRUE(topo.resolve(dest, 2, 0, r2));
    for (int h = 0; h < r1.num_hops; ++h) {
      if (r1.hops[static_cast<std::size_t>(h)] !=
          r2.hops[static_cast<std::size_t>(h)]) {
        ++divergent;
        break;
      }
    }
  }
  EXPECT_GT(divergent, 10);
}

TEST_P(TopologyInvariants, SharedProviderSections) {
  // Doubletree's premise (Fig 1): routes from one vantage form a tree, so
  // the TTL-1 interface is shared by every destination.
  const Topology topo(tiny_params(GetParam()));
  const auto& params = topo.params();
  std::unordered_set<std::uint32_t> first_hops;
  for (std::uint32_t i = 0; i < params.num_prefixes(); i += 3) {
    const net::Ipv4Address dest(((params.first_prefix + i) << 8) | 10);
    Route route;
    EXPECT_TRUE(topo.resolve(dest, 7, 0, route));
    first_hops.insert(route.hops[0]);
  }
  EXPECT_EQ(first_hops.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyInvariants,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(Topology, ApplianceAlwaysExistsInRoutedPrefixes) {
  const Topology topo(tiny_params());
  const auto& params = topo.params();
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topo.prefix_routed(prefix)) {
      EXPECT_FALSE(topo.host_exists(net::Ipv4Address((prefix << 8) | 1)));
      continue;
    }
    EXPECT_TRUE(topo.host_exists(
        net::Ipv4Address(topo.appliance_address(prefix))));
  }
}

TEST(Topology, ApplianceRouteIsShorterThanInteriorHost) {
  // The §5.1 bias mechanism: the appliance sits at the segment entrance.
  const Topology topo(tiny_params());
  const auto& params = topo.params();
  int compared = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes() && compared < 50; ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topo.prefix_routed(prefix)) continue;
    const auto appliance_ttl = topo.trigger_ttl(
        net::Ipv4Address(topo.appliance_address(prefix)), 1, 0);
    ASSERT_TRUE(appliance_ttl);
    for (int octet = 2; octet < 255; ++octet) {
      const net::Ipv4Address host((prefix << 8) |
                                  static_cast<std::uint32_t>(octet));
      if (!topo.host_exists(host)) continue;
      const auto host_ttl = topo.trigger_ttl(host, 1, 0);
      ASSERT_TRUE(host_ttl);
      EXPECT_GT(*host_ttl, *appliance_ttl);
      ++compared;
      break;
    }
  }
  EXPECT_GT(compared, 10);
}

TEST(Topology, HitlistEntriesAreInTheirPrefixAndBiased) {
  const Topology topo(tiny_params());
  const auto& params = topo.params();
  const auto hitlist = topo.generate_hitlist();
  ASSERT_EQ(hitlist.size(), params.num_prefixes());
  std::uint32_t present = 0, appliance = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    if (hitlist[i] == 0) continue;
    ++present;
    const std::uint32_t prefix = params.first_prefix + i;
    EXPECT_EQ(hitlist[i] >> 8, prefix);
    EXPECT_TRUE(topo.prefix_routed(prefix));
    EXPECT_TRUE(topo.host_exists(net::Ipv4Address(hitlist[i])));
    if (hitlist[i] == topo.appliance_address(prefix)) ++appliance;
  }
  EXPECT_GT(present, 20u);
  // The census prefers gateway appliances (§5.1).
  EXPECT_GT(appliance * 10, present * 7);
}

TEST(Topology, DarkPrefixesNeverDeliver) {
  const Topology topo(tiny_params());
  const auto& params = topo.params();
  int dark_checked = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (topo.prefix_routed(prefix)) continue;
    Route route;
    ASSERT_TRUE(topo.resolve(net::Ipv4Address((prefix << 8) | 1), 5, 0,
                             route));
    EXPECT_FALSE(route.delivers);
    EXPECT_GT(route.num_hops, 0);  // dies inside the provider, not at once
    ++dark_checked;
  }
  EXPECT_GT(dark_checked, 50);
}

TEST(Topology, MiddleboxFieldsWhenForced) {
  auto params = tiny_params();
  params.ttl_reset_middlebox_prob = 1.0;
  const Topology topo(params);
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topo.prefix_routed(prefix)) continue;
    Route route;
    EXPECT_TRUE(topo.resolve(net::Ipv4Address(topo.appliance_address(prefix)),
                             1, 0, route));
    EXPECT_GT(route.middlebox_pos, 0);
    EXPECT_LE(route.middlebox_pos, route.num_hops);
    EXPECT_TRUE(route.middlebox_reset == params.ttl_reset_low ||
                route.middlebox_reset == params.ttl_reset_high);
  }
}

TEST(Topology, RewriteMiddleboxDeliversToAppliance) {
  auto params = tiny_params();
  params.rewrite_middlebox_prob = 1.0;
  const Topology topo(params);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topo.prefix_routed(prefix)) continue;
    Route route;
    EXPECT_TRUE(topo.resolve(net::Ipv4Address((prefix << 8) | 200), 1, 0, route));
    EXPECT_TRUE(route.delivers);
    EXPECT_TRUE(route.rewritten);
    EXPECT_EQ(route.delivered_address, topo.appliance_address(prefix));
    // Probing the appliance itself is not "rewritten".
    EXPECT_TRUE(topo.resolve(net::Ipv4Address(topo.appliance_address(prefix)),
                             1, 0, route));
    EXPECT_FALSE(route.rewritten);
  }
}

TEST(Topology, SpineDynamicsAreBoundedAndEpochStable) {
  const Topology topo(tiny_params());
  for (std::uint32_t stub = 0; stub < topo.num_stubs(); ++stub) {
    for (std::int64_t epoch = 0; epoch < 20; ++epoch) {
      const int s = topo.spine_length(stub, epoch);
      EXPECT_GE(s, 0);
      EXPECT_LE(s, 4);
      EXPECT_EQ(s, topo.spine_length(stub, epoch));  // stable within epoch
    }
  }
}

TEST(Topology, RouteDynamicsChangeSomeLengthsAcrossEpochs) {
  const Topology topo(tiny_params());
  const auto& params = topo.params();
  int changed = 0, total = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topo.prefix_routed(prefix)) continue;
    const net::Ipv4Address appliance(topo.appliance_address(prefix));
    const auto t0 = topo.trigger_ttl(appliance, 1, 0);
    const auto t9 = topo.trigger_ttl(appliance, 1, 9);
    if (!t0 || !t9) continue;
    ++total;
    if (*t0 != *t9) {
      ++changed;
      EXPECT_LE(std::abs(*t0 - *t9), 2);
    }
  }
  EXPECT_GT(changed, 0);
  EXPECT_LT(changed * 2, total);  // dynamics are the exception, not the rule
}

TEST(Topology, HopAtExtendsIntoLoops) {
  Route route;
  route.num_hops = 2;
  route.hops[0] = 10;
  route.hops[1] = 20;
  route.loops = true;
  route.loop_a = 100;
  route.loop_b = 200;
  EXPECT_EQ(route.hop_at(1), 10u);
  EXPECT_EQ(route.hop_at(2), 20u);
  EXPECT_EQ(route.hop_at(3), 100u);
  EXPECT_EQ(route.hop_at(4), 200u);
  EXPECT_EQ(route.hop_at(5), 100u);
}

TEST(Topology, InterfaceResponsivenessIsPersistent) {
  const Topology topo(tiny_params());
  int silent = 0;
  for (std::uint32_t ip = topo.params().interface_pool_base;
       ip < topo.params().interface_pool_base + 500; ++ip) {
    const bool responds = topo.interface_responds(ip, net::kProtoUdp);
    EXPECT_EQ(responds, topo.interface_responds(ip, net::kProtoUdp));
    if (!responds) ++silent;
    // TCP-silence is a superset of UDP-silence.
    if (!responds) {
      EXPECT_FALSE(topo.interface_responds(ip, net::kProtoTcp));
    }
  }
  EXPECT_GT(silent, 20);   // some silent interfaces
  EXPECT_LT(silent, 300);  // most respond
}

TEST(Topology, TcpSilenceIsSlightlyHigher) {
  const Topology topo(tiny_params());
  int udp = 0, tcp = 0;
  for (std::uint32_t ip = topo.params().interface_pool_base;
       ip < topo.params().interface_pool_base + 2000; ++ip) {
    if (topo.interface_responds(ip, net::kProtoUdp)) ++udp;
    if (topo.interface_responds(ip, net::kProtoTcp)) ++tcp;
  }
  EXPECT_LT(tcp, udp);
}

}  // namespace
}  // namespace flashroute::sim
