// End-to-end smoke tests: FlashRoute, Yarrp, and Scamper against a small
// simulated universe.  These validate the wiring of every layer (codec ->
// transport -> topology -> responses -> engine state machine) before the
// more surgical per-module tests dig in.

#include <gtest/gtest.h>

#include "baselines/scamper.h"
#include "baselines/yarrp.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute {
namespace {

sim::SimParams small_params() {
  sim::SimParams params;
  params.seed = 3;
  params.prefix_bits = 10;  // 1024 /24 blocks
  return params;
}

core::TracerConfig tracer_config(const sim::SimParams& params) {
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  return config;
}

TEST(IntegrationSmoke, FlashRoute16CompletesAndDiscovers) {
  const auto params = small_params();
  sim::Topology topology(params);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, sim::scaled_probe_rate(100'000.0, params.prefix_bits));

  auto config = tracer_config(params);
  config.preprobe = core::PreprobeMode::kRandom;
  core::Tracer tracer(config, runtime);
  const auto result = tracer.run();

  EXPECT_GT(result.probes_sent, 1024u);
  EXPECT_GT(result.interfaces.size(), 50u);
  EXPECT_GT(result.destinations_reached, 10u);
  EXPECT_GT(result.scan_time, 0);
  EXPECT_GT(result.responses, 0u);
  // Backward probing with redundancy removal must actually stop at
  // convergence points in a tree-shaped topology.
  EXPECT_GT(result.convergence_stops, 100u);
}

TEST(IntegrationSmoke, RedundancyRemovalCutsProbes) {
  const auto params = small_params();
  sim::Topology topology(params);

  auto config = tracer_config(params);
  config.preprobe = core::PreprobeMode::kNone;

  sim::SimNetwork net_on(topology);
  sim::SimScanRuntime rt_on(net_on, sim::scaled_probe_rate(100'000.0, params.prefix_bits));
  config.redundancy_removal = true;
  const auto with_removal = core::Tracer(config, rt_on).run();

  sim::SimNetwork net_off(topology);
  sim::SimScanRuntime rt_off(net_off, sim::scaled_probe_rate(100'000.0, params.prefix_bits));
  config.redundancy_removal = false;
  const auto without_removal = core::Tracer(config, rt_off).run();

  // Table 1: removal cuts probes by more than half at full scale; demand at
  // least a 30% cut at this tiny scale.
  EXPECT_LT(with_removal.probes_sent, without_removal.probes_sent * 7 / 10);
  // ...at a small cost in interfaces (the paper loses <= 3% at full scale;
  // at 1/16384 scale the skipped alternative branches weigh more).
  EXPECT_GE(with_removal.interfaces.size(),
            without_removal.interfaces.size() * 85 / 100);
}

TEST(IntegrationSmoke, YarrpExhaustiveProbesEverything) {
  const auto params = small_params();
  sim::Topology topology(params);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, sim::scaled_probe_rate(100'000.0, params.prefix_bits));

  baselines::YarrpConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  baselines::Yarrp yarrp(config, runtime);
  const auto result = yarrp.run();

  // Exactly one probe per (prefix, TTL): 1024 * 32 (nothing excluded here).
  EXPECT_EQ(result.probes_sent, 1024u * 32u);
  EXPECT_GT(result.interfaces.size(), 50u);
}

TEST(IntegrationSmoke, ScamperCompletesAllTraces) {
  const auto params = small_params();
  sim::Topology topology(params);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, sim::scaled_probe_rate(10'000.0, params.prefix_bits));

  baselines::ScamperConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.window = 256;
  baselines::Scamper scamper(config, runtime);
  const auto result = scamper.run();

  EXPECT_GT(result.probes_sent, 1024u);
  EXPECT_GT(result.interfaces.size(), 50u);
  EXPECT_GT(result.destinations_reached, 10u);
}

TEST(IntegrationSmoke, ToolsAgreeOnTopologyRoughly) {
  const auto params = small_params();
  sim::Topology topology(params);

  auto config = tracer_config(params);
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;  // the Yarrp-32-UDP simulation mode

  sim::SimNetwork net_a(topology);
  sim::SimScanRuntime rt_a(net_a, sim::scaled_probe_rate(100'000.0, params.prefix_bits));
  const auto exhaustive = core::Tracer(config, rt_a).run();

  auto fr = tracer_config(params);
  fr.preprobe = core::PreprobeMode::kRandom;
  sim::SimNetwork net_b(topology);
  sim::SimScanRuntime rt_b(net_b, sim::scaled_probe_rate(100'000.0, params.prefix_bits));
  const auto flashroute = core::Tracer(fr, rt_b).run();

  // FlashRoute-16 must find nearly all interfaces the exhaustive scan does
  // (the paper reports a ~2% deficit from skipped alternative routes).
  EXPECT_GT(flashroute.interfaces.size(),
            exhaustive.interfaces.size() * 85 / 100);
  // ...with far fewer probes.
  EXPECT_LT(flashroute.probes_sent, exhaustive.probes_sent / 2);
}

}  // namespace
}  // namespace flashroute
