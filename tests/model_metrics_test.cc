// fr_model litmus for the MetricsLane cell protocol (obs/metrics.h): each
// counter cell has exactly one writer thread, so inc() is a relaxed
// load + relaxed store — no RMW — and snapshot() reads the cell with a
// relaxed load from another thread.  The claim proved here: under the
// single-writer discipline every snapshot observes a monotone,
// non-torn prefix of the increments, and the final drained value is
// exact.  The broken variant drops the discipline (two writers, same
// cell): the load/store increment loses updates, the explorer finds the
// interleaving, and the schedule string is printed and replayed — this is
// why the fr-lint `single-writer` rule and the FR_SINGLE_WRITER
// annotation exist.
//
// (MetricsLane hard-codes std::atomic in its CellBlock, so the two-line
// cell protocol is restated on model::Atomic; orderings match metrics.h.)

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/model_sched.h"

namespace model = flashroute::util::model;

namespace {

// Mirrors one MetricsLane counter cell.
struct Cell {
  model::Atomic<std::uint64_t> value{0};

  // MetricsLane::inc: single-writer relaxed load + store (no RMW).
  void inc(std::uint64_t delta) {
    value.store(value.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
  }
  // MetricsExporter snapshot path: relaxed load from another thread.
  std::uint64_t read() { return value.load(std::memory_order_relaxed); }
};

constexpr std::uint64_t kIncrements = 3;

model::Execution single_writer_execution() {
  auto cell = std::make_shared<Cell>();
  auto snapshots = std::make_shared<std::vector<std::uint64_t>>();
  model::Execution execution;
  execution.threads = {
      [cell] {
        for (std::uint64_t i = 0; i < kIncrements; ++i) cell->inc(1);
      },
      [cell, snapshots] {
        snapshots->push_back(cell->read());
        snapshots->push_back(cell->read());
      },
  };
  execution.check = [cell, snapshots] {
    // Snapshots are monotone and never overshoot (commits to one location
    // are FIFO, and the writer's own reads forward from its buffer, so no
    // increment is ever lost or observed out of order).
    if ((*snapshots)[0] > (*snapshots)[1]) return false;
    if ((*snapshots)[1] > kIncrements) return false;
    // After the execution drains, the count is exact.
    return cell->read() == kIncrements;
  };
  return execution;
}

TEST(ModelMetrics, SingleWriterSnapshotsLinearizeUnderEverySchedule) {
  model::Explorer explorer;
  const model::Result result = explorer.explore(single_writer_execution);
  EXPECT_FALSE(result.failed)
      << "counterexample schedule: " << result.schedule;
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.executions, 10);
  std::cout << "metrics schedules explored: " << result.executions << "\n";
}

// The broken variant: two threads incrementing the *same* cell with the
// load/store protocol.  Both read 0, both store 1 — an update is lost.
// This is exactly the bug class FR_SINGLE_WRITER ownership comments (and
// the fr-lint single-writer rule) exclude statically.
model::Execution two_writer_execution() {
  auto cell = std::make_shared<Cell>();
  model::Execution execution;
  execution.threads = {
      [cell] { cell->inc(1); },
      [cell] { cell->inc(1); },
  };
  execution.check = [cell] { return cell->read() == 2; };
  return execution;
}

TEST(ModelMetrics, TwoWritersLoseAnUpdateWithReplayableSchedule) {
  model::Explorer explorer;
  const model::Result found = explorer.explore(two_writer_execution);
  ASSERT_TRUE(found.failed)
      << "lost update not caught — single-writer requirement not shown";
  ASSERT_FALSE(found.schedule.empty());
  std::cout << "two-writer counterexample: " << found.schedule << "\n";

  const model::Result replayed =
      explorer.replay(found.schedule, two_writer_execution);
  EXPECT_TRUE(replayed.failed) << "schedule did not replay";
}

}  // namespace
