// Crash-matrix test for the daemon's crash-safety contract (DESIGN.md
// §14).  For every site in util::crash::kInventory the test forks a real
// daemon child, arms exactly that crash point in the child's environment,
// and lets the child die mid-flight with util::kCrashExitCode; the parent
// then restarts a daemon on the same journal/archive/state paths, blindly
// retries every submission under its original request key, and verifies
// the recovery invariants:
//
//   * no admitted job is lost — every request key reaches kCompleted;
//   * no archive payload is duplicated — the archive index stays unique;
//   * every recovered job is in a valid state machine position;
//   * completed payloads are byte-identical (size + FNV-1a) to an
//     uncrashed control run of the same specs.
//
// A SIGKILL variant repeats the exercise at fixed kill delays with no
// crash point armed — death at an arbitrary instruction boundary rather
// than a chosen one.
//
// This test forks a multithreaded process and is therefore excluded from
// the TSan build (fork + threads is outside TSan's supported model); the
// in-process recovery tests in svc_daemon_test.cc carry the TSan coverage
// for the same code paths.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "io/scan_archive.h"
#include "svc/client.h"
#include "svc/daemon.h"
#include "util/clock.h"
#include "util/crash_point.h"

namespace flashroute::svc {
namespace {

struct Paths {
  std::string socket;
  std::string archive;
  std::string journal;
  std::string state_dir;
};

Paths make_paths(const std::string& tag) {
  const std::string base = "/tmp/fr_crash_" + tag + "_" +
                           std::to_string(static_cast<long>(::getpid()));
  Paths paths;
  paths.socket = base + ".sock";
  paths.archive = base + ".bin";
  paths.journal = base + ".frwj";
  paths.state_dir = base + "_state";
  return paths;
}

void cleanup(const Paths& paths) {
  std::remove(paths.socket.c_str());
  std::remove(paths.archive.c_str());
  std::remove(paths.journal.c_str());
  for (int id = 1; id <= 32; ++id) {
    const std::string checkpoint =
        paths.state_dir + "/job_" + std::to_string(id) + ".frck";
    std::remove(checkpoint.c_str());
    std::remove((checkpoint + ".tmp").c_str());
  }
  ::rmdir(paths.state_dir.c_str());
}

DaemonOptions daemon_options(const Paths& paths) {
  DaemonOptions options;
  options.socket_path = paths.socket;
  options.archive_path = paths.archive;
  options.journal_path = paths.journal;
  options.state_dir = paths.state_dir;
  options.durability = Durability::kFlush;
  options.scheduler.num_workers = 2;
  options.scheduler.global_pps_budget = 1e6;
  options.scheduler.max_queued = 8;
  return options;
}

/// The workload every run (control, crashed, recovery) submits: keyed,
/// with tight checkpoint intervals so each job crosses several barriers
/// before finishing — the interesting crash sites all sit on the barrier
/// and completion paths.
std::vector<JobSpec> workload() {
  std::vector<JobSpec> specs;
  const struct {
    const char* name;
    int prefix_bits;
    std::uint64_t scan_seed;
  } shapes[] = {{"alpha", 11, 101}, {"beta", 10, 202}, {"gamma", 9, 303}};
  for (const auto& shape : shapes) {
    JobSpec spec;
    spec.name = shape.name;
    spec.prefix_bits = shape.prefix_bits;
    spec.scan_seed = shape.scan_seed;
    spec.checkpoint_interval = 10 * util::kMillisecond;
    spec.request_key = std::string("crash-key-") + shape.name;
    specs.push_back(spec);
  }
  return specs;
}

struct PayloadDigest {
  std::uint64_t size = 0;
  std::uint64_t fnv1a = 0;
};

/// Runs the workload on a fresh daemon to completion and returns each
/// job's archived payload digest, keyed by spec name.
std::map<std::string, PayloadDigest> control_digests() {
  const Paths paths = make_paths("control");
  cleanup(paths);
  std::map<std::string, PayloadDigest> digests;
  {
    Daemon daemon(daemon_options(paths));
    EXPECT_TRUE(daemon.start());
    auto client = Client::connect(paths.socket);
    EXPECT_TRUE(client.has_value());
    for (const JobSpec& spec : workload()) {
      const auto submission = client->submit(spec);
      EXPECT_TRUE(submission.has_value() && submission->admitted)
          << spec.name;
      if (!submission.has_value() || !submission->admitted) continue;
      EXPECT_TRUE(client->wait_job(submission->job_id).has_value());
      const auto verify = client->verify(submission->job_id);
      EXPECT_TRUE(verify.has_value() && verify->found) << spec.name;
      if (!verify.has_value() || !verify->found) continue;
      digests[spec.name] = {verify->payload_size, verify->payload_fnv1a};
    }
  }
  cleanup(paths);
  return digests;
}

/// Child body: run a daemon and drive the whole workload through it from
/// an in-process client.  With a crash point armed in the environment the
/// process dies at that site with kCrashExitCode; otherwise it exits 0.
[[noreturn]] void child_run(const Paths& paths) {
  Daemon daemon(daemon_options(paths));
  if (!daemon.start()) std::_Exit(3);
  auto client = Client::connect(paths.socket);
  if (!client.has_value()) std::_Exit(3);
  for (const JobSpec& spec : workload()) {
    if (!client->submit(spec).has_value()) std::_Exit(3);
  }
  if (!client->wait_all()) std::_Exit(3);
  if (!client->shutdown()) std::_Exit(3);
  daemon.wait();
  std::_Exit(0);
}

/// Restart on the crashed run's paths, blindly retry every keyed submit,
/// wait everything out, and check the §14 invariants against the control.
void recover_and_verify(const Paths& paths,
                        const std::map<std::string, PayloadDigest>& control,
                        const std::string& context) {
  {
    Daemon daemon(daemon_options(paths));
    ASSERT_TRUE(daemon.start()) << context;
    auto client = Client::connect(paths.socket);
    ASSERT_TRUE(client.has_value()) << context;

    // The crashed client never learned which submits got through; the
    // retry story is "resend everything under the same key" and let the
    // journal's dedup map sort out which are replays.
    std::map<std::string, std::uint64_t> ids;
    for (const JobSpec& spec : workload()) {
      const auto submission = client->submit(spec);
      ASSERT_TRUE(submission.has_value()) << context << " " << spec.name;
      ASSERT_TRUE(submission->admitted) << context << " " << spec.name;
      ids[spec.name] = submission->job_id;
    }
    ASSERT_TRUE(client->wait_all()) << context;

    // Invariant: every admitted job landed in a valid terminal state, and
    // every keyed job completed with the control run's exact bytes.
    const auto views = client->list();
    ASSERT_TRUE(views.has_value()) << context;
    for (const JobView& view : *views) {
      EXPECT_TRUE(job_state_terminal(view.state))
          << context << " job " << view.id << " state "
          << job_state_name(view.state);
    }
    for (const auto& [name, id] : ids) {
      const auto view = client->status(id);
      ASSERT_TRUE(view.has_value()) << context << " " << name;
      EXPECT_EQ(view->state, JobState::kCompleted)
          << context << " " << name << " detail=" << view->detail;
      const auto verify = client->verify(id);
      ASSERT_TRUE(verify.has_value() && verify->found) << context << " "
                                                       << name;
      const PayloadDigest& expect = control.at(name);
      EXPECT_EQ(verify->payload_size, expect.size) << context << " " << name;
      EXPECT_EQ(verify->payload_fnv1a, expect.fnv1a)
          << context << " " << name;
    }
    EXPECT_TRUE(client->shutdown()) << context;
    daemon.wait();
  }

  // Invariant: one archived payload per job id, ever — a recovered job
  // must never append its result a second time.
  io::JobArchive archive(paths.archive);
  ASSERT_TRUE(archive.ok()) << context;
  std::map<std::uint64_t, int> payloads_per_id;
  for (const io::JobArchive::Entry& entry : archive.index()) {
    ++payloads_per_id[entry.job_id];
  }
  for (const auto& [id, count] : payloads_per_id) {
    EXPECT_EQ(count, 1) << context << " job " << id
                        << " archived more than once";
  }
}

TEST(SvcCrashRecovery, KillAtEveryCrashPointLosesNothing) {
  const std::map<std::string, PayloadDigest> control = control_digests();
  ASSERT_EQ(control.size(), workload().size());

  for (std::size_t i = 0; i < util::crash::kInventorySize; ++i) {
    const char* site = util::crash::kInventory[i];
    std::string tag = "site" + std::to_string(i);
    const Paths paths = make_paths(tag);
    cleanup(paths);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << site;
    if (pid == 0) {
      ::setenv("FR_CRASH_POINT", site, 1);
      util::crash_points_reload();
      child_run(paths);  // never returns
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << site;
    ASSERT_TRUE(WIFEXITED(status)) << site;
    // Every inventory site sits on this workload's path; a site that no
    // longer fires means the inventory and the plants drifted apart.
    EXPECT_EQ(WEXITSTATUS(status), util::kCrashExitCode) << site;

    recover_and_verify(paths, control, std::string("site=") + site);
    cleanup(paths);
  }
}

TEST(SvcCrashRecovery, KillNineAtArbitraryMomentsLosesNothing) {
  const std::map<std::string, PayloadDigest> control = control_digests();

  const int delays_ms[] = {15, 45, 120};
  for (const int delay_ms : delays_ms) {
    const Paths paths = make_paths("kill9_" + std::to_string(delay_ms));
    cleanup(paths);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      child_run(paths);  // never returns
    }
    ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    // Fast machines may finish the workload before the signal lands;
    // both outcomes leave a state the recovery contract must handle.
    ASSERT_TRUE(WIFSIGNALED(status) ||
                (WIFEXITED(status) && WEXITSTATUS(status) == 0));

    recover_and_verify(paths, control,
                       "kill9 delay=" + std::to_string(delay_ms) + "ms");
    cleanup(paths);
  }
}

}  // namespace
}  // namespace flashroute::svc
