// Tests for histograms, Jaccard similarity, and table formatting
// (util/stats.h) — the primitives every analysis module builds on.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <limits>

namespace flashroute::util {
namespace {

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_DOUBLE_EQ(h.pdf(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.0);
}

TEST(Histogram, CountsAndTotals) {
  Histogram h;
  h.add(1);
  h.add(1);
  h.add(-2, 3);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(-2), 3u);
  EXPECT_EQ(h.count(7), 0u);
}

TEST(Histogram, PdfSumsToOne) {
  Histogram h;
  for (int i = -5; i <= 5; ++i) h.add(i, static_cast<std::uint64_t>(i + 6));
  double sum = 0;
  for (const auto& [key, count] : h.bins()) sum += h.pdf(key);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  h.add(-1, 2);
  h.add(0, 3);
  h.add(4, 5);
  EXPECT_NEAR(h.cdf(-2), 0.0, 1e-12);
  EXPECT_NEAR(h.cdf(-1), 0.2, 1e-12);
  EXPECT_NEAR(h.cdf(0), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(3), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(4), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(100), 1.0, 1e-12);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.quantile(0.01), 1);
  EXPECT_EQ(h.quantile(0.50), 50);
  EXPECT_EQ(h.quantile(0.99), 99);
  EXPECT_EQ(h.quantile(1.0), 100);
}

TEST(Histogram, QuantileExactPastDoublePrecision) {
  // Totals beyond 2^53 are not representable in a double: the old
  // double-based threshold rounded double(2^54 - 1) up to 2^54 and could
  // return a bin BEFORE the last sample for q = 1.0.  The walk must compare
  // cumulative counts as integers.
  Histogram h;
  h.add(10, (std::uint64_t{1} << 54) - 1);
  h.add(20, 1);
  EXPECT_EQ(h.quantile(1.0), 20);
  EXPECT_EQ(h.quantile(0.5), 10);
}

TEST(Log2Histogram, BucketMapping) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64);

  // Every bucket's [min, max] range round-trips through bucket_of.
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_min(b)), b);
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_max(b)), b);
  }
}

TEST(Log2Histogram, AddAndMergeSemantics) {
  Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  h.add(0);
  h.add(5, 3);        // bucket 3
  h.add_bucket(3, 2); // merged in the way lane snapshots arrive
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 5u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(Log2Histogram, CdfAndQuantileBucket) {
  Log2Histogram h;
  h.add(0, 2);    // bucket 0
  h.add(1, 3);    // bucket 1
  h.add(100, 5);  // bucket 7
  EXPECT_NEAR(h.cdf(0), 0.2, 1e-12);
  EXPECT_NEAR(h.cdf(1), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf(63), 0.5, 1e-12);  // bucket 7 spans [64, 127]
  EXPECT_NEAR(h.cdf(64), 1.0, 1e-12);  // cdf is bucket-resolution: includes
  EXPECT_NEAR(h.cdf(99), 1.0, 1e-12);  // the whole bucket the value is in
  EXPECT_EQ(h.quantile_bucket(0.2), 0);
  EXPECT_EQ(h.quantile_bucket(0.5), 1);
  EXPECT_EQ(h.quantile_bucket(0.51), 7);
  EXPECT_EQ(h.quantile_bucket(1.0), 7);
}

TEST(Jaccard, IdenticalSets) {
  const std::unordered_set<std::uint32_t> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
}

TEST(Jaccard, DisjointSets) {
  EXPECT_DOUBLE_EQ(jaccard({1, 2}, {3, 4}), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  EXPECT_DOUBLE_EQ(jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(Jaccard, EmptySetsAreIdentical) {
  EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard({1}, {}), 0.0);
}

TEST(Jaccard, Symmetric) {
  const std::unordered_set<std::uint32_t> a{1, 2, 3, 4, 5};
  const std::unordered_set<std::uint32_t> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(jaccard(a, b), jaccard(b, a));
}

TEST(FormatDuration, MatchesPaperStyle) {
  // The paper prints 17:16.94 for FlashRoute-16 and 1:00:15.21 for Yarrp-32.
  EXPECT_EQ(format_duration(0), "0:00.00");
  EXPECT_EQ(format_duration(1'036'940'000'000LL), "17:16.94");
  EXPECT_EQ(format_duration(3'615'210'000'000LL), "1:00:15.21");
}

TEST(FormatDuration, NegativeClampsToZero) {
  EXPECT_EQ(format_duration(-5), "0:00.00");
}

TEST(FormatDuration, SubSecond) {
  EXPECT_EQ(format_duration(250'000'000), "0:00.25");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(std::uint64_t{0}), "0");
  EXPECT_EQ(format_count(std::uint64_t{999}), "999");
  EXPECT_EQ(format_count(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(format_count(std::uint64_t{97807092}), "97,807,092");
  EXPECT_EQ(format_count(std::uint64_t{1234567890}), "1,234,567,890");
}

TEST(FormatCount, SignedValues) {
  EXPECT_EQ(format_count(std::int64_t{-1234}), "-1,234");
  EXPECT_EQ(format_count(std::int64_t{42}), "42");
}

TEST(FormatCount, Int64MinDoesNotOverflow) {
  // -INT64_MIN is UB as a signed negation; the formatter must route through
  // unsigned space.
  EXPECT_EQ(format_count(std::numeric_limits<std::int64_t>::min()),
            "-9,223,372,036,854,775,808");
  EXPECT_EQ(format_count(std::numeric_limits<std::int64_t>::max()),
            "9,223,372,036,854,775,807");
}

TEST(FormatPercent, Decimals) {
  EXPECT_EQ(format_percent(0.123456), "12.3%");
  EXPECT_EQ(format_percent(0.123456, 2), "12.35%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace flashroute::util
