// Tests for the packet-level network simulation (sim/network.h): TTL
// decrement semantics, expiry positions, destination responses, rate
// limiting, middlebox TTL rewriting, and the statistics counters.

#include "sim/network.h"

#include <gtest/gtest.h>

#include <array>

#include "core/probe_codec.h"
#include "net/checksum.h"
#include "net/icmp.h"

namespace flashroute::sim {
namespace {

SimParams tiny_params(std::uint64_t seed = 1) {
  SimParams params;
  params.prefix_bits = 10;
  params.seed = seed;
  return params;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : params_(tiny_params()),
        topology_(params_),
        network_(topology_),
        codec_(net::Ipv4Address(params_.vantage_address)) {}

  std::optional<Delivery> probe_udp(net::Ipv4Address dest, std::uint8_t ttl,
                                    util::Nanos when) {
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    const std::size_t size = codec_.encode_udp(dest, ttl, false, when, buf);
    EXPECT_GT(size, 0u);
    return network_.process(std::span<const std::byte>(buf.data(), size),
                            when);
  }

  std::optional<Delivery> probe_tcp(net::Ipv4Address dest, std::uint8_t ttl,
                                    util::Nanos when) {
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    const std::size_t size = codec_.encode_tcp(dest, ttl, when, buf);
    EXPECT_GT(size, 0u);
    return network_.process(std::span<const std::byte>(buf.data(), size),
                            when);
  }

  /// A routed prefix plus a responsive interior host on it (or appliance).
  net::Ipv4Address find_responsive_target() {
    for (std::uint32_t i = 0; i < params_.num_prefixes(); ++i) {
      const std::uint32_t prefix = params_.first_prefix + i;
      if (!topology_.prefix_routed(prefix)) continue;
      for (int octet = 1; octet < 255; ++octet) {
        const net::Ipv4Address host(
            (prefix << 8) | static_cast<std::uint32_t>(octet));
        if (topology_.host_exists(host) &&
            topology_.host_responds(host, net::kProtoUdp)) {
          // Ensure every hop on the way responds, so expiry tests are
          // deterministic.
          Route route;
          EXPECT_TRUE(topology_.resolve(host, flow_of(host), 0, route));
          bool clean = true;
          for (int h = 0; h < route.num_hops; ++h) {
            if (!topology_.interface_responds(
                    route.hops[static_cast<std::size_t>(h)],
                    net::kProtoUdp)) {
              clean = false;
              break;
            }
          }
          if (clean) return host;
        }
      }
    }
    ADD_FAILURE() << "no fully responsive target in universe";
    return net::Ipv4Address(0);
  }

  std::uint64_t flow_of(net::Ipv4Address dest) const {
    return util::hash_combine(dest.value(), net::address_checksum(dest),
                              net::kTracerouteDstPort, net::kProtoUdp);
  }

  SimParams params_;
  Topology topology_;
  SimNetwork network_;
  core::ProbeCodec codec_;
};

TEST_F(NetworkTest, ExpiryMatchesResolvedPath) {
  const auto target = find_responsive_target();
  Route route;
  ASSERT_TRUE(topology_.resolve(target, flow_of(target), 0, route));
  util::Nanos t = 0;
  for (int ttl = 1; ttl <= route.num_hops; ++ttl) {
    const auto delivery = probe_udp(target, static_cast<std::uint8_t>(ttl),
                                    t += util::kSecond);
    ASSERT_TRUE(delivery) << "no response at ttl " << ttl;
    const auto parsed = net::parse_response(delivery->packet);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(parsed->is_time_exceeded());
    EXPECT_EQ(parsed->responder.value(),
              route.hops[static_cast<std::size_t>(ttl - 1)]);
  }
}

TEST_F(NetworkTest, DestinationAnswersBeyondItsDistance) {
  const auto target = find_responsive_target();
  Route route;
  EXPECT_TRUE(topology_.resolve(target, flow_of(target), 0, route));
  const int distance = route.num_hops + 1;  // triggering TTL
  util::Nanos t = util::kSecond;
  for (int ttl = distance; ttl <= 32; ttl += 5) {
    const auto delivery = probe_udp(target, static_cast<std::uint8_t>(ttl),
                                    t += util::kSecond);
    ASSERT_TRUE(delivery);
    const auto parsed = net::parse_response(delivery->packet);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(parsed->is_destination_unreachable());
    EXPECT_EQ(parsed->responder, target);
    // The quoted residual must always derive the same distance (§3.3.1).
    const auto decoded = codec_.decode(*parsed);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->initial_ttl - decoded->residual_ttl + 1, distance);
  }
}

TEST_F(NetworkTest, NoResponseBelowTriggeringTtlFromDestination) {
  const auto target = find_responsive_target();
  Route route;
  EXPECT_TRUE(topology_.resolve(target, flow_of(target), 0, route));
  // TTL == num_hops expires at the last router, not the destination.
  const auto delivery = probe_udp(
      target, static_cast<std::uint8_t>(route.num_hops), util::kSecond);
  ASSERT_TRUE(delivery);
  const auto parsed = net::parse_response(delivery->packet);
  EXPECT_TRUE(parsed->is_time_exceeded());
  EXPECT_NE(parsed->responder, target);
}

TEST_F(NetworkTest, RttGrowsWithHopDistance) {
  const auto target = find_responsive_target();
  const auto near = probe_udp(target, 1, 0);
  Route route;
  EXPECT_TRUE(topology_.resolve(target, flow_of(target), 0, route));
  const auto far = probe_udp(
      target, static_cast<std::uint8_t>(route.num_hops), util::kSecond);
  ASSERT_TRUE(near);
  ASSERT_TRUE(far);
  EXPECT_LT(near->arrival - 0, far->arrival - util::kSecond);
}

TEST_F(NetworkTest, RateLimitingSuppressesBursts) {
  // Hammer the TTL-1 interface: the first `burst` probes in a second get
  // answers, the rest are rate-limited (the paper's overprobing).
  const auto target = find_responsive_target();
  const auto limit =
      static_cast<int>(params_.icmp_rate_limit_burst);
  int answered = 0;
  for (int i = 0; i < limit + 100; ++i) {
    if (probe_udp(target, 1, 1000 + i)) ++answered;  // ~same instant
  }
  EXPECT_EQ(answered, limit);
  EXPECT_EQ(network_.stats().rate_limited, 100u);
  EXPECT_EQ(network_.rate_limit_drops().size(), 1u);

  // A second later the bucket has refilled ~rate tokens.
  int later = 0;
  for (int i = 0; i < 100; ++i) {
    if (probe_udp(target, 1, 2 * util::kSecond + i)) ++later;
  }
  EXPECT_EQ(later, 100);
}

TEST_F(NetworkTest, TcpProbesGetRstFromDestination) {
  // Find a TCP-responsive host.
  net::Ipv4Address target(0);
  for (std::uint32_t i = 0; i < params_.num_prefixes(); ++i) {
    const std::uint32_t prefix = params_.first_prefix + i;
    if (!topology_.prefix_routed(prefix)) continue;
    const net::Ipv4Address appliance(topology_.appliance_address(prefix));
    if (topology_.host_responds(appliance, net::kProtoTcp)) {
      target = appliance;
      break;
    }
  }
  ASSERT_NE(target.value(), 0u);
  const auto delivery = probe_tcp(target, 32, util::kSecond);
  ASSERT_TRUE(delivery);
  const auto parsed = net::parse_response(delivery->packet);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_tcp_rst);
  EXPECT_EQ(parsed->responder, target);
}

TEST_F(NetworkTest, MalformedPacketsAreCounted) {
  const std::array<std::byte, 5> garbage{std::byte{0x45}};
  EXPECT_FALSE(network_.process(garbage, 0));
  EXPECT_EQ(network_.stats().malformed, 1u);

  // TTL 0 is malformed on the wire.
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec_.encode_udp(
      net::Ipv4Address((params_.first_prefix << 8) | 1), 1, false, 0, buf);
  buf[8] = std::byte{0};  // patch TTL to 0
  EXPECT_FALSE(network_.process(
      std::span<const std::byte>(buf.data(), size), 0));
  EXPECT_EQ(network_.stats().malformed, 2u);
}

TEST_F(NetworkTest, OutOfUniverseCounted) {
  EXPECT_FALSE(probe_udp(net::Ipv4Address(0xDEADBEEF), 8, 0));
  EXPECT_EQ(network_.stats().out_of_universe, 1u);
}

TEST_F(NetworkTest, StatsAccumulateAndReset) {
  const auto target = find_responsive_target();
  probe_udp(target, 1, 0);
  probe_udp(target, 32, util::kSecond);
  EXPECT_GE(network_.stats().probes, 2u);
  EXPECT_GE(network_.stats().responses(), 2u);
  network_.reset_stats();
  EXPECT_EQ(network_.stats().probes, 0u);
}

TEST(NetworkMiddlebox, TtlResetMakesSweepTriggerEarly) {
  // Force TTL-reset middleboxes everywhere and verify the Fig 3 mechanism:
  // the traditional sweep triggers at the middlebox position + 1, because
  // any probe surviving past the middlebox gets a fresh TTL.
  auto params = tiny_params(5);
  params.ttl_reset_middlebox_prob = 1.0;
  params.ttl_reset_low = 64;  // always reset high
  params.ttl_reset_high = 64;
  params.route_dynamics_prob = 0.0;
  Topology topology(params);
  SimNetwork network(topology);
  const core::ProbeCodec codec(net::Ipv4Address(params.vantage_address));

  // Find a responsive appliance with a clean path.
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topology.prefix_routed(prefix)) continue;
    const net::Ipv4Address appliance(topology.appliance_address(prefix));
    if (!topology.host_responds(appliance, net::kProtoUdp)) continue;
    Route route;
    ASSERT_TRUE(
        topology.resolve(appliance,
                         util::hash_combine(appliance.value(),
                                            net::address_checksum(appliance),
                                            net::kTracerouteDstPort,
                                            net::kProtoUdp),
                         0, route));
    ASSERT_GT(route.middlebox_pos, 0);
    if (route.middlebox_pos + 1 > route.num_hops) continue;

    // A probe with TTL = middlebox_pos + 1 passes the middlebox with
    // residual > 1, gets reset to 64, and must reach the destination.
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    const std::size_t size = codec.encode_udp(
        appliance, static_cast<std::uint8_t>(route.middlebox_pos + 1),
        false, 0, buf);
    const auto delivery = network.process(
        std::span<const std::byte>(buf.data(), size), util::kSecond);
    ASSERT_TRUE(delivery);
    const auto parsed = net::parse_response(delivery->packet);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(parsed->is_destination_unreachable());
    // The derived distance is now wildly off (residual came from 64), which
    // is exactly the >1-hop tail of Fig 3.
    const auto decoded = codec.decode(*parsed);
    ASSERT_TRUE(decoded);
    const int derived = decoded->initial_ttl - decoded->residual_ttl + 1;
    EXPECT_NE(derived, route.num_hops + 1);
    return;  // one clean case suffices
  }
  GTEST_SKIP() << "no suitable middlebox path found";
}

TEST(NetworkRewrite, MismatchedResponsesAreCraftedForRewrites) {
  auto params = tiny_params(6);
  params.rewrite_middlebox_prob = 1.0;
  Topology topology(params);
  SimNetwork network(topology);
  const core::ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topology.prefix_routed(prefix)) continue;
    const net::Ipv4Address appliance(topology.appliance_address(prefix));
    if (!topology.host_responds(appliance, net::kProtoUdp)) continue;
    const net::Ipv4Address original((prefix << 8) | 222);
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    const std::size_t size = codec.encode_udp(original, 32, false, 0, buf);
    const auto delivery = network.process(
        std::span<const std::byte>(buf.data(), size), util::kSecond);
    if (!delivery) continue;  // appliance may be rate-silent
    const auto parsed = net::parse_response(delivery->packet);
    ASSERT_TRUE(parsed);
    const auto decoded = codec.decode(*parsed);
    ASSERT_TRUE(decoded);
    EXPECT_FALSE(decoded->source_port_matches);  // §5.3 detection fires
    return;
  }
  GTEST_SKIP() << "no rewrite path exercised";
}

}  // namespace
}  // namespace flashroute::sim
