// Tests for the Scamper-like baseline (baselines/scamper.h): the windowed
// sequential trace state machine, timeouts, one-outstanding-probe
// discipline, and the Fig-7 redundancy model.

#include "baselines/scamper.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::baselines {
namespace {

sim::SimParams world_params(std::uint64_t seed = 1) {
  sim::SimParams params;
  params.prefix_bits = 10;
  params.seed = seed;
  return params;
}

ScamperConfig base_config(const sim::SimParams& params) {
  ScamperConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(10'000.0, params.prefix_bits);
  config.window = 128;
  return config;
}

core::ScanResult run_scamper(const sim::Topology& topology,
                             const ScamperConfig& config) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Scamper scamper(config, runtime);
  return scamper.run();
}

TEST(Scamper, CompletesEveryTrace) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);

  // Every non-excluded prefix was probed at least once.
  std::set<std::uint32_t> probed;
  for (const auto& probe : result.probe_log) {
    probed.insert(probe.destination >> 8);
  }
  EXPECT_EQ(probed.size(), topology.params().num_prefixes());
  EXPECT_GT(result.destinations_reached, 0u);
}

TEST(Scamper, OneProbePerHopNoRetries) {
  // The paper restricts Scamper's retries so it issues one probe per hop.
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);
  std::set<std::pair<std::uint32_t, std::uint8_t>> pairs;
  for (const auto& probe : result.probe_log) {
    EXPECT_TRUE(pairs.emplace(probe.destination, probe.ttl).second)
        << "retry detected at " << probe.destination << " ttl "
        << int(probe.ttl);
  }
}

TEST(Scamper, ProbesAreSequentialPerDestination) {
  // One outstanding probe per destination: a destination's k-th probe is
  // sent only after its (k-1)-th was answered or timed out, so per-dest
  // probe times are strictly increasing with sensible spacing.
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);
  std::map<std::uint32_t, util::Nanos> last_time;
  for (const auto& probe : result.probe_log) {
    const auto it = last_time.find(probe.destination);
    if (it != last_time.end()) {
      EXPECT_GT(probe.time, it->second);
    }
    last_time[probe.destination] = probe.time;
  }
}

TEST(Scamper, ForwardThenBackwardShape) {
  // Each trace starts at first_ttl, explores forward, then walks backward:
  // the first probe of every destination is at first_ttl.
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);
  std::map<std::uint32_t, std::uint8_t> first_probe;
  for (const auto& probe : result.probe_log) {
    first_probe.try_emplace(probe.destination, probe.ttl);
  }
  for (const auto& [destination, ttl] : first_probe) {
    EXPECT_EQ(ttl, config.first_ttl);
  }
}

TEST(Scamper, SilentWorldStillTerminates) {
  // Everything silent: every probe times out, the state machines must walk
  // forward to the horizon and backward to TTL 1, then finish.
  sim::SimParams params = world_params();
  params.prefix_bits = 6;
  params.interface_silent_prob = 1.0;
  params.host_udp_response_prob = 0.0;
  params.appliance_udp_response_prob = 0.0;
  const sim::Topology topology(params);
  auto config = base_config(params);
  config.window = 16;
  const auto result = run_scamper(topology, config);
  EXPECT_TRUE(result.interfaces.empty());
  EXPECT_EQ(result.destinations_reached, 0u);
  // Forward gap_limit probes + backward first_ttl-1 probes per dest.
  EXPECT_EQ(result.probes_sent,
            std::uint64_t{config.num_prefixes()} *
                (config.gap_limit + config.first_ttl - 1));
}

TEST(Scamper, RedundancyPauseRegionProbesMoreThanFlashRouteWould) {
  // The Fig-7 behaviour: convergence stops are suspended between the pause
  // thresholds, so hops in (low, high) are probed by many destinations.
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);
  std::map<int, std::set<std::uint32_t>> targets_at;
  for (const auto& probe : result.probe_log) {
    targets_at[probe.ttl].insert(probe.destination);
  }
  // Flat region: essentially no decay between TTL high-1 and low+1.
  const auto high = targets_at[config.redundancy_pause_high - 1].size();
  const auto low = targets_at[config.redundancy_pause_low + 1].size();
  EXPECT_EQ(high, low);
  EXPECT_GT(high, 0u);
}

TEST(Scamper, ConvergenceStopsHappen) {
  const sim::Topology topology(world_params());
  const auto config = base_config(topology.params());
  const auto result = run_scamper(topology, config);
  EXPECT_GT(result.convergence_stops, 100u);
}

TEST(Scamper, DeterministicAcrossRuns) {
  const sim::Topology topology(world_params());
  const auto config = base_config(topology.params());
  const auto a = run_scamper(topology, config);
  const auto b = run_scamper(topology, config);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.scan_time, b.scan_time);
}

TEST(Scamper, WindowLimitsConcurrency) {
  // With a window of 1 the scan is fully sequential: per-destination probe
  // blocks never interleave.
  sim::SimParams params = world_params();
  params.prefix_bits = 5;
  const sim::Topology topology(params);
  auto config = base_config(params);
  config.window = 1;
  config.collect_probe_log = true;
  const auto result = run_scamper(topology, config);
  std::set<std::uint32_t> finished;
  std::uint32_t current = 0;
  for (const auto& probe : result.probe_log) {
    if (probe.destination != current) {
      EXPECT_FALSE(finished.contains(probe.destination))
          << "destination revisited after another began";
      if (current != 0) finished.insert(current);
      current = probe.destination;
    }
  }
}

core::ScanResult run_scamper_faulted(const sim::Topology& topology,
                                     const ScamperConfig& config,
                                     const sim::FaultParams& faults) {
  sim::SimNetwork network(topology, faults);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Scamper scamper(config, runtime);
  return scamper.run();
}

TEST(Scamper, RetryBudgetRecoversLoss) {
  // Scamper's `-q`-style retry budget: with max_retries > 0 each timed-out
  // hop is re-probed before the trace advances, buying back discovery that
  // the no-retry paper configuration loses under probe loss.
  const sim::Topology topology(world_params());
  sim::FaultParams faults;
  faults.probe_loss = 0.25;
  faults.response_loss = 0.2;

  auto config = base_config(topology.params());
  const auto no_retry = run_scamper_faulted(topology, config, faults);
  EXPECT_EQ(no_retry.retransmits, 0u);

  config.max_retries = 1;
  const auto with_retry = run_scamper_faulted(topology, config, faults);
  EXPECT_GT(with_retry.retransmits, 0u);
  EXPECT_GT(with_retry.probes_sent, no_retry.probes_sent);
  EXPECT_GE(with_retry.interfaces.size(), no_retry.interfaces.size());
  // The budget bounds the overhead: at most (1 + retries) probes per hop.
  EXPECT_LE(with_retry.probes_sent, 2 * no_retry.probes_sent);
}

TEST(Scamper, DeterministicUnderFaults) {
  const sim::Topology topology(world_params());
  sim::FaultParams faults;
  faults.probe_loss = 0.2;
  faults.response_loss = 0.15;
  faults.send_fail_prob = 0.05;

  auto config = base_config(topology.params());
  config.max_retries = 2;
  const auto a = run_scamper_faulted(topology, config, faults);
  const auto b = run_scamper_faulted(topology, config, faults);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.send_failures, b.send_failures);
  EXPECT_EQ(a.scan_time, b.scan_time);
}

}  // namespace
}  // namespace flashroute::baselines
