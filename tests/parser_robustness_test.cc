// Robustness tests: every parser in the receive path must survive
// adversarial bytes without crashing or reading out of bounds.  A live
// scanner's raw socket hands it arbitrary Internet traffic; "parse or
// reject, never misbehave" is a hard requirement.

#include <gtest/gtest.h>

#include <vector>

#include "core/probe_codec.h"
#include "io/pcap.h"
#include "io/scan_archive.h"
#include "net/headers.h"
#include "net/icmp.h"
#include "net/packet.h"
#include "util/rng.h"

namespace flashroute {
namespace {

std::vector<std::byte> random_bytes(util::Xoshiro256& rng,
                                    std::size_t length) {
  std::vector<std::byte> bytes(length);
  for (auto& b : bytes) b = std::byte(rng.bounded(256));
  return bytes;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, ParseResponseNeverMisbehavesOnRandomBytes) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, rng.bounded(120));
    // Must not crash; accepted packets must be self-consistent.
    const auto parsed = net::parse_response(bytes);
    if (parsed && parsed->is_icmp) {
      EXPECT_TRUE(parsed->icmp_type == net::kIcmpTimeExceeded ||
                  parsed->icmp_type == net::kIcmpDestUnreachable);
    }
  }
}

TEST_P(FuzzSeeds, ParseResponseOnMutatedRealResponses) {
  util::Xoshiro256 rng(GetParam());
  const core::ProbeCodec codec(net::Ipv4Address(0xCB00710A));
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(net::Ipv4Address(0x01020304), 16,
                                            false, 123456, buf);
  const auto response = net::craft_icmp_response(
      net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded,
      net::Ipv4Address(0xC8000001),
      std::span<const std::byte>(buf.data(), size), 1);
  ASSERT_TRUE(response);

  for (int i = 0; i < 2000; ++i) {
    auto mutated = *response;
    // Flip 1-4 random bytes and possibly truncate.
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.bounded(mutated.size())] ^= std::byte(1 + rng.bounded(255));
    }
    if (rng.chance(0.3)) {
      mutated.resize(rng.bounded(mutated.size() + 1));
    }
    const auto parsed = net::parse_response(mutated);
    if (parsed && parsed->is_icmp) {
      // Whatever survived must still decode without misbehaving.
      (void)codec.decode(*parsed);
    }
  }
}

TEST_P(FuzzSeeds, HeaderParsersRejectOrAcceptCleanly) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, rng.bounded(64));
    {
      net::ByteReader reader(bytes);
      (void)net::Ipv4Header::parse(reader);
    }
    {
      net::ByteReader reader(bytes);
      (void)net::UdpHeader::parse(reader);
    }
    {
      net::ByteReader reader(bytes);
      (void)net::TcpHeader::parse(reader);
    }
    {
      net::ByteReader reader(bytes);
      (void)net::IcmpHeader::parse(reader);
    }
    (void)net::verify_ipv4_checksum(bytes);
  }
}

TEST_P(FuzzSeeds, ArchiveReaderSurvivesGarbage) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    auto bytes = random_bytes(rng, rng.bounded(400));
    if (rng.chance(0.5) && bytes.size() >= 4) {
      // Give it the right magic so it digs deeper before failing.
      bytes[0] = std::byte{'F'};
      bytes[1] = std::byte{'R'};
      bytes[2] = std::byte{'S'};
      bytes[3] = std::byte{'C'};
    }
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size()));
    (void)io::read_archive(stream);  // must not crash or hang
  }
}

TEST_P(FuzzSeeds, PcapReaderSurvivesGarbage) {
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    auto bytes = random_bytes(rng, rng.bounded(400));
    if (rng.chance(0.5) && bytes.size() >= 4) {
      bytes[0] = std::byte{0x4D};  // little-endian nanosecond magic
      bytes[1] = std::byte{0x3C};
      bytes[2] = std::byte{0xB2};
      bytes[3] = std::byte{0xA1};
    }
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size()));
    (void)io::read_pcap(stream);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace flashroute
