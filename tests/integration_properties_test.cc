// Property-style integration tests: cross-tool invariants that must hold
// for any topology seed.  These are the guard rails behind every table in
// the evaluation — if one of these breaks, the benchmarks stop meaning
// anything.

#include <gtest/gtest.h>

#include "baselines/yarrp.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute {
namespace {

class CrossToolProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CrossToolProperties() {
    params_.prefix_bits = 10;
    params_.seed = GetParam();
    topology_ = std::make_unique<sim::Topology>(params_);
  }

  core::TracerConfig tracer_config() const {
    core::TracerConfig config;
    config.first_prefix = params_.first_prefix;
    config.prefix_bits = params_.prefix_bits;
    config.vantage = net::Ipv4Address(params_.vantage_address);
    config.probes_per_second =
        sim::scaled_probe_rate(100'000.0, params_.prefix_bits);
    return config;
  }

  core::ScanResult run(const core::TracerConfig& config) const {
    sim::SimNetwork network(*topology_);
    sim::SimScanRuntime runtime(network, config.probes_per_second);
    core::Tracer tracer(config, runtime);
    return tracer.run();
  }

  sim::SimParams params_;
  std::unique_ptr<sim::Topology> topology_;
};

TEST_P(CrossToolProperties, FlashRouteNeverBeatsExhaustiveOnInterfaces) {
  auto exhaustive_config = tracer_config();
  exhaustive_config.preprobe = core::PreprobeMode::kNone;
  exhaustive_config.split_ttl = 32;
  exhaustive_config.forward_probing = false;
  exhaustive_config.redundancy_removal = false;
  const auto exhaustive = run(exhaustive_config);

  auto fr = tracer_config();
  fr.preprobe = core::PreprobeMode::kRandom;
  const auto flashroute = run(fr);

  // The exhaustive scan probes a superset of (dest, TTL) pairs at the same
  // rate; rate limiting can flip individual responses, but the interface
  // count must not exceed exhaustive by more than that noise.
  EXPECT_LE(flashroute.interfaces.size(),
            exhaustive.interfaces.size() + exhaustive.interfaces.size() / 50);
  // ...while using far fewer probes (the paper's headline).
  EXPECT_LT(flashroute.probes_sent * 2, exhaustive.probes_sent);
  // And nearly all of FlashRoute's interfaces are confirmed by exhaustive
  // (the residue is routing-dynamics and rate-limit noise: the two scans
  // sample different virtual instants).
  std::size_t confirmed = 0;
  for (const auto ip : flashroute.interfaces) {
    if (exhaustive.interfaces.contains(ip)) ++confirmed;
  }
  EXPECT_GT(confirmed * 100, flashroute.interfaces.size() * 90);
}

TEST_P(CrossToolProperties, RedundancyRemovalIsMonotoneInProbes) {
  auto config = tracer_config();
  config.preprobe = core::PreprobeMode::kNone;
  config.redundancy_removal = true;
  const auto with = run(config);
  config.redundancy_removal = false;
  const auto without = run(config);
  EXPECT_LT(with.probes_sent, without.probes_sent);
  EXPECT_LE(with.convergence_stops, with.probes_sent);
  EXPECT_EQ(without.convergence_stops, 0u);
}

TEST_P(CrossToolProperties, GapLimitIsMonotoneInProbes) {
  auto config = tracer_config();
  config.preprobe = core::PreprobeMode::kNone;
  std::uint64_t previous = 0;
  for (const int gap : {0, 2, 4, 6}) {
    config.gap_limit = static_cast<std::uint8_t>(gap);
    const auto result = run(config);
    EXPECT_GE(result.probes_sent, previous);
    previous = result.probes_sent;
  }
}

TEST_P(CrossToolProperties, DerivedDistancesAreConsistent) {
  auto config = tracer_config();
  config.preprobe = core::PreprobeMode::kNone;
  const auto result = run(config);
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    const auto distance = result.destination_distance[i];
    if (distance == 0) continue;
    EXPECT_GE(distance, 1);
    EXPECT_LE(distance, 40);
    // Every reached destination has route hops strictly before it (unless
    // the whole backward segment was silent, which the tree makes rare).
    EXPECT_NE(result.trigger_ttl[i], 0);
  }
}

TEST_P(CrossToolProperties, ProbeBudgetOrderingMatchesTable3) {
  // FlashRoute-16 <= FlashRoute-32 <= Yarrp-32 in probes, for every seed.
  auto fr16 = tracer_config();
  fr16.preprobe = core::PreprobeMode::kNone;
  const auto fr16_result = run(fr16);

  auto fr32 = fr16;
  fr32.split_ttl = 32;
  const auto fr32_result = run(fr32);

  baselines::YarrpConfig yarrp_config;
  yarrp_config.first_prefix = params_.first_prefix;
  yarrp_config.prefix_bits = params_.prefix_bits;
  yarrp_config.vantage = net::Ipv4Address(params_.vantage_address);
  yarrp_config.probes_per_second = fr16.probes_per_second;
  sim::SimNetwork network(*topology_);
  sim::SimScanRuntime runtime(network, yarrp_config.probes_per_second);
  const auto yarrp = baselines::Yarrp(yarrp_config, runtime).run();

  EXPECT_LT(fr16_result.probes_sent, fr32_result.probes_sent);
  EXPECT_LT(fr32_result.probes_sent, yarrp.probes_sent);
  EXPECT_LT(fr16_result.scan_time, fr32_result.scan_time);
  EXPECT_LT(fr32_result.scan_time, yarrp.scan_time);
}

TEST_P(CrossToolProperties, MismatchRateStaysInPaperBand) {
  auto config = tracer_config();
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  const auto result = run(config);
  const double rate = static_cast<double>(result.mismatches) /
                      static_cast<double>(result.probes_sent);
  // §5.3's observed band is 0.007%..0.054%; allow generous slack for small
  // universes where a single rewriting stub moves the needle.
  EXPECT_LT(rate, 0.004);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossToolProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace flashroute
