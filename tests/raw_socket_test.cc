// Real raw-socket path, end to end over loopback.
//
// When the environment grants CAP_NET_RAW (these tests skip cleanly when it
// does not), a FlashRoute UDP probe is written through the actual
// RawSocketRuntime to a loopback address; the kernel's own ICMP
// port-unreachable comes back through the raw ICMP socket and must decode
// through the §3.1 codec exactly like a simulated response.  This is the
// deployment path of examples/flashroute_cli --backend=raw.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "core/probe_codec.h"
#include "net/checksum.h"
#include "net/icmp.h"
#include "net/raw/raw_socket_transport.h"

namespace flashroute::net {
namespace {

std::unique_ptr<RawSocketRuntime> make_runtime_or_skip() {
  try {
    return std::make_unique<RawSocketRuntime>(/*pps=*/1000.0);
  } catch (const TransportError& error) {
    return nullptr;
  }
}

TEST(RawSocket, LoopbackProbeGetsKernelPortUnreachable) {
  auto runtime = make_runtime_or_skip();
  if (!runtime) GTEST_SKIP() << "raw sockets unavailable (need CAP_NET_RAW)";

  // Source and destination on loopback so the kernel answers locally.
  const Ipv4Address vantage = Ipv4Address::from_octets(127, 0, 0, 1);
  const Ipv4Address target = Ipv4Address::from_octets(127, 0, 0, 2);
  const core::ProbeCodec codec(vantage);

  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size =
      codec.encode_udp(target, /*ttl=*/32, /*preprobe=*/true,
                       runtime->now(), buf);
  ASSERT_GT(size, 0u);
  runtime->send(std::span<const std::byte>(buf.data(), size));

  // Collect responses for up to half a second of real time.
  std::optional<core::DecodedProbe> decoded;
  std::uint8_t icmp_type = 0, icmp_code = 0;
  const core::ScanRuntime::Sink sink = [&](std::span<const std::byte> packet,
                                           util::Nanos) {
    const auto parsed = parse_response(packet);
    if (!parsed || !parsed->is_destination_unreachable()) return;
    if (parsed->responder != target) return;
    const auto probe = codec.decode(*parsed);
    if (!probe || probe->destination != target) return;
    decoded = probe;
    icmp_type = parsed->icmp_type;
    icmp_code = parsed->icmp_code;
  };
  const util::Nanos deadline = runtime->now() + 500 * util::kMillisecond;
  while (!decoded && runtime->now() < deadline) {
    runtime->drain(sink);
  }

  if (!decoded) {
    GTEST_SKIP() << "no kernel ICMP on loopback in this environment";
  }
  EXPECT_EQ(icmp_type, kIcmpDestUnreachable);
  EXPECT_EQ(icmp_code, kIcmpCodePortUnreachable);
  // The kernel quoted our probe verbatim: every §3.1 field survives.
  EXPECT_EQ(decoded->initial_ttl, 32);
  EXPECT_TRUE(decoded->preprobe);
  EXPECT_TRUE(decoded->source_port_matches);
  // Loopback is zero hops of routing: residual TTL equals the initial TTL,
  // so the derived distance is 1.
  EXPECT_EQ(decoded->initial_ttl - decoded->residual_ttl + 1, 1);
}

TEST(RawSocket, PacingHoldsAtConfiguredRate) {
  auto runtime = make_runtime_or_skip();
  if (!runtime) GTEST_SKIP() << "raw sockets unavailable (need CAP_NET_RAW)";

  const Ipv4Address vantage = Ipv4Address::from_octets(127, 0, 0, 1);
  const core::ProbeCodec codec(vantage);
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(
      Ipv4Address::from_octets(127, 0, 0, 3), 32, false, 0, buf);

  const util::Nanos start = runtime->now();
  for (int i = 0; i < 200; ++i) {
    runtime->send(std::span<const std::byte>(buf.data(), size));
  }
  const util::Nanos elapsed = runtime->now() - start;
  // 200 probes at 1 Kpps ≈ 200 ms minus the small initial burst allowance.
  EXPECT_GT(elapsed, 120 * util::kMillisecond);
  EXPECT_EQ(runtime->packets_sent(), 200u);
}

}  // namespace
}  // namespace flashroute::net
