// Equivalence proof for the succinct topology modes (sim/topology.h):
// kSuccinct derives every per-prefix attribute on demand from
// (prefix offset, seeds); kSuccinctMaterialized expands the identical
// derivation into per-prefix tables.  The two must therefore resolve
// bit-identical routes, agree on every per-prefix query, emit the same
// hitlist, and drive a same-seed Tracer scan to byte-equal results —
// proving that dropping the tables (the full-scale memory win) changes
// nothing observable.

#include "sim/topology.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"

namespace flashroute::sim {
namespace {

SimParams succinct_params(int bits, std::uint64_t seed,
                          TopologyMode mode) {
  SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  params.topology_mode = mode;
  return params;
}

void expect_routes_equal(const Route& a, const Route& b,
                         std::uint32_t prefix) {
  ASSERT_EQ(a.num_hops, b.num_hops) << "prefix " << prefix;
  for (int h = 0; h < a.num_hops; ++h) {
    ASSERT_EQ(a.hops[static_cast<std::size_t>(h)],
              b.hops[static_cast<std::size_t>(h)])
        << "prefix " << prefix << " hop " << h;
  }
  ASSERT_EQ(a.delivers, b.delivers) << "prefix " << prefix;
  ASSERT_EQ(a.delivered_address, b.delivered_address) << "prefix " << prefix;
  ASSERT_EQ(a.rewritten, b.rewritten) << "prefix " << prefix;
  ASSERT_EQ(a.loops, b.loops) << "prefix " << prefix;
  ASSERT_EQ(a.loop_a, b.loop_a) << "prefix " << prefix;
  ASSERT_EQ(a.loop_b, b.loop_b) << "prefix " << prefix;
  ASSERT_EQ(a.middlebox_pos, b.middlebox_pos) << "prefix " << prefix;
  ASSERT_EQ(a.middlebox_reset, b.middlebox_reset) << "prefix " << prefix;
}

class TopologyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TopologyEquivalence, OnDemandMatchesMaterializedEverywhere) {
  const int bits = GetParam();
  const Topology on_demand(
      succinct_params(bits, 99, TopologyMode::kSuccinct));
  const Topology materialized(
      succinct_params(bits, 99, TopologyMode::kSuccinctMaterialized));

  const std::uint32_t num_prefixes = on_demand.params().num_prefixes();
  // Full sweep at small scales; strided (but boundary-crossing) above.
  const std::uint32_t stride = bits <= 12 ? 1 : 13;
  Route ra, rb;
  for (std::uint32_t i = 0; i < num_prefixes; i += stride) {
    const std::uint32_t prefix = on_demand.params().first_prefix + i;
    ASSERT_EQ(on_demand.prefix_routed(prefix),
              materialized.prefix_routed(prefix));
    ASSERT_EQ(on_demand.stub_is_responsive(prefix),
              materialized.stub_is_responsive(prefix));
    for (const std::uint8_t octet : {std::uint8_t{1}, std::uint8_t{77}}) {
      const net::Ipv4Address dest((prefix << 8) | octet);
      const std::uint64_t flow = 0x9E3779B9u ^ i;
      ASSERT_EQ(on_demand.resolve(dest, flow, 0, ra),
                materialized.resolve(dest, flow, 0, rb));
      expect_routes_equal(ra, rb, prefix);
      ASSERT_EQ(on_demand.trigger_ttl(dest, flow, 1),
                materialized.trigger_ttl(dest, flow, 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UpToSixteenBits, TopologyEquivalence,
                         ::testing::Values(12, 14, 16));

TEST(TopologyEquivalence, DynamicsEpochsAgree) {
  const Topology on_demand(
      succinct_params(12, 5, TopologyMode::kSuccinct));
  const Topology materialized(
      succinct_params(12, 5, TopologyMode::kSuccinctMaterialized));
  Route ra, rb;
  for (std::int64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::uint32_t i = 0; i < 512; i += 3) {
      const std::uint32_t prefix = on_demand.params().first_prefix + i;
      const net::Ipv4Address dest((prefix << 8) | 1);
      ASSERT_EQ(on_demand.resolve(dest, 7, epoch, ra),
                materialized.resolve(dest, 7, epoch, rb));
      expect_routes_equal(ra, rb, prefix);
    }
  }
}

TEST(TopologyEquivalence, HitlistsAreIdentical) {
  const Topology on_demand(
      succinct_params(13, 17, TopologyMode::kSuccinct));
  const Topology materialized(
      succinct_params(13, 17, TopologyMode::kSuccinctMaterialized));
  EXPECT_EQ(on_demand.generate_hitlist(), materialized.generate_hitlist());
}

TEST(TopologyEquivalence, SuccinctStoresNoPerPrefixState) {
  // The pool is fixed by template_pool_bits, independent of universe size —
  // the property that caps full-scale memory.
  const Topology small(succinct_params(10, 3, TopologyMode::kSuccinct));
  const Topology large(succinct_params(16, 3, TopologyMode::kSuccinct));
  EXPECT_EQ(small.num_stubs(), large.num_stubs());
  EXPECT_EQ(small.num_stubs(), 256u);  // default template_pool_bits = 8
}

core::ScanResult scan_with(TopologyMode mode) {
  const Topology topology(succinct_params(12, 21, mode));
  core::TracerConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      scaled_probe_rate(100'000.0, topology.params().prefix_bits);
  config.preprobe = core::PreprobeMode::kRandom;
  SimNetwork network(topology);
  SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(TopologyEquivalence, SameSeedScansAreByteEqual) {
  const auto a = scan_with(TopologyMode::kSuccinct);
  const auto b = scan_with(TopologyMode::kSuccinctMaterialized);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.preprobe_probes, b.preprobe_probes);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.destinations_reached, b.destinations_reached);
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.trigger_ttl, b.trigger_ttl);
  EXPECT_EQ(a.measured_distance, b.measured_distance);
  EXPECT_EQ(a.predicted_distance, b.predicted_distance);
}

}  // namespace
}  // namespace flashroute::sim
