// Tests for checkpoint/resume (io/checkpoint.h + core::Tracer resume):
// FRCK round-trips, kill-at-checkpoint resume equivalence under an active
// fault plane, config-digest validation, and the sharded checkpoint-set
// fan-out.
//
// The equivalence contract (DESIGN.md §9): a checkpointing scan quiesces at
// every checkpoint barrier, so the reference for a killed-and-resumed scan
// is the *same checkpointing scan left uninterrupted* — both follow one
// timeline, and the resumed run must reproduce its results exactly.

#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

sim::SimParams world_params() {
  sim::SimParams params;
  params.prefix_bits = 8;
  params.seed = 12;
  params.faults.probe_loss = 0.2;
  params.faults.response_loss = 0.15;
  return params;
}

TracerConfig checkpointing_config(const sim::SimParams& params) {
  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = 20'000.0;
  config.preprobe = PreprobeMode::kNone;
  config.min_round_duration = 50 * util::kMillisecond;
  config.max_retransmits = 2;
  config.checkpoint_interval = 200 * util::kMillisecond;
  return config;
}

ScanResult run_once(const sim::Topology& topology, TracerConfig config,
                    util::Nanos start_time = 0) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second, start_time);
  Tracer tracer(config, runtime);
  return tracer.run();
}

void expect_equal_results(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.trigger_ttl, b.trigger_ttl);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.destinations_reached, b.destinations_reached);
  EXPECT_EQ(a.convergence_stops, b.convergence_stops);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.probe_timeouts, b.probe_timeouts);
  EXPECT_EQ(a.send_failures, b.send_failures);
  EXPECT_EQ(a.scan_time, b.scan_time);
}

TEST(Checkpoint, RoundTripsThroughBytes) {
  io::ScanCheckpoint cp;
  cp.header = {0x010000, 8, 42};
  cp.config_digest = 0xDEADBEEFCAFEull;
  cp.virtual_now = 123456789;
  cp.scan_elapsed = 987654321;
  cp.rounds_completed = 17;
  cp.backoff_level = 2;
  cp.ring_head = 7;
  cp.next_backward = {1, 2, 3, 0};
  cp.next_forward = {17, 18, 19, 20};
  cp.forward_horizon = {21, 22, 0, 24};
  cp.dcb_flags = {0, 1, 2, 3};
  cp.retransmit_left = {2, 2, 0, 1};
  cp.result.probes_sent = 1000;
  cp.result.responses = 900;
  cp.result.retransmits = 55;
  cp.result.probe_timeouts = 44;
  cp.result.send_failures = 3;
  cp.result.rate_backoffs = 1;
  cp.result.interfaces = {10, 20, 30};
  cp.result.destination_distance = {4, 0, 9, 0};
  cp.result.trigger_ttl = {1, 0, 2, 0};
  cp.result.routes = {{{0xAABB, 3, 0}}, {}, {{0xCCDD, 5, 1}}, {}};
  cp.result.probe_log = {{100, 0x01000001, 8, false},
                         {200, 0x01000102, 9, true}};

  std::stringstream stream;
  io::write_checkpoint(cp, stream);
  const auto loaded = io::read_checkpoint(stream);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->header.first_prefix, cp.header.first_prefix);
  EXPECT_EQ(loaded->header.prefix_bits, cp.header.prefix_bits);
  EXPECT_EQ(loaded->header.seed, cp.header.seed);
  EXPECT_EQ(loaded->config_digest, cp.config_digest);
  EXPECT_EQ(loaded->virtual_now, cp.virtual_now);
  EXPECT_EQ(loaded->scan_elapsed, cp.scan_elapsed);
  EXPECT_EQ(loaded->rounds_completed, cp.rounds_completed);
  EXPECT_EQ(loaded->backoff_level, cp.backoff_level);
  EXPECT_EQ(loaded->ring_head, cp.ring_head);
  EXPECT_EQ(loaded->next_backward, cp.next_backward);
  EXPECT_EQ(loaded->next_forward, cp.next_forward);
  EXPECT_EQ(loaded->forward_horizon, cp.forward_horizon);
  EXPECT_EQ(loaded->dcb_flags, cp.dcb_flags);
  EXPECT_EQ(loaded->retransmit_left, cp.retransmit_left);
  EXPECT_EQ(loaded->result.probes_sent, cp.result.probes_sent);
  EXPECT_EQ(loaded->result.retransmits, cp.result.retransmits);
  EXPECT_EQ(loaded->result.probe_timeouts, cp.result.probe_timeouts);
  EXPECT_EQ(loaded->result.send_failures, cp.result.send_failures);
  EXPECT_EQ(loaded->result.rate_backoffs, cp.result.rate_backoffs);
  EXPECT_EQ(loaded->result.interfaces, cp.result.interfaces);
  EXPECT_EQ(loaded->result.routes, cp.result.routes);
  EXPECT_EQ(loaded->result.probe_log, cp.result.probe_log);
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream stream("not a checkpoint at all");
  EXPECT_FALSE(io::read_checkpoint(stream).has_value());
}

TEST(Checkpoint, SetRoundTrips) {
  std::vector<io::ScanCheckpoint> set(3);
  set[0].virtual_now = 1;
  set[1].virtual_now = 2;
  set[1].next_backward = {9, 9};
  set[2].result.probes_sent = 77;

  std::stringstream stream;
  io::write_checkpoint_set(set, stream);
  const auto loaded = io::read_checkpoint_set(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].virtual_now, 1);
  EXPECT_EQ((*loaded)[1].next_backward, (std::vector<std::uint8_t>{9, 9}));
  EXPECT_EQ((*loaded)[2].result.probes_sent, 77u);
}

TEST(Checkpoint, KillAndResumeReproducesTheUninterruptedScan) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);

  // Reference: the checkpointing scan runs to completion, capturing every
  // checkpoint it takes along the way.
  std::vector<io::ScanCheckpoint> taken;
  TracerConfig config = checkpointing_config(params);
  config.checkpoint_sink = [&taken](const io::ScanCheckpoint& cp) {
    taken.push_back(cp);
    return true;
  };
  const ScanResult reference = run_once(topology, config);
  ASSERT_GE(taken.size(), 3u) << "scan too short to exercise checkpoints";

  // Kill the scan at several checkpoints, resume from the captured state,
  // and require the merged outcome to match the uninterrupted run exactly.
  for (const std::size_t kill_at : {std::size_t{0}, taken.size() / 2,
                                    taken.size() - 1}) {
    std::size_t seen = 0;
    TracerConfig killed = checkpointing_config(params);
    io::ScanCheckpoint at_kill;
    killed.checkpoint_sink = [&](const io::ScanCheckpoint& cp) {
      if (seen++ == kill_at) {
        at_kill = cp;
        return false;  // simulate the process dying at this barrier
      }
      return true;
    };
    const ScanResult partial = run_once(topology, killed);
    // The last barrier can fall after the final probe of the scan, so only
    // an early kill is guaranteed to truncate the probe stream.
    if (kill_at == 0) {
      EXPECT_LT(partial.probes_sent, reference.probes_sent)
          << "kill at checkpoint " << kill_at << " aborted nothing";
    }

    // Serialize through bytes, as a real resume would.
    std::stringstream stream;
    io::write_checkpoint(at_kill, stream);
    const auto loaded = io::read_checkpoint(stream);
    ASSERT_TRUE(loaded.has_value());

    TracerConfig resumed = checkpointing_config(params);
    resumed.resume_from = &*loaded;
    resumed.checkpoint_sink = [](const io::ScanCheckpoint&) { return true; };
    const ScanResult completed =
        run_once(topology, resumed, loaded->virtual_now);
    expect_equal_results(completed, reference);
  }
}

TEST(Checkpoint, DigestMismatchStartsFresh) {
  const sim::SimParams params = world_params();
  const sim::Topology topology(params);

  std::vector<io::ScanCheckpoint> taken;
  TracerConfig config = checkpointing_config(params);
  config.checkpoint_sink = [&taken](const io::ScanCheckpoint& cp) {
    taken.push_back(cp);
    return false;  // stop at the first checkpoint
  };
  (void)run_once(topology, config);
  ASSERT_EQ(taken.size(), 1u);

  // A config with a different gap limit must not resume from this state.
  TracerConfig other = checkpointing_config(params);
  other.gap_limit = 7;
  other.checkpoint_interval = 0;
  other.resume_from = &taken.front();
  const ScanResult resumed = run_once(topology, other);

  TracerConfig fresh = checkpointing_config(params);
  fresh.gap_limit = 7;
  fresh.checkpoint_interval = 0;
  const ScanResult from_scratch = run_once(topology, fresh);
  expect_equal_results(resumed, from_scratch);
}

TEST(Checkpoint, ShardedCheckpointSetResumesEveryShard) {
  sim::SimParams params = world_params();
  params.prefix_bits = 9;
  const sim::Topology topology(params);

  ShardedTracerConfig config;
  config.base = checkpointing_config(params);
  config.shard_prefix_bits = config.base.prefix_bits - 2;  // 4 shards
  const int num_shards = config.num_shards();

  // Reference: all shards checkpoint and run to completion.
  std::mutex mutex;
  std::vector<io::ScanCheckpoint> latest(
      static_cast<std::size_t>(num_shards));
  config.checkpoint_sink = [&](std::size_t shard,
                               const io::ScanCheckpoint& cp) {
    const std::lock_guard<std::mutex> lock(mutex);
    latest[shard] = cp;
    return true;
  };
  config.num_workers = 2;
  ScanResult reference;
  {
    sim::SimShardRuntimeProvider provider(topology, config);
    ShardedTracer tracer(config, provider);
    reference = tracer.run();
  }
  std::size_t with_state = 0;
  for (const auto& cp : latest) {
    if (!cp.next_backward.empty()) ++with_state;
  }
  ASSERT_GT(with_state, 0u);

  // Resume every shard from its captured last checkpoint; shards that never
  // checkpointed (empty per-DCB state) restart from scratch.  The merged
  // result must match the uninterrupted run.
  ShardedTracerConfig resumed = config;
  resumed.checkpoint_sink = nullptr;
  resumed.base.checkpoint_sink = nullptr;
  resumed.resume_from = &latest;
  std::vector<util::Nanos> start_times;
  for (const auto& cp : latest) {
    start_times.push_back(cp.next_backward.empty() ? 0 : cp.virtual_now);
  }
  ScanResult rerun;
  {
    sim::SimShardRuntimeProvider provider(topology, resumed, start_times);
    ShardedTracer tracer(resumed, provider);
    rerun = tracer.run();
  }
  expect_equal_results(rerun, reference);
}

}  // namespace
}  // namespace flashroute::core
