// Serialize/parse round-trips for the packet headers (net/headers.h) and
// the bounds-checked byte readers/writers (net/packet.h).

#include "net/headers.h"

#include <gtest/gtest.h>

#include <array>

#include "net/checksum.h"
#include "net/packet.h"

namespace flashroute::net {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  std::array<std::byte, 8> buf{};
  ByteWriter w(buf);
  w.put_u8(0x12);
  w.put_u16(0x3456);
  w.put_u32(0x789ABCDE);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.written(), 7u);
  EXPECT_EQ(buf[0], std::byte{0x12});
  EXPECT_EQ(buf[1], std::byte{0x34});
  EXPECT_EQ(buf[2], std::byte{0x56});
  EXPECT_EQ(buf[3], std::byte{0x78});
  EXPECT_EQ(buf[6], std::byte{0xDE});
}

TEST(ByteWriter, OverflowLatchesFailure) {
  std::array<std::byte, 3> buf{};
  ByteWriter w(buf);
  w.put_u32(1);  // doesn't fit
  EXPECT_FALSE(w.ok());
  w.put_u8(2);  // stays failed
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.written(), 0u);
}

TEST(ByteWriter, PatchU16) {
  std::array<std::byte, 4> buf{};
  ByteWriter w(buf);
  w.put_u32(0);
  w.patch_u16(2, 0xBEEF);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(buf[2], std::byte{0xBE});
  EXPECT_EQ(buf[3], std::byte{0xEF});
}

TEST(ByteReader, ReadsWhatWriterWrote) {
  std::array<std::byte, 16> buf{};
  ByteWriter w(buf);
  w.put_u8(1);
  w.put_u16(515);
  w.put_u32(0xCAFEBABE);
  ByteReader r(std::span<const std::byte>(buf.data(), w.written()));
  EXPECT_EQ(r.get_u8(), 1);
  EXPECT_EQ(r.get_u16(), 515);
  EXPECT_EQ(r.get_u32(), 0xCAFEBABEu);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, UnderflowLatchesFailure) {
  std::array<std::byte, 2> buf{};
  ByteReader r(buf);
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u8(), 0);  // still failed
}

TEST(Ipv4Header, RoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 1234;
  h.id = 0xABCD;
  h.flags_fragment = 0x4000;
  h.ttl = 17;
  h.protocol = kProtoUdp;
  h.src = Ipv4Address(0x01020304);
  h.dst = Ipv4Address(0x05060708);

  std::array<std::byte, Ipv4Header::kSize> buf{};
  ByteWriter w(buf);
  ASSERT_TRUE(h.serialize(w));

  // The emitted header must carry a valid checksum.
  EXPECT_TRUE(verify_ipv4_checksum(buf));

  ByteReader r(buf);
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tos, h.tos);
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->id, h.id);
  EXPECT_EQ(parsed->flags_fragment, h.flags_fragment);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->protocol, h.protocol);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4Header, ParseSkipsOptions) {
  std::array<std::byte, 24> buf{};
  ByteWriter w(buf);
  Ipv4Header h;
  h.total_length = 24;
  h.ttl = 1;
  h.protocol = kProtoIcmp;
  ASSERT_TRUE(h.serialize(w));
  buf[0] = std::byte{0x46};  // IHL 6 -> 24-byte header
  w.put_u32(0xDEADBEEF);     // the option word
  ByteReader r(buf);
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(r.remaining(), 0u);  // options consumed
}

TEST(Ipv4Header, ParseRejectsNonIpv4) {
  std::array<std::byte, Ipv4Header::kSize> buf{};
  buf[0] = std::byte{0x65};  // version 6
  ByteReader r(buf);
  EXPECT_FALSE(Ipv4Header::parse(r));
}

TEST(Ipv4Header, ParseRejectsTruncated) {
  std::array<std::byte, 10> buf{};
  buf[0] = std::byte{0x45};
  ByteReader r(buf);
  EXPECT_FALSE(Ipv4Header::parse(r));
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader h;
  h.src_port = 54321;
  h.dst_port = kTracerouteDstPort;
  h.length = 28;
  h.checksum = 0x1111;
  std::array<std::byte, UdpHeader::kSize> buf{};
  ByteWriter w(buf);
  ASSERT_TRUE(h.serialize(w));
  ByteReader r(buf);
  const auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, h.src_port);
  EXPECT_EQ(parsed->dst_port, h.dst_port);
  EXPECT_EQ(parsed->length, h.length);
  EXPECT_EQ(parsed->checksum, h.checksum);
}

TEST(TcpHeader, RoundTrip) {
  TcpHeader h;
  h.src_port = 1000;
  h.dst_port = 80;
  h.seq = 0x12345678;
  h.ack = 0x9ABCDEF0;
  h.flags = TcpHeader::kFlagAck;
  h.window = 65535;
  std::array<std::byte, TcpHeader::kSize> buf{};
  ByteWriter w(buf);
  ASSERT_TRUE(h.serialize(w));
  ByteReader r(buf);
  const auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, h.src_port);
  EXPECT_EQ(parsed->dst_port, h.dst_port);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_EQ(parsed->flags, h.flags);
  EXPECT_EQ(parsed->window, h.window);
}

TEST(IcmpHeader, RoundTrip) {
  IcmpHeader h;
  h.type = kIcmpTimeExceeded;
  h.code = kIcmpCodeTtlExceeded;
  h.checksum = 0x2222;
  h.rest = 0x33334444;
  std::array<std::byte, IcmpHeader::kSize> buf{};
  ByteWriter w(buf);
  ASSERT_TRUE(h.serialize(w));
  ByteReader r(buf);
  const auto parsed = IcmpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, h.type);
  EXPECT_EQ(parsed->code, h.code);
  EXPECT_EQ(parsed->rest, h.rest);
}

TEST(VerifyIpv4Checksum, DetectsCorruption) {
  std::array<std::byte, Ipv4Header::kSize> buf{};
  ByteWriter w(buf);
  Ipv4Header h;
  h.total_length = 20;
  h.ttl = 64;
  h.protocol = kProtoTcp;
  h.src = Ipv4Address(0x0A000001);
  h.dst = Ipv4Address(0x0A000002);
  ASSERT_TRUE(h.serialize(w));
  ASSERT_TRUE(verify_ipv4_checksum(buf));
  buf[8] = std::byte{63};  // decrement TTL without fixing the checksum
  EXPECT_FALSE(verify_ipv4_checksum(buf));
}

TEST(VerifyIpv4Checksum, RejectsGarbage) {
  EXPECT_FALSE(verify_ipv4_checksum({}));
  std::array<std::byte, 4> tiny{};
  tiny[0] = std::byte{0x45};
  EXPECT_FALSE(verify_ipv4_checksum(tiny));
}

}  // namespace
}  // namespace flashroute::net
