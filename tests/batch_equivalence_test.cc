// Batched-pipeline equivalence (DESIGN.md §11): a scan submitted through
// ProbeBatch / try_send_batch must be byte-identical to the same-seed
// scalar scan — same probes at the same virtual instants, same responses in
// the same order, same result bytes.  Covered engines: the FlashRoute
// Tracer (including fault-plane adversity and the sharded decomposition),
// the Yarrp baseline in its pure stateless mode, and the Scamper baseline
// (whose flag is a documented no-op).  The batch budget math is what makes
// these pass: every scalar drain the batch skips is provably empty.

#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/scamper.h"
#include "baselines/yarrp.h"
#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/params.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute {
namespace {

sim::SimParams world_params(int bits, std::uint64_t seed) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  return params;
}

sim::FaultParams adversity() {
  sim::FaultParams faults;
  faults.probe_loss = 0.2;
  faults.response_loss = 0.15;
  faults.duplicate_prob = 0.1;
  faults.reorder_prob = 0.1;
  faults.send_fail_prob = 0.1;
  faults.blackhole_fraction = 0.05;
  return faults;
}

void expect_identical(const core::ScanResult& a, const core::ScanResult& b) {
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.trigger_ttl, b.trigger_ttl);
  EXPECT_EQ(a.measured_distance, b.measured_distance);
  EXPECT_EQ(a.predicted_distance, b.predicted_distance);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    ASSERT_EQ(a.routes[i].size(), b.routes[i].size()) << "prefix " << i;
    for (std::size_t h = 0; h < a.routes[i].size(); ++h) {
      EXPECT_EQ(a.routes[i][h].ip, b.routes[i][h].ip);
      EXPECT_EQ(a.routes[i][h].ttl, b.routes[i][h].ttl);
      EXPECT_EQ(a.routes[i][h].flags, b.routes[i][h].flags);
    }
  }

  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.preprobe_probes, b.preprobe_probes);
  EXPECT_EQ(a.send_failures, b.send_failures);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.destinations_reached, b.destinations_reached);
  EXPECT_EQ(a.distances_measured, b.distances_measured);
  EXPECT_EQ(a.distances_predicted, b.distances_predicted);
  EXPECT_EQ(a.convergence_stops, b.convergence_stops);
  // Virtual time: batching must not move a single send or delivery instant.
  EXPECT_EQ(a.scan_time, b.scan_time);
}

// --- Tracer ----------------------------------------------------------------

core::TracerConfig tracer_config(const sim::Topology& topology) {
  core::TracerConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, topology.params().prefix_bits);
  config.collect_routes = true;
  return config;
}

core::ScanResult run_tracer(const sim::Topology& topology,
                            core::TracerConfig config, bool batch) {
  config.batch_probes = batch;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(BatchEquivalence, TracerBatchedScanIsBitIdenticalToScalar) {
  const sim::Topology topology(world_params(9, 77));
  const core::TracerConfig config = tracer_config(topology);
  expect_identical(run_tracer(topology, config, true),
                   run_tracer(topology, config, false));
}

TEST(BatchEquivalence, TracerBatchedScanWithPreprobeAndExtraScans) {
  const sim::Topology topology(world_params(8, 21));
  core::TracerConfig config = tracer_config(topology);
  config.preprobe = core::PreprobeMode::kRandom;
  config.extra_scans = 2;
  expect_identical(run_tracer(topology, config, true),
                   run_tracer(topology, config, false));
}

TEST(BatchEquivalence, TracerBatchedScanUnderFaultPlane) {
  sim::SimParams params = world_params(9, 5);
  params.faults = adversity();
  const sim::Topology topology(params);
  const core::TracerConfig config = tracer_config(topology);
  expect_identical(run_tracer(topology, config, true),
                   run_tracer(topology, config, false));
}

TEST(BatchEquivalence, TracerUnthrottledBatchedScanMatchesScalar) {
  // Sub-nanosecond pacing truncates the probe interval to 0; the budget
  // arithmetic clamps it to 1 ns, which must stay conservative.
  const sim::Topology topology(world_params(8, 13));
  core::TracerConfig config = tracer_config(topology);
  config.probes_per_second = 1e9;
  expect_identical(run_tracer(topology, config, true),
                   run_tracer(topology, config, false));
}

// --- Sharded Tracer --------------------------------------------------------

core::ScanResult run_sharded(const sim::Topology& topology, bool batch,
                             int workers) {
  core::ShardedTracerConfig config;
  config.base = tracer_config(topology);
  config.base.batch_probes = batch;
  config.shard_prefix_bits = topology.params().prefix_bits - 2;
  config.num_workers = workers;
  sim::SimShardRuntimeProvider provider(topology, config);
  core::ShardedTracer tracer(config, provider);
  return tracer.run();
}

TEST(BatchEquivalenceSharded, ShardedBatchedScanIsBitIdenticalToScalar) {
  const sim::Topology topology(world_params(8, 41));
  const core::ScanResult batched = run_sharded(topology, true, 2);
  const core::ScanResult scalar = run_sharded(topology, false, 2);
  // scan_time reflects the parallel makespan — compare everything else.
  EXPECT_EQ(batched.interfaces, scalar.interfaces);
  EXPECT_EQ(batched.destination_distance, scalar.destination_distance);
  EXPECT_EQ(batched.trigger_ttl, scalar.trigger_ttl);
  EXPECT_EQ(batched.probes_sent, scalar.probes_sent);
  EXPECT_EQ(batched.responses, scalar.responses);
  EXPECT_EQ(batched.destinations_reached, scalar.destinations_reached);
  ASSERT_EQ(batched.routes.size(), scalar.routes.size());
  for (std::size_t i = 0; i < batched.routes.size(); ++i) {
    ASSERT_EQ(batched.routes[i].size(), scalar.routes[i].size());
    for (std::size_t h = 0; h < batched.routes[i].size(); ++h) {
      EXPECT_EQ(batched.routes[i][h].ip, scalar.routes[i][h].ip);
      EXPECT_EQ(batched.routes[i][h].ttl, scalar.routes[i][h].ttl);
    }
  }
}

TEST(BatchEquivalenceSharded, ShardedBatchedScanUnderFaultPlane) {
  sim::SimParams params = world_params(8, 29);
  params.faults = adversity();
  const sim::Topology topology(params);
  const core::ScanResult batched = run_sharded(topology, true, 2);
  const core::ScanResult scalar = run_sharded(topology, false, 2);
  EXPECT_EQ(batched.interfaces, scalar.interfaces);
  EXPECT_EQ(batched.probes_sent, scalar.probes_sent);
  EXPECT_EQ(batched.send_failures, scalar.send_failures);
  EXPECT_EQ(batched.responses, scalar.responses);
  EXPECT_EQ(batched.destination_distance, scalar.destination_distance);
}

// --- Yarrp -----------------------------------------------------------------

core::ScanResult run_yarrp(const sim::Topology& topology,
                           baselines::YarrpConfig config, bool batch) {
  config.batch_probes = batch;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Yarrp yarrp(config, runtime);
  return yarrp.run();
}

baselines::YarrpConfig yarrp_config(const sim::Topology& topology) {
  baselines::YarrpConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, topology.params().prefix_bits);
  config.exhaustive_ttl = 12;
  return config;
}

TEST(BatchEquivalence, YarrpBatchedWalkIsBitIdenticalToScalarTcp) {
  const sim::Topology topology(world_params(8, 61));
  const baselines::YarrpConfig config = yarrp_config(topology);
  expect_identical(run_yarrp(topology, config, true),
                   run_yarrp(topology, config, false));
}

TEST(BatchEquivalence, YarrpBatchedWalkIsBitIdenticalToScalarUdp) {
  const sim::Topology topology(world_params(8, 62));
  baselines::YarrpConfig config = yarrp_config(topology);
  config.probe_type = baselines::YarrpConfig::ProbeType::kUdp;
  expect_identical(run_yarrp(topology, config, true),
                   run_yarrp(topology, config, false));
}

TEST(BatchEquivalence, YarrpBatchedWalkUnderFaultPlane) {
  sim::SimParams params = world_params(8, 63);
  params.faults = adversity();
  const sim::Topology topology(params);
  const baselines::YarrpConfig config = yarrp_config(topology);
  expect_identical(run_yarrp(topology, config, true),
                   run_yarrp(topology, config, false));
}

TEST(BatchEquivalence, YarrpFillModeStaysScalarAndUnchanged) {
  // Fill mode consumes response feedback, so batch_probes must be ignored:
  // both flag settings take the scalar path and agree exactly.
  const sim::Topology topology(world_params(8, 64));
  baselines::YarrpConfig config = yarrp_config(topology);
  config.fill_mode = true;
  config.exhaustive_ttl = 8;
  config.fill_max_ttl = 16;
  expect_identical(run_yarrp(topology, config, true),
                   run_yarrp(topology, config, false));
}

// --- Scamper ---------------------------------------------------------------

TEST(BatchEquivalence, ScamperBatchFlagIsANoOp) {
  const sim::Topology topology(world_params(8, 91));
  baselines::ScamperConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.window = 256;
  core::ScanResult results[2];
  for (int i = 0; i < 2; ++i) {
    config.batch_probes = i == 0;
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, config.probes_per_second);
    baselines::Scamper scamper(config, runtime);
    results[i] = scamper.run();
  }
  expect_identical(results[0], results[1]);
}

// --- ProbeBatch / runtime contract ----------------------------------------

TEST(ProbeBatch, SlotCommitPacketRoundTrip) {
  core::ProbeBatch batch;
  EXPECT_TRUE(batch.empty());
  for (std::uint32_t k = 0; k < core::ProbeBatch::kMaxPackets; ++k) {
    auto slot = batch.slot();
    slot[0] = static_cast<std::byte>(k);
    batch.commit(k % core::ProbeBatch::kStride + 1);
  }
  EXPECT_TRUE(batch.full());
  for (std::uint32_t k = 0; k < core::ProbeBatch::kMaxPackets; ++k) {
    const auto packet = batch.packet(k);
    EXPECT_EQ(packet.size(), k % core::ProbeBatch::kStride + 1);
    EXPECT_EQ(packet[0], static_cast<std::byte>(k));
  }
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

TEST(ProbeBatch, DefaultShimMatchesScalarSends) {
  // The base-class try_send_batch loops try_send: a runtime that never
  // overrides it still accepts batched engines.
  class CountingRuntime final : public core::ScanRuntime {
   public:
    util::Nanos now() const noexcept override { return 0; }
    [[nodiscard]] bool try_send(std::span<const std::byte> packet) override {
      sizes.push_back(packet.size());
      return sizes.size() % 2 == 1;  // alternate success/failure
    }
    void drain(const Sink&) override {}
    void idle_until(util::Nanos, const Sink&) override {}
    std::vector<std::size_t> sizes;
  };
  CountingRuntime runtime;
  core::ProbeBatch batch;
  for (int k = 0; k < 5; ++k) batch.commit(10 + static_cast<std::size_t>(k));
  const std::uint64_t ok = runtime.try_send_batch(batch);
  EXPECT_EQ(ok, 0b10101u);
  ASSERT_EQ(runtime.sizes.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(runtime.sizes[static_cast<std::size_t>(k)],
              10 + static_cast<std::size_t>(k));
  }
  EXPECT_EQ(runtime.batch_budget(), 1u);
}

}  // namespace
}  // namespace flashroute
