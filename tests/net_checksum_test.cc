// Tests for the RFC 1071 Internet checksum (net/checksum.h), including the
// checksum-as-source-port scheme (§3.1/§5.3).

#include "net/checksum.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

namespace flashroute::net {
namespace {

std::vector<std::byte> bytes(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  for (const unsigned v : values) out.push_back(std::byte(v));
  return out;
}

TEST(Checksum, Rfc1071WorkedExample) {
  // The classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7
  // has one's-complement sum 0xddf2, checksum ~0xddf2 = 0x220d.
  const auto data = bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, EmptyData) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  // Odd trailing byte is treated as the high byte of a zero-padded word.
  const auto odd = bytes({0x12, 0x34, 0x56});
  const auto padded = bytes({0x12, 0x34, 0x56, 0x00});
  EXPECT_EQ(internet_checksum(odd), internet_checksum(padded));
}

TEST(Checksum, PartialChainingMatchesSinglePass) {
  const auto data =
      bytes({0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06});
  const std::span<const std::byte> all(data);
  std::uint32_t sum = checksum_partial(all.first(4));
  sum = checksum_partial(all.subspan(4), sum);
  EXPECT_EQ(checksum_finish(sum), internet_checksum(all));
}

TEST(Checksum, KnownIpv4HeaderValidates) {
  // A textbook IPv4 header with checksum 0xB861 (from RFC 1071 examples
  // circulating in Stevens' TCP/IP Illustrated).
  const auto header =
      bytes({0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
             0xB8, 0x61, 0xC0, 0xA8, 0x00, 0x01, 0xC0, 0xA8, 0x00, 0xC7});
  // Summing a valid header including its checksum yields zero.
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(Checksum, IncrementalUpdateMatchesFullRecomputeRandomized) {
  // RFC 1624 Eqn. 3: patching one 16-bit word of a checksummed header and
  // applying incremental_checksum_update must equal recomputing the checksum
  // from scratch.  Randomized over header contents, patch position, and new
  // value; chained over several successive patches like the probe codec does.
  std::mt19937 rng(0x1624);
  std::uniform_int_distribution<unsigned> byte_dist(0, 255);
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<std::byte, 20> header;
    for (auto& b : header) b = std::byte(byte_dist(rng));
    // Like a real IPv4 header, zero the checksum field and at least one
    // word is nonzero (the version/IHL byte of a real header always is).
    header[0] = std::byte{0x45};
    header[10] = header[11] = std::byte{0};
    std::uint16_t checksum = internet_checksum(header);

    for (int patch = 0; patch < 4; ++patch) {
      const std::size_t word = 2 * (byte_dist(rng) % 10);
      if (word == 10) continue;  // never patch the checksum field itself
      const std::uint16_t old_word =
          static_cast<std::uint16_t>(std::to_integer<unsigned>(header[word])
                                         << 8 |
                                     std::to_integer<unsigned>(header[word + 1]));
      const std::uint16_t new_word = static_cast<std::uint16_t>(
          byte_dist(rng) << 8 | byte_dist(rng));
      header[word] = std::byte(new_word >> 8);
      header[word + 1] = std::byte(new_word & 0xFF);
      checksum = incremental_checksum_update(checksum, old_word, new_word);
      ASSERT_EQ(checksum, internet_checksum(header))
          << "trial " << trial << " patch " << patch << " word " << word;
    }
  }
}

TEST(Checksum, IncrementalUpdateIdentityAndInverse) {
  // Patching a word to itself is a no-op; patching there and back returns
  // the original checksum (the folded sum of a nonzero header is a unique
  // representative of its class mod 0xFFFF).
  const auto data = bytes({0x45, 0x00, 0x00, 0x1c, 0xde, 0xad});
  const std::uint16_t checksum = internet_checksum(data);
  EXPECT_EQ(incremental_checksum_update(checksum, 0xDEAD, 0xDEAD), checksum);
  const std::uint16_t patched =
      incremental_checksum_update(checksum, 0xDEAD, 0xBEEF);
  EXPECT_EQ(incremental_checksum_update(patched, 0xBEEF, 0xDEAD), checksum);
}

TEST(AddressChecksum, MatchesManualComputation) {
  // address_checksum folds the two 16-bit halves of the address.
  const Ipv4Address a(0x01020304);
  const std::uint32_t sum = 0x0102 + 0x0304;
  EXPECT_EQ(address_checksum(a), static_cast<std::uint16_t>(~sum & 0xFFFF));
}

TEST(AddressChecksum, HandlesCarry) {
  const Ipv4Address a(0xFFFF0001);
  // 0xFFFF + 0x0001 = 0x10000 -> fold -> 0x0001 -> invert -> 0xFFFE.
  EXPECT_EQ(address_checksum(a), 0xFFFE);
}

TEST(AddressChecksum, DistinguishesRewrites) {
  // The §5.3 detector: two different destinations must (almost always)
  // yield different source ports.  Verify over a spread of addresses.
  int collisions = 0;
  const Ipv4Address base(0x01020304);
  for (std::uint32_t delta = 1; delta <= 1000; ++delta) {
    if (address_checksum(Ipv4Address(base.value() + delta)) ==
        address_checksum(base)) {
      ++collisions;
    }
  }
  // Checksum collisions exist (16-bit), but must be rare in a local range.
  EXPECT_LT(collisions, 5);
}

}  // namespace
}  // namespace flashroute::net
