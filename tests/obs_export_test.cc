// End-to-end tests for the telemetry JSONL export (obs/snapshot_exporter.h)
// over real virtual-time scans:
//
//  * the determinism anchor — two same-seed sim scans emit byte-identical
//    JSONL streams, because every capture lands on a virtual-time tick;
//  * summary counters agree with the engine's own ScanResult;
//  * sharded runs are invariant under the worker count (modulo scan_time,
//    which is the parallel makespan by design — the summary here is written
//    with a pinned scan_time so the whole stream can be compared bytewise).

#include "obs/snapshot_exporter.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "obs/metrics.h"
#include "obs/scan_metrics.h"
#include "obs/scan_tracer.h"
#include "sim/network.h"
#include "sim/params.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::obs {
namespace {

sim::SimParams world_params(std::uint64_t seed) {
  sim::SimParams params;
  params.prefix_bits = 8;  // 256 prefixes — small but phase-complete
  params.seed = seed;
  return params;
}

struct MeteredScan {
  std::string jsonl;
  core::ScanResult result;
};

/// One full single-lane scan with telemetry wired exactly as the CLI wires
/// it, exported to a string.
MeteredScan run_metered_scan(std::uint64_t seed) {
  const sim::Topology topology(world_params(seed));
  const sim::SimParams& params = topology.params();

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = core::PreprobeMode::kRandom;

  MetricsRegistry registry;
  config.telemetry.registry = &registry;
  config.telemetry.ids = register_scan_metrics(registry);
  registry.freeze(1);
  ScanTracer tracer(registry, 200 * util::kMillisecond);
  config.telemetry.tracer = &tracer;
  config.telemetry.lane = registry.lane(0);
  config.telemetry.lane_id = 0;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  runtime.register_gauges(registry, 0);

  MeteredScan out;
  core::Tracer engine(config, runtime);
  out.result = engine.run();

  std::ostringstream stream;
  SnapshotExporter exporter(stream);
  exporter.write_intervals(tracer, registry);
  exporter.write_summary(tracer, registry, out.result.scan_time);
  out.jsonl = stream.str();
  return out;
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) n += c == '\n';
  return n;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(SnapshotExport, SameSeedStreamsAreByteIdentical) {
  const MeteredScan a = run_metered_scan(9);
  const MeteredScan b = run_metered_scan(9);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_GT(count_lines(a.jsonl), 10u);  // intervals actually captured
  EXPECT_EQ(a.jsonl, b.jsonl);

  const MeteredScan c = run_metered_scan(10);
  EXPECT_NE(a.jsonl, c.jsonl);  // the stream reflects the scan, not a stub
}

TEST(SnapshotExport, SummaryCountersMatchScanResult) {
  const MeteredScan scan = run_metered_scan(9);
  const core::ScanResult& r = scan.result;
  ASSERT_GT(r.probes_sent, 0u);
  ASSERT_GT(r.responses, 0u);

  // Exactly one summary record, and it is the last line.
  const std::string marker = "{\"type\":\"summary\"";
  const std::size_t first = scan.jsonl.find(marker);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(scan.jsonl.find(marker, first + 1), std::string::npos);
  EXPECT_EQ(scan.jsonl.find('\n', first), scan.jsonl.size() - 1);

  const std::string summary = scan.jsonl.substr(first);
  const auto counter = [&](const char* name, std::uint64_t value) {
    return contains(summary, "\"" + std::string(name) +
                                 "\":" + std::to_string(value));
  };
  EXPECT_TRUE(counter("scan.probes_sent", r.probes_sent));
  EXPECT_TRUE(counter("scan.preprobe_probes", r.preprobe_probes));
  EXPECT_TRUE(counter("scan.responses", r.responses));
  EXPECT_TRUE(counter("scan.mismatches", r.mismatches));
  EXPECT_TRUE(counter("scan.destinations_reached", r.destinations_reached));
  EXPECT_TRUE(counter("scan.interfaces_discovered", r.interfaces.size()));
  EXPECT_TRUE(counter("scan.convergence_stops", r.convergence_stops));
  EXPECT_TRUE(
      contains(summary, "\"scan_time_ns\":" + std::to_string(r.scan_time)));

  // Histograms were populated: as many RTT samples as responses.
  EXPECT_TRUE(contains(summary, "\"scan.rtt_us\":{\"total\":" +
                                    std::to_string(r.responses)));
  EXPECT_TRUE(contains(summary, "\"scan.hop_distance\":{\"total\":" +
                                    std::to_string(r.interfaces.size())));

  // The sim gauges registered on lane 0 made it into the summary.
  EXPECT_TRUE(contains(summary, "\"sim.route_cache_hit_rate\""));
  EXPECT_TRUE(contains(summary, "\"sim.rate_limit_drops\""));
}

TEST(SnapshotExport, IntervalRecordsCarryPhaseAndDeltas) {
  const MeteredScan scan = run_metered_scan(9);
  EXPECT_TRUE(contains(scan.jsonl, "\"phase\":\"preprobe\""));
  EXPECT_TRUE(contains(scan.jsonl, "\"phase\":\"main\""));
  EXPECT_TRUE(contains(scan.jsonl, "\"deltas\":{\"scan.probes_sent\":"));
  EXPECT_TRUE(contains(scan.jsonl, "\"gauges\":{\"sim.rate_limit_drops\":"));
}

struct ShardedMetered {
  std::string intervals;
  std::string summary;  // written with scan_time pinned to 0 (see below)
  core::ScanResult result;
};

/// A sharded metered scan: 4 logical shards over `num_workers` threads,
/// telemetry lane i owned by shard i (the ShardedTracer wiring under test).
ShardedMetered run_sharded_metered(int num_workers) {
  const sim::Topology topology(world_params(33));
  const sim::SimParams& params = topology.params();

  core::ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.base.preprobe = core::PreprobeMode::kRandom;
  config.num_workers = num_workers;
  config.shard_prefix_bits = 6;  // 4 shards of 64 /24s each

  MetricsRegistry registry;
  config.base.telemetry.registry = &registry;
  config.base.telemetry.ids = register_scan_metrics(registry);
  registry.freeze(config.num_shards());
  ScanTracer tracer(registry, 200 * util::kMillisecond);
  config.base.telemetry.tracer = &tracer;

  sim::SimShardRuntimeProvider provider(topology, config);
  provider.register_gauges(registry);

  ShardedMetered out;
  core::ShardedTracer engine(config, provider);
  out.result = engine.run();

  {
    std::ostringstream stream;
    SnapshotExporter(stream).write_intervals(tracer, registry);
    out.intervals = stream.str();
  }
  {
    // scan_time is the parallel makespan — the ONE field that legitimately
    // varies with the worker count — so it is pinned here to let the test
    // compare everything else bytewise.
    std::ostringstream stream;
    SnapshotExporter(stream).write_summary(tracer, registry,
                                           /*scan_time=*/0);
    out.summary = stream.str();
  }
  return out;
}

TEST(SnapshotExport, ShardedStreamInvariantUnderWorkerCount) {
  const ShardedMetered one = run_sharded_metered(1);
  const ShardedMetered two = run_sharded_metered(2);

  ASSERT_FALSE(one.intervals.empty());
  EXPECT_GT(count_lines(one.intervals), 10u);
  EXPECT_EQ(one.intervals, two.intervals);
  EXPECT_EQ(one.summary, two.summary);

  // Sanity on the merged result itself (the repo's determinism anchor).
  EXPECT_EQ(one.result.probes_sent, two.result.probes_sent);
  EXPECT_EQ(one.result.interfaces, two.result.interfaces);

  // All four lanes captured intervals and the counters reflect the scan.
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_TRUE(
        contains(one.intervals, "\"lane\":" + std::to_string(lane) + ","));
  }
  EXPECT_TRUE(contains(one.summary, "\"lanes\":4"));
  EXPECT_TRUE(contains(one.summary,
                       "\"scan.probes_sent\":" +
                           std::to_string(one.result.probes_sent)));
}

}  // namespace
}  // namespace flashroute::obs
