// Tests for FlashRoute's probe encoding (§3.1): the IPID bit-packing
// (5-bit TTL, preprobe bit, 10 timestamp bits), the 6 timestamp bits in the
// UDP length, checksum-as-source-port, and the RTT wraparound arithmetic.
// Parameterized sweeps cover the full TTL range and the timestamp space.

#include "core/probe_codec.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <tuple>

#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"

namespace flashroute::core {
namespace {

constexpr net::Ipv4Address kVantage(0xCB00710A);
constexpr net::Ipv4Address kTarget(0x01020364);
constexpr net::Ipv4Address kRouter(0xC8000009);

/// Encodes a probe, crafts a router response quoting it, and decodes —
/// the full path a field takes through the system.
std::optional<DecodedProbe> round_trip(const ProbeCodec& codec,
                                       net::Ipv4Address target,
                                       std::uint8_t ttl, bool preprobe,
                                       util::Nanos when,
                                       std::uint8_t residual = 1) {
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(target, ttl, preprobe, when, buf);
  if (size == 0) return std::nullopt;
  const auto response = net::craft_icmp_response(
      net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded, kRouter,
      std::span<const std::byte>(buf.data(), size), residual);
  if (!response) return std::nullopt;
  const auto parsed = net::parse_response(*response);
  if (!parsed) return std::nullopt;
  return codec.decode(*parsed);
}

class CodecTtlSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CodecTtlSweep, TtlAndPreprobeBitSurviveRoundTrip) {
  const auto [ttl, preprobe] = GetParam();
  const ProbeCodec codec(kVantage);
  const auto decoded = round_trip(codec, kTarget,
                                  static_cast<std::uint8_t>(ttl), preprobe,
                                  777 * util::kMillisecond);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->initial_ttl, ttl);
  EXPECT_EQ(decoded->preprobe, preprobe);
  EXPECT_EQ(decoded->destination, kTarget);
  EXPECT_TRUE(decoded->source_port_matches);
}

INSTANTIATE_TEST_SUITE_P(
    AllTtls, CodecTtlSweep,
    ::testing::Combine(::testing::Range(1, 33), ::testing::Bool()));

class CodecTimestampSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CodecTimestampSweep, TimestampSurvives16BitRoundTrip) {
  const util::Nanos when = GetParam() * util::kMillisecond;
  const ProbeCodec codec(kVantage);
  const auto decoded = round_trip(codec, kTarget, 16, false, when);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->timestamp_ms,
            static_cast<std::uint16_t>(GetParam() & 0xFFFF));
}

INSTANTIATE_TEST_SUITE_P(Timestamps, CodecTimestampSweep,
                         ::testing::Values(0, 1, 1023, 1024, 4095, 65535,
                                           65536, 65537, 100000, 1234567,
                                           987654321));

TEST(ProbeCodec, RttComputationAndWraparound) {
  const ProbeCodec codec(kVantage);
  const util::Nanos sent = 1000 * util::kMillisecond;
  const auto decoded = round_trip(codec, kTarget, 8, false, sent);
  ASSERT_TRUE(decoded);
  // Normal case: 250 ms later.
  EXPECT_EQ(ProbeCodec::rtt(*decoded, sent + 250 * util::kMillisecond),
            250 * util::kMillisecond);
  // Wraparound: the 16-bit ms counter wraps every 65.536 s (§3.1 —
  // "less than the official maximum segment lifetime but more than enough").
  const util::Nanos wrapped_arrival =
      sent + (65536 + 100) * util::kMillisecond;
  EXPECT_EQ(ProbeCodec::rtt(*decoded, wrapped_arrival),
            100 * util::kMillisecond);
}

TEST(ProbeCodec, UdpLengthCarriesHighTimestampBits) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  // ts = 0b101010_1010101010 -> high 6 bits = 0b101010 = 42 payload bytes.
  const std::uint16_t ts = (42u << 10) | 0x2AA;
  const std::size_t size =
      codec.encode_udp(kTarget, 1, false, static_cast<util::Nanos>(ts) *
                                              util::kMillisecond, buf);
  ASSERT_EQ(size, net::Ipv4Header::kSize + net::UdpHeader::kSize + 42);
  net::ByteReader reader(std::span<const std::byte>(buf.data(), size));
  const auto ip = net::Ipv4Header::parse(reader);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->id & 0x3FF, 0x2AA);  // low 10 bits in the IPID
  const auto udp = net::UdpHeader::parse(reader);
  ASSERT_TRUE(udp);
  EXPECT_EQ(udp->length, net::UdpHeader::kSize + 42);
}

TEST(ProbeCodec, ProbeIsRealIpv4WithValidChecksum) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(kTarget, 16, false, 0, buf);
  ASSERT_GT(size, 0u);
  EXPECT_TRUE(net::verify_ipv4_checksum(
      std::span<const std::byte>(buf.data(), size)));
  net::ByteReader reader(std::span<const std::byte>(buf.data(), size));
  const auto ip = net::Ipv4Header::parse(reader);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->src, kVantage);
  EXPECT_EQ(ip->dst, kTarget);
  EXPECT_EQ(ip->ttl, 16);
  EXPECT_EQ(ip->protocol, net::kProtoUdp);
  EXPECT_EQ(ip->total_length, size);
}

TEST(ProbeCodec, SourcePortIsDestinationChecksum) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(kTarget, 16, false, 0, buf);
  net::ByteReader reader(std::span<const std::byte>(buf.data(), size));
  (void)net::Ipv4Header::parse(reader);
  const auto udp = net::UdpHeader::parse(reader);
  ASSERT_TRUE(udp);
  EXPECT_EQ(udp->src_port, net::address_checksum(kTarget));
  EXPECT_EQ(udp->dst_port, net::kTracerouteDstPort);
}

TEST(ProbeCodec, PortOffsetShiftsFlowAndStillVerifies) {
  // Discovery-optimized extra scans use P' = P + i (§5.2); the shifted
  // codec must still accept its own responses...
  const ProbeCodec shifted(kVantage, /*port_offset=*/3);
  const auto decoded = round_trip(shifted, kTarget, 12, false, 0);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->source_port_matches);

  // ...and a response to a *different* pass's probe must not verify
  // (stale cross-pass responses are dropped as mismatches).
  const ProbeCodec base(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = base.encode_udp(kTarget, 12, false, 0, buf);
  const auto response = net::craft_icmp_response(
      net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded, kRouter,
      std::span<const std::byte>(buf.data(), size), 1);
  const auto parsed = net::parse_response(*response);
  const auto cross = shifted.decode(*parsed);
  ASSERT_TRUE(cross);
  EXPECT_FALSE(cross->source_port_matches);
}

TEST(ProbeCodec, DetectsRewrittenDestination) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(kTarget, 32, false, 0, buf);
  const net::Ipv4Address rewritten(kTarget.value() ^ 0x00000070);
  const auto response = net::craft_icmp_response(
      net::kIcmpDestUnreachable, net::kIcmpCodePortUnreachable, rewritten,
      std::span<const std::byte>(buf.data(), size), 5, rewritten);
  const auto parsed = net::parse_response(*response);
  ASSERT_TRUE(parsed);
  const auto decoded = codec.decode(*parsed);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->source_port_matches);  // §5.3: drop it
}

TEST(ProbeCodec, ResidualTtlExposed) {
  const ProbeCodec codec(kVantage);
  const auto decoded =
      round_trip(codec, kTarget, 32, true, 0, /*residual=*/13);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->residual_ttl, 13);
  // distance = 32 - 13 + 1 = 20, the §3.3.1 derivation.
  EXPECT_EQ(decoded->initial_ttl - decoded->residual_ttl + 1, 20);
}

TEST(ProbeCodec, EncodeTcpMatchesYarrpConventions) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const util::Nanos when = 5000 * util::kMillisecond;
  const std::size_t size = codec.encode_tcp(kTarget, 24, when, buf);
  ASSERT_EQ(size, ProbeCodec::kTcpProbeSize);
  net::ByteReader reader(std::span<const std::byte>(buf.data(), size));
  const auto ip = net::Ipv4Header::parse(reader);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->protocol, net::kProtoTcp);
  EXPECT_EQ(ip->ttl, 24);
  const auto tcp = net::TcpHeader::parse(reader);
  ASSERT_TRUE(tcp);
  EXPECT_EQ(tcp->flags, net::TcpHeader::kFlagAck);
  EXPECT_EQ(tcp->dst_port, 80);
  EXPECT_EQ(tcp->src_port, net::address_checksum(kTarget));
  EXPECT_EQ(tcp->seq, 5000u);  // elapsed ms in the sequence number
}

TEST(ProbeCodec, TemplatePatchingMatchesFullSerializationRandomized) {
  // The codec serializes from a precomputed template, patching only the
  // variable fields and updating the IP checksum incrementally (RFC 1624).
  // Over randomized (destination, TTL, preprobe, timestamp, port offset),
  // every emitted probe must carry a checksum indistinguishable from a full
  // RFC 1071 recompute, and every header field must parse back exactly.
  std::mt19937 rng(0xF1A5);
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> ttl_dist(1, 32);
  std::uniform_int_distribution<std::int64_t> ms_dist(0, 1'000'000);
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  for (int trial = 0; trial < 2000; ++trial) {
    const net::Ipv4Address dst(addr_dist(rng));
    const auto ttl = static_cast<std::uint8_t>(ttl_dist(rng));
    const bool preprobe = (trial & 1) != 0;
    const util::Nanos when = ms_dist(rng) * util::kMillisecond;
    const ProbeCodec codec(kVantage,
                           /*port_offset=*/static_cast<std::uint16_t>(trial % 4));

    const bool tcp = trial % 3 == 0;
    const std::size_t size =
        tcp ? codec.encode_tcp(dst, ttl, when, buf)
            : codec.encode_udp(dst, ttl, preprobe, when, buf);
    ASSERT_GT(size, 0u);
    const std::span<const std::byte> wire(buf.data(), size);
    ASSERT_TRUE(net::verify_ipv4_checksum(wire))
        << "trial " << trial << ": incremental checksum diverged from a "
        << "full recompute";

    net::ByteReader reader(wire);
    const auto ip = net::Ipv4Header::parse(reader);
    ASSERT_TRUE(ip);
    EXPECT_EQ(ip->src, kVantage);
    EXPECT_EQ(ip->dst, dst);
    EXPECT_EQ(ip->ttl, ttl);
    EXPECT_EQ(ip->total_length, size);
    EXPECT_EQ(ip->protocol, tcp ? net::kProtoTcp : net::kProtoUdp);
    const std::uint16_t expected_port = static_cast<std::uint16_t>(
        net::address_checksum(dst) + trial % 4);
    if (tcp) {
      const auto l4 = net::TcpHeader::parse(reader);
      ASSERT_TRUE(l4);
      EXPECT_EQ(l4->src_port, expected_port);
      EXPECT_EQ(l4->seq, static_cast<std::uint32_t>(when / util::kMillisecond));
    } else {
      const auto l4 = net::UdpHeader::parse(reader);
      ASSERT_TRUE(l4);
      EXPECT_EQ(l4->src_port, expected_port);
      const auto ts =
          static_cast<std::uint16_t>((when / util::kMillisecond) & 0xFFFF);
      EXPECT_EQ(ip->id & 0x3FF, ts & 0x3FF);
      EXPECT_EQ((ip->id >> 10) & 1, preprobe ? 1 : 0);
      EXPECT_EQ(l4->length, net::UdpHeader::kSize + (ts >> 10));
    }
  }
}

TEST(ProbeCodec, EncodeFailsOnTinyBuffer) {
  const ProbeCodec codec(kVantage);
  std::array<std::byte, 10> tiny;
  EXPECT_EQ(codec.encode_udp(kTarget, 1, false, 0, tiny), 0u);
  EXPECT_EQ(codec.encode_tcp(kTarget, 1, 0, tiny), 0u);
}

TEST(ProbeCodec, DecodeRejectsNonIcmp) {
  const ProbeCodec codec(kVantage);
  net::ParsedResponse rst;
  rst.is_tcp_rst = true;
  EXPECT_FALSE(codec.decode(rst));
}

}  // namespace
}  // namespace flashroute::core
