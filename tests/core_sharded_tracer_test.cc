// Tests for the sharded multi-core scan engine (core/sharded_tracer.h):
//
//  * the determinism anchor — the merged ScanResult is bit-identical for any
//    worker count, because the shard decomposition, per-shard permutation
//    seeds, and merge order depend only on the configuration;
//  * the shard plan itself (contiguous coverage, balanced workers, budget
//    slicing);
//  * the real-time sharded runtime end to end over the in-memory wire;
//  * the zero-allocation guarantee of the receive hot path.

#include "core/sharded_tracer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "core/threaded_runtime.h"
#include "core/tracer.h"
#include "sim/params.h"
#include "sim/runtime.h"
#include "sim/sim_wire.h"
#include "sim/topology.h"

// --- Thread-local allocation counting for the zero-allocation test ---------
//
// Replacing the global operators is binary-wide, so the counter is
// thread-local: only allocations made by the *calling* thread (the engine
// thread running drain) are charged, never the receiver thread's.

namespace {
thread_local std::uint64_t g_thread_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_thread_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

// noinline keeps GCC from tracking pointer provenance through the
// replaced operators and mis-reporting free() of a malloc'd block as a
// mismatched allocation function.
[[gnu::noinline]] static void counted_free(void* p) noexcept {
  std::free(p);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace flashroute::core {
namespace {

sim::SimParams test_params() {
  sim::SimParams params;
  params.prefix_bits = 8;  // 256 prefixes
  params.seed = 33;
  return params;
}

ShardedTracerConfig test_config(const sim::SimParams& params,
                                int num_workers) {
  ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.preprobe = PreprobeMode::kRandom;
  config.base.collect_routes = true;
  config.base.collect_probe_log = true;
  config.num_workers = num_workers;
  config.shard_prefix_bits = 6;  // 4 shards of 64 /24s each
  return config;
}

ScanResult run_sharded(const sim::Topology& topology, int num_workers) {
  const ShardedTracerConfig config = test_config(
      sim::SimParams{topology.params()}, num_workers);
  sim::SimShardRuntimeProvider provider(topology, config);
  ShardedTracer tracer(config, provider);
  return tracer.run();
}

void expect_identical(const ScanResult& a, const ScanResult& b) {
  // Everything except scan_time/preprobe_time, which reflect the actual
  // parallel makespan and legitimately vary with the worker count.
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.trigger_ttl, b.trigger_ttl);
  EXPECT_EQ(a.measured_distance, b.measured_distance);
  EXPECT_EQ(a.predicted_distance, b.predicted_distance);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    ASSERT_EQ(a.routes[i].size(), b.routes[i].size()) << "prefix " << i;
    for (std::size_t h = 0; h < a.routes[i].size(); ++h) {
      EXPECT_EQ(a.routes[i][h].ip, b.routes[i][h].ip);
      EXPECT_EQ(a.routes[i][h].ttl, b.routes[i][h].ttl);
      EXPECT_EQ(a.routes[i][h].flags, b.routes[i][h].flags);
    }
  }

  ASSERT_EQ(a.probe_log.size(), b.probe_log.size());
  for (std::size_t i = 0; i < a.probe_log.size(); ++i) {
    EXPECT_EQ(a.probe_log[i].time, b.probe_log[i].time);
    EXPECT_EQ(a.probe_log[i].destination, b.probe_log[i].destination);
    EXPECT_EQ(a.probe_log[i].ttl, b.probe_log[i].ttl);
    EXPECT_EQ(a.probe_log[i].preprobe, b.probe_log[i].preprobe);
  }

  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.preprobe_probes, b.preprobe_probes);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.destinations_reached, b.destinations_reached);
  EXPECT_EQ(a.distances_measured, b.distances_measured);
  EXPECT_EQ(a.distances_predicted, b.distances_predicted);
  EXPECT_EQ(a.convergence_stops, b.convergence_stops);
}

TEST(ShardedTracerPlan, CoversRangeContiguouslyAndBalancesWorkers) {
  ShardedTracerConfig config;
  config.base.first_prefix = 1000;
  config.base.prefix_bits = 10;   // 1024 prefixes
  config.shard_prefix_bits = 7;   // 8 shards of 128
  config.num_workers = 3;
  config.base.probes_per_second = 80'000.0;

  const auto shards = ShardedTracer::plan(config);
  ASSERT_EQ(shards.size(), 8u);
  std::uint32_t next = 1000;
  std::vector<int> per_worker(3, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(shards[i].index, i);
    EXPECT_EQ(shards[i].first_prefix, next);
    EXPECT_EQ(shards[i].num_prefixes, 128u);
    EXPECT_DOUBLE_EQ(shards[i].probes_per_second, 10'000.0);
    // Worker assignment is contiguous and non-decreasing.
    if (i > 0) {
      EXPECT_GE(shards[i].worker, shards[i - 1].worker);
    }
    ASSERT_GE(shards[i].worker, 0);
    ASSERT_LT(shards[i].worker, 3);
    ++per_worker[static_cast<std::size_t>(shards[i].worker)];
    next += 128;
  }
  // 8 shards over 3 workers: every worker gets 2 or 3.
  for (int count : per_worker) {
    EXPECT_GE(count, 2);
    EXPECT_LE(count, 3);
  }
}

TEST(ShardedTracerPlan, WorkerCountClampedToShardCount) {
  ShardedTracerConfig config;
  config.base.prefix_bits = 6;
  config.shard_prefix_bits = 5;  // 2 shards
  config.num_workers = 16;
  const auto shards = ShardedTracer::plan(config);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].worker, 0);
  EXPECT_EQ(shards[1].worker, 1);
}

TEST(ShardedTracer, ResultInvariantUnderWorkerCount) {
  const sim::Topology topology(test_params());
  const ScanResult one = run_sharded(topology, 1);
  const ScanResult two = run_sharded(topology, 2);
  const ScanResult four = run_sharded(topology, 4);

  // The scan actually did something before we call the comparison a pass.
  EXPECT_GT(one.probes_sent, 0u);
  EXPECT_GT(one.interfaces.size(), 10u);
  EXPECT_GT(one.destinations_reached, 0u);

  expect_identical(one, two);
  expect_identical(one, four);
}

TEST(ShardedTracer, MatchesUnshardedScanTopologyClosely) {
  // Sharding changes probe order and splits the Doubletree stop sets, so the
  // scans are not identical — but they probe the same targets and must
  // discover essentially the same world, with the sharded scan sending at
  // least as many probes (per-shard stop sets can only lose stops).
  const sim::SimParams params = test_params();
  const sim::Topology topology(params);

  const ShardedTracerConfig config = test_config(params, 4);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.base.probes_per_second);
  Tracer unsharded(config.base, runtime);
  const ScanResult reference = unsharded.run();

  const ScanResult sharded = run_sharded(topology, 4);
  EXPECT_GE(sharded.probes_sent, reference.probes_sent);
  EXPECT_GE(sharded.interfaces.size(), reference.interfaces.size() * 9 / 10);
  EXPECT_EQ(sharded.destination_distance.size(),
            reference.destination_distance.size());
  // Destination distances depend only on the probed target addresses, which
  // are decomposition-independent (global target_seed keyed by absolute
  // prefix) — so reached destinations must agree exactly.
  EXPECT_EQ(sharded.destination_distance, reference.destination_distance);
}

TEST(ShardedThreadedRuntime, RealTimeShardedScanDiscoversTheTopology) {
  sim::SimParams params;
  params.prefix_bits = 6;  // 64 prefixes: a sub-second real-time scan
  params.seed = 12;
  params.rtt_base = 200'000;
  params.rtt_per_hop = 50'000;
  params.rtt_jitter = 100'000;
  const sim::Topology topology(params);

  ShardedTracerConfig config;
  config.base.first_prefix = params.first_prefix;
  config.base.prefix_bits = params.prefix_bits;
  config.base.vantage = net::Ipv4Address(params.vantage_address);
  config.base.preprobe = PreprobeMode::kNone;
  config.base.min_round_duration = 10 * util::kMillisecond;
  config.base.probes_per_second = 40'000.0;
  config.num_workers = 4;
  config.shard_prefix_bits = 4;  // 4 shards of 16 /24s

  const auto shards = ShardedTracer::plan(config);
  sim::RealTimeSimWire wire(topology, params.first_prefix,
                            config.base.num_prefixes(),
                            static_cast<std::uint32_t>(shards.size()));
  ScanResult sharded;
  {
    ShardedThreadedRuntime runtime(wire, config);
    ShardedTracer tracer(config, runtime);
    sharded = tracer.run();
  }

  // Virtual-time sharded reference: same decomposition, same world.
  sim::SimShardRuntimeProvider provider(topology, config);
  auto reference_config = config;
  reference_config.base.min_round_duration = util::kSecond;
  ShardedTracer reference_tracer(reference_config, provider);
  const ScanResult reference = reference_tracer.run();

  EXPECT_GT(sharded.probes_sent, 0u);
  EXPECT_GT(sharded.interfaces.size(),
            reference.interfaces.size() * 8 / 10);
  EXPECT_LT(sharded.interfaces.size(),
            reference.interfaces.size() * 12 / 10 + 10);
  EXPECT_GT(sharded.destinations_reached,
            reference.destinations_reached * 7 / 10);
}

TEST(ThreadedRuntime, DrainHotPathDoesNotAllocate) {
  sim::SimParams params;
  params.prefix_bits = 4;
  params.rtt_base = 100'000;
  params.rtt_per_hop = 10'000;
  params.rtt_jitter = 0;
  const sim::Topology topology(params);
  sim::RealTimeSimWire wire(topology, params.first_prefix,
                            std::uint32_t{1} << params.prefix_bits);
  ThreadedRuntime runtime(wire, 50'000.0);

  // Send a batch of probes and give the receiver time to publish every
  // response into the ring.
  const ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  constexpr int kProbes = 16;
  for (int i = 0; i < kProbes; ++i) {
    const net::Ipv4Address dest(
        ((params.first_prefix + static_cast<std::uint32_t>(i)) << 8) | 1);
    const std::size_t size = codec.encode_udp(dest, 1, false, 0, buf);
    runtime.send(std::span<const std::byte>(buf.data(), size));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Steady state reached: drain the ring through a sink that only counts.
  // The sink is constructed (and any std::function storage allocated) before
  // the measurement window opens.
  std::uint64_t delivered = 0;
  const ScanRuntime::Sink sink = [&delivered](std::span<const std::byte>,
                                              util::Nanos) { ++delivered; };

  const std::uint64_t before = g_thread_allocations;
  runtime.drain(sink);
  const std::uint64_t after = g_thread_allocations;

  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(after - before, 0u)
      << "drain allocated on the hot path while delivering " << delivered
      << " packets";
}

}  // namespace
}  // namespace flashroute::core
