// Remaining coverage: logging levels, hitlist generation determinism,
// exclusion-range merging internals, Scamper's forward-horizon extension,
// writers on empty results, and the world's calibration invariants.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "baselines/scamper.h"
#include "core/exclusion.h"
#include "core/targets.h"
#include "io/scan_archive.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/logging.h"
#include "util/stats.h"

namespace flashroute {
namespace {

TEST(Logging, ThresholdGatesMessages) {
  const auto previous = util::log_threshold();
  util::set_log_threshold(util::LogLevel::kError);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kError);
  // Suppressed levels must not crash or allocate surprisingly; there is no
  // observable output channel to assert on, so this is a smoke check.
  FR_LOG_DEBUG("invisible %d", 1);
  FR_LOG_INFO("invisible %s", "too");
  util::set_log_threshold(previous);
}

TEST(Hitlist, GenerationIsDeterministic) {
  sim::SimParams params;
  params.prefix_bits = 9;
  params.seed = 7;
  const sim::Topology a(params);
  const sim::Topology b(params);
  EXPECT_EQ(a.generate_hitlist(), b.generate_hitlist());
}

TEST(Hitlist, InteriorEntriesAreResponsiveHosts) {
  sim::SimParams params;
  params.prefix_bits = 10;
  params.seed = 3;
  params.hitlist_is_appliance_prob = 0.0;  // force interior candidates
  const sim::Topology topology(params);
  const auto hitlist = topology.generate_hitlist();
  int interior = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    if (hitlist[i] == 0) continue;
    const net::Ipv4Address entry(hitlist[i]);
    EXPECT_TRUE(topology.host_exists(entry));
    if (hitlist[i] != topology.appliance_address(params.first_prefix + i)) {
      ++interior;
      // The census found it because it answers probes.
      EXPECT_TRUE(topology.host_responds(entry, net::kProtoUdp));
    }
  }
  EXPECT_GT(interior, 0);
}

TEST(Exclusion, AdjacentRangesMergeSeamlessly) {
  core::ExclusionList list;
  ASSERT_TRUE(list.add_entry("1.0.0.0/25"));    // .0   - .127
  ASSERT_TRUE(list.add_entry("1.0.0.128/25"));  // .128 - .255
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.0.127")));
  EXPECT_TRUE(list.contains(*net::Ipv4Address::parse("1.0.0.128")));
  EXPECT_FALSE(list.contains(*net::Ipv4Address::parse("1.0.1.0")));
  EXPECT_TRUE(list.excludes_prefix24(0x010000));
}

TEST(Exclusion, TopOfAddressSpace) {
  core::ExclusionList list;
  ASSERT_TRUE(list.add_entry("255.255.255.255"));
  EXPECT_TRUE(list.contains(net::Ipv4Address(0xFFFFFFFF)));
  EXPECT_FALSE(list.contains(net::Ipv4Address(0xFFFFFFFE)));
  ASSERT_TRUE(list.add_entry("255.255.255.0/24"));
  EXPECT_TRUE(list.contains(net::Ipv4Address(0xFFFFFF00)));
}

TEST(Targets, RandomTargetAvoidsNetworkAndBroadcastOctets) {
  for (std::uint32_t prefix = 0x010000; prefix < 0x010400; ++prefix) {
    const std::uint32_t target = core::random_target(42, prefix);
    EXPECT_EQ(target >> 8, prefix);
    const std::uint8_t octet = target & 0xFF;
    EXPECT_GE(octet, 1);
    EXPECT_LE(octet, 254);
  }
}

TEST(Targets, DifferentSeedsPickDifferentRepresentatives) {
  int same = 0;
  for (std::uint32_t prefix = 0x010000; prefix < 0x010400; ++prefix) {
    if (core::random_target(1, prefix) == core::random_target(2, prefix)) {
      ++same;
    }
  }
  EXPECT_LT(same, 40);  // ~1/254 expected collisions
}

TEST(Scamper, ForwardHorizonExtendsOnResponses) {
  // A world with a perfectly responsive core: scamper's forward probing
  // from first_ttl must walk all the way to each responsive destination,
  // not stop at first_ttl + gap.
  sim::SimParams params;
  params.prefix_bits = 6;
  params.seed = 2;
  params.interface_silent_prob = 0.0;
  for (auto& p : params.filtered_tail_cum_pct) p = 100;
  params.icmp_rate_limit_pps = 1e9;
  params.icmp_rate_limit_burst = 1e9;
  params.route_dynamics_prob = 0.0;
  const sim::Topology topology(params);

  baselines::ScamperConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(10'000.0, params.prefix_bits);
  config.first_ttl = 4;  // far below typical distances
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Scamper scamper(config, runtime);
  const auto result = scamper.run();

  int beyond_gap = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    const auto distance = result.destination_distance[i];
    if (distance == 0) continue;
    if (distance > config.first_ttl + config.gap_limit) ++beyond_gap;
  }
  EXPECT_GT(beyond_gap, 0)
      << "forward probing never extended past the initial horizon";
}

TEST(Writers, EmptyResultsProduceHeadersOnly) {
  core::ScanResult empty;
  std::ostringstream text, csv;
  const io::TargetResolver resolver = [](std::uint32_t) { return 0u; };
  io::write_routes_text(empty, resolver, 0, text);
  EXPECT_TRUE(text.str().empty());
  io::write_routes_csv(empty, resolver, 0, csv);
  EXPECT_EQ(csv.str(), "prefix,target,ttl,hop,kind\n");

  std::stringstream archive;
  io::write_archive(empty, {0, 1, 0}, archive);
  const auto loaded = io::read_archive(archive);
  ASSERT_TRUE(loaded);
  EXPECT_TRUE(loaded->result.interfaces.empty());
  EXPECT_TRUE(loaded->result.routes.empty());
}

TEST(Calibration, WorldMatchesPaperObservations) {
  // The DESIGN.md §5 calibration targets, asserted so parameter drift is
  // caught by CI rather than by a puzzled bench reader.
  sim::SimParams params;
  params.prefix_bits = 14;
  const sim::Topology topology(params);

  std::uint64_t responsive = 0;
  util::Histogram distances;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    const net::Ipv4Address target(core::random_target(42, prefix));
    if (topology.host_exists(target) &&
        topology.host_responds(target, net::kProtoUdp)) {
      ++responsive;
    }
    if (const auto ttl = topology.trigger_ttl(target, 1, 0)) {
      distances.add(*ttl);
    }
  }
  const double responsive_rate =
      static_cast<double>(responsive) / params.num_prefixes();
  // Paper: ~4.0% of random targets answer the preprobe.
  EXPECT_GT(responsive_rate, 0.025);
  EXPECT_LT(responsive_rate, 0.065);
  // Distances: median in the mid-teens, almost nothing beyond 32.
  EXPECT_GE(distances.quantile(0.5), 13);
  EXPECT_LE(distances.quantile(0.5), 20);
  EXPECT_LE(distances.quantile(0.999), 32);
}

}  // namespace
}  // namespace flashroute
