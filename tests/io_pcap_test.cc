// Tests for the pcap capture layer (io/pcap.h): format round-trips,
// endianness/precision handling, and the CapturingRuntime decorator
// recording a real scan's traffic.

#include "io/pcap.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/probe_codec.h"
#include "core/tracer.h"
#include "net/icmp.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::io {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  for (const unsigned v : values) out.push_back(std::byte(v));
  return out;
}

TEST(Pcap, RoundTripsPackets) {
  std::stringstream stream;
  write_pcap_header(stream);
  const auto a = bytes_of({0x45, 0x00, 0x01});
  const auto b = bytes_of({0xDE, 0xAD, 0xBE, 0xEF, 0x99});
  write_pcap_packet(stream, 1'500'000'123, a);
  write_pcap_packet(stream, 2'000'000'456, b);

  const auto packets = read_pcap(stream);
  ASSERT_TRUE(packets);
  ASSERT_EQ(packets->size(), 2u);
  EXPECT_EQ((*packets)[0].time, 1'500'000'123);
  EXPECT_EQ((*packets)[0].bytes, a);
  EXPECT_EQ((*packets)[1].time, 2'000'000'456);
  EXPECT_EQ((*packets)[1].bytes, b);
}

TEST(Pcap, EmptyCaptureIsValid) {
  std::stringstream stream;
  write_pcap_header(stream);
  const auto packets = read_pcap(stream);
  ASSERT_TRUE(packets);
  EXPECT_TRUE(packets->empty());
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream stream("not a pcap file at all............");
  EXPECT_FALSE(read_pcap(stream));
}

TEST(Pcap, RejectsTruncatedRecord) {
  std::stringstream stream;
  write_pcap_header(stream);
  write_pcap_packet(stream, 0, bytes_of({1, 2, 3, 4}));
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 2));
  EXPECT_FALSE(read_pcap(truncated));
}

TEST(Pcap, ReadsMicrosecondCaptures) {
  // Hand-build a little-endian microsecond capture with one packet.
  std::stringstream stream;
  const auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) stream.put(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  put_u32(0xA1B2C3D4);  // microsecond magic
  put_u32(0x00040002);  // version 2.4 (little-endian u16 pair)
  put_u32(0);
  put_u32(0);
  put_u32(65535);
  put_u32(101);
  put_u32(3);      // seconds
  put_u32(500);    // microseconds
  put_u32(2);      // captured
  put_u32(2);      // original
  stream.put(0x45);
  stream.put(0x00);

  const auto packets = read_pcap(stream);
  ASSERT_TRUE(packets);
  ASSERT_EQ(packets->size(), 1u);
  EXPECT_EQ((*packets)[0].time, 3 * util::kSecond + 500'000);
  EXPECT_EQ((*packets)[0].bytes.size(), 2u);
}

TEST(CapturingRuntime, RecordsProbesAndResponses) {
  sim::SimParams params;
  params.prefix_bits = 6;
  const sim::Topology topology(params);
  sim::SimNetwork network(topology);
  sim::SimScanRuntime inner(
      network, sim::scaled_probe_rate(100'000.0, params.prefix_bits));

  std::stringstream capture;
  CapturingRuntime runtime(inner, capture);

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = sim::scaled_probe_rate(100'000.0, 6);
  config.preprobe = core::PreprobeMode::kNone;
  core::Tracer tracer(config, runtime);
  const auto result = tracer.run();

  const auto packets = read_pcap(capture);
  ASSERT_TRUE(packets);
  // Every probe and every processed response is in the capture.
  EXPECT_EQ(packets->size(), result.probes_sent + result.responses);

  // The capture decomposes into valid probes and valid responses.
  std::size_t probes = 0, responses = 0;
  for (const auto& packet : *packets) {
    if (net::parse_response(packet.bytes)) {
      ++responses;
    } else {
      ++probes;
    }
  }
  EXPECT_EQ(probes, result.probes_sent);
  EXPECT_EQ(responses, result.responses);

  // Probe timestamps are non-decreasing (virtual pacing).  Responses carry
  // their logical *arrival* time, which may predate later-written probes
  // (they are recorded when the engine drains them), so only the probe
  // stream is checked.
  util::Nanos last = 0;
  for (const auto& packet : *packets) {
    if (net::parse_response(packet.bytes)) continue;
    EXPECT_GE(packet.time, last);
    last = packet.time;
  }
}

}  // namespace
}  // namespace flashroute::io
