// Tests for the real-time decoupled runtime (core/threaded_runtime.h): the
// paper's sender/receiver thread architecture running an actual FlashRoute
// scan against the simulator over an in-memory wire, in real time.

#include "core/threaded_runtime.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/sim_wire.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

using sim::RealTimeSimWire;

TEST(ThreadedRuntime, RealTimeScanMatchesVirtualTimeScan) {
  sim::SimParams params;
  params.prefix_bits = 6;  // 64 prefixes: a sub-second real-time scan
  params.seed = 12;
  // Shrink RTTs so responses land within the shortened rounds.
  params.rtt_base = 200'000;     // 0.2 ms
  params.rtt_per_hop = 50'000;   // 0.05 ms
  params.rtt_jitter = 100'000;
  const sim::Topology topology(params);

  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.preprobe = PreprobeMode::kNone;
  config.min_round_duration = 10 * util::kMillisecond;
  config.probes_per_second = 20'000.0;

  // Real time, decoupled threads.
  RealTimeSimWire wire(topology, params.first_prefix,
                       std::uint32_t{1} << params.prefix_bits);
  ScanResult threaded;
  {
    ThreadedRuntime runtime(wire, config.probes_per_second);
    Tracer tracer(config, runtime);
    threaded = tracer.run();
  }

  // Virtual time, single-threaded reference.
  sim::SimNetwork virtual_network(topology);
  sim::SimScanRuntime virtual_runtime(virtual_network,
                                      config.probes_per_second);
  auto reference_config = config;
  reference_config.min_round_duration = util::kSecond;
  Tracer reference_tracer(reference_config, virtual_runtime);
  const ScanResult reference = reference_tracer.run();

  // Real-time scheduling is nondeterministic, but the discovered topology
  // must be essentially the same world.
  EXPECT_GT(threaded.probes_sent, 0u);
  EXPECT_GT(threaded.interfaces.size(), reference.interfaces.size() * 8 / 10);
  EXPECT_LT(threaded.interfaces.size(),
            reference.interfaces.size() * 12 / 10 + 10);
  EXPECT_GT(threaded.destinations_reached,
            reference.destinations_reached * 7 / 10);
  // The engine adapted: backward probing stopped at convergence points even
  // with the receiver racing the sender (the per-DCB locks at work).
  EXPECT_GT(threaded.convergence_stops, 0u);
  // ...which keeps the probe count well below exhaustive probing.
  EXPECT_LT(threaded.probes_sent,
            std::uint64_t{config.num_prefixes()} * 32u);
}

TEST(ThreadedRuntime, DrainDeliversFromReceiverThread) {
  sim::SimParams params;
  params.prefix_bits = 4;
  params.rtt_base = 100'000;
  params.rtt_per_hop = 10'000;
  params.rtt_jitter = 0;
  const sim::Topology topology(params);
  RealTimeSimWire wire(topology, params.first_prefix,
                       std::uint32_t{1} << params.prefix_bits);
  ThreadedRuntime runtime(wire, 10'000.0);

  const ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const net::Ipv4Address dest((params.first_prefix << 8) | 1);
  const std::size_t size = codec.encode_udp(dest, 1, false, 0, buf);
  runtime.send(std::span<const std::byte>(buf.data(), size));

  int received = 0;
  const ScanRuntime::Sink sink = [&](std::span<const std::byte> packet,
                                     util::Nanos) {
    if (net::parse_response(packet)) ++received;
  };
  runtime.idle_until(runtime.now() + 200 * util::kMillisecond, sink);
  EXPECT_EQ(received, 1);
}

TEST(ThreadedRuntime, ThrottlePacesSends) {
  sim::SimParams params;
  params.prefix_bits = 4;
  const sim::Topology topology(params);
  RealTimeSimWire wire(topology, params.first_prefix,
                       std::uint32_t{1} << params.prefix_bits);
  ThreadedRuntime runtime(wire, /*pps=*/2'000.0);

  const ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buf;
  const net::Ipv4Address dest((params.first_prefix << 8) | 1);
  const std::size_t size = codec.encode_udp(dest, 1, false, 0, buf);

  const util::Nanos start = runtime.now();
  for (int i = 0; i < 400; ++i) {
    runtime.send(std::span<const std::byte>(buf.data(), size));
  }
  const util::Nanos elapsed = runtime.now() - start;
  // 400 probes at 2 Kpps ≈ 200 ms (minus the initial burst allowance).
  EXPECT_GT(elapsed, 120 * util::kMillisecond);
  EXPECT_EQ(runtime.packets_sent(), 400u);
}

}  // namespace
}  // namespace flashroute::core
