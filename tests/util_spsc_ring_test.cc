// Tests for the lock-free SPSC ring (util/spsc_ring.h) — the
// receiver→engine packet handoff of the real-time runtimes.  The stress
// tests run a real producer thread against a real consumer thread and assert
// lossless FIFO order, and are meant to run under -fsanitize=thread too.

#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace flashroute::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(4096).capacity(), 4096u);
}

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, FullRingRejectsClaims) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.try_claim(), nullptr);
  EXPECT_FALSE(ring.push(99));

  // Consuming one element frees exactly one slot.
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 0);
  ring.pop();
  EXPECT_TRUE(ring.push(4));
  EXPECT_FALSE(ring.push(5));
}

TEST(SpscRing, FifoOrderSingleThreaded) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.push(i));
  for (int i = 0; i < 8; ++i) {
    int* front = ring.front();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(*front, i);
    ring.pop();
  }
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  // A tiny ring cycled far past its capacity (and, thanks to the small
  // modulus, through every head/tail phase alignment) stays FIFO.
  SpscRing<std::uint64_t> ring(2);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.push(next_in)) ++next_in;
    for (std::uint64_t* front = ring.front(); front != nullptr;
         front = ring.front()) {
      EXPECT_EQ(*front, next_out);
      ++next_out;
      ring.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GE(next_out, 2000u);
}

TEST(SpscRing, ClaimPublishZeroCopyPath) {
  // The runtimes' actual usage pattern: write into the claimed slot in
  // place, publish, and read through front() without copies.
  struct Slot {
    std::uint32_t size = 0;
    std::array<std::byte, 16> data;
  };
  SpscRing<Slot> ring(4);
  Slot* slot = ring.try_claim();
  ASSERT_NE(slot, nullptr);
  slot->size = 3;
  slot->data[0] = std::byte{0xAB};
  // Not visible until published.
  EXPECT_EQ(ring.front(), nullptr);
  ring.publish();
  Slot* front = ring.front();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front, slot);  // same preallocated storage, no copy
  EXPECT_EQ(front->size, 3u);
  EXPECT_EQ(front->data[0], std::byte{0xAB});
  ring.pop();
}

TEST(SpscRing, ProducerConsumerStressIsLosslessFifo) {
  // Producer retries until each push succeeds, so every value must come out
  // exactly once, in order — any reordering, loss, duplication, or torn read
  // fails the sequence check (and TSan flags the race that caused it).
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t* front = ring.front();
    if (front == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*front, expected);
    ++expected;
    ring.pop();
  }
  producer.join();
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, StressWithClaimPublishAndBackpressure) {
  // Same losslessness property through the zero-copy claim/publish API, with
  // a ring so small that both sides constantly hit the full/empty edges.
  constexpr std::uint64_t kCount = 100'000;
  SpscRing<std::uint64_t> ring(2);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      std::uint64_t* slot;
      while ((slot = ring.try_claim()) == nullptr) std::this_thread::yield();
      *slot = i;
      ring.publish();
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t* front = ring.front();
    if (front == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*front, expected);
    ++expected;
    ring.pop();
  }
  producer.join();
  EXPECT_EQ(ring.front(), nullptr);
}

}  // namespace
}  // namespace flashroute::util
