// Tests for scan persistence (io/scan_archive.h): varint coding, the binary
// archive round-trip (including on real scan results), and the text/CSV
// writers.

#include "io/scan_archive.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/tracer.h"
#include "io/varint.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::io {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  for (const std::uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
        0xFFFFFFFFull, 0x100000000ull, ~0ull}) {
    std::stringstream stream;
    write_varint(stream, value);
    const auto read = read_varint(stream);
    ASSERT_TRUE(read) << value;
    EXPECT_EQ(*read, value);
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::stringstream stream;
  write_varint(stream, 100);
  EXPECT_EQ(stream.str().size(), 1u);
  write_varint(stream, 1000);
  EXPECT_EQ(stream.str().size(), 3u);  // 1 + 2
}

TEST(Varint, ReadFailsOnTruncation) {
  std::stringstream stream;
  stream.put(static_cast<char>(0x80));  // continuation bit, then EOF
  EXPECT_FALSE(read_varint(stream));
}

TEST(Varint, ReadFailsOnOverlongInput) {
  std::stringstream stream;
  for (int i = 0; i < 11; ++i) stream.put(static_cast<char>(0xFF));
  EXPECT_FALSE(read_varint(stream));
}

core::ScanResult sample_result() {
  core::ScanResult result;
  result.interfaces = {0xC8000001, 0xC8000005, 0x01020301};
  result.routes.resize(4);
  result.routes[0] = {{0xC8000001, 1, 0},
                      {0xC8000005, 2, core::RouteHop::kExtraScan}};
  result.routes[2] = {{0x01020301, 9, core::RouteHop::kFromDestination}};
  result.destination_distance = {0, 0, 9, 0};
  result.trigger_ttl = {0, 0, 9, 0};
  result.measured_distance = {0, 0, 9, 0};
  result.predicted_distance = {9, 0, 0, 9};
  result.probes_sent = 12345;
  result.preprobe_probes = 4;
  result.responses = 100;
  result.mismatches = 2;
  result.destinations_reached = 1;
  result.distances_measured = 1;
  result.distances_predicted = 2;
  result.convergence_stops = 3;
  result.scan_time = 98'765'432'100;
  result.preprobe_time = 1'234'567;
  return result;
}

TEST(Archive, RoundTripsSyntheticResult) {
  const auto original = sample_result();
  const ArchiveHeader header{0x010200, 2, 77};
  std::stringstream stream;
  write_archive(original, header, stream);

  const auto loaded = read_archive(stream);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->header.first_prefix, header.first_prefix);
  EXPECT_EQ(loaded->header.prefix_bits, header.prefix_bits);
  EXPECT_EQ(loaded->header.seed, header.seed);

  const auto& result = loaded->result;
  EXPECT_EQ(result.interfaces, original.interfaces);
  EXPECT_EQ(result.destination_distance, original.destination_distance);
  EXPECT_EQ(result.trigger_ttl, original.trigger_ttl);
  EXPECT_EQ(result.measured_distance, original.measured_distance);
  EXPECT_EQ(result.predicted_distance, original.predicted_distance);
  EXPECT_EQ(result.probes_sent, original.probes_sent);
  EXPECT_EQ(result.scan_time, original.scan_time);
  EXPECT_EQ(result.preprobe_time, original.preprobe_time);
  ASSERT_EQ(result.routes.size(), original.routes.size());
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    ASSERT_EQ(result.routes[i].size(), original.routes[i].size());
    for (std::size_t h = 0; h < result.routes[i].size(); ++h) {
      EXPECT_EQ(result.routes[i][h].ip, original.routes[i][h].ip);
      EXPECT_EQ(result.routes[i][h].ttl, original.routes[i][h].ttl);
      EXPECT_EQ(result.routes[i][h].flags, original.routes[i][h].flags);
    }
  }
}

TEST(Archive, RoundTripsRealScan) {
  sim::SimParams params;
  params.prefix_bits = 8;
  const sim::Topology topology(params);
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = core::PreprobeMode::kRandom;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  const auto original = tracer.run();

  std::stringstream stream;
  write_archive(original, {config.first_prefix, config.prefix_bits, 1},
                stream);
  const auto loaded = read_archive(stream);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->result.interfaces, original.interfaces);
  EXPECT_EQ(loaded->result.probes_sent, original.probes_sent);
  EXPECT_EQ(loaded->result.destination_distance,
            original.destination_distance);
  std::size_t original_hops = 0, loaded_hops = 0;
  for (const auto& route : original.routes) original_hops += route.size();
  for (const auto& route : loaded->result.routes) loaded_hops += route.size();
  EXPECT_EQ(loaded_hops, original_hops);
}

TEST(Archive, RejectsBadMagicAndTruncation) {
  std::stringstream bad("NOPE....");
  EXPECT_FALSE(read_archive(bad));

  const auto original = sample_result();
  std::stringstream stream;
  write_archive(original, {0, 1, 0}, stream);
  const std::string full = stream.str();
  for (const std::size_t cut : {4ul, 8ul, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(read_archive(truncated)) << "cut at " << cut;
  }
}

TEST(Archive, RejectsWrongVersion) {
  std::stringstream stream;
  stream.write("FRSC", 4);
  write_varint(stream, 99);  // unsupported version
  EXPECT_FALSE(read_archive(stream));
}

TEST(TextWriter, ListsRoutesWithAnnotations) {
  const auto result = sample_result();
  std::ostringstream out;
  write_routes_text(
      result, [](std::uint32_t offset) { return (0x010200u + offset) << 8 | 7; },
      0x010200, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("target 1.2.0.7 (prefix 1.2.0.0/24)"),
            std::string::npos);
  EXPECT_NE(text.find("200.0.0.1"), std::string::npos);
  EXPECT_NE(text.find("[extra]"), std::string::npos);
  EXPECT_NE(text.find("[dest]"), std::string::npos);
  EXPECT_NE(text.find("distance 9"), std::string::npos);
  // Empty routes produce no block.
  EXPECT_EQ(text.find("1.2.1.0/24"), std::string::npos);
}

TEST(CsvWriter, OneRowPerHop) {
  const auto result = sample_result();
  std::ostringstream out;
  write_routes_csv(
      result, [](std::uint32_t offset) { return (0x010200u + offset) << 8 | 7; },
      0x010200, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("prefix,target,ttl,hop,kind"), std::string::npos);
  EXPECT_NE(text.find("1.2.0.0,1.2.0.7,1,200.0.0.1,hop"), std::string::npos);
  EXPECT_NE(text.find("1.2.0.0,1.2.0.7,2,200.0.0.5,extra"),
            std::string::npos);
  EXPECT_NE(text.find("1.2.2.0,1.2.2.7,9,1.2.3.1,dest"), std::string::npos);
  // 1 header + 3 hop rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
}  // namespace flashroute::io
