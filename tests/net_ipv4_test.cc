// Tests for IPv4 address handling and the /24-prefix helpers (net/ipv4.h),
// including the special-range classification that drives the paper's
// exclusion of private/multicast/reserved destinations (§3.4).

#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace flashroute::net {
namespace {

TEST(Ipv4Address, FromOctetsAndAccessors) {
  const auto a = Ipv4Address::from_octets(192, 168, 1, 200);
  EXPECT_EQ(a.value(), 0xC0A801C8u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 200);
}

TEST(Ipv4Address, ParseValid) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Address::parse("1.2.3.4")->value(), 0x01020304u);
  EXPECT_EQ(Ipv4Address::parse("10.0.0.1")->value(), 0x0A000001u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.-4"));
  EXPECT_FALSE(Ipv4Address::parse("1..3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4x"));
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4"));  // overlong octet
}

TEST(Ipv4Address, ToStringRoundTrip) {
  for (const char* text : {"0.0.0.0", "1.2.3.4", "203.0.113.10",
                           "255.255.255.255", "10.200.30.40"}) {
    const auto parsed = Ipv4Address::parse(text);
    ASSERT_TRUE(parsed) << text;
    EXPECT_EQ(parsed->to_string(), text);
  }
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(1), Ipv4Address(2));
  EXPECT_EQ(Ipv4Address(7), Ipv4Address(7));
  EXPECT_GT(Ipv4Address(0xFFFFFFFF), Ipv4Address(0));
}

TEST(Ipv4Address, Hashable) {
  std::hash<Ipv4Address> hasher;
  EXPECT_EQ(hasher(Ipv4Address(42)), hasher(Ipv4Address(42)));
}

TEST(Prefix24, IndexAndReconstruction) {
  const auto a = Ipv4Address::from_octets(100, 100, 123, 45);
  EXPECT_EQ(prefix24_index(a), 0x64647Bu);
  EXPECT_EQ(address_in_prefix24(prefix24_index(a), 45), a);
  EXPECT_EQ(address_in_prefix24(0, 1).value(), 1u);
}

TEST(Classification, Private) {
  EXPECT_TRUE(is_private(*Ipv4Address::parse("10.0.0.1")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("10.255.255.255")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("172.16.0.1")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("172.31.255.255")));
  EXPECT_TRUE(is_private(*Ipv4Address::parse("192.168.0.1")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("172.32.0.1")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("172.15.255.255")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("11.0.0.1")));
  EXPECT_FALSE(is_private(*Ipv4Address::parse("192.169.0.1")));
}

TEST(Classification, LoopbackMulticastReserved) {
  EXPECT_TRUE(is_loopback(*Ipv4Address::parse("127.0.0.1")));
  EXPECT_FALSE(is_loopback(*Ipv4Address::parse("126.255.255.255")));
  EXPECT_TRUE(is_multicast(*Ipv4Address::parse("224.0.0.1")));
  EXPECT_TRUE(is_multicast(*Ipv4Address::parse("239.255.255.255")));
  EXPECT_FALSE(is_multicast(*Ipv4Address::parse("223.255.255.255")));
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("240.0.0.1")));
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("255.255.255.255")));
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("0.1.2.3")));
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("169.254.1.1")));
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("100.64.0.1")));    // CGN
  EXPECT_TRUE(is_reserved(*Ipv4Address::parse("100.127.255.1")));
  EXPECT_FALSE(is_reserved(*Ipv4Address::parse("100.128.0.1")));
  EXPECT_FALSE(is_reserved(*Ipv4Address::parse("100.63.255.1")));
}

TEST(Classification, ProbeExclusionMatchesPaper) {
  // §3.4: "all private, multicast, and reserved destinations ... are
  // removed from the doubly linked list before probing commences."
  EXPECT_TRUE(is_probe_excluded(*Ipv4Address::parse("10.1.2.3")));
  EXPECT_TRUE(is_probe_excluded(*Ipv4Address::parse("224.1.2.3")));
  EXPECT_TRUE(is_probe_excluded(*Ipv4Address::parse("127.0.0.1")));
  EXPECT_TRUE(is_probe_excluded(*Ipv4Address::parse("240.0.0.1")));
  EXPECT_FALSE(is_probe_excluded(*Ipv4Address::parse("8.8.8.8")));
  EXPECT_FALSE(is_probe_excluded(*Ipv4Address::parse("1.0.0.1")));
  EXPECT_FALSE(is_probe_excluded(*Ipv4Address::parse("203.0.113.99")));
}

}  // namespace
}  // namespace flashroute::net
