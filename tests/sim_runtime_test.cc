// Tests for the virtual-time scan runtime (sim/runtime.h): pacing, response
// delivery ordering, the round-barrier idle, and the NullRuntime used by the
// Table 5 speed bench.

#include "sim/runtime.h"

#include <gtest/gtest.h>

#include <array>

#include "core/probe_codec.h"
#include "core/runtime.h"
#include "net/icmp.h"
#include "sim/network.h"

namespace flashroute::sim {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest()
      : params_([] {
          SimParams p;
          p.prefix_bits = 8;
          p.seed = 4;
          return p;
        }()),
        topology_(params_),
        network_(topology_),
        codec_(net::Ipv4Address(params_.vantage_address)) {}

  std::vector<std::byte> make_probe(std::uint32_t prefix_offset,
                                    std::uint8_t ttl, util::Nanos when) {
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    const net::Ipv4Address dest(
        ((params_.first_prefix + prefix_offset) << 8) | 1);
    const std::size_t size = codec_.encode_udp(dest, ttl, false, when, buf);
    return {buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(size)};
  }

  SimParams params_;
  Topology topology_;
  SimNetwork network_;
  core::ProbeCodec codec_;
};

TEST_F(RuntimeTest, SendAdvancesClockByProbeInterval) {
  SimScanRuntime runtime(network_, /*pps=*/1000.0);
  EXPECT_EQ(runtime.now(), 0);
  runtime.send(make_probe(0, 1, 0));
  EXPECT_EQ(runtime.now(), util::kMillisecond);  // 1/1000 s per probe
  runtime.send(make_probe(0, 2, runtime.now()));
  EXPECT_EQ(runtime.now(), 2 * util::kMillisecond);
  EXPECT_EQ(runtime.packets_sent(), 2u);
}

TEST_F(RuntimeTest, ResponsesArriveOnlyAfterTheirRtt) {
  SimScanRuntime runtime(network_, 1000.0);
  runtime.send(make_probe(0, 1, 0));
  int delivered = 0;
  const core::ScanRuntime::Sink sink =
      [&](std::span<const std::byte>, util::Nanos) { ++delivered; };
  runtime.drain(sink);  // RTT hasn't elapsed yet at 1 ms of virtual time
  EXPECT_EQ(delivered, 0);
  runtime.idle_until(runtime.now() + util::kSecond, sink);
  EXPECT_EQ(delivered, 1);
}

TEST_F(RuntimeTest, DeliveryCarriesArrivalTime) {
  SimScanRuntime runtime(network_, 1000.0);
  runtime.send(make_probe(0, 1, 0));
  util::Nanos arrival = -1;
  runtime.idle_until(util::kSecond, [&](std::span<const std::byte>,
                                        util::Nanos t) { arrival = t; });
  ASSERT_GE(arrival, params_.rtt_base);
  EXPECT_LE(arrival, util::kSecond);
}

TEST_F(RuntimeTest, ResponsesDeliveredInArrivalOrder) {
  SimScanRuntime runtime(network_, 100'000.0);
  // A far probe first, then a near probe: the near response must still be
  // delivered first (its RTT is shorter).
  runtime.send(make_probe(0, 12, 0));
  runtime.send(make_probe(0, 1, runtime.now()));
  std::vector<util::Nanos> arrivals;
  runtime.idle_until(util::kSecond, [&](std::span<const std::byte>,
                                        util::Nanos t) {
    arrivals.push_back(t);
  });
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_LE(arrivals[0], arrivals[1]);
}

TEST_F(RuntimeTest, IdleUntilAdvancesClockEvenWithoutEvents) {
  SimScanRuntime runtime(network_, 1000.0);
  const core::ScanRuntime::Sink sink = [](std::span<const std::byte>,
                                          util::Nanos) {};
  runtime.idle_until(5 * util::kSecond, sink);
  EXPECT_EQ(runtime.now(), 5 * util::kSecond);
  // Idling backwards is a no-op.
  runtime.idle_until(util::kSecond, sink);
  EXPECT_EQ(runtime.now(), 5 * util::kSecond);
}

TEST_F(RuntimeTest, PacketBytesSurviveQueueing) {
  SimScanRuntime runtime(network_, 1000.0);
  runtime.send(make_probe(0, 1, 0));
  bool parsed_ok = false;
  runtime.idle_until(util::kSecond,
                     [&](std::span<const std::byte> packet, util::Nanos) {
                       parsed_ok = net::parse_response(packet).has_value();
                     });
  EXPECT_TRUE(parsed_ok);
}

TEST(NullRuntime, CountsAndDiscards) {
  core::NullRuntime runtime;
  const std::array<std::byte, 4> packet{};
  runtime.send(packet);
  runtime.send(packet);
  EXPECT_EQ(runtime.packets_sent(), 2u);
  int delivered = 0;
  const core::ScanRuntime::Sink sink =
      [&](std::span<const std::byte>, util::Nanos) { ++delivered; };
  runtime.drain(sink);
  runtime.idle_until(runtime.now() + util::kSecond, sink);  // returns now
  EXPECT_EQ(delivered, 0);
}

TEST(NullRuntime, ClockIsReal) {
  core::NullRuntime runtime;
  const util::Nanos a = runtime.now();
  const util::Nanos b = runtime.now();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace flashroute::sim
