// Tests for the fault-injection plane (sim/fault_plane.h): seed
// determinism, zero-config transparency, and the observable effect of each
// fault kind on a simulated scan.

#include "sim/fault_plane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/probe_codec.h"
#include "core/tracer.h"
#include "net/icmp.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::sim {
namespace {

SimParams small_params() {
  SimParams params;
  params.prefix_bits = 8;
  params.seed = 5;
  return params;
}

core::TracerConfig tracer_config(const SimParams& params) {
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = 20'000.0;
  config.preprobe = core::PreprobeMode::kNone;
  config.min_round_duration = 50 * util::kMillisecond;
  return config;
}

core::ScanResult scan(const Topology& topology, const FaultParams& faults,
                      const core::TracerConfig& config) {
  SimNetwork network(topology, faults);
  SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(FaultPlane, SameSeedSameSchedule) {
  FaultParams faults;
  faults.probe_loss = 0.3;
  faults.response_loss = 0.2;
  faults.duplicate_prob = 0.1;
  faults.send_fail_prob = 0.15;
  FaultPlane a(faults, /*topology_seed=*/7);
  FaultPlane b(faults, 7);

  for (std::uint32_t i = 0; i < 2000; ++i) {
    const std::uint32_t destination = 0x01000000u + i * 257;
    const auto ttl = static_cast<std::uint8_t>(1 + i % 32);
    const util::Nanos when = static_cast<util::Nanos>(i) * 1000;
    EXPECT_EQ(a.drop_probe(destination, ttl, when),
              b.drop_probe(destination, ttl, when));
    EXPECT_EQ(a.drop_response(destination, ttl, when),
              b.drop_response(destination, ttl, when));
    EXPECT_EQ(a.duplicate_lag(destination, ttl, when),
              b.duplicate_lag(destination, ttl, when));
    EXPECT_EQ(a.fail_send(when), b.fail_send(when));
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  EXPECT_GT(a.stats().probes_lost, 0u);
  EXPECT_GT(a.stats().responses_lost, 0u);
  EXPECT_GT(a.stats().sends_failed, 0u);
}

TEST(FaultPlane, StatelessDrawsIgnoreCallOrder) {
  FaultParams faults;
  faults.probe_loss = 0.4;
  FaultPlane forward(faults, 3);
  FaultPlane backward(faults, 3);

  std::vector<bool> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(forward.drop_probe(0x01000100u + static_cast<std::uint32_t>(i),
                                   8, i * 10));
  }
  for (int i = 499; i >= 0; --i) {
    b.push_back(backward.drop_probe(
        0x01000100u + static_cast<std::uint32_t>(i), 8, i * 10));
  }
  std::reverse(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(FaultPlane, ZeroConfigIsTransparent) {
  const SimParams params = small_params();
  EXPECT_FALSE(params.faults.any());
  const Topology topology(params);

  // A default-constructed network builds no plane at all.
  SimNetwork plain(topology);
  EXPECT_EQ(plain.fault_plane(), nullptr);

  // And a scan through the explicit zero-fault overload is byte-identical
  // to the plain path.
  const core::TracerConfig config = tracer_config(params);
  const core::ScanResult a = scan(topology, FaultParams{}, config);

  SimScanRuntime runtime(plain, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  const core::ScanResult b = tracer.run();

  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.scan_time, b.scan_time);
  EXPECT_EQ(a.send_failures, 0u);
  EXPECT_EQ(a.retransmits, 0u);
}

TEST(FaultPlane, ProbeLossReducesDiscovery) {
  const SimParams params = small_params();
  const Topology topology(params);
  const core::TracerConfig config = tracer_config(params);

  const core::ScanResult clean = scan(topology, FaultParams{}, config);
  FaultParams faults;
  faults.probe_loss = 0.4;
  faults.response_loss = 0.4;
  const core::ScanResult lossy = scan(topology, faults, config);

  EXPECT_LT(lossy.interfaces.size(), clean.interfaces.size());
  EXPECT_LT(lossy.responses, clean.responses);
}

TEST(FaultPlane, BlackholedPrefixStaysBlackholed) {
  FaultParams faults;
  faults.blackhole_fraction = 0.3;
  FaultPlane plane(faults, 11);

  // Find a blackholed destination, then verify the fate is persistent
  // across TTLs and send times.
  std::uint32_t victim = 0;
  for (std::uint32_t d = 0x01000001u; d < 0x01010001u; d += 256) {
    if (plane.drop_probe(d, 1, 0)) {
      victim = d;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(plane.drop_probe(victim, static_cast<std::uint8_t>(1 + i % 32),
                                 i * util::kSecond));
  }
}

TEST(FaultPlane, FlappingLinkIsPeriodic) {
  FaultParams faults;
  faults.flap_fraction = 1.0;  // every prefix flaps
  faults.flap_period = 10 * util::kSecond;
  faults.flap_down_share = 0.5;
  FaultPlane plane(faults, 2);

  const std::uint32_t destination = 0x01000201u;
  int down = 0;
  const int samples = 100;
  for (int i = 0; i < samples; ++i) {
    const util::Nanos when = i * (faults.flap_period / samples);
    const bool dropped = plane.drop_probe(destination, 8, when);
    // One full period later the link is in the same phase.
    EXPECT_EQ(dropped,
              plane.drop_probe(destination, 8, when + faults.flap_period));
    down += dropped ? 1 : 0;
  }
  // Down for roughly half of each period.
  EXPECT_GT(down, samples / 4);
  EXPECT_LT(down, 3 * samples / 4);
}

TEST(FaultPlane, CorruptionFlipsDeliveredBytes) {
  FaultParams faults;
  faults.corrupt_prob = 1.0;
  FaultPlane plane(faults, 9);

  std::vector<std::byte> packet(64, std::byte{0});
  const std::vector<std::byte> original = packet;
  EXPECT_TRUE(plane.corrupt_response(0x01000001u, 4, 100, packet));
  EXPECT_NE(packet, original);
  EXPECT_EQ(plane.stats().responses_corrupted, 1u);
}

TEST(FaultPlane, DuplicateDeliversTwoCopies) {
  const SimParams params = small_params();
  const Topology topology(params);
  FaultParams faults;
  faults.duplicate_prob = 1.0;
  SimNetwork network(topology, faults);
  const core::ProbeCodec codec(net::Ipv4Address(params.vantage_address));

  // Every response the network generates must carry a second, strictly
  // later arrival for its duplicate copy, and the plane must tally each.
  std::uint64_t responses = 0;
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> probe;
  std::array<std::byte, net::kMaxResponseSize> out;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const net::Ipv4Address dest(((params.first_prefix + i) << 8) | 1);
    const util::Nanos when = static_cast<util::Nanos>(i) * util::kMillisecond;
    const std::size_t size = codec.encode_udp(dest, 8, false, when, probe);
    ASSERT_GT(size, 0u);
    const auto response = network.process_into(
        std::span<const std::byte>(probe.data(), size), when, out);
    if (!response.has_value()) continue;
    ++responses;
    EXPECT_GT(response->duplicate_arrival, response->arrival);
  }
  EXPECT_GT(responses, 0u);
  ASSERT_NE(network.fault_plane(), nullptr);
  EXPECT_EQ(network.fault_plane()->stats().responses_duplicated, responses);
}

TEST(FaultPlane, FaultyScanIsDeterministic) {
  const SimParams params = small_params();
  const Topology topology(params);
  core::TracerConfig config = tracer_config(params);
  config.max_retransmits = 2;

  FaultParams faults;
  faults.probe_loss = 0.2;
  faults.response_loss = 0.1;
  faults.duplicate_prob = 0.05;
  faults.reorder_prob = 0.1;
  faults.blackhole_fraction = 0.05;
  faults.flap_fraction = 0.1;
  faults.send_fail_prob = 0.05;

  const core::ScanResult a = scan(topology, faults, config);
  const core::ScanResult b = scan(topology, faults, config);
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.send_failures, b.send_failures);
  EXPECT_EQ(a.probe_timeouts, b.probe_timeouts);
  EXPECT_EQ(a.scan_time, b.scan_time);
}

}  // namespace
}  // namespace flashroute::sim
