// Tests for the deterministic timing wheel (util/timing_wheel.h): expiry in
// (deadline, insertion) order, past-deadline handling, multi-rotation
// parking, next_deadline exactness, scheduling from the expiry callback,
// and a randomized cross-check against a std::multimap reference.

#include "util/timing_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace flashroute::util {
namespace {

std::vector<int> expire_all(TimingWheel<int>& wheel, Nanos now) {
  std::vector<int> fired;
  wheel.expire_due(now, [&fired](int payload) { fired.push_back(payload); });
  return fired;
}

TEST(TimingWheel, ExpiresInDeadlineOrder) {
  TimingWheel<int> wheel(/*tick=*/10);
  wheel.schedule(300, 3);
  wheel.schedule(100, 1);
  wheel.schedule(200, 2);
  EXPECT_EQ(wheel.size(), 3u);

  EXPECT_EQ(expire_all(wheel, 99), (std::vector<int>{}));
  EXPECT_EQ(expire_all(wheel, 250), (std::vector<int>{1, 2}));
  EXPECT_EQ(expire_all(wheel, 300), (std::vector<int>{3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, TiesBreakByInsertionSequence) {
  TimingWheel<int> wheel(10);
  wheel.schedule(500, 7);
  wheel.schedule(500, 8);
  wheel.schedule(500, 9);
  EXPECT_EQ(expire_all(wheel, 500), (std::vector<int>{7, 8, 9}));
}

TEST(TimingWheel, PastDeadlinesFireOnNextExpire) {
  TimingWheel<int> wheel(10);
  EXPECT_EQ(expire_all(wheel, 1000), (std::vector<int>{}));  // advance cursor
  wheel.schedule(50, 1);  // already past: clamped to the cursor's batch
  EXPECT_EQ(expire_all(wheel, 1000), (std::vector<int>{1}));
}

TEST(TimingWheel, EntriesBeyondOneRotationParkUntilTheirTurn) {
  TimingWheel<int> wheel(/*tick=*/10, /*slot_bits=*/3);  // rotation = 80ns
  wheel.schedule(805, 1);   // ~10 rotations out
  wheel.schedule(15, 2);
  EXPECT_EQ(expire_all(wheel, 400), (std::vector<int>{2}));
  EXPECT_EQ(expire_all(wheel, 804), (std::vector<int>{}));
  EXPECT_EQ(expire_all(wheel, 810), (std::vector<int>{1}));
}

TEST(TimingWheel, NextDeadlineIsExact) {
  TimingWheel<int> wheel(10, 3);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule(730, 1);  // beyond one rotation: full-scan fallback path
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 730);
  wheel.schedule(42, 2);  // in-rotation path
  EXPECT_EQ(*wheel.next_deadline(), 42);
  expire_all(wheel, 42);
  EXPECT_EQ(*wheel.next_deadline(), 730);
  expire_all(wheel, 730);
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimingWheel, CallbackMaySchedule) {
  TimingWheel<int> wheel(10);
  wheel.schedule(100, 1);
  std::vector<int> fired;
  wheel.expire_due(100, [&](int payload) {
    fired.push_back(payload);
    if (payload == 1) wheel.schedule(90, 2);  // lands in a later batch
  });
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(expire_all(wheel, 200), (std::vector<int>{2}));
}

TEST(TimingWheel, MatchesMultimapReferenceOnRandomWorkload) {
  TimingWheel<int> wheel(/*tick=*/7, /*slot_bits=*/4);
  // (deadline, insertion seq) -> payload: the order the wheel guarantees.
  std::multimap<std::pair<Nanos, int>, int> reference;

  std::uint64_t rng = 0x9E3779B97F4A7C15ull;  // deterministic xorshift
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  Nanos now = 0;
  int seq = 0;
  for (int step = 0; step < 200; ++step) {
    const int to_add = static_cast<int>(next() % 4);
    for (int i = 0; i < to_add; ++i) {
      // Deadlines up to ~3 rotations ahead, sometimes in the past.
      const Nanos deadline = now + static_cast<Nanos>(next() % 400) - 20;
      wheel.schedule(deadline, seq);
      reference.emplace(
          std::make_pair(std::max(deadline, now), seq), seq);
      ++seq;
    }
    now += static_cast<Nanos>(next() % 60);

    std::vector<int> fired;
    wheel.expire_due(now, [&fired](int p) { fired.push_back(p); });

    std::vector<int> expected;
    while (!reference.empty() && reference.begin()->first.first <= now) {
      expected.push_back(reference.begin()->second);
      reference.erase(reference.begin());
    }
    // Past-deadline clamping makes exact tie order against the reference
    // fuzzy; compare as sets per step and totals overall.
    std::sort(fired.begin(), fired.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(fired, expected) << "step " << step << " now " << now;
  }
  EXPECT_EQ(wheel.size(), reference.size());
}

TEST(TimingWheel, SameWorkloadSameExpiryOrder) {
  const auto run = [] {
    TimingWheel<int> wheel(9, 5);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      wheel.schedule((i * 37) % 400, i);
    }
    for (Nanos now = 0; now <= 400; now += 33) {
      wheel.expire_due(now, [&order](int p) { order.push_back(p); });
    }
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flashroute::util
