// Tests for the Yarrp baseline (baselines/yarrp.h): the stateless
// (prefix, TTL) permutation walk, fill mode's inherent gap limit of one,
// neighborhood protection, and TCP/UDP probe handling.

#include "baselines/yarrp.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::baselines {
namespace {

sim::SimParams world_params(std::uint64_t seed = 1) {
  sim::SimParams params;
  params.prefix_bits = 10;
  params.seed = seed;
  return params;
}

YarrpConfig base_config(const sim::SimParams& params) {
  YarrpConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  return config;
}

core::ScanResult run_yarrp(const sim::Topology& topology,
                           const YarrpConfig& config) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Yarrp yarrp(config, runtime);
  return yarrp.run();
}

TEST(Yarrp, ProbesEveryPrefixTtlPairExactlyOnce) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_yarrp(topology, config);
  EXPECT_EQ(result.probes_sent,
            std::uint64_t{config.num_prefixes()} * config.exhaustive_ttl);
  std::set<std::pair<std::uint32_t, std::uint8_t>> pairs;
  for (const auto& probe : result.probe_log) {
    EXPECT_TRUE(pairs.emplace(probe.destination, probe.ttl).second)
        << "duplicate probe";
    EXPECT_GE(probe.ttl, 1);
    EXPECT_LE(probe.ttl, config.exhaustive_ttl);
  }
}

TEST(Yarrp, WalkOrderIsShuffled) {
  // Consecutive probes must not walk one destination's TTLs in order —
  // the whole point of the ZMap-style permutation.
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto result = run_yarrp(topology, config);
  int same_destination_consecutive = 0;
  for (std::size_t i = 1; i < result.probe_log.size(); ++i) {
    if (result.probe_log[i].destination ==
        result.probe_log[i - 1].destination) {
      ++same_destination_consecutive;
    }
  }
  EXPECT_LT(same_destination_consecutive,
            static_cast<int>(result.probe_log.size() / 100));
}

TEST(Yarrp, DeterministicAcrossRuns) {
  const sim::Topology topology(world_params());
  const auto config = base_config(topology.params());
  const auto a = run_yarrp(topology, config);
  const auto b = run_yarrp(topology, config);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.interfaces, b.interfaces);
}

TEST(Yarrp, FillModeExtendsBeyondExhaustiveTtl) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.exhaustive_ttl = 16;
  config.fill_mode = true;
  config.fill_max_ttl = 32;
  config.collect_probe_log = true;
  const auto result = run_yarrp(topology, config);

  // More probes than the exhaustive 16 floor, fewer than exhaustive 32.
  const std::uint64_t floor16 = std::uint64_t{config.num_prefixes()} * 16;
  EXPECT_GT(result.probes_sent, floor16);
  EXPECT_LT(result.probes_sent, floor16 * 2);

  // Fill probes exist above 16, but every fill chain walks one hop at a
  // time: a probe at TTL t > 17 requires a probe at t-1 for the same dest.
  std::set<std::pair<std::uint32_t, std::uint8_t>> pairs;
  bool any_fill = false;
  for (const auto& probe : result.probe_log) {
    pairs.emplace(probe.destination, probe.ttl);
    if (probe.ttl > 16) any_fill = true;
  }
  EXPECT_TRUE(any_fill);
  for (const auto& [destination, ttl] : pairs) {
    if (ttl > 17) {
      EXPECT_TRUE(pairs.contains({destination,
                                  static_cast<std::uint8_t>(ttl - 1)}))
          << "fill chain gap for ttl " << int(ttl);
    }
  }
}

TEST(Yarrp, FillModeNeverExceedsFillMax) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.exhaustive_ttl = 16;
  config.fill_mode = true;
  config.fill_max_ttl = 20;
  config.collect_probe_log = true;
  const auto result = run_yarrp(topology, config);
  for (const auto& probe : result.probe_log) {
    EXPECT_LE(probe.ttl, 20);
  }
}

TEST(Yarrp, Fill16MissesInterfacesVersusExhaustive32) {
  // Table 3's headline for Yarrp-16: the inherent forward gap limit of one
  // loses interfaces behind any silent hop.
  const sim::Topology topology(world_params());
  auto fill = base_config(topology.params());
  fill.exhaustive_ttl = 16;
  fill.fill_mode = true;
  const auto fill_result = run_yarrp(topology, fill);

  const auto full = base_config(topology.params());
  const auto full_result = run_yarrp(topology, full);

  // Fill mode can only lose interfaces relative to exhaustive probing (the
  // magnitude is scale- and seed-dependent; Table 3 reproduces the paper's
  // large deficit at the default bench scale).
  EXPECT_LE(fill_result.interfaces.size(), full_result.interfaces.size());
  EXPECT_LT(fill_result.probes_sent, full_result.probes_sent);
}

TEST(Yarrp, NeighborhoodProtectionReducesNearProbes) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.collect_probe_log = true;
  const auto plain = run_yarrp(topology, config);

  config.protected_hops = 3;
  const auto protected_run = run_yarrp(topology, config);

  EXPECT_LT(protected_run.probes_sent, plain.probes_sent);

  // The skipped probes are exactly the near ones.
  std::uint64_t plain_near = 0, protected_near = 0;
  for (const auto& probe : plain.probe_log) {
    if (probe.ttl <= 3) ++plain_near;
  }
  for (const auto& probe : protected_run.probe_log) {
    if (probe.ttl <= 3) ++protected_near;
  }
  EXPECT_LT(protected_near, plain_near);
  // Far probes are untouched.
  EXPECT_EQ(plain.probes_sent - plain_near,
            protected_run.probes_sent - protected_near);
}

TEST(Yarrp, TcpFindsFewerInterfacesThanUdp) {
  // §4.2.1: UDP probes elicit more responses than TCP-ACK.
  const sim::Topology topology(world_params());
  auto tcp = base_config(topology.params());
  tcp.probe_type = YarrpConfig::ProbeType::kTcpAck;
  const auto tcp_result = run_yarrp(topology, tcp);

  auto udp = tcp;
  udp.probe_type = YarrpConfig::ProbeType::kUdp;
  const auto udp_result = run_yarrp(topology, udp);

  EXPECT_LT(tcp_result.interfaces.size(), udp_result.interfaces.size());
  // TCP destination responses are RSTs; UDP derives trigger TTLs.
  EXPECT_GT(udp_result.destinations_reached, 0u);
  EXPECT_GT(tcp_result.destinations_reached, 0u);
}

TEST(Yarrp, UdpModeDerivesDistances) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.probe_type = YarrpConfig::ProbeType::kUdp;
  const auto result = run_yarrp(topology, config);
  int with_distance = 0, aligned = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    if (result.destination_distance[i] != 0) {
      ++with_distance;
      ASSERT_NE(result.trigger_ttl[i], 0);
      // Routing dynamics between probes at different instants can shift
      // the two measurements by a hop; they agree almost everywhere.
      if (std::abs(static_cast<int>(result.destination_distance[i]) -
                   static_cast<int>(result.trigger_ttl[i])) <= 1) {
        ++aligned;
      }
    }
  }
  EXPECT_GT(with_distance, 10);
  EXPECT_GT(aligned * 20, with_distance * 17);  // >85% (middlebox tail aside)
}

TEST(Yarrp, ScanTimeMatchesProbeBudget) {
  const sim::Topology topology(world_params());
  const auto config = base_config(topology.params());
  const auto result = run_yarrp(topology, config);
  const auto floor_ns = static_cast<util::Nanos>(
      static_cast<double>(result.probes_sent) /
      config.probes_per_second * util::kSecond);
  EXPECT_GE(result.scan_time, floor_ns);
  // ...and not wildly above it (Yarrp has no round barriers).
  EXPECT_LT(result.scan_time, floor_ns + 10 * util::kSecond);
}

}  // namespace
}  // namespace flashroute::baselines
