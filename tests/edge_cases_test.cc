// Edge-case and boundary-condition tests across modules: degenerate
// configurations, loops actually looping, dark space behaviour, and the
// engine's handling of unusual (but legal) parameter combinations.

#include <gtest/gtest.h>

#include <array>

#include "baselines/scamper.h"
#include "baselines/yarrp.h"
#include "core/probe_codec.h"
#include "core/tracer.h"
#include "net/checksum.h"
#include "net/icmp.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute {
namespace {

sim::SimParams tiny(std::uint64_t seed = 1, int bits = 8) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  return params;
}

core::TracerConfig config_for(const sim::SimParams& params) {
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = core::PreprobeMode::kNone;
  return config;
}

core::ScanResult scan(const sim::Topology& topology,
                      const core::TracerConfig& config) {
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(EdgeCases, MinimalUniverse) {
  // A single /24 (prefix_bits = 1 gives two blocks; the constructor rejects
  // 0).  The engine must simply work.
  const sim::Topology topology(tiny(1, 1));
  auto config = config_for(topology.params());
  const auto result = scan(topology, config);
  EXPECT_GT(result.probes_sent, 0u);
  EXPECT_LE(result.probes_sent, 2u * (16 + 5));
}

TEST(EdgeCases, SplitOneExploresForwardOnly) {
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  config.split_ttl = 1;
  config.collect_probe_log = true;
  const auto result = scan(topology, config);
  // Backward probing from TTL 1 costs exactly one probe per destination.
  std::uint64_t at_ttl1 = 0;
  for (const auto& probe : result.probe_log) {
    if (probe.ttl == 1) ++at_ttl1;
  }
  EXPECT_EQ(at_ttl1, config.num_prefixes());
  EXPECT_GT(result.interfaces.size(), 0u);
}

TEST(EdgeCases, MaxTtlBelowSplitClampsSplit) {
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  config.split_ttl = 30;
  config.max_ttl = 8;
  config.collect_probe_log = true;
  const auto result = scan(topology, config);
  for (const auto& probe : result.probe_log) {
    EXPECT_LE(probe.ttl, 8);
  }
}

TEST(EdgeCases, HugeGapLimitTerminates) {
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  config.gap_limit = 200;  // horizon far beyond max_ttl
  const auto result = scan(topology, config);
  EXPECT_GT(result.probes_sent, 0u);
  // Forward probing is still capped by max_ttl = 32.
  EXPECT_LE(result.probes_sent,
            std::uint64_t{config.num_prefixes()} * (16 + 16 + 1));
}

TEST(EdgeCases, LoopingDarkTailsAnswerAboveTheDropPoint) {
  // Force loops everywhere and verify the simulator actually bounces:
  // probes beyond the drop point elicit alternating responders.
  sim::SimParams params = tiny(4);
  params.dark_loop_prob = 1.0;
  params.interface_silent_prob = 0.0;
  params.filtered_tail_cum_pct[0] = 100;
  params.filtered_tail_cum_pct[1] = 100;
  params.filtered_tail_cum_pct[2] = 100;
  params.filtered_tail_cum_pct[3] = 100;
  params.filtered_tail_cum_pct[4] = 100;
  params.unassigned_reach_appliance_prob = 0.0;  // always loop instead
  const sim::Topology topology(params);
  const core::ProbeCodec codec(net::Ipv4Address(params.vantage_address));
  sim::SimNetwork network(topology);

  // Find an unassigned host in a routed prefix.
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    if (!topology.prefix_routed(prefix)) continue;
    net::Ipv4Address dark(0);
    for (int octet = 2; octet < 255; ++octet) {
      const net::Ipv4Address candidate((prefix << 8) |
                                       static_cast<std::uint32_t>(octet));
      if (!topology.host_exists(candidate)) {
        dark = candidate;
        break;
      }
    }
    if (dark.value() == 0) continue;

    sim::Route route;
    const auto flow = util::hash_combine(
        dark.value(), net::address_checksum(dark), net::kTracerouteDstPort,
        net::kProtoUdp);
    ASSERT_TRUE(topology.resolve(dark, flow, 0, route));
    ASSERT_TRUE(route.loops);

    // Probe two TTLs past the end: both answer, from alternating hops.
    std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
    std::vector<std::uint32_t> responders;
    for (int extra = 1; extra <= 2; ++extra) {
      const std::size_t size = codec.encode_udp(
          dark, static_cast<std::uint8_t>(route.num_hops + extra), false,
          extra * util::kSecond, buf);
      const auto delivery = network.process(
          std::span<const std::byte>(buf.data(), size),
          extra * util::kSecond);
      ASSERT_TRUE(delivery);
      const auto parsed = net::parse_response(delivery->packet);
      ASSERT_TRUE(parsed);
      ASSERT_TRUE(parsed->is_time_exceeded());
      responders.push_back(parsed->responder.value());
    }
    EXPECT_EQ(responders[0], route.loop_a);
    EXPECT_EQ(responders[1], route.loop_b);
    EXPECT_NE(responders[0], responders[1]);
    return;
  }
  GTEST_SKIP() << "no dark host found in tiny universe";
}

TEST(EdgeCases, ScamperWindowOfOneAndTinyTimeout) {
  sim::SimParams params = tiny(2, 5);
  const sim::Topology topology(params);
  baselines::ScamperConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(10'000.0, params.prefix_bits);
  config.window = 1;
  config.probe_timeout = 50 * util::kMillisecond;  // shorter than some RTTs
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Scamper scamper(config, runtime);
  const auto result = scamper.run();
  // Premature timeouts lose responses but never wedge the state machine.
  EXPECT_GT(result.probes_sent, 0u);
}

TEST(EdgeCases, YarrpProtectionWindowExpiry) {
  // With an instant protection window, near probing shuts off as soon as a
  // hop's novelty dries up; the scan still completes.
  const sim::Topology topology(tiny());
  baselines::YarrpConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, config.prefix_bits);
  config.protected_hops = 6;
  config.protection_window = 1;  // 1 ns: essentially always protected
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  baselines::Yarrp yarrp(config, runtime);
  const auto result = yarrp.run();
  EXPECT_LT(result.probes_sent,
            std::uint64_t{config.num_prefixes()} * 32u);
  EXPECT_GT(result.probes_sent,
            std::uint64_t{config.num_prefixes()} * 25u);
}

TEST(EdgeCases, TracerSurvivesWrongHitlistSize) {
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  config.preprobe = core::PreprobeMode::kHitlist;
  const std::vector<std::uint32_t> short_hitlist(3, 0);  // too short
  config.hitlist = &short_hitlist;
  const auto result = scan(topology, config);  // falls back to targets
  EXPECT_GT(result.probes_sent, 0u);
}

TEST(EdgeCases, ProbesToBroadcastStyleOctetsStillWork) {
  // Target override pointing at .0 and .255 (legal to probe, weird hosts).
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  std::vector<std::uint32_t> targets(config.num_prefixes(), 0);
  targets[0] = (config.first_prefix + 0) << 8;          // .0
  targets[1] = ((config.first_prefix + 1) << 8) | 255;  // .255
  config.target_override = &targets;
  const auto result = scan(topology, config);
  EXPECT_GT(result.probes_sent, 0u);
}

TEST(EdgeCases, ExtraScansWithEverythingDisabled) {
  const sim::Topology topology(tiny());
  auto config = config_for(topology.params());
  config.redundancy_removal = false;  // extra scans without a stop set
  config.extra_scans = 1;
  const auto result = scan(topology, config);
  // Without convergence stops the extra scan walks all the way to TTL 1.
  EXPECT_GT(result.probes_sent,
            std::uint64_t{config.num_prefixes()} * 16u);
}

TEST(EdgeCases, ResultCountersAreInternallyConsistent) {
  const sim::Topology topology(tiny(9, 10));
  auto config = config_for(topology.params());
  config.preprobe = core::PreprobeMode::kRandom;
  config.collect_probe_log = true;
  const auto result = scan(topology, config);
  EXPECT_EQ(result.probe_log.size(), result.probes_sent);
  EXPECT_LE(result.preprobe_probes, result.probes_sent);
  EXPECT_LE(result.destinations_reached, config.num_prefixes());
  EXPECT_LE(result.distances_measured, config.num_prefixes());
  std::uint64_t reached = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    if (result.destination_distance[i] != 0) ++reached;
  }
  EXPECT_EQ(reached, result.destinations_reached);
}

}  // namespace
}  // namespace flashroute
