// Tests for the deterministic RNG primitives (util/rng.h).

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace flashroute::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Mix64, IsPure) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Mix64, SpreadsLowBits) {
  // Consecutive inputs must not produce consecutive outputs.
  std::set<std::uint64_t> high_bytes;
  for (std::uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(mix64(i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 100u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, VariadicOverloadsDiffer) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 2, 0));
  EXPECT_NE(hash_combine(1, 2, 3), hash_combine(1, 2, 3, 0));
}

TEST(Xoshiro256, ReproducibleFromSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StableChance, DeterministicPerKey) {
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(stable_chance(1, key, 0.5), stable_chance(1, key, 0.5));
  }
}

TEST(StableChance, RespectsProbabilityAcrossKeys) {
  int hits = 0;
  constexpr int kKeys = 100000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    if (stable_chance(99, key, 0.2)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kKeys), 0.2, 0.01);
}

TEST(StableChance, ExtremesAreExact) {
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(stable_chance(3, key, 0.0));
    EXPECT_TRUE(stable_chance(3, key, 1.0));
  }
}

TEST(StableBounded, StaysInRangeAndCoversIt) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const auto v = stable_bounded(17, key, 8);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(StableBounded, DifferentSeedsDecorrelate) {
  int same = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (stable_bounded(1, key, 100) == stable_bounded(2, key, 100)) ++same;
  }
  EXPECT_LT(same, 40);
}

}  // namespace
}  // namespace flashroute::util
