// fr_model litmus for util::SpscRing (util/spsc_ring.h): the *real* ring
// code, instantiated with model::Atomic indices and model::Var slots, run
// under every interleaving the fr_model scheduler can produce — including
// the PSO store reorderings a missing release fence would allow.
//
// The claim proved: a consumer never observes a published slot before the
// producer's payload write is visible (publish() is a release store, and
// under PSO a release commits only after every earlier pending store).
// The deliberately broken variant replaces the release publish with a
// relaxed one; the explorer finds the head-before-payload commit order,
// the consumer reads an unwritten slot, and the failing schedule string
// is printed and replayed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/model_sched.h"
#include "util/spsc_ring.h"

namespace model = flashroute::util::model;
using flashroute::util::SpscRing;

namespace {

using ModelRing = SpscRing<model::Var<int>, model::Atomic<std::size_t>>;

constexpr int kPayload = 41;

// Producer pushes one value; consumer polls twice.  `seen` collects every
// value the consumer successfully read.
model::Execution ring_execution() {
  auto ring = std::make_shared<ModelRing>(2);
  auto seen = std::make_shared<std::vector<int>>();
  model::Execution execution;
  execution.threads = {
      [ring] {
        model::Var<int>* slot = ring->try_claim();
        // Capacity 2, one push: the claim cannot fail.
        if (slot != nullptr) {
          *slot = kPayload;
          ring->publish();
        }
      },
      [ring, seen] {
        for (int attempt = 0; attempt < 2; ++attempt) {
          model::Var<int>* slot = ring->front();
          if (slot == nullptr) continue;
          seen->push_back(slot->get());
          ring->pop();
        }
      },
  };
  execution.check = [seen] {
    // Whatever the schedule, the consumer saw either nothing or the
    // fully-written payload — never a torn/unwritten slot, never twice.
    if (seen->size() > 1) return false;
    return seen->empty() || (*seen)[0] == kPayload;
  };
  return execution;
}

TEST(ModelSpsc, PushPopLinearizesUnderEverySchedule) {
  model::Explorer explorer;
  const model::Result result = explorer.explore(ring_execution);
  EXPECT_FALSE(result.failed)
      << "counterexample schedule: " << result.schedule;
  EXPECT_FALSE(result.exhausted);
  // Non-vacuous coverage: the producer/consumer op sequences interleave
  // into well over a hundred distinct schedules (commit steps included).
  EXPECT_GT(result.executions, 100);
  std::cout << "spsc schedules explored: " << result.executions << "\n";
}

// The broken variant: the same Lamport queue, but publish() uses a
// relaxed store.  Under PSO the head-index store and the payload store
// sit in the producer's buffer as independent pending stores, so the
// head update may commit *first* — exactly the reordering a real CPU's
// store buffer performs when the release fence is missing.
struct BrokenRing {
  model::Var<int> slots[2];
  model::Atomic<std::size_t> head{0};
  model::Atomic<std::size_t> tail{0};

  void push(int value) {
    const std::size_t h = head.load(std::memory_order_relaxed);
    slots[h & 1] = value;
    head.store(h + 1, std::memory_order_relaxed);  // BUG: not release
  }
  model::Var<int>* front() {
    const std::size_t t = tail.load(std::memory_order_relaxed);
    if (t == head.load(std::memory_order_acquire)) return nullptr;
    return &slots[t & 1];
  }
  void pop() {
    tail.store(tail.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }
};

model::Execution broken_ring_execution() {
  auto ring = std::make_shared<BrokenRing>();
  auto seen = std::make_shared<std::vector<int>>();
  model::Execution execution;
  execution.threads = {
      [ring] { ring->push(kPayload); },
      [ring, seen] {
        for (int attempt = 0; attempt < 2; ++attempt) {
          model::Var<int>* slot = ring->front();
          if (slot == nullptr) continue;
          seen->push_back(slot->get());
          ring->pop();
        }
      },
  };
  execution.check = [seen] {
    if (seen->size() > 1) return false;
    return seen->empty() || (*seen)[0] == kPayload;
  };
  return execution;
}

TEST(ModelSpsc, RelaxedPublishIsCaughtWithReplayableSchedule) {
  model::Explorer explorer;
  const model::Result found = explorer.explore(broken_ring_execution);
  ASSERT_TRUE(found.failed)
      << "relaxed publish not caught — PSO model too strong";
  ASSERT_FALSE(found.schedule.empty());
  std::cout << "broken-spsc counterexample: " << found.schedule << "\n";

  const model::Result replayed =
      explorer.replay(found.schedule, broken_ring_execution);
  EXPECT_TRUE(replayed.failed) << "schedule did not replay";
}

}  // namespace
