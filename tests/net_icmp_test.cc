// Tests for ICMP/RST response crafting and parsing (net/icmp.h): the
// round-trip every probe response in this repository takes, including the
// quoted-TTL semantics the one-probe distance measurement depends on and
// the destination-rewrite patching behind §5.3.

#include "net/icmp.h"

#include <gtest/gtest.h>

#include <array>

#include "core/probe_codec.h"
#include "net/checksum.h"
#include "net/headers.h"

namespace flashroute::net {
namespace {

constexpr Ipv4Address kVantage(0xCB00710A);
constexpr Ipv4Address kTarget(0x01020304);
constexpr Ipv4Address kRouter(0xC8000005);

std::vector<std::byte> make_udp_probe(std::uint8_t ttl,
                                      util::Nanos when = 1'000'000'000) {
  const core::ProbeCodec codec(kVantage);
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_udp(kTarget, ttl, false, when, buf);
  EXPECT_GT(size, 0u);
  return {buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(size)};
}

TEST(IcmpCraft, TimeExceededRoundTrip) {
  const auto probe = make_udp_probe(7);
  const auto packet = craft_icmp_response(kIcmpTimeExceeded,
                                          kIcmpCodeTtlExceeded, kRouter,
                                          probe, /*residual_ttl=*/1);
  ASSERT_TRUE(packet);
  const auto parsed = parse_response(*packet);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_time_exceeded());
  EXPECT_EQ(parsed->responder, kRouter);
  EXPECT_EQ(parsed->inner.dst, kTarget);
  EXPECT_EQ(parsed->inner.src, kVantage);
  EXPECT_EQ(parsed->inner.ttl, 1);  // residual as quoted
  EXPECT_EQ(parsed->inner_dst_port, kTracerouteDstPort);
  EXPECT_EQ(parsed->inner_src_port, address_checksum(kTarget));
}

TEST(IcmpCraft, PortUnreachableCarriesResidual) {
  const auto probe = make_udp_probe(32);
  const auto packet = craft_icmp_response(kIcmpDestUnreachable,
                                          kIcmpCodePortUnreachable, kTarget,
                                          probe, /*residual_ttl=*/17);
  ASSERT_TRUE(packet);
  const auto parsed = parse_response(*packet);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_destination_unreachable());
  EXPECT_EQ(parsed->icmp_code, kIcmpCodePortUnreachable);
  // 32 - residual 17 + 1 = 16: the distance the preprober derives (§3.3.1).
  EXPECT_EQ(parsed->inner.ttl, 17);
}

TEST(IcmpCraft, QuotedHeaderHasValidChecksumAfterTtlPatch) {
  const auto probe = make_udp_probe(20);
  const auto packet = craft_icmp_response(kIcmpTimeExceeded,
                                          kIcmpCodeTtlExceeded, kRouter,
                                          probe, 1);
  ASSERT_TRUE(packet);
  // The quote begins after outer IP + ICMP headers.
  const std::span<const std::byte> quote =
      std::span<const std::byte>(*packet).subspan(Ipv4Header::kSize +
                                                  IcmpHeader::kSize);
  EXPECT_TRUE(verify_ipv4_checksum(quote));
}

TEST(IcmpCraft, OuterHeaderAddressesAndChecksumAreCorrect) {
  const auto probe = make_udp_probe(5);
  const auto packet = craft_icmp_response(kIcmpTimeExceeded,
                                          kIcmpCodeTtlExceeded, kRouter,
                                          probe, 1);
  ASSERT_TRUE(packet);
  EXPECT_TRUE(verify_ipv4_checksum(*packet));
  ByteReader r(*packet);
  const auto outer = Ipv4Header::parse(r);
  ASSERT_TRUE(outer);
  EXPECT_EQ(outer->src, kRouter);
  EXPECT_EQ(outer->dst, kVantage);
  EXPECT_EQ(outer->protocol, kProtoIcmp);
  EXPECT_EQ(outer->total_length, packet->size());
}

TEST(IcmpCraft, RewrittenDestinationIsVisibleInQuote) {
  const auto probe = make_udp_probe(32);
  const Ipv4Address rewritten(0x01020301);
  const auto packet = craft_icmp_response(
      kIcmpDestUnreachable, kIcmpCodePortUnreachable, rewritten, probe, 3,
      rewritten);
  ASSERT_TRUE(packet);
  const auto parsed = parse_response(*packet);
  ASSERT_TRUE(parsed);
  // The quote now names the rewritten destination...
  EXPECT_EQ(parsed->inner.dst, rewritten);
  // ...while the quoted source port still encodes the original target's
  // checksum — the §5.3 mismatch FlashRoute drops on.
  EXPECT_EQ(parsed->inner_src_port, address_checksum(kTarget));
  EXPECT_NE(parsed->inner_src_port, address_checksum(rewritten));
}

TEST(IcmpCraft, RejectsMalformedProbe) {
  const std::array<std::byte, 4> garbage{};
  EXPECT_FALSE(craft_icmp_response(kIcmpTimeExceeded, 0, kRouter, garbage, 1));
}

TEST(TcpRst, RoundTrip) {
  const core::ProbeCodec codec(kVantage);
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buf;
  const std::size_t size = codec.encode_tcp(kTarget, 9, 123456789, buf);
  ASSERT_GT(size, 0u);
  const auto rst =
      craft_tcp_rst(std::span<const std::byte>(buf.data(), size));
  ASSERT_TRUE(rst);
  const auto parsed = parse_response(*rst);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_tcp_rst);
  EXPECT_FALSE(parsed->is_icmp);
  EXPECT_EQ(parsed->responder, kTarget);
  EXPECT_EQ(parsed->tcp_src_port, 80);  // the probe's destination port
  EXPECT_EQ(parsed->tcp_dst_port, address_checksum(kTarget));
}

TEST(TcpRst, RejectsUdpProbe) {
  const auto probe = make_udp_probe(5);
  EXPECT_FALSE(craft_tcp_rst(probe));
}

TEST(ParseResponse, RejectsNonResponses) {
  // A raw UDP probe is not a response.
  const auto probe = make_udp_probe(5);
  EXPECT_FALSE(parse_response(probe));
  // Truncated packets.
  EXPECT_FALSE(parse_response(std::span<const std::byte>(probe).first(10)));
  EXPECT_FALSE(parse_response({}));
}

TEST(ParseResponse, RejectsOtherIcmpTypes) {
  const auto probe = make_udp_probe(5);
  const auto echo = craft_icmp_response(/*type=*/0, 0, kRouter, probe, 1);
  ASSERT_TRUE(echo);
  EXPECT_FALSE(parse_response(*echo));
}

}  // namespace
}  // namespace flashroute::net
