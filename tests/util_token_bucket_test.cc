// Tests for the token bucket (util/token_bucket.h) — the mechanism behind
// the simulator's per-interface ICMP rate limits and the raw transport's
// probing-rate throttle.

#include "util/token_bucket.h"

#include <gtest/gtest.h>

namespace flashroute::util {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_FALSE(bucket.try_consume(0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(10.0, 1.0);  // 10 tokens/s, burst 1
  EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_FALSE(bucket.try_consume(0));
  // 100 ms later exactly one token has accrued.
  EXPECT_TRUE(bucket.try_consume(100 * kMillisecond));
  EXPECT_FALSE(bucket.try_consume(100 * kMillisecond));
}

TEST(TokenBucket, BurstCapsAccrual) {
  TokenBucket bucket(1000.0, 3.0);
  EXPECT_TRUE(bucket.try_consume(0));
  // A long silence must not bank more than `burst` tokens.
  const Nanos later = 10 * kSecond;
  int granted = 0;
  while (bucket.try_consume(later)) ++granted;
  EXPECT_EQ(granted, 3);
}

TEST(TokenBucket, SustainedRateMatchesConfig) {
  // The paper's 500/s ICMP limit: offering 1000/s for 2 seconds should
  // admit ~500*2 + burst.
  TokenBucket bucket(500.0, 500.0);
  int admitted = 0;
  for (int i = 0; i < 2000; ++i) {
    if (bucket.try_consume(i * kMillisecond)) ++admitted;
  }
  EXPECT_GE(admitted, 1450);
  EXPECT_LE(admitted, 1550);
}

TEST(TokenBucket, AvailableReportsTokens) {
  TokenBucket bucket(10.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 10.0);
  EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_NEAR(bucket.available(0), 9.0, 1e-9);
}

TEST(TokenBucket, NonMonotonicTimeIsIgnoredForRefill) {
  TokenBucket bucket(10.0, 1.0);
  EXPECT_TRUE(bucket.try_consume(kSecond));
  // An earlier timestamp must not mint tokens.
  EXPECT_FALSE(bucket.try_consume(0));
  EXPECT_FALSE(bucket.try_consume(kSecond));
}

TEST(TokenBucket, AccessorsEchoConfiguration) {
  const TokenBucket bucket(123.0, 45.0, 6);
  EXPECT_DOUBLE_EQ(bucket.rate(), 123.0);
  EXPECT_DOUBLE_EQ(bucket.burst(), 45.0);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
}

TEST(SimClock, AdvanceToNeverGoesBackwards) {
  SimClock clock(1000);
  clock.advance_to(500);
  EXPECT_EQ(clock.now(), 1000);
  clock.advance_to(2000);
  EXPECT_EQ(clock.now(), 2000);
}

TEST(MonotonicClock, IsMonotone) {
  MonotonicClock clock;
  const Nanos a = clock.now();
  const Nanos b = clock.now();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace flashroute::util
