// Behaviour-level tests for the FlashRoute engine (core/tracer.h): probing
#include <set>
// phases, split-point selection, forward/backward termination, fold mode,
// exclusion handling, discovery-optimized extra scans, and determinism.

#include "core/tracer.h"

#include <gtest/gtest.h>

#include "core/targets.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::core {
namespace {

sim::SimParams world_params(std::uint64_t seed = 1, int bits = 10) {
  sim::SimParams params;
  params.prefix_bits = bits;
  params.seed = seed;
  return params;
}

TracerConfig base_config(const sim::SimParams& params) {
  TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  return config;
}

ScanResult run_scan(const sim::Topology& topology, TracerConfig config,
                    double pps_override = 0) {
  sim::SimNetwork network(topology);
  const double pps =
      pps_override > 0 ? pps_override : config.probes_per_second;
  sim::SimScanRuntime runtime(network, pps);
  Tracer tracer(config, runtime);
  return tracer.run();
}

TEST(Tracer, DeterministicAcrossRuns) {
  const sim::Topology topology(world_params(8));
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kRandom;
  const auto a = run_scan(topology, config);
  const auto b = run_scan(topology, config);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.scan_time, b.scan_time);
  EXPECT_EQ(a.interfaces, b.interfaces);
  EXPECT_EQ(a.destination_distance, b.destination_distance);
  EXPECT_EQ(a.measured_distance, b.measured_distance);
}

TEST(Tracer, PreprobeOnlyMeasuresDistancesWithOneProbeEach) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kRandom;
  config.preprobe_only = true;
  const auto result = run_scan(topology, config);

  EXPECT_EQ(result.probes_sent, result.preprobe_probes);
  EXPECT_EQ(result.probes_sent, config.num_prefixes());
  EXPECT_GT(result.distances_measured, 0u);

  // Measured distances must equal the triggering TTL of the target,
  // modulo the (rare) dynamics between the two queries.
  int checked = 0, exact = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    if (result.measured_distance[i] == 0) continue;
    const std::uint32_t target = random_target(
        config.target_seed, config.first_prefix + i);
    const auto flow = util::hash_combine(
        target, net::address_checksum(net::Ipv4Address(target)),
        net::kTracerouteDstPort, net::kProtoUdp);
    const auto truth =
        topology.trigger_ttl(net::Ipv4Address(target), flow, 0);
    if (!truth) continue;
    ++checked;
    if (result.measured_distance[i] == *truth) ++exact;
  }
  ASSERT_GT(checked, 10);
  EXPECT_GT(exact * 10, checked * 8);  // >80% exact (Fig 3: ~90%)
}

TEST(Tracer, PredictionsComeFromNeighboursWithinSpan) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kRandom;
  config.preprobe_only = true;
  config.proximity_span = 5;
  const auto result = run_scan(topology, config);
  ASSERT_GT(result.distances_predicted, 0u);
  const auto n = config.num_prefixes();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (result.predicted_distance[i] == 0) continue;
    EXPECT_EQ(result.measured_distance[i], 0u)
        << "prediction must not overwrite a measurement";
    bool neighbour_found = false;
    for (int delta = 1; delta <= 5 && !neighbour_found; ++delta) {
      if (i >= static_cast<std::uint32_t>(delta) &&
          result.measured_distance[i - static_cast<std::uint32_t>(delta)] ==
              result.predicted_distance[i]) {
        neighbour_found = true;
      }
      if (i + static_cast<std::uint32_t>(delta) < n &&
          result.measured_distance[i + static_cast<std::uint32_t>(delta)] ==
              result.predicted_distance[i]) {
        neighbour_found = true;
      }
    }
    EXPECT_TRUE(neighbour_found) << "prefix offset " << i;
  }
}

TEST(Tracer, ZeroProximitySpanDisablesPrediction) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kRandom;
  config.preprobe_only = true;
  config.proximity_span = 0;
  const auto result = run_scan(topology, config);
  EXPECT_EQ(result.distances_predicted, 0u);
}

TEST(Tracer, ExcludedPrefixesAreNeverProbed) {
  // A universe inside 10.0.0.0/8: everything is private, so the ring is
  // empty and no probe leaves the vantage (§3.4 exclusion).
  sim::SimParams params = world_params();
  params.first_prefix = 0x0A0000;  // 10.0.0.0
  const sim::Topology topology(params);
  auto config = base_config(params);
  config.preprobe = PreprobeMode::kNone;
  const auto result = run_scan(topology, config);
  EXPECT_EQ(result.probes_sent, 0u);
  EXPECT_TRUE(result.interfaces.empty());
}

TEST(Tracer, YarrpSimulationModeProbesEveryHopOnce) {
  // The §4.2.1 Yarrp-32-UDP simulation: one probe per (prefix, TTL 1..32).
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  const auto result = run_scan(topology, config);
  EXPECT_EQ(result.probes_sent,
            static_cast<std::uint64_t>(config.num_prefixes()) * 32u);
}

TEST(Tracer, GapLimitBoundsForwardProbing) {
  // With no responses past the split, forward probing sends exactly
  // gap_limit probes per destination: split+1 .. split+gap.
  const sim::Topology topology(world_params());
  for (const int gap : {0, 2, 5}) {
    auto config = base_config(topology.params());
    config.preprobe = PreprobeMode::kNone;
    config.gap_limit = static_cast<std::uint8_t>(gap);
    config.collect_probe_log = true;
    const auto result = run_scan(topology, config);
    std::uint8_t max_ttl_probed = 0;
    for (const auto& probe : result.probe_log) {
      max_ttl_probed = std::max(max_ttl_probed, probe.ttl);
    }
    // Horizon extensions can push past split+gap only when a deeper hop
    // responded; the hard bound is the deepest responding hop + gap.
    EXPECT_LE(max_ttl_probed, 32);
    if (gap == 0) {
      // No forward probing at all: nothing above the split TTL.
      EXPECT_LE(max_ttl_probed, config.split_ttl);
    }
  }
}

TEST(Tracer, DestinationResponseStopsForwardProbing) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kNone;
  config.collect_probe_log = true;
  const auto result = run_scan(topology, config);
  // For every reached destination, no forward probe was sent far beyond
  // its distance (allow the one-round overshoot inherent to decoupling).
  std::vector<std::uint8_t> deepest_probe(config.num_prefixes(), 0);
  for (const auto& probe : result.probe_log) {
    const std::uint32_t index =
        (probe.destination >> 8) - config.first_prefix;
    deepest_probe[index] = std::max(deepest_probe[index], probe.ttl);
  }
  int checked = 0;
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    const auto distance = result.destination_distance[i];
    if (distance == 0 || distance <= config.split_ttl) continue;
    ++checked;
    EXPECT_LE(deepest_probe[i], distance + 2) << "prefix offset " << i;
  }
  EXPECT_GT(checked, 0);
}

TEST(Tracer, FoldModeCostsNoExtraProbes) {
  // §3.3.5: with split 32 and random preprobing, the preprobe *is* round
  // one — the probe count stays within a whisker of the no-preprobe scan
  // (and typically below, thanks to measured-distance shortcuts).
  const sim::Topology topology(world_params());
  auto fold = base_config(topology.params());
  fold.split_ttl = 32;
  fold.preprobe = PreprobeMode::kRandom;
  const auto folded = run_scan(topology, fold);
  EXPECT_EQ(folded.preprobe_probes, 0u);  // no separate phase
  EXPECT_GT(folded.distances_measured, 0u);

  auto plain = fold;
  plain.preprobe = PreprobeMode::kNone;
  const auto unfolded = run_scan(topology, plain);
  EXPECT_LE(folded.probes_sent, unfolded.probes_sent);

  // Disabling the fold forces a separate preprobe phase.
  auto no_fold = fold;
  no_fold.fold_preprobe = false;
  const auto separate = run_scan(topology, no_fold);
  EXPECT_EQ(separate.preprobe_probes,
            static_cast<std::uint64_t>(separate.preprobe_probes));
  EXPECT_GT(separate.preprobe_probes, 0u);
}

TEST(Tracer, HitlistPreprobeUsesHitlistTargets) {
  const sim::Topology topology(world_params());
  const auto hitlist = topology.generate_hitlist();
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kHitlist;
  config.hitlist = &hitlist;
  config.preprobe_only = true;
  const auto with_hitlist = run_scan(topology, config);

  config.preprobe = PreprobeMode::kRandom;
  const auto with_random = run_scan(topology, config);

  // The census list is curated for responsiveness: it must measure
  // substantially more distances (§4.1.3: 10% vs 4%).
  EXPECT_GT(with_hitlist.distances_measured,
            with_random.distances_measured * 2);
}

TEST(Tracer, ExtraScansOnlyAddInterfaces) {
  const sim::Topology topology(world_params(21));
  auto config = base_config(topology.params());
  config.split_ttl = 32;
  config.preprobe = PreprobeMode::kNone;
  const auto plain = run_scan(topology, config);
  config.extra_scans = 2;
  const auto optimized = run_scan(topology, config);
  EXPECT_GT(optimized.probes_sent, plain.probes_sent);
  EXPECT_GE(optimized.interfaces.size(), plain.interfaces.size());
  // Everything the plain scan found is still found (stop set is shared,
  // never subtractive).
  for (const auto ip : plain.interfaces) {
    EXPECT_TRUE(optimized.interfaces.contains(ip));
  }
}

TEST(Tracer, TargetOverrideFallsBackPerEntry) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  std::vector<std::uint32_t> override_targets(config.num_prefixes(), 0);
  override_targets[3] = ((config.first_prefix + 3) << 8) | 7;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  Tracer tracer_with(
      [&] {
        auto c = config;
        c.target_override = &override_targets;
        return c;
      }(),
      runtime);
  EXPECT_EQ(tracer_with.target_of(3), override_targets[3]);
  EXPECT_EQ(tracer_with.target_of(4),
            random_target(config.target_seed, config.first_prefix + 4));
}

TEST(Tracer, MismatchesAreDroppedNotRecorded) {
  sim::SimParams params = world_params(31);
  params.rewrite_middlebox_prob = 1.0;  // every stub rewrites
  const sim::Topology topology(params);
  auto config = base_config(params);
  config.preprobe = PreprobeMode::kNone;
  const auto result = run_scan(topology, config);
  EXPECT_GT(result.mismatches, 0u);
  // No destination is ever "reached": every unreachable came back with a
  // mismatched checksum and was dropped.
  EXPECT_EQ(result.destinations_reached, 0u);
}

TEST(Tracer, ScanTimeReflectsProbePacing) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kNone;
  const auto result = run_scan(topology, config);
  // Sending result.probes_sent at the configured rate is a lower bound for
  // the virtual scan time (rounds add barrier time on top).
  const auto floor_ns = static_cast<util::Nanos>(
      static_cast<double>(result.probes_sent) /
      config.probes_per_second * util::kSecond);
  EXPECT_GE(result.scan_time, floor_ns);
}

TEST(Tracer, RoutesRecordDistinctHopsPerTtl) {
  const sim::Topology topology(world_params());
  auto config = base_config(topology.params());
  config.preprobe = PreprobeMode::kNone;
  const auto result = run_scan(topology, config);
  for (std::uint32_t i = 0; i < config.num_prefixes(); ++i) {
    for (const RouteHop& hop : result.routes[i]) {
      EXPECT_GE(hop.ttl, 1);
      EXPECT_LE(hop.ttl, 37);  // max_ttl + derived-distance slack
      EXPECT_NE(hop.ip, 0u);
    }
  }
}

TEST(Tracer, ExtraScansCanVaryTargets) {
  // §5.4's open question: extra scans probing fresh addresses per /24.
  const sim::Topology topology(world_params(17));
  auto config = base_config(topology.params());
  config.split_ttl = 32;
  config.preprobe = PreprobeMode::kNone;
  config.extra_scans = 2;
  config.collect_probe_log = true;

  config.extra_scan_vary_targets = false;
  const auto fixed = run_scan(topology, config);
  config.extra_scan_vary_targets = true;
  const auto varied = run_scan(topology, config);

  // With fixed targets, every probe goes to one address per prefix; with
  // varied targets, extra passes probe additional addresses.
  std::set<std::uint32_t> fixed_addresses, varied_addresses;
  for (const auto& probe : fixed.probe_log) {
    fixed_addresses.insert(probe.destination);
  }
  for (const auto& probe : varied.probe_log) {
    varied_addresses.insert(probe.destination);
  }
  EXPECT_LE(fixed_addresses.size(), config.num_prefixes());
  EXPECT_GT(varied_addresses.size(), fixed_addresses.size());
  // Varying addresses reaches the per-/24 interior: more interfaces.
  EXPECT_GE(varied.interfaces.size(), fixed.interfaces.size());
}

}  // namespace
}  // namespace flashroute::core
