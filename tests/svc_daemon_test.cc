// End-to-end tests for the frd daemon (svc/daemon.h) over its real AF_UNIX
// socket: submit/status/list/wait, admission rejection on the wire, cancel,
// archive-backed diff and verify queries, clean shutdown, and the JSONL
// event stream's structural invariants.  These run the daemon's actual
// thread structure (I/O poll loop + worker pool), so they are also the
// TSan coverage for the svc locking discipline.

#include "svc/daemon.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "svc/client.h"
#include "svc/job.h"
#include "util/clock.h"

namespace flashroute::svc {
namespace {

struct DaemonFixture {
  std::string socket_path;
  std::string archive_path;
  std::ostringstream events;
  std::unique_ptr<Daemon> daemon;

  explicit DaemonFixture(const char* tag, int workers = 2,
                         double budget = 1e6, int max_queued = 8) {
    const std::string suffix = std::string(tag) + "_" +
                               std::to_string(static_cast<long>(::getpid()));
    socket_path = "/tmp/fr_svc_test_" + suffix + ".sock";
    archive_path = "/tmp/fr_svc_test_" + suffix + ".bin";
    std::remove(archive_path.c_str());
    DaemonOptions options;
    options.socket_path = socket_path;
    options.archive_path = archive_path;
    options.events = &events;
    options.scheduler.num_workers = workers;
    options.scheduler.global_pps_budget = budget;
    options.scheduler.max_queued = max_queued;
    daemon = std::make_unique<Daemon>(options);
  }

  ~DaemonFixture() {
    daemon.reset();  // request_shutdown + wait
    std::remove(archive_path.c_str());
  }

  Client connect() {
    auto client = Client::connect(socket_path);
    EXPECT_TRUE(client.has_value());
    return std::move(*client);
  }
};

JobSpec quick_spec(const std::string& name, std::uint64_t scan_seed = 7) {
  JobSpec spec;
  spec.name = name;
  spec.prefix_bits = 6;
  spec.scan_seed = scan_seed;
  return spec;
}

TEST(SvcDaemon, SubmitRunsToCompletionAndAnswersQueries) {
  DaemonFixture fixture("basic");
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();

  const auto first = client.submit(quick_spec("first", 7));
  const auto second = client.submit(quick_spec("second", 8));
  ASSERT_TRUE(first.has_value() && first->admitted);
  ASSERT_TRUE(second.has_value() && second->admitted);
  EXPECT_NE(first->job_id, second->job_id);

  ASSERT_TRUE(client.wait_all(2));
  const auto views = client.list();
  ASSERT_TRUE(views.has_value());
  ASSERT_EQ(views->size(), 2u);
  for (const JobView& view : *views) {
    EXPECT_EQ(view.state, JobState::kCompleted);
    EXPECT_GT(view.probes, 0u);
    EXPECT_GE(view.slices, 1u);
  }

  const auto status = client.status(first->job_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->name, "first");

  // Both results are archived; same-universe snapshots diff cleanly.
  const auto verify = client.verify(first->job_id);
  ASSERT_TRUE(verify.has_value());
  EXPECT_TRUE(verify->found);
  EXPECT_GT(verify->payload_size, 0u);

  const auto diff = client.diff(first->job_id, second->job_id);
  ASSERT_TRUE(diff.has_value());
  EXPECT_TRUE(diff->ok) << diff->error;
  EXPECT_GT(diff->routes_compared, 0u);

  EXPECT_TRUE(client.shutdown());
  fixture.daemon->wait();

  const std::string stream = fixture.events.str();
  EXPECT_NE(stream.find("\"event\":\"submitted\""), std::string::npos);
  EXPECT_NE(stream.find("\"event\":\"completed\""), std::string::npos);
  EXPECT_NE(stream.find("\"type\":\"job_summary\""), std::string::npos);
  EXPECT_NE(stream.find("\"clean_shutdown\":true"), std::string::npos);
}

TEST(SvcDaemon, IdenticalSpecsArchiveIdenticalPayloads) {
  DaemonFixture fixture("identical");
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();

  const auto a = client.submit(quick_spec("twin-a"));
  const auto b = client.submit(quick_spec("twin-b"));
  ASSERT_TRUE(a.has_value() && a->admitted);
  ASSERT_TRUE(b.has_value() && b->admitted);
  ASSERT_TRUE(client.wait_all(2));

  const auto va = client.verify(a->job_id);
  const auto vb = client.verify(b->job_id);
  ASSERT_TRUE(va.has_value() && va->found);
  ASSERT_TRUE(vb.has_value() && vb->found);
  // Equal specs ⇒ equal bytes, however the two workers interleaved.
  EXPECT_EQ(va->payload_size, vb->payload_size);
  EXPECT_EQ(va->payload_fnv1a, vb->payload_fnv1a);
}

TEST(SvcDaemon, RejectionsAndMissingJobsOnTheWire) {
  DaemonFixture fixture("reject", /*workers=*/1, /*budget=*/10'000.0);
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();

  JobSpec greedy = quick_spec("greedy");
  greedy.probes_per_second = 20'000.0;
  const auto rejected = client.submit(greedy);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->admitted);
  EXPECT_EQ(rejected->reason, kRejectRateExceedsGlobalBudget);

  // Rejected jobs still answer status (terminal, with the detail).
  const auto view = client.status(rejected->job_id);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->state, JobState::kRejected);

  EXPECT_FALSE(client.status(999).has_value());
  const auto cancel = client.cancel(999);
  ASSERT_TRUE(cancel.has_value());
  EXPECT_EQ(*cancel, CancelOutcome::kNotFound);

  const auto diff = client.diff(rejected->job_id, rejected->job_id);
  ASSERT_TRUE(diff.has_value());
  EXPECT_FALSE(diff->ok);
  EXPECT_FALSE(diff->error.empty());

  const auto verify = client.verify(rejected->job_id);
  ASSERT_TRUE(verify.has_value());
  EXPECT_FALSE(verify->found);
}

TEST(SvcDaemon, CancelQueuedJobBeforeItRuns) {
  // Zero workers is clamped to one; a long-running job pins it while the
  // victim waits in the queue.
  DaemonFixture fixture("cancel", /*workers=*/1);
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();

  JobSpec runner = quick_spec("runner");
  runner.prefix_bits = 12;
  const auto running = client.submit(runner);
  ASSERT_TRUE(running.has_value() && running->admitted);
  const auto queued = client.submit(quick_spec("victim"));
  ASSERT_TRUE(queued.has_value() && queued->admitted);

  const auto outcome = client.cancel(queued->job_id);
  ASSERT_TRUE(outcome.has_value());
  // Usually still queued (kCancelled); kSignalled if it slipped onto the
  // worker first.  Either way it must reach a terminal state.
  EXPECT_TRUE(*outcome == CancelOutcome::kCancelled ||
              *outcome == CancelOutcome::kSignalled);
  const auto view = client.wait_job(queued->job_id, 2);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(job_state_terminal(view->state));

  ASSERT_TRUE(client.wait_all(2));
  const auto final_runner = client.status(running->job_id);
  ASSERT_TRUE(final_runner.has_value());
  EXPECT_EQ(final_runner->state, JobState::kCompleted);
}

TEST(SvcDaemon, ShutdownCancelsQueuedWorkAndWritesSummary) {
  DaemonFixture fixture("shutdown", /*workers=*/1);
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();

  JobSpec big = quick_spec("big");
  big.prefix_bits = 12;
  const auto a = client.submit(big);
  const auto b = client.submit(quick_spec("stranded"));
  ASSERT_TRUE(a.has_value() && a->admitted);
  ASSERT_TRUE(b.has_value() && b->admitted);

  EXPECT_TRUE(client.shutdown());
  fixture.daemon->wait();

  const std::string stream = fixture.events.str();
  EXPECT_NE(stream.find("\"type\":\"job_summary\""), std::string::npos);
  EXPECT_NE(stream.find("\"drained\":true"), std::string::npos);
  // Whatever never finished was explicitly cancelled, not dropped.
  const bool all_resolved =
      stream.find("\"event\":\"cancelled\"") != std::string::npos ||
      (stream.find("\"job\":1,\"event\":\"completed\"") !=
           std::string::npos &&
       stream.find("\"job\":2,\"event\":\"completed\"") !=
           std::string::npos);
  EXPECT_TRUE(all_resolved) << stream;
}

// --- crash-safety, in process (DESIGN.md §14) -------------------------------
//
// These run the journaled daemon's recovery paths without fork, so they
// stay inside TSan's supported model and carry the TSan coverage for the
// journal/recovery locking; the fork-based kill matrix lives in
// svc_crash_recovery_test.cc.

struct JournaledFixture {
  std::string socket_path;
  std::string archive_path;
  std::string journal_path;
  std::string state_dir;
  std::ostringstream events;
  std::unique_ptr<Daemon> daemon;
  int workers;
  util::Nanos drain_deadline;

  explicit JournaledFixture(const char* tag, int num_workers = 2,
                            util::Nanos deadline = 0)
      : workers(num_workers), drain_deadline(deadline) {
    const std::string base = "/tmp/fr_svc_journal_" + std::string(tag) +
                             "_" +
                             std::to_string(static_cast<long>(::getpid()));
    socket_path = base + ".sock";
    archive_path = base + ".bin";
    journal_path = base + ".frwj";
    state_dir = base + "_state";
    std::remove(archive_path.c_str());
    std::remove(journal_path.c_str());
    boot();
  }

  void boot() {
    DaemonOptions options;
    options.socket_path = socket_path;
    options.archive_path = archive_path;
    options.events = &events;
    options.journal_path = journal_path;
    options.state_dir = state_dir;
    options.durability = Durability::kFlush;
    options.drain_deadline = drain_deadline;
    options.scheduler.num_workers = workers;
    options.scheduler.global_pps_budget = 1e6;
    options.scheduler.max_queued = 8;
    daemon = std::make_unique<Daemon>(options);
  }

  /// Clean daemon stop + a fresh boot on the same durable paths — the
  /// in-process stand-in for "the process died and came back".
  void restart() {
    daemon.reset();
    boot();
  }

  ~JournaledFixture() {
    daemon.reset();
    std::remove(archive_path.c_str());
    std::remove(journal_path.c_str());
    for (int id = 1; id <= 16; ++id) {
      std::remove((state_dir + "/job_" + std::to_string(id) + ".frck")
                      .c_str());
    }
    ::rmdir(state_dir.c_str());
  }

  Client connect() {
    auto client = Client::connect(socket_path);
    EXPECT_TRUE(client.has_value());
    return std::move(*client);
  }
};

JobSpec keyed_spec(const std::string& name, const std::string& key,
                   std::uint64_t scan_seed = 7) {
  JobSpec spec = quick_spec(name, scan_seed);
  spec.request_key = key;
  return spec;
}

TEST(SvcDaemon, JournaledDrainPreservesWaitingJobsAndRestartFinishesThem) {
  // Control: same specs, no journal — the byte-identity oracle.
  std::uint64_t control_size = 0;
  std::uint64_t control_fnv = 0;
  {
    DaemonFixture control("recovery_control", /*workers=*/1);
    ASSERT_TRUE(control.daemon->start());
    Client client = control.connect();
    const auto submission = client.submit(quick_spec("stranded", 9));
    ASSERT_TRUE(submission.has_value() && submission->admitted);
    ASSERT_TRUE(client.wait_all());
    const auto verify = client.verify(submission->job_id);
    ASSERT_TRUE(verify.has_value() && verify->found);
    control_size = verify->payload_size;
    control_fnv = verify->payload_fnv1a;
  }

  JournaledFixture fixture("drain", /*workers=*/1);
  ASSERT_TRUE(fixture.daemon->start());
  std::uint64_t big_id = 0;
  std::uint64_t stranded_id = 0;
  {
    Client client = fixture.connect();
    JobSpec big = keyed_spec("big", "drain-key-big");
    big.prefix_bits = 12;
    const auto a = client.submit(big);
    const auto b =
        client.submit(keyed_spec("stranded", "drain-key-stranded", 9));
    ASSERT_TRUE(a.has_value() && a->admitted);
    ASSERT_TRUE(b.has_value() && b->admitted);
    big_id = a->job_id;
    stranded_id = b->job_id;
    EXPECT_TRUE(client.shutdown());
  }
  fixture.daemon->wait();
  // Journaled drain never cancels the waiting job — it is durable.
  EXPECT_EQ(fixture.events.str().find("\"event\":\"cancelled\""),
            std::string::npos);

  fixture.restart();
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();
  // Recovery re-admitted both jobs under their original ids...
  EXPECT_NE(fixture.events.str().find("\"event\":\"recovered\""),
            std::string::npos);
  const auto big_view = client.status(big_id);
  ASSERT_TRUE(big_view.has_value());
  EXPECT_EQ(big_view->name, "big");
  // ...and a retried submit with the original key replays the original
  // verdict instead of admitting a duplicate.
  JobSpec retry = keyed_spec("big", "drain-key-big");
  retry.prefix_bits = 12;
  const auto replay = client.submit(retry);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->admitted);
  EXPECT_EQ(replay->job_id, big_id);

  ASSERT_TRUE(client.wait_all());
  for (const std::uint64_t id : {big_id, stranded_id}) {
    const auto view = client.status(id);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->state, JobState::kCompleted) << view->detail;
  }
  // The job that crossed the restart produced the control run's bytes.
  const auto verify = client.verify(stranded_id);
  ASSERT_TRUE(verify.has_value() && verify->found);
  EXPECT_EQ(verify->payload_size, control_size);
  EXPECT_EQ(verify->payload_fnv1a, control_fnv);
}

TEST(SvcDaemon, AsyncShutdownRequestDrainsLikeAShutdownFrame) {
  JournaledFixture fixture("async");
  ASSERT_TRUE(fixture.daemon->start());
  {
    Client client = fixture.connect();
    const auto submission =
        client.submit(keyed_spec("async-job", "async-key"));
    ASSERT_TRUE(submission.has_value() && submission->admitted);
    ASSERT_TRUE(client.wait_all());
  }
  // What a SIGTERM handler would call: async-signal-safe, no locks.
  fixture.daemon->request_shutdown_async();
  fixture.daemon->wait();
  const std::string stream = fixture.events.str();
  EXPECT_NE(stream.find("\"type\":\"job_summary\""), std::string::npos);
  EXPECT_NE(stream.find("\"clean_shutdown\":true"), std::string::npos);
}

TEST(SvcDaemon, DrainDeadlineHardCancelsRunningSlices) {
  JournaledFixture fixture("deadline", /*workers=*/1,
                           /*deadline=*/util::kMillisecond);
  ASSERT_TRUE(fixture.daemon->start());
  Client client = fixture.connect();
  JobSpec slow = keyed_spec("slow", "deadline-key");
  slow.prefix_bits = 14;
  const auto submission = client.submit(slow);
  ASSERT_TRUE(submission.has_value() && submission->admitted);

  fixture.daemon->request_shutdown();
  fixture.daemon->wait();
  // The deadline (1ms) bounds the drain: the running slice is preempted
  // at its next barrier or hard-cancelled, whichever the races produce —
  // but the shutdown completes and writes its summary either way.
  EXPECT_NE(fixture.events.str().find("\"type\":\"job_summary\""),
            std::string::npos);

  // And the restart sees a resumable or terminal job, not a wedge.
  fixture.restart();
  ASSERT_TRUE(fixture.daemon->start());
  Client reclient = fixture.connect();
  ASSERT_TRUE(reclient.wait_all());
  const auto views = reclient.list();
  ASSERT_TRUE(views.has_value());
  for (const JobView& view : *views) {
    EXPECT_TRUE(job_state_terminal(view.state))
        << job_state_name(view.state);
  }
}

TEST(SvcDaemon, StartFailsOnUnbindablePath) {
  DaemonOptions options;
  options.socket_path = "/nonexistent-dir/frd.sock";
  options.archive_path = "/tmp/fr_svc_test_unbindable_" +
                         std::to_string(static_cast<long>(::getpid())) +
                         ".bin";
  Daemon daemon(options);
  EXPECT_FALSE(daemon.start());
  std::remove(options.archive_path.c_str());
}

}  // namespace
}  // namespace flashroute::svc
