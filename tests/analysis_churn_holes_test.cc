// Tests for snapshot churn (analysis/churn.h) and route-hole counting
// (analysis/route_holes.h), on synthetic inputs and real scans.

#include <gtest/gtest.h>

#include "analysis/churn.h"
#include "analysis/route_holes.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"

namespace flashroute::analysis {
namespace {

core::ScanResult make_scan(std::size_t prefixes) {
  core::ScanResult scan;
  scan.routes.assign(prefixes, {});
  scan.destination_distance.assign(prefixes, 0);
  scan.trigger_ttl.assign(prefixes, 0);
  return scan;
}

TEST(Churn, IdenticalSnapshotsAreQuiet) {
  auto scan = make_scan(2);
  scan.interfaces = {1, 2, 3};
  scan.routes[0] = {{1, 1, 0}, {2, 2, 0}};
  scan.destination_distance[0] = 3;
  const auto churn = compare_snapshots(scan, scan);
  EXPECT_EQ(churn.interfaces_appeared, 0u);
  EXPECT_EQ(churn.interfaces_vanished, 0u);
  EXPECT_EQ(churn.routes_compared, 1u);
  EXPECT_EQ(churn.routes_changed_hops, 0u);
  EXPECT_EQ(churn.routes_changed_length, 0u);
  EXPECT_DOUBLE_EQ(churn.interface_churn_rate(), 0.0);
}

TEST(Churn, CountsAppearancesAndRouteChanges) {
  auto before = make_scan(3);
  auto after = make_scan(3);
  before.interfaces = {1, 2, 3};
  after.interfaces = {2, 3, 4, 5};
  before.routes[0] = {{10, 4, 0}};
  after.routes[0] = {{11, 4, 0}};  // hop replaced at the same TTL
  before.destination_distance[0] = 5;
  after.destination_distance[0] = 5;
  before.routes[1] = {{20, 2, 0}};
  after.routes[1] = {{20, 2, 0}};
  before.destination_distance[1] = 3;
  after.destination_distance[1] = 4;  // longer now
  // Prefix 2: only present in `after` — not compared.
  after.routes[2] = {{30, 1, 0}};

  const auto churn = compare_snapshots(before, after);
  EXPECT_EQ(churn.interfaces_appeared, 2u);  // 4, 5
  EXPECT_EQ(churn.interfaces_vanished, 1u);  // 1
  EXPECT_EQ(churn.routes_compared, 2u);
  EXPECT_EQ(churn.routes_changed_hops, 1u);
  EXPECT_EQ(churn.routes_changed_length, 1u);
}

TEST(Churn, DuplicateResponsesAndFlagsDoNotCount) {
  auto before = make_scan(1);
  auto after = make_scan(1);
  before.routes[0] = {{10, 4, 0}, {10, 4, 0}};
  after.routes[0] = {{10, 4, core::RouteHop::kExtraScan}};
  before.destination_distance[0] = after.destination_distance[0] = 5;
  const auto churn = compare_snapshots(before, after);
  EXPECT_EQ(churn.routes_changed_hops, 0u);
}

TEST(Churn, RealScansOfDriftingWorldShowBoundedChurn) {
  sim::SimParams params;
  params.prefix_bits = 9;
  params.seed = 3;
  const sim::Topology topology(params);
  const double pps = sim::scaled_probe_rate(100'000.0, params.prefix_bits);

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = pps;
  config.preprobe = core::PreprobeMode::kNone;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, pps);
  core::Tracer first(config, runtime);
  const auto snapshot_a = first.run();
  core::Tracer second(config, runtime);  // later virtual time, same world
  const auto snapshot_b = second.run();

  const auto churn = compare_snapshots(snapshot_a, snapshot_b);
  EXPECT_GT(churn.routes_compared, 100u);
  // The world drifts but does not capsize: some change, far from total.
  EXPECT_GT(churn.routes_changed_hops + churn.interfaces_appeared, 0u);
  EXPECT_LT(churn.route_change_rate(), 0.5);
  EXPECT_LT(churn.interface_churn_rate(), 0.3);
}

TEST(RouteHoles, SyntheticCounting) {
  auto scan = make_scan(2);
  // Prefix 0: destination at 5; probed TTLs 1..4; answered at 1 and 3.
  scan.destination_distance[0] = 5;
  scan.routes[0] = {{100, 1, 0}, {101, 3, 0}};
  for (std::uint8_t ttl = 1; ttl <= 4; ++ttl) {
    scan.probe_log.push_back({0, 0x01000001u, ttl, false});
  }
  // Prefix 1: never reached, deepest hop at 2 probed at 1..6 — probes past
  // the extent are not holes.
  scan.routes[1] = {{200, 2, 0}};
  for (std::uint8_t ttl = 1; ttl <= 6; ++ttl) {
    scan.probe_log.push_back({0, 0x01000101u, ttl, false});
  }
  const auto report = count_route_holes(scan, 0x010000);
  EXPECT_EQ(report.routes_considered, 2u);
  // Prefix 0: positions 1..4 probed -> 4; holes at 2 and 4.
  // Prefix 1: extent 2 -> position 1 probed, answered? no (hop at 2 only)
  //           -> 1 probed position, 1 hole.
  EXPECT_EQ(report.probed_positions, 5u);
  EXPECT_EQ(report.holes, 3u);
  EXPECT_NEAR(report.holes_per_route(), 1.5, 1e-9);
  EXPECT_NEAR(report.hole_fraction(), 0.6, 1e-9);
}

TEST(RouteHoles, NoLogMeansNoHoles) {
  auto scan = make_scan(1);
  scan.destination_distance[0] = 5;
  scan.routes[0] = {{100, 1, 0}};
  const auto report = count_route_holes(scan, 0x010000);
  EXPECT_EQ(report.holes, 0u);
  EXPECT_EQ(report.probed_positions, 0u);
}

TEST(RouteHoles, ExhaustiveScanHasFewHolesOnRespondingPaths) {
  // In a world with no rate limiting and no silent interfaces, an
  // exhaustive scan's recorded routes have zero holes.
  sim::SimParams params;
  params.prefix_bits = 7;
  params.interface_silent_prob = 0.0;
  params.interface_tcp_extra_silent_prob = 0.0;
  params.filtered_tail_cum_pct[0] = 100;  // no filtered tails
  params.filtered_tail_cum_pct[1] = 100;
  params.filtered_tail_cum_pct[2] = 100;
  params.filtered_tail_cum_pct[3] = 100;
  params.filtered_tail_cum_pct[4] = 100;
  params.icmp_rate_limit_pps = 1e9;
  params.icmp_rate_limit_burst = 1e9;
  params.route_dynamics_prob = 0.0;
  const sim::Topology topology(params);

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  config.collect_probe_log = true;

  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  const auto result = tracer.run();
  const auto report = count_route_holes(result, params.first_prefix);
  EXPECT_GT(report.routes_considered, 50u);
  EXPECT_EQ(report.holes, 0u);
}

}  // namespace
}  // namespace flashroute::analysis
