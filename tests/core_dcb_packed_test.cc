// Tests for the packed full-scale DCB layout (ISSUE 6): the ≤12-byte size
// budget, 24-bit ring links at sizes straddling 2^16, and the spinlock
// folded into the flags byte (exercised under TSan in CI).

#include "core/dcb.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/dcb_array.h"
#include "util/rng.h"

namespace flashroute::core {
namespace {

static_assert(sizeof(Dcb) <= 12,
              "packed DCB must stay within the full-scale budget");
static_assert(sizeof(Dcb) < sizeof(PaddedDcb));
static_assert(sizeof(PaddedDcb) < sizeof(MutexDcb));

TEST(PackedDcb, LinkAccessorsRoundTrip24Bits) {
  Dcb dcb;
  for (const std::uint32_t index :
       {0u, 1u, 0xFFu, 0x100u, 0xFFFFu, 0x10000u, 0xABCDEFu, 0xFFFFFFu}) {
    dcb.set_next_index(index);
    dcb.set_previous_index(0xFFFFFFu - index);
    EXPECT_EQ(dcb.next_index(), index);
    EXPECT_EQ(dcb.previous_index(), 0xFFFFFFu - index);
  }
}

TEST(PackedDcb, FlagOpsNeverTouchTheLockBit) {
  Dcb dcb;
  dcb.lock();
  dcb.set_flag(Dcb::kDestReached);
  dcb.set_flag(Dcb::kRemoved);
  EXPECT_EQ(dcb.flags(), Dcb::kDestReached | Dcb::kRemoved);
  dcb.store_flags(0xFF);  // must not forge the lock bit either
  EXPECT_EQ(dcb.flags() & Dcb::kLocked, 0);
  dcb.retain_flags(Dcb::kRemoved);
  EXPECT_EQ(dcb.flags(), Dcb::kRemoved);
  dcb.clear_flag(Dcb::kRemoved);
  EXPECT_EQ(dcb.flags(), 0);
  dcb.unlock();  // the lock survived every flag mutation above
  dcb.lock();    // would deadlock if unlock had been clobbered
  dcb.unlock();
}

TEST(PackedDcb, SpinlockInFlagsMutualExclusion) {
  // The §3.4 contention scenario: sender and receiver threads hammering the
  // same DCB.  The flag churn rides along to prove lock and flag bits
  // coexist in the one atomic byte.
  Dcb dcb;
  std::uint32_t counter = 0;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&dcb, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::lock_guard guard(dcb);
        ++counter;
        dcb.set_flag(Dcb::kDestReached);
        dcb.clear_flag(Dcb::kDestReached);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4u * kPerThread);
  EXPECT_EQ(dcb.flags(), 0);
}

// Ring integrity fuzz at sizes straddling the 16-bit boundary: 24-bit links
// must thread, walk, and unlink correctly where 16-bit arithmetic would
// truncate.
class PackedRingFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PackedRingFuzz, LinkUnlinkKeepsRingConsistent) {
  const std::uint32_t n = GetParam();
  DcbArray array(n);
  const util::RandomPermutation perm(n, /*seed=*/n);
  array.build_ring(perm, [](std::uint32_t) { return true; });
  ASSERT_EQ(array.ring_size(), n);

  // Walk the full ring once: every link must round-trip above 2^16.
  std::uint32_t index = array.head();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t next = array[index].next_index();
    ASSERT_LT(next, n);
    ASSERT_EQ(array[next].previous_index(), index);
    index = next;
  }
  ASSERT_EQ(index, array.head());

  // Remove a deterministic pseudo-random half and spot-check consistency.
  util::Xoshiro256 rng(n * 2654435761u);
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    array.remove(static_cast<std::uint32_t>(rng.bounded(n)));
  }
  const std::uint32_t remaining = array.ring_size();
  ASSERT_GT(remaining, 0u);
  index = array.head();
  for (std::uint32_t i = 0; i < remaining; ++i) {
    ASSERT_TRUE(array.in_ring(index));
    ASSERT_EQ(array[array[index].next_index()].previous_index(), index);
    index = array.next(index);
  }
  ASSERT_EQ(index, array.head());
}

INSTANTIATE_TEST_SUITE_P(StraddlingSixteenBits, PackedRingFuzz,
                         ::testing::Values(0xFFFFu, 0x10000u, 0x10001u,
                                           0x18000u));

}  // namespace
}  // namespace flashroute::core
