// Torn-write recovery tests for the write-ahead job journal
// (svc/journal.h).  Mirrors the svc_wire_fuzz_test.cc methodology: every
// truncation prefix of a valid multi-record journal must recover exactly
// the longest valid frame prefix, and seeded byte mutations must never
// trap, never yield more records than were written, and always leave a
// prefix-consistent file (a second open after recovery drops zero bytes).
// Seeds are fixed (util::Xoshiro256), so any failure is a deterministic
// repro, not a flake.  CI runs this under ASan/UBSan.

#include "svc/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

namespace flashroute::svc {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/fr_journal_test_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".frwj";
}

JournalRecord sample_record(JournalKind kind, std::uint64_t job_id) {
  JournalRecord record;
  record.kind = kind;
  record.job_id = job_id;
  record.spec.name = "journal-job-" + std::to_string(job_id);
  record.spec.prefix_bits = 10;
  record.spec.first_prefix = 0x0a000000u + static_cast<std::uint32_t>(job_id);
  record.spec.scan_seed = 40 + job_id;
  record.spec.probes_per_second = 5000.0 + static_cast<double>(job_id);
  record.spec.priority = static_cast<int>(job_id % 3);
  record.spec.request_key = "key-" + std::to_string(job_id);
  record.reason = journal_kind_name(kind);
  record.detail = "detail for job " + std::to_string(job_id);
  record.probes = 1000 * job_id;
  record.slices = job_id;
  return record;
}

void expect_records_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.job_id, b.job_id);
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.spec.prefix_bits, b.spec.prefix_bits);
  EXPECT_EQ(a.spec.first_prefix, b.spec.first_prefix);
  EXPECT_EQ(a.spec.scan_seed, b.spec.scan_seed);
  EXPECT_EQ(a.spec.probes_per_second, b.spec.probes_per_second);
  EXPECT_EQ(a.spec.priority, b.spec.priority);
  EXPECT_EQ(a.spec.request_key, b.spec.request_key);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.slices, b.slices);
}

std::vector<JournalRecord> all_kinds_fixture() {
  std::vector<JournalRecord> records;
  records.push_back(sample_record(JournalKind::kAdmitted, 1));
  records.push_back(sample_record(JournalKind::kRejected, 2));
  records.push_back(sample_record(JournalKind::kStarted, 1));
  records.push_back(sample_record(JournalKind::kBarrier, 1));
  records.push_back(sample_record(JournalKind::kCompleted, 1));
  records.push_back(sample_record(JournalKind::kCancelled, 3));
  records.push_back(sample_record(JournalKind::kFailed, 4));
  return records;
}

/// Writes the fixture through a real journal and returns the file bytes.
std::string build_fixture_file(const std::string& path,
                               Durability durability = Durability::kFlush) {
  std::remove(path.c_str());
  {
    JobJournal journal(path, durability);
    EXPECT_TRUE(journal.ok());
    for (const JournalRecord& record : all_kinds_fixture()) {
      EXPECT_TRUE(journal.append(record));
    }
  }
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes.empty());
  return bytes;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(JobJournal, ParseDurabilityCoversCliValues) {
  EXPECT_EQ(parse_durability("none"), Durability::kNone);
  EXPECT_EQ(parse_durability("flush"), Durability::kFlush);
  EXPECT_EQ(parse_durability("fsync"), Durability::kFsync);
  EXPECT_FALSE(parse_durability("").has_value());
  EXPECT_FALSE(parse_durability("fsync ").has_value());
  EXPECT_FALSE(parse_durability("paranoid").has_value());
  EXPECT_STREQ(durability_name(Durability::kNone), "none");
  EXPECT_STREQ(durability_name(Durability::kFlush), "flush");
  EXPECT_STREQ(durability_name(Durability::kFsync), "fsync");
}

TEST(JobJournal, RecordsRoundTripAcrossReopenForEveryKind) {
  const std::string path = temp_path("roundtrip");
  const std::vector<JournalRecord> written = all_kinds_fixture();
  build_fixture_file(path);

  JobJournal journal(path, Durability::kFlush);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal.recovered_bytes_dropped(), 0u);
  ASSERT_EQ(journal.records().size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    expect_records_equal(journal.records()[i], written[i]);
  }
  std::remove(path.c_str());
}

TEST(JobJournal, AppendAfterRecoveryExtendsTheFile) {
  const std::string path = temp_path("extend");
  build_fixture_file(path);
  {
    JobJournal journal(path, Durability::kFlush);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(journal.append(sample_record(JournalKind::kAdmitted, 9)));
  }
  JobJournal reopened(path, Durability::kFlush);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.recovered_bytes_dropped(), 0u);
  ASSERT_EQ(reopened.records().size(), all_kinds_fixture().size() + 1);
  expect_records_equal(reopened.records().back(),
                       sample_record(JournalKind::kAdmitted, 9));
  std::remove(path.c_str());
}

TEST(JobJournal, DurabilityModesAllProduceReadableJournals) {
  for (const Durability durability :
       {Durability::kNone, Durability::kFlush, Durability::kFsync}) {
    const std::string path =
        temp_path(durability_name(durability));
    build_fixture_file(path, durability);
    JobJournal reopened(path, Durability::kFlush);
    ASSERT_TRUE(reopened.ok()) << durability_name(durability);
    EXPECT_EQ(reopened.recovered_bytes_dropped(), 0u);
    EXPECT_EQ(reopened.records().size(), all_kinds_fixture().size());
    std::remove(path.c_str());
  }
}

// The headline torn-write contract: for EVERY truncation prefix of a valid
// journal, recovery keeps exactly the records whose frames fit entirely
// within the prefix, drops the rest, and leaves a file that a second open
// reads back clean (zero additional bytes dropped).
TEST(JobJournal, EveryTruncationPrefixRecoversLongestValidPrefix) {
  const std::string fixture_path = temp_path("trunc_fixture");
  const std::string bytes = build_fixture_file(fixture_path);
  std::remove(fixture_path.c_str());

  // Frame boundaries, recomputed from the framing layout: magic(4) +
  // size(4) + payload + echo(4).
  std::vector<std::size_t> boundaries = {0};
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::uint32_t payload_size = 0;
    for (int i = 0; i < 4; ++i) {
      payload_size |= static_cast<std::uint32_t>(
                          static_cast<unsigned char>(bytes[offset + 4 + i]))
                      << (8 * i);
    }
    offset += 4 + 4 + payload_size + 4;
    boundaries.push_back(offset);
  }
  ASSERT_EQ(offset, bytes.size());
  ASSERT_EQ(boundaries.size(), all_kinds_fixture().size() + 1);

  const std::string path = temp_path("trunc");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    write_bytes(path, bytes.substr(0, cut));

    std::size_t expect_records = 0;
    std::size_t expect_kept_bytes = 0;
    for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
      if (boundaries[b + 1] <= cut) {
        expect_records = b + 1;
        expect_kept_bytes = boundaries[b + 1];
      }
    }

    JobJournal journal(path, Durability::kFlush);
    ASSERT_TRUE(journal.ok()) << "cut=" << cut;
    EXPECT_EQ(journal.records().size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(journal.recovered_bytes_dropped(), cut - expect_kept_bytes)
        << "cut=" << cut;

    JobJournal reopened(path, Durability::kFlush);
    ASSERT_TRUE(reopened.ok()) << "cut=" << cut;
    EXPECT_EQ(reopened.recovered_bytes_dropped(), 0u) << "cut=" << cut;
    EXPECT_EQ(reopened.records().size(), expect_records) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

// Seeded structure-unaware mutations: flip/overwrite/truncate/extend the
// file bytes and reopen.  Recovery must never trap (ASan/UBSan enforce),
// never invent records, and always leave a prefix-consistent file.
TEST(JobJournal, SeededByteMutationsNeverTrapAndAlwaysLeaveConsistentFile) {
  const std::string fixture_path = temp_path("fuzz_fixture");
  const std::string pristine = build_fixture_file(fixture_path);
  std::remove(fixture_path.c_str());
  const std::size_t original_records = all_kinds_fixture().size();

  util::Xoshiro256 rng(0xF1A5'11CE'5EEDULL);
  const std::string path = temp_path("fuzz");
  for (int iteration = 0; iteration < 4000; ++iteration) {
    std::string bytes = pristine;
    const int edits = 1 + static_cast<int>(rng.bounded(8));
    for (int edit = 0; edit < edits && !bytes.empty(); ++edit) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.bounded(bytes.size()));
      switch (rng.bounded(6)) {
        case 0:
          bytes[pos] = static_cast<char>(
              static_cast<unsigned char>(bytes[pos]) ^
              (1u << (rng.bounded(8))));
          break;
        case 1:
          bytes[pos] = '\x00';
          break;
        case 2:
          bytes[pos] = '\xFF';
          break;
        case 3:
          bytes[pos] = static_cast<char>(rng() & 0xFF);
          break;
        case 4:
          bytes.resize(pos);  // truncate
          break;
        default:
          bytes.append(1 + rng.bounded(16),
                       static_cast<char>(rng() & 0xFF));
          break;
      }
    }
    write_bytes(path, bytes);

    JobJournal journal(path, Durability::kFlush);
    ASSERT_TRUE(journal.ok()) << "iteration=" << iteration;
    const std::size_t recovered = journal.records().size();
    // Mutations can corrupt but not mint new valid frames out of extra
    // appended garbage beyond reframing existing bytes; the recovered
    // record count can never exceed what extension could re-frame.
    EXPECT_LE(recovered, original_records + 1) << "iteration=" << iteration;

    JobJournal reopened(path, Durability::kFlush);
    ASSERT_TRUE(reopened.ok()) << "iteration=" << iteration;
    EXPECT_EQ(reopened.recovered_bytes_dropped(), 0u)
        << "iteration=" << iteration;
    EXPECT_EQ(reopened.records().size(), recovered)
        << "iteration=" << iteration;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flashroute::svc
