// fr_model litmus for the PackedDcb flags-byte protocol (core/dcb.h): the
// spinlock bit shares a byte with the flag bits, so *every* flag update
// must be an atomic RMW — a plain load/modify/store from the sender can
// erase the receiver's concurrent lock acquisition.  dcb.h states this
// invariant in prose; here the fr_model scheduler proves it by exhaustive
// interleaving, on a model::Atomic<uint8_t> mirror of the exact protocol
// (PackedDcb hard-codes std::atomic, so the byte protocol is restated on
// the model type; the constants and orderings match dcb.h line for line).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/model_sched.h"

namespace model = flashroute::util::model;

namespace {

// Mirrors PackedDcb's flag/lock byte: top bit is the spinlock, low bits
// are protocol flags (kFlagPreprobed etc.).
constexpr std::uint8_t kLocked = 0x80;

struct FlagsByte {
  model::Atomic<std::uint8_t> bits{0};

  // PackedDcb::try_lock: single fetch_or attempt, success iff 0 -> 1.
  bool try_lock() {
    return (bits.fetch_or(kLocked, std::memory_order_acquire) & kLocked) == 0;
  }
  // PackedDcb::unlock: fetch_and clearing only the lock bit.
  void unlock() {
    bits.fetch_and(static_cast<std::uint8_t>(~kLocked),
                   std::memory_order_release);
  }
  // PackedDcb::set_flags: RMW, lock bit masked out of the argument.
  void set_flags(std::uint8_t mask) {
    bits.fetch_or(static_cast<std::uint8_t>(mask & ~kLocked),
                  std::memory_order_relaxed);
  }
  std::uint8_t load() { return bits.load(std::memory_order_relaxed); }
};

// Receiver claims the DCB via try_lock (bounded retry), mutates guarded
// state, unlocks.  Sender concurrently sets a flag bit *without* the lock
// — legal precisely because set_flags is an RMW that spares the lock bit.
model::Execution rmw_protocol_execution() {
  auto flags = std::make_shared<FlagsByte>();
  auto locked_ok = std::make_shared<bool>(false);
  model::Execution execution;
  execution.threads = {
      [flags, locked_ok] {
        for (int attempt = 0; attempt < 2; ++attempt) {
          if (!flags->try_lock()) continue;
          flags->set_flags(0x01);  // guarded mutation while holding the lock
          flags->unlock();
          *locked_ok = true;
          break;
        }
      },
      [flags] { flags->set_flags(0x02); },  // lock-free flag set (sender)
  };
  execution.check = [flags, locked_ok] {
    const std::uint8_t value = flags->load();
    // The sender's bit survives every schedule; the receiver's bit is set
    // iff it won the lock; the lock bit never leaks past unlock.
    if ((value & 0x02) == 0) return false;
    if (*locked_ok != ((value & 0x01) != 0)) return false;
    return (value & kLocked) == 0;
  };
  return execution;
}

TEST(ModelDcb, FlagRmwAndSpinlockComposeUnderEverySchedule) {
  model::Explorer explorer;
  const model::Result result = explorer.explore(rmw_protocol_execution);
  EXPECT_FALSE(result.failed)
      << "counterexample schedule: " << result.schedule;
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.executions, 1);
  std::cout << "dcb schedules explored: " << result.executions << "\n";
}

// The broken variant: the sender sets its flag with a plain
// load-modify-store (what a non-atomic `flags_ |= mask` compiles to).
// Interleaved with the receiver's fetch_or lock acquisition, the store
// writes back a byte snapshotted before the lock bit was set — erasing
// the receiver's lock.  This is the exact failure mode dcb.h's comment
// warns about.
model::Execution plain_store_execution() {
  auto flags = std::make_shared<FlagsByte>();
  auto got_lock = std::make_shared<bool>(false);
  model::Execution execution;
  execution.threads = {
      [flags, got_lock] { *got_lock = flags->try_lock(); },  // never unlocks
      [flags] {
        // BUG: plain read-modify-write instead of fetch_or.
        const std::uint8_t snapshot = flags->load();
        flags->bits.store(static_cast<std::uint8_t>(snapshot | 0x02),
                          std::memory_order_relaxed);
      },
  };
  execution.check = [flags, got_lock] {
    // If the receiver holds the lock, the lock bit must still be set.
    return !*got_lock || (flags->load() & kLocked) != 0;
  };
  return execution;
}

TEST(ModelDcb, PlainStoreErasingLockBitIsCaughtWithReplayableSchedule) {
  model::Explorer explorer;
  const model::Result found = explorer.explore(plain_store_execution);
  ASSERT_TRUE(found.failed)
      << "lost lock bit not caught — RMW requirement not demonstrated";
  ASSERT_FALSE(found.schedule.empty());
  std::cout << "broken-dcb counterexample: " << found.schedule << "\n";

  const model::Result replayed =
      explorer.replay(found.schedule, plain_store_execution);
  EXPECT_TRUE(replayed.failed) << "schedule did not replay";
}

}  // namespace
