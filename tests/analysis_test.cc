// Tests for the analysis modules on synthetic inputs: the Table 4
// overprobing replay, the Fig 8 / §5.1 route comparisons, and the
// Figs 3-4 distance evaluations.

#include <gtest/gtest.h>

#include "analysis/distance_eval.h"
#include "analysis/overprobing.h"
#include "analysis/route_compare.h"

namespace flashroute::analysis {
namespace {

core::ScanResult make_scan(std::size_t prefixes) {
  core::ScanResult scan;
  scan.routes.assign(prefixes, {});
  scan.destination_distance.assign(prefixes, 0);
  scan.trigger_ttl.assign(prefixes, 0);
  return scan;
}

// --- Overprobing -----------------------------------------------------------

TEST(TopologyMap, BuildsFromRoutes) {
  auto reference = make_scan(4);
  reference.routes[0] = {{0xC8000001, 1, 0}, {0xC8000002, 2, 0}};
  reference.routes[1] = {{0xC8000001, 1, 0}};
  const TopologyMap map(reference, 4, 32);
  EXPECT_EQ(map.interface_at(0, 1), 0xC8000001u);
  EXPECT_EQ(map.interface_at(0, 2), 0xC8000002u);
  EXPECT_EQ(map.interface_at(0, 3), 0u);
  EXPECT_EQ(map.interface_at(1, 1), 0xC8000001u);
  EXPECT_EQ(map.interface_at(2, 1), 0u);
  EXPECT_EQ(map.interface_at(99, 1), 0u);  // out of range
  EXPECT_EQ(map.interface_at(0, 0), 0u);
  EXPECT_EQ(map.interface_at(0, 33), 0u);
}

TEST(Overprobing, UnderLimitIsClean) {
  auto reference = make_scan(1);
  reference.routes[0] = {{0xC8000001, 1, 0}};
  const TopologyMap map(reference, 1, 32);

  std::vector<core::ProbeLogEntry> log;
  for (int i = 0; i < 10; ++i) {
    log.push_back({i * util::kMillisecond, 0x00000001u << 8 | 7, 1, false});
  }
  // destination prefix index 1? first_prefix=1 so prefix offset 0:
  const auto report = analyze_overprobing(log, map, 1, 500, util::kSecond);
  EXPECT_EQ(report.mapped_probes, 10u);
  EXPECT_EQ(report.overprobed_interfaces, 0u);
  EXPECT_EQ(report.dropped_probes, 0u);
}

TEST(Overprobing, BurstBeyondLimitDrops) {
  auto reference = make_scan(1);
  reference.routes[0] = {{0xC8000001, 1, 0}};
  const TopologyMap map(reference, 1, 32);
  std::vector<core::ProbeLogEntry> log;
  for (int i = 0; i < 700; ++i) {
    log.push_back({i * 100'000, 0x00000001u << 8 | 7, 1, false});
  }
  const auto report = analyze_overprobing(log, map, 1, 500, util::kSecond);
  EXPECT_EQ(report.overprobed_interfaces, 1u);
  EXPECT_EQ(report.dropped_probes, 200u);
}

TEST(Overprobing, WindowResetsCounts) {
  auto reference = make_scan(1);
  reference.routes[0] = {{0xC8000001, 1, 0}};
  const TopologyMap map(reference, 1, 32);
  std::vector<core::ProbeLogEntry> log;
  // 400 probes in second 0, 400 in second 1: never over 500 per window.
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 400; ++i) {
      log.push_back({s * util::kSecond + i, 0x00000001u << 8 | 7, 1, false});
    }
  }
  const auto report = analyze_overprobing(log, map, 1, 500, util::kSecond);
  EXPECT_EQ(report.dropped_probes, 0u);
}

TEST(Overprobing, UnmappedProbesIgnored) {
  auto reference = make_scan(1);
  const TopologyMap map(reference, 1, 32);  // empty topology
  std::vector<core::ProbeLogEntry> log{{0, 0x00000001u << 8 | 7, 1, false}};
  const auto report = analyze_overprobing(log, map, 1, 500, util::kSecond);
  EXPECT_EQ(report.mapped_probes, 0u);
}

// --- Route comparison --------------------------------------------------------

TEST(RouteLengths, PreferDestinationDistance) {
  auto scan = make_scan(3);
  scan.destination_distance[0] = 9;
  scan.routes[0] = {{1, 12, 0}};  // deeper hop exists but dest answered at 9
  scan.routes[1] = {{2, 5, 0}, {3, 7, 0}};
  // routes[2] empty.
  const auto lengths = route_lengths(scan);
  EXPECT_EQ(lengths[0], 9);
  EXPECT_EQ(lengths[1], 7);
  EXPECT_EQ(lengths[2], 0);
}

TEST(RouteLengths, DestinationHopsDoNotCount) {
  auto scan = make_scan(1);
  scan.routes[0] = {{5, 11, core::RouteHop::kFromDestination}, {4, 6, 0}};
  EXPECT_EQ(route_lengths(scan)[0], 6);
}

TEST(CompareRouteLengths, CountsDirections) {
  auto a = make_scan(4);
  auto b = make_scan(4);
  a.destination_distance = {10, 8, 7, 0};
  b.destination_distance = {9, 8, 9, 5};
  a.routes[3] = {{1, 3, 0}};  // unresponsive but partially explored
  const auto all = compare_route_lengths(a, b, false);
  EXPECT_EQ(all.comparable, 4u);
  EXPECT_EQ(all.a_longer, 1u);  // 10 > 9
  EXPECT_EQ(all.equal, 1u);     // 8 == 8
  EXPECT_EQ(all.b_longer, 2u);  // 7 < 9, 3 < 5

  const auto both = compare_route_lengths(a, b, true);
  EXPECT_EQ(both.comparable, 3u);  // prefix 3 unreached in a
}

TEST(Jaccard, ByDistanceFromDestination) {
  auto a = make_scan(2);
  auto b = make_scan(2);
  a.destination_distance = {5, 0};
  b.destination_distance = {5, 0};
  // Both scans see hop X one hop before the destination; scan A also sees
  // hop Y there for... same prefix; and they disagree 2 hops before.
  a.routes[0] = {{100, 4, 0}, {200, 3, 0}};
  b.routes[0] = {{100, 4, 0}, {201, 3, 0}};
  const auto jaccard = jaccard_by_distance_from_destination(a, b, 4);
  EXPECT_DOUBLE_EQ(jaccard.at(1), 1.0);  // {100} vs {100}
  EXPECT_DOUBLE_EQ(jaccard.at(2), 0.0);  // {200} vs {201}
}

TEST(Jaccard, RequireBothResponsiveFiltersPrefixes) {
  auto a = make_scan(2);
  auto b = make_scan(2);
  a.destination_distance = {5, 5};
  b.destination_distance = {5, 0};  // prefix 1 unresponsive in B
  a.routes[0] = {{100, 4, 0}};
  a.routes[1] = {{300, 4, 0}};
  b.routes[0] = {{100, 4, 0}};
  const auto strict = jaccard_by_distance_from_destination(a, b, 4, true);
  EXPECT_DOUBLE_EQ(strict.at(1), 1.0);  // prefix 1 excluded on both sides
  const auto loose = jaccard_by_distance_from_destination(a, b, 4, false);
  EXPECT_DOUBLE_EQ(loose.at(1), 0.5);  // {100,300} vs {100}
}

TEST(CrossAppearance, DetectsTargetsOnRoutes) {
  auto a = make_scan(2);
  auto b = make_scan(2);
  const std::vector<std::uint32_t> targets_a{0x0100000A, 0x0100010A};
  const std::vector<std::uint32_t> targets_b{0x01000001, 0x01000101};
  // B's target (the appliance) appears en-route in A's scan of prefix 0.
  a.routes[0] = {{0x01000001, 7, 0}};
  a.destination_distance = {8, 0};
  b.destination_distance = {7, 7};
  const auto cross = cross_appearance(a, targets_a, b, targets_b);
  EXPECT_EQ(cross.b_targets_on_a_routes, 1u);
  EXPECT_EQ(cross.a_targets_on_b_routes, 0u);
  EXPECT_EQ(cross.a_targets_responsive, 1u);
  EXPECT_EQ(cross.b_targets_responsive, 2u);
}

TEST(CrossAppearance, DestinationResponsesDoNotCount) {
  auto a = make_scan(1);
  auto b = make_scan(1);
  const std::vector<std::uint32_t> targets_a{0x0100000A};
  const std::vector<std::uint32_t> targets_b{0x01000001};
  a.routes[0] = {{0x01000001, 8, core::RouteHop::kFromDestination}};
  const auto cross = cross_appearance(a, targets_a, b, targets_b);
  EXPECT_EQ(cross.b_targets_on_a_routes, 0u);
}

TEST(Loops, DetectsRepeatedInterfaceOnUnresponsiveRoute) {
  auto scan = make_scan(3);
  // Prefix 0: loop (interface 9 at two TTLs), unresponsive.
  scan.routes[0] = {{9, 10, 0}, {8, 11, 0}, {9, 12, 0}};
  // Prefix 1: duplicate response at the same TTL is not a loop.
  scan.routes[1] = {{9, 10, 0}, {9, 10, 0}};
  // Prefix 2: responsive — excluded even though hops repeat.
  scan.routes[2] = {{9, 10, 0}, {9, 12, 0}};
  scan.destination_distance[2] = 13;
  const auto report = count_loops(scan);
  EXPECT_EQ(report.unresponsive_routes, 2u);
  EXPECT_EQ(report.looped_routes, 1u);
}

// --- Distance evaluation ------------------------------------------------------

TEST(DistanceDifference, OnlyJointlyMeasuredCount) {
  const std::vector<std::uint8_t> value{10, 0, 12, 14};
  const std::vector<std::uint8_t> reference{11, 9, 0, 14};
  const auto histogram = distance_difference(value, reference);
  EXPECT_EQ(histogram.total(), 2u);  // indices 0 and 3
  EXPECT_EQ(histogram.count(1), 1u);   // 11 - 10
  EXPECT_EQ(histogram.count(0), 1u);   // 14 - 14
}

TEST(EvaluatePrediction, PredictsFromNearestNeighbour) {
  // measured: [10, 0, 0, 12]; index 0's nearest measured neighbour within
  // span 3 is index 3 (value 12); reference says 11 -> diff -1.
  const std::vector<std::uint8_t> measured{10, 0, 0, 12};
  const std::vector<std::uint8_t> reference{11, 0, 0, 12};
  const auto eval = evaluate_prediction(measured, reference, 3);
  EXPECT_EQ(eval.measured_blocks, 2u);
  EXPECT_EQ(eval.predictable_blocks, 2u);
  EXPECT_EQ(eval.difference.count(-1), 1u);  // 11 - 12 for index 0
  EXPECT_EQ(eval.difference.count(2), 1u);   // 12 - 10 for index 3
}

TEST(EvaluatePrediction, RespectsSpan) {
  const std::vector<std::uint8_t> measured{10, 0, 0, 0, 0, 0, 12};
  const std::vector<std::uint8_t> reference{10, 0, 0, 0, 0, 0, 12};
  const auto eval = evaluate_prediction(measured, reference, 3);
  EXPECT_EQ(eval.measured_blocks, 2u);
  EXPECT_EQ(eval.predictable_blocks, 0u);  // gap of 6 > span 3
}

TEST(EvaluatePrediction, PrefersCloserNeighbour) {
  const std::vector<std::uint8_t> measured{9, 10, 0, 14};
  const std::vector<std::uint8_t> reference{9, 10, 0, 14};
  const auto eval = evaluate_prediction(measured, reference, 3);
  // Index 1 predicted from index 0 (distance 1), not index 3 (distance 2):
  // diff = 10 - 9 = 1 must be present.
  EXPECT_GE(eval.difference.count(1), 1u);
}

}  // namespace
}  // namespace flashroute::analysis
