file(REMOVE_RECURSE
  "CMakeFiles/fr_baselines.dir/scamper.cc.o"
  "CMakeFiles/fr_baselines.dir/scamper.cc.o.d"
  "CMakeFiles/fr_baselines.dir/yarrp.cc.o"
  "CMakeFiles/fr_baselines.dir/yarrp.cc.o.d"
  "libfr_baselines.a"
  "libfr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
