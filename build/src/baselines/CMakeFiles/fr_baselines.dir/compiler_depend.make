# Empty compiler generated dependencies file for fr_baselines.
# This may be replaced when dependencies are built.
