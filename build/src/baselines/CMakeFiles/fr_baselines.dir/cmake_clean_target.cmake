file(REMOVE_RECURSE
  "libfr_baselines.a"
)
