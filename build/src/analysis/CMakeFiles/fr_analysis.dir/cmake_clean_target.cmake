file(REMOVE_RECURSE
  "libfr_analysis.a"
)
