file(REMOVE_RECURSE
  "CMakeFiles/fr_analysis.dir/churn.cc.o"
  "CMakeFiles/fr_analysis.dir/churn.cc.o.d"
  "CMakeFiles/fr_analysis.dir/distance_eval.cc.o"
  "CMakeFiles/fr_analysis.dir/distance_eval.cc.o.d"
  "CMakeFiles/fr_analysis.dir/overprobing.cc.o"
  "CMakeFiles/fr_analysis.dir/overprobing.cc.o.d"
  "CMakeFiles/fr_analysis.dir/route_compare.cc.o"
  "CMakeFiles/fr_analysis.dir/route_compare.cc.o.d"
  "CMakeFiles/fr_analysis.dir/route_holes.cc.o"
  "CMakeFiles/fr_analysis.dir/route_holes.cc.o.d"
  "libfr_analysis.a"
  "libfr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
