# Empty compiler generated dependencies file for fr_analysis.
# This may be replaced when dependencies are built.
