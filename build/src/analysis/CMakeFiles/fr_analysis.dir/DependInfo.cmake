
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/churn.cc" "src/analysis/CMakeFiles/fr_analysis.dir/churn.cc.o" "gcc" "src/analysis/CMakeFiles/fr_analysis.dir/churn.cc.o.d"
  "/root/repo/src/analysis/distance_eval.cc" "src/analysis/CMakeFiles/fr_analysis.dir/distance_eval.cc.o" "gcc" "src/analysis/CMakeFiles/fr_analysis.dir/distance_eval.cc.o.d"
  "/root/repo/src/analysis/overprobing.cc" "src/analysis/CMakeFiles/fr_analysis.dir/overprobing.cc.o" "gcc" "src/analysis/CMakeFiles/fr_analysis.dir/overprobing.cc.o.d"
  "/root/repo/src/analysis/route_compare.cc" "src/analysis/CMakeFiles/fr_analysis.dir/route_compare.cc.o" "gcc" "src/analysis/CMakeFiles/fr_analysis.dir/route_compare.cc.o.d"
  "/root/repo/src/analysis/route_holes.cc" "src/analysis/CMakeFiles/fr_analysis.dir/route_holes.cc.o" "gcc" "src/analysis/CMakeFiles/fr_analysis.dir/route_holes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
