file(REMOVE_RECURSE
  "CMakeFiles/fr_util.dir/logging.cc.o"
  "CMakeFiles/fr_util.dir/logging.cc.o.d"
  "CMakeFiles/fr_util.dir/permutation.cc.o"
  "CMakeFiles/fr_util.dir/permutation.cc.o.d"
  "CMakeFiles/fr_util.dir/stats.cc.o"
  "CMakeFiles/fr_util.dir/stats.cc.o.d"
  "libfr_util.a"
  "libfr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
