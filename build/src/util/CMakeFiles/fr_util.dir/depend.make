# Empty dependencies file for fr_util.
# This may be replaced when dependencies are built.
