file(REMOVE_RECURSE
  "libfr_util.a"
)
