file(REMOVE_RECURSE
  "CMakeFiles/fr_core.dir/exclusion.cc.o"
  "CMakeFiles/fr_core.dir/exclusion.cc.o.d"
  "CMakeFiles/fr_core.dir/probe_codec.cc.o"
  "CMakeFiles/fr_core.dir/probe_codec.cc.o.d"
  "CMakeFiles/fr_core.dir/tracer.cc.o"
  "CMakeFiles/fr_core.dir/tracer.cc.o.d"
  "libfr_core.a"
  "libfr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
