file(REMOVE_RECURSE
  "CMakeFiles/fr_sim.dir/network.cc.o"
  "CMakeFiles/fr_sim.dir/network.cc.o.d"
  "CMakeFiles/fr_sim.dir/topology.cc.o"
  "CMakeFiles/fr_sim.dir/topology.cc.o.d"
  "libfr_sim.a"
  "libfr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
