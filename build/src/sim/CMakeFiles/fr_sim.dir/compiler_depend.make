# Empty compiler generated dependencies file for fr_sim.
# This may be replaced when dependencies are built.
