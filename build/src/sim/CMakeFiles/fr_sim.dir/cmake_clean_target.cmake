file(REMOVE_RECURSE
  "libfr_sim.a"
)
