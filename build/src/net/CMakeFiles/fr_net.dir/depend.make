# Empty dependencies file for fr_net.
# This may be replaced when dependencies are built.
