file(REMOVE_RECURSE
  "libfr_net.a"
)
