file(REMOVE_RECURSE
  "CMakeFiles/fr_net.dir/checksum.cc.o"
  "CMakeFiles/fr_net.dir/checksum.cc.o.d"
  "CMakeFiles/fr_net.dir/headers.cc.o"
  "CMakeFiles/fr_net.dir/headers.cc.o.d"
  "CMakeFiles/fr_net.dir/icmp.cc.o"
  "CMakeFiles/fr_net.dir/icmp.cc.o.d"
  "CMakeFiles/fr_net.dir/ipv4.cc.o"
  "CMakeFiles/fr_net.dir/ipv4.cc.o.d"
  "CMakeFiles/fr_net.dir/raw/raw_socket_transport.cc.o"
  "CMakeFiles/fr_net.dir/raw/raw_socket_transport.cc.o.d"
  "libfr_net.a"
  "libfr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
