file(REMOVE_RECURSE
  "CMakeFiles/fr_io.dir/pcap.cc.o"
  "CMakeFiles/fr_io.dir/pcap.cc.o.d"
  "CMakeFiles/fr_io.dir/scan_archive.cc.o"
  "CMakeFiles/fr_io.dir/scan_archive.cc.o.d"
  "libfr_io.a"
  "libfr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
