# Empty dependencies file for fr_io.
# This may be replaced when dependencies are built.
