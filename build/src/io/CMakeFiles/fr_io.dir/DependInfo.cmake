
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/pcap.cc" "src/io/CMakeFiles/fr_io.dir/pcap.cc.o" "gcc" "src/io/CMakeFiles/fr_io.dir/pcap.cc.o.d"
  "/root/repo/src/io/scan_archive.cc" "src/io/CMakeFiles/fr_io.dir/scan_archive.cc.o" "gcc" "src/io/CMakeFiles/fr_io.dir/scan_archive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
