file(REMOVE_RECURSE
  "libfr_io.a"
)
