file(REMOVE_RECURSE
  "CMakeFiles/flashroute_cli.dir/flashroute_cli.cpp.o"
  "CMakeFiles/flashroute_cli.dir/flashroute_cli.cpp.o.d"
  "flashroute_cli"
  "flashroute_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashroute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
