# Empty dependencies file for flashroute_cli.
# This may be replaced when dependencies are built.
