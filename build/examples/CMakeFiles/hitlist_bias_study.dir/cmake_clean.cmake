file(REMOVE_RECURSE
  "CMakeFiles/hitlist_bias_study.dir/hitlist_bias_study.cpp.o"
  "CMakeFiles/hitlist_bias_study.dir/hitlist_bias_study.cpp.o.d"
  "hitlist_bias_study"
  "hitlist_bias_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitlist_bias_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
