# Empty dependencies file for hitlist_bias_study.
# This may be replaced when dependencies are built.
