file(REMOVE_RECURSE
  "CMakeFiles/load_balancer_discovery.dir/load_balancer_discovery.cpp.o"
  "CMakeFiles/load_balancer_discovery.dir/load_balancer_discovery.cpp.o.d"
  "load_balancer_discovery"
  "load_balancer_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
