# Empty compiler generated dependencies file for load_balancer_discovery.
# This may be replaced when dependencies are built.
