file(REMOVE_RECURSE
  "CMakeFiles/snapshot_churn.dir/snapshot_churn.cpp.o"
  "CMakeFiles/snapshot_churn.dir/snapshot_churn.cpp.o.d"
  "snapshot_churn"
  "snapshot_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
