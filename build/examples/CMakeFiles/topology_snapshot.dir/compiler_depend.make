# Empty compiler generated dependencies file for topology_snapshot.
# This may be replaced when dependencies are built.
