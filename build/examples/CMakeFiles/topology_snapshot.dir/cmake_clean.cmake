file(REMOVE_RECURSE
  "CMakeFiles/topology_snapshot.dir/topology_snapshot.cpp.o"
  "CMakeFiles/topology_snapshot.dir/topology_snapshot.cpp.o.d"
  "topology_snapshot"
  "topology_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
