# Empty compiler generated dependencies file for raw_socket_test.
# This may be replaced when dependencies are built.
