file(REMOVE_RECURSE
  "CMakeFiles/raw_socket_test.dir/raw_socket_test.cc.o"
  "CMakeFiles/raw_socket_test.dir/raw_socket_test.cc.o.d"
  "raw_socket_test"
  "raw_socket_test.pdb"
  "raw_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
