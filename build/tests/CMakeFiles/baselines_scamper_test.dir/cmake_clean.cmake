file(REMOVE_RECURSE
  "CMakeFiles/baselines_scamper_test.dir/baselines_scamper_test.cc.o"
  "CMakeFiles/baselines_scamper_test.dir/baselines_scamper_test.cc.o.d"
  "baselines_scamper_test"
  "baselines_scamper_test.pdb"
  "baselines_scamper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_scamper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
