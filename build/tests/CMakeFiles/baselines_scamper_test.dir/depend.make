# Empty dependencies file for baselines_scamper_test.
# This may be replaced when dependencies are built.
