file(REMOVE_RECURSE
  "CMakeFiles/io_scan_archive_test.dir/io_scan_archive_test.cc.o"
  "CMakeFiles/io_scan_archive_test.dir/io_scan_archive_test.cc.o.d"
  "io_scan_archive_test"
  "io_scan_archive_test.pdb"
  "io_scan_archive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_scan_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
