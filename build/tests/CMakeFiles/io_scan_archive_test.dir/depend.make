# Empty dependencies file for io_scan_archive_test.
# This may be replaced when dependencies are built.
