# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for io_scan_archive_test.
