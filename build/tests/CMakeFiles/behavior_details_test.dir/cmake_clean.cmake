file(REMOVE_RECURSE
  "CMakeFiles/behavior_details_test.dir/behavior_details_test.cc.o"
  "CMakeFiles/behavior_details_test.dir/behavior_details_test.cc.o.d"
  "behavior_details_test"
  "behavior_details_test.pdb"
  "behavior_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavior_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
