# Empty dependencies file for behavior_details_test.
# This may be replaced when dependencies are built.
