# Empty dependencies file for util_permutation_test.
# This may be replaced when dependencies are built.
