file(REMOVE_RECURSE
  "CMakeFiles/util_permutation_test.dir/util_permutation_test.cc.o"
  "CMakeFiles/util_permutation_test.dir/util_permutation_test.cc.o.d"
  "util_permutation_test"
  "util_permutation_test.pdb"
  "util_permutation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_permutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
