# Empty dependencies file for core_tracer_test.
# This may be replaced when dependencies are built.
