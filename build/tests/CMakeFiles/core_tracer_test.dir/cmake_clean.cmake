file(REMOVE_RECURSE
  "CMakeFiles/core_tracer_test.dir/core_tracer_test.cc.o"
  "CMakeFiles/core_tracer_test.dir/core_tracer_test.cc.o.d"
  "core_tracer_test"
  "core_tracer_test.pdb"
  "core_tracer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
