# Empty dependencies file for analysis_churn_holes_test.
# This may be replaced when dependencies are built.
