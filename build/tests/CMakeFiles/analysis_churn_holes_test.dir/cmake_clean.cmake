file(REMOVE_RECURSE
  "CMakeFiles/analysis_churn_holes_test.dir/analysis_churn_holes_test.cc.o"
  "CMakeFiles/analysis_churn_holes_test.dir/analysis_churn_holes_test.cc.o.d"
  "analysis_churn_holes_test"
  "analysis_churn_holes_test.pdb"
  "analysis_churn_holes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_churn_holes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
