file(REMOVE_RECURSE
  "CMakeFiles/io_pcap_test.dir/io_pcap_test.cc.o"
  "CMakeFiles/io_pcap_test.dir/io_pcap_test.cc.o.d"
  "io_pcap_test"
  "io_pcap_test.pdb"
  "io_pcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
