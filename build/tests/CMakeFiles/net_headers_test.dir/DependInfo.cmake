
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_headers_test.cc" "tests/CMakeFiles/net_headers_test.dir/net_headers_test.cc.o" "gcc" "tests/CMakeFiles/net_headers_test.dir/net_headers_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fr_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
