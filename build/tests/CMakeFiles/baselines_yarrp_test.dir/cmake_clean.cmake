file(REMOVE_RECURSE
  "CMakeFiles/baselines_yarrp_test.dir/baselines_yarrp_test.cc.o"
  "CMakeFiles/baselines_yarrp_test.dir/baselines_yarrp_test.cc.o.d"
  "baselines_yarrp_test"
  "baselines_yarrp_test.pdb"
  "baselines_yarrp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_yarrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
