# Empty compiler generated dependencies file for core_dcb_array_test.
# This may be replaced when dependencies are built.
