file(REMOVE_RECURSE
  "CMakeFiles/core_dcb_array_test.dir/core_dcb_array_test.cc.o"
  "CMakeFiles/core_dcb_array_test.dir/core_dcb_array_test.cc.o.d"
  "core_dcb_array_test"
  "core_dcb_array_test.pdb"
  "core_dcb_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dcb_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
