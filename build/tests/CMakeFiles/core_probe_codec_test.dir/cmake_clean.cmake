file(REMOVE_RECURSE
  "CMakeFiles/core_probe_codec_test.dir/core_probe_codec_test.cc.o"
  "CMakeFiles/core_probe_codec_test.dir/core_probe_codec_test.cc.o.d"
  "core_probe_codec_test"
  "core_probe_codec_test.pdb"
  "core_probe_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_probe_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
