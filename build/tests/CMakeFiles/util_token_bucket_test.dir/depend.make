# Empty dependencies file for util_token_bucket_test.
# This may be replaced when dependencies are built.
