# Empty dependencies file for net_icmp_test.
# This may be replaced when dependencies are built.
