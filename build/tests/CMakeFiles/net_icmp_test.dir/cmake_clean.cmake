file(REMOVE_RECURSE
  "CMakeFiles/net_icmp_test.dir/net_icmp_test.cc.o"
  "CMakeFiles/net_icmp_test.dir/net_icmp_test.cc.o.d"
  "net_icmp_test"
  "net_icmp_test.pdb"
  "net_icmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_icmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
