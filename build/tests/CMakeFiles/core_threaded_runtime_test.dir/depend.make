# Empty dependencies file for core_threaded_runtime_test.
# This may be replaced when dependencies are built.
