# Empty compiler generated dependencies file for table1_redundancy.
# This may be replaced when dependencies are built.
