file(REMOVE_RECURSE
  "CMakeFiles/sec53_address_modification.dir/sec53_address_modification.cc.o"
  "CMakeFiles/sec53_address_modification.dir/sec53_address_modification.cc.o.d"
  "sec53_address_modification"
  "sec53_address_modification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_address_modification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
