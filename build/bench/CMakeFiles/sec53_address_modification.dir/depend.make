# Empty dependencies file for sec53_address_modification.
# This may be replaced when dependencies are built.
