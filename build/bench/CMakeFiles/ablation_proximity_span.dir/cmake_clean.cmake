file(REMOVE_RECURSE
  "CMakeFiles/ablation_proximity_span.dir/ablation_proximity_span.cc.o"
  "CMakeFiles/ablation_proximity_span.dir/ablation_proximity_span.cc.o.d"
  "ablation_proximity_span"
  "ablation_proximity_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proximity_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
