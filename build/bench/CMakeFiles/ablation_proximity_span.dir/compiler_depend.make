# Empty compiler generated dependencies file for ablation_proximity_span.
# This may be replaced when dependencies are built.
