file(REMOVE_RECURSE
  "CMakeFiles/fig3_distance_accuracy.dir/fig3_distance_accuracy.cc.o"
  "CMakeFiles/fig3_distance_accuracy.dir/fig3_distance_accuracy.cc.o.d"
  "fig3_distance_accuracy"
  "fig3_distance_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_distance_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
