# Empty dependencies file for table4_overprobing.
# This may be replaced when dependencies are built.
