file(REMOVE_RECURSE
  "CMakeFiles/table4_overprobing.dir/table4_overprobing.cc.o"
  "CMakeFiles/table4_overprobing.dir/table4_overprobing.cc.o.d"
  "table4_overprobing"
  "table4_overprobing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overprobing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
