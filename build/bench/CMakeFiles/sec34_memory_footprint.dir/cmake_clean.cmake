file(REMOVE_RECURSE
  "CMakeFiles/sec34_memory_footprint.dir/sec34_memory_footprint.cc.o"
  "CMakeFiles/sec34_memory_footprint.dir/sec34_memory_footprint.cc.o.d"
  "sec34_memory_footprint"
  "sec34_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec34_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
