# Empty compiler generated dependencies file for sec34_memory_footprint.
# This may be replaced when dependencies are built.
