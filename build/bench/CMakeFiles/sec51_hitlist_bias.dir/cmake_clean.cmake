file(REMOVE_RECURSE
  "CMakeFiles/sec51_hitlist_bias.dir/sec51_hitlist_bias.cc.o"
  "CMakeFiles/sec51_hitlist_bias.dir/sec51_hitlist_bias.cc.o.d"
  "sec51_hitlist_bias"
  "sec51_hitlist_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_hitlist_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
