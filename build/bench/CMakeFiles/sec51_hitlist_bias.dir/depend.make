# Empty dependencies file for sec51_hitlist_bias.
# This may be replaced when dependencies are built.
