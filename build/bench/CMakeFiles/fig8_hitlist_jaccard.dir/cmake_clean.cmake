file(REMOVE_RECURSE
  "CMakeFiles/fig8_hitlist_jaccard.dir/fig8_hitlist_jaccard.cc.o"
  "CMakeFiles/fig8_hitlist_jaccard.dir/fig8_hitlist_jaccard.cc.o.d"
  "fig8_hitlist_jaccard"
  "fig8_hitlist_jaccard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hitlist_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
