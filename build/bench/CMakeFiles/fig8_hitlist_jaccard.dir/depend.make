# Empty dependencies file for fig8_hitlist_jaccard.
# This may be replaced when dependencies are built.
