# Empty dependencies file for sec54_future_work.
# This may be replaced when dependencies are built.
