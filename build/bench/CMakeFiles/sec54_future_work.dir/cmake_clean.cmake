file(REMOVE_RECURSE
  "CMakeFiles/sec54_future_work.dir/sec54_future_work.cc.o"
  "CMakeFiles/sec54_future_work.dir/sec54_future_work.cc.o.d"
  "sec54_future_work"
  "sec54_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
