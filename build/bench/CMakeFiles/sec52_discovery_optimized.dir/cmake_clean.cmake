file(REMOVE_RECURSE
  "CMakeFiles/sec52_discovery_optimized.dir/sec52_discovery_optimized.cc.o"
  "CMakeFiles/sec52_discovery_optimized.dir/sec52_discovery_optimized.cc.o.d"
  "sec52_discovery_optimized"
  "sec52_discovery_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_discovery_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
