# Empty dependencies file for sec52_discovery_optimized.
# This may be replaced when dependencies are built.
