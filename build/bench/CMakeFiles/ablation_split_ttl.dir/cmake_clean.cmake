file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_ttl.dir/ablation_split_ttl.cc.o"
  "CMakeFiles/ablation_split_ttl.dir/ablation_split_ttl.cc.o.d"
  "ablation_split_ttl"
  "ablation_split_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
