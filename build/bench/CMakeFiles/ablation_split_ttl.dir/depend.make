# Empty dependencies file for ablation_split_ttl.
# This may be replaced when dependencies are built.
