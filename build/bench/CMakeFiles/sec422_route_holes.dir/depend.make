# Empty dependencies file for sec422_route_holes.
# This may be replaced when dependencies are built.
