file(REMOVE_RECURSE
  "CMakeFiles/sec422_route_holes.dir/sec422_route_holes.cc.o"
  "CMakeFiles/sec422_route_holes.dir/sec422_route_holes.cc.o.d"
  "sec422_route_holes"
  "sec422_route_holes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec422_route_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
