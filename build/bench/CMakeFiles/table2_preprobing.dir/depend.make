# Empty dependencies file for table2_preprobing.
# This may be replaced when dependencies are built.
