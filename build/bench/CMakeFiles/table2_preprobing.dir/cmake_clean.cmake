file(REMOVE_RECURSE
  "CMakeFiles/table2_preprobing.dir/table2_preprobing.cc.o"
  "CMakeFiles/table2_preprobing.dir/table2_preprobing.cc.o.d"
  "table2_preprobing"
  "table2_preprobing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_preprobing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
