# Empty dependencies file for fig4_prediction_accuracy.
# This may be replaced when dependencies are built.
