file(REMOVE_RECURSE
  "CMakeFiles/fig6_gaplimit.dir/fig6_gaplimit.cc.o"
  "CMakeFiles/fig6_gaplimit.dir/fig6_gaplimit.cc.o.d"
  "fig6_gaplimit"
  "fig6_gaplimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gaplimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
