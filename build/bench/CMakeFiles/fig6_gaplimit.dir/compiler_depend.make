# Empty compiler generated dependencies file for fig6_gaplimit.
# This may be replaced when dependencies are built.
