// Topology snapshot: the paper's motivating workload (§1) — take the
// fastest-possible snapshot of all routes from one vantage point, then
// summarize what the snapshot contains.
//
// Runs FlashRoute-16 (the snapshot-optimized configuration per §4.2.2) over
// a /8-sized simulated universe, then reports:
//   * interface counts by hop distance (the shape of the route tree);
//   * route-length distribution of responsive targets;
//   * how much of the scan each probing phase consumed.
//
// Build & run:  ./build/examples/topology_snapshot [prefix_bits]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_set>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

int main(int argc, char** argv) {
  sim::SimParams params;
  params.prefix_bits = argc > 1 ? std::atoi(argv[1]) : 14;
  params.seed = 7;
  sim::Topology topology(params);
  sim::SimNetwork network(topology);
  const auto hitlist = topology.generate_hitlist();

  const double pps = sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  sim::SimScanRuntime runtime(network, pps);

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = pps;
  config.preprobe = core::PreprobeMode::kHitlist;
  config.hitlist = &hitlist;

  core::Tracer tracer(config, runtime);
  const core::ScanResult result = tracer.run();

  std::printf("snapshot of %u /24 blocks: %zu interfaces, %s probes, %s\n\n",
              config.num_prefixes(), result.interfaces.size(),
              util::format_count(result.probes_sent).c_str(),
              util::format_duration(result.scan_time).c_str());

  // Interfaces by hop distance: the tree is narrow near the vantage and
  // fans out toward the stubs.
  std::map<int, std::unordered_set<std::uint32_t>> by_ttl;
  for (const auto& route : result.routes) {
    for (const core::RouteHop& hop : route) {
      if (hop.flags & core::RouteHop::kFromDestination) continue;
      by_ttl[hop.ttl].insert(hop.ip);
    }
  }
  std::printf("%6s %12s\n", "TTL", "interfaces");
  for (const auto& [ttl, interfaces] : by_ttl) {
    if (ttl > 28) break;
    std::printf("%6d %12zu\n", ttl, interfaces.size());
  }

  // Route lengths of reached targets.
  util::Histogram lengths;
  for (const auto distance : result.destination_distance) {
    if (distance != 0) lengths.add(distance);
  }
  if (lengths.total() > 0) {
    std::printf("\nresponsive-target distance quantiles: p10=%lld p50=%lld "
                "p90=%lld p99=%lld (n=%s)\n",
                static_cast<long long>(lengths.quantile(0.10)),
                static_cast<long long>(lengths.quantile(0.50)),
                static_cast<long long>(lengths.quantile(0.90)),
                static_cast<long long>(lengths.quantile(0.99)),
                util::format_count(lengths.total()).c_str());
  }

  std::printf("\nphase accounting: preprobing %s of %s total (%s probes)\n",
              util::format_duration(result.preprobe_time).c_str(),
              util::format_duration(result.scan_time).c_str(),
              util::format_count(result.preprobe_probes).c_str());
  std::printf("backward probing stopped at a convergence point %s times\n",
              util::format_count(result.convergence_stops).c_str());
  return 0;
}
