// flashroute_cli — a command-line front end mirroring the real tool.
//
// Drives the FlashRoute engine with the paper's knobs exposed as flags and
// writes discovered routes to stdout (or a file).  Two backends:
//
//   --backend=sim   (default) scan a deterministic simulated Internet in
//                   virtual time — reproducible, runs anywhere;
//   --backend=raw   scan the real network through raw sockets (Linux,
//                   requires CAP_NET_RAW; real time).  Use responsibly and
//                   with permission from your network operators — see the
//                   paper's ethics appendix.
//
// Examples:
//   flashroute_cli --prefix-bits=12 --split-ttl=16 --gap-limit=5
//   flashroute_cli --preprobe=hitlist --extra-scans=3 --routes=routes.txt
//   sudo flashroute_cli --backend=raw --pps=1000 --prefix-bits=4
//        --first-prefix=198.18.0.0   (continuation of the line above)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "core/exclusion.h"
#include "core/sharded_tracer.h"
#include "core/tracer.h"
#include "io/checkpoint.h"
#include "io/pcap.h"
#include "io/scan_archive.h"
#include "net/raw/raw_socket_transport.h"
#include "obs/metrics.h"
#include "obs/scan_metrics.h"
#include "obs/scan_tracer.h"
#include "obs/snapshot_exporter.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/logging.h"
#include "util/stats.h"

using namespace flashroute;

namespace {

struct CliOptions {
  std::string backend = "sim";
  int prefix_bits = 12;
  std::string first_prefix = "1.0.0.0";
  double pps = 0;  // 0 = auto (100 Kpps scaled for sim, 1 Kpps raw)
  int shards = 0;  // 0 = classic single-engine scan; N>=1 = sharded engine
  int split_ttl = 16;
  int gap_limit = 5;
  int max_ttl = 32;
  std::string preprobe = "random";  // none | random | hitlist
  int proximity_span = 5;
  int extra_scans = 0;
  bool redundancy = true;
  bool forward = true;
  std::uint64_t seed = 1;
  std::string routes_file;
  std::string routes_format = "text";  // text | csv
  std::string archive_file;            // binary scan archive output
  std::string inspect_file;            // read an archive instead of scanning
  std::string exclusion_file;
  std::string targets_file;
  std::string pcap_file;  // capture all probes and responses
  std::string metrics_file;         // JSONL telemetry stream (DESIGN.md §7)
  double metrics_interval_ms = 1000;  // snapshot cadence, virtual ms

  // Fault injection (sim backend only; DESIGN.md §9).
  double fault_probe_loss = 0;
  double fault_response_loss = 0;
  double fault_duplicate = 0;
  double fault_reorder = 0;
  double fault_corrupt = 0;
  double fault_blackhole = 0;
  double fault_flap = 0;
  double fault_send_fail = 0;

  // Resilience layer (DESIGN.md §9).
  int retransmit = 0;
  double retransmit_timeout_ms = 500;
  bool backoff = false;
  std::string checkpoint_file;         // write checkpoints here
  double checkpoint_interval_ms = 1000;
  std::string resume_file;             // resume a checkpointed scan
  bool help = false;

  bool any_fault() const {
    return fault_probe_loss > 0 || fault_response_loss > 0 ||
           fault_duplicate > 0 || fault_reorder > 0 || fault_corrupt > 0 ||
           fault_blackhole > 0 || fault_flap > 0 || fault_send_fail > 0;
  }
  bool resilience() const {
    return retransmit > 0 || backoff || !checkpoint_file.empty() ||
           !resume_file.empty();
  }
};

void print_usage() {
  std::puts(
      "flashroute_cli — massive-scale traceroute (FlashRoute reproduction)\n"
      "\n"
      "  --backend=sim|raw        simulated Internet (default) or raw sockets\n"
      "  --prefix-bits=N          scan 2^N /24 blocks (default 12)\n"
      "  --first-prefix=A.B.C.0   first /24 of the range (default 1.0.0.0)\n"
      "  --pps=R                  probing rate (default: auto)\n"
      "  --shards=N               run the sharded engine with N workers over\n"
      "                           a fixed 8-shard decomposition (sim backend\n"
      "                           only; results are identical for any N\n"
      "                           given the same seed; N is capped at 8)\n"
      "  --split-ttl=N            default split point (default 16)\n"
      "  --gap-limit=N            forward-probing gap limit (default 5)\n"
      "  --max-ttl=N              maximum explored TTL (default 32)\n"
      "  --preprobe=MODE          none | random | hitlist (default random)\n"
      "  --proximity-span=N       distance-prediction span (default 5)\n"
      "  --extra-scans=N          discovery-optimized extra scans (default 0)\n"
      "  --no-redundancy-removal  probe backward exhaustively\n"
      "  --no-forward             disable forward probing\n"
      "  --seed=N                 topology/permutation seed (default 1)\n"
      "  --routes=FILE            write discovered routes to FILE\n"
      "  --routes-format=F        text (default) or csv\n"
      "  --archive=FILE           write a binary scan archive to FILE\n"
      "  --inspect=FILE           summarize a previously saved archive\n"
      "  --exclude=FILE           CIDR opt-out list (one entry per line)\n"
      "  --targets=FILE           target list, one address per /24 (Sec 3.4)\n"
      "  --pcap=FILE              capture all probes/responses (pcap, raw IP)\n"
      "  --metrics-out=FILE       stream scan telemetry to FILE as JSONL:\n"
      "                           per-interval counter deltas and gauges,\n"
      "                           then one summary record (see DESIGN.md §7;\n"
      "                           deterministic for sim scans)\n"
      "  --metrics-interval=MS    telemetry snapshot cadence in (virtual)\n"
      "                           milliseconds (default 1000)\n"
      "\n"
      "fault injection (sim backend; deterministic per seed):\n"
      "  --fault-probe-loss=P     probability a probe vanishes en route\n"
      "  --fault-response-loss=P  probability a response vanishes\n"
      "  --fault-duplicate=P      probability a response is duplicated\n"
      "  --fault-reorder=P        probability a response is delayed/reordered\n"
      "  --fault-corrupt=P        probability a response is corrupted\n"
      "  --fault-blackhole=F      fraction of /24s persistently blackholed\n"
      "  --fault-flap=F           fraction of /24s behind a flapping link\n"
      "  --fault-send-fail=P      probability a local send fails (EAGAIN)\n"
      "\n"
      "resilience:\n"
      "  --retransmit=N           per-/24 retransmission budget (default 0)\n"
      "  --retransmit-timeout=MS  response deadline before re-sending\n"
      "                           (default 500)\n"
      "  --backoff                adaptive rate backoff on round loss\n"
      "  --checkpoint-out=FILE    checkpoint the scan to FILE at each\n"
      "                           interval (sim backend, unsharded)\n"
      "  --checkpoint-interval=MS checkpoint cadence in virtual ms\n"
      "                           (default 1000)\n"
      "  --resume-from=FILE       resume a scan from a checkpoint written\n"
      "                           by --checkpoint-out (same flags required)\n"
      "  --help                   this text");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string> v;
    const auto value_of = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if ((v = value_of("--backend"))) {
      options.backend = *v;
    } else if ((v = value_of("--prefix-bits"))) {
      options.prefix_bits = std::stoi(*v);
    } else if ((v = value_of("--first-prefix"))) {
      options.first_prefix = *v;
    } else if ((v = value_of("--pps"))) {
      options.pps = std::stod(*v);
    } else if ((v = value_of("--shards"))) {
      options.shards = std::stoi(*v);
    } else if ((v = value_of("--split-ttl"))) {
      options.split_ttl = std::stoi(*v);
    } else if ((v = value_of("--gap-limit"))) {
      options.gap_limit = std::stoi(*v);
    } else if ((v = value_of("--max-ttl"))) {
      options.max_ttl = std::stoi(*v);
    } else if ((v = value_of("--preprobe"))) {
      options.preprobe = *v;
    } else if ((v = value_of("--proximity-span"))) {
      options.proximity_span = std::stoi(*v);
    } else if ((v = value_of("--extra-scans"))) {
      options.extra_scans = std::stoi(*v);
    } else if (arg == "--no-redundancy-removal") {
      options.redundancy = false;
    } else if (arg == "--no-forward") {
      options.forward = false;
    } else if ((v = value_of("--seed"))) {
      options.seed = std::stoull(*v);
    } else if ((v = value_of("--routes"))) {
      options.routes_file = *v;
    } else if ((v = value_of("--routes-format"))) {
      options.routes_format = *v;
    } else if ((v = value_of("--archive"))) {
      options.archive_file = *v;
    } else if ((v = value_of("--inspect"))) {
      options.inspect_file = *v;
    } else if ((v = value_of("--exclude"))) {
      options.exclusion_file = *v;
    } else if ((v = value_of("--targets"))) {
      options.targets_file = *v;
    } else if ((v = value_of("--pcap"))) {
      options.pcap_file = *v;
    } else if ((v = value_of("--metrics-out"))) {
      options.metrics_file = *v;
    } else if ((v = value_of("--metrics-interval"))) {
      options.metrics_interval_ms = std::stod(*v);
    } else if ((v = value_of("--fault-probe-loss"))) {
      options.fault_probe_loss = std::stod(*v);
    } else if ((v = value_of("--fault-response-loss"))) {
      options.fault_response_loss = std::stod(*v);
    } else if ((v = value_of("--fault-duplicate"))) {
      options.fault_duplicate = std::stod(*v);
    } else if ((v = value_of("--fault-reorder"))) {
      options.fault_reorder = std::stod(*v);
    } else if ((v = value_of("--fault-corrupt"))) {
      options.fault_corrupt = std::stod(*v);
    } else if ((v = value_of("--fault-blackhole"))) {
      options.fault_blackhole = std::stod(*v);
    } else if ((v = value_of("--fault-flap"))) {
      options.fault_flap = std::stod(*v);
    } else if ((v = value_of("--fault-send-fail"))) {
      options.fault_send_fail = std::stod(*v);
    } else if ((v = value_of("--retransmit"))) {
      options.retransmit = std::stoi(*v);
    } else if ((v = value_of("--retransmit-timeout"))) {
      options.retransmit_timeout_ms = std::stod(*v);
    } else if (arg == "--backoff") {
      options.backoff = true;
    } else if ((v = value_of("--checkpoint-out"))) {
      options.checkpoint_file = *v;
    } else if ((v = value_of("--checkpoint-interval"))) {
      options.checkpoint_interval_ms = std::stod(*v);
    } else if ((v = value_of("--resume-from"))) {
      options.resume_file = *v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    print_usage();
    return 2;
  }
  if (options->help) {
    print_usage();
    return 0;
  }

  if (!options->inspect_file.empty()) {
    std::ifstream in(options->inspect_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", options->inspect_file.c_str());
      return 1;
    }
    const auto loaded = io::read_archive(in);
    if (!loaded) {
      std::fprintf(stderr, "%s: not a FlashRoute scan archive\n",
                   options->inspect_file.c_str());
      return 1;
    }
    const auto& r = loaded->result;
    std::printf("archive %s: universe 2^%d /24s from %s, seed %llu\n",
                options->inspect_file.c_str(), loaded->header.prefix_bits,
                net::Ipv4Address(loaded->header.first_prefix << 8)
                    .to_string()
                    .c_str(),
                static_cast<unsigned long long>(loaded->header.seed));
    std::printf("  interfaces %zu, probes %s, scan time %s, reached %s, "
                "mismatches %s\n",
                r.interfaces.size(),
                util::format_count(r.probes_sent).c_str(),
                util::format_duration(r.scan_time).c_str(),
                util::format_count(r.destinations_reached).c_str(),
                util::format_count(r.mismatches).c_str());
    std::size_t hops = 0;
    for (const auto& route : r.routes) hops += route.size();
    std::printf("  recorded hops %s across %zu prefixes\n",
                util::format_count(static_cast<std::uint64_t>(hops)).c_str(),
                r.routes.size());
    return 0;
  }

  const auto first = net::Ipv4Address::parse(options->first_prefix);
  if (!first) {
    std::fprintf(stderr, "bad --first-prefix: %s\n",
                 options->first_prefix.c_str());
    return 2;
  }

  core::TracerConfig config;
  config.first_prefix = net::prefix24_index(*first);
  config.prefix_bits = options->prefix_bits;
  config.split_ttl = static_cast<std::uint8_t>(options->split_ttl);
  config.gap_limit = static_cast<std::uint8_t>(options->gap_limit);
  config.max_ttl = static_cast<std::uint8_t>(options->max_ttl);
  config.proximity_span = static_cast<std::uint8_t>(options->proximity_span);
  config.extra_scans = options->extra_scans;
  config.redundancy_removal = options->redundancy;
  config.forward_probing = options->forward;
  config.seed = options->seed;
  if (options->preprobe == "none") {
    config.preprobe = core::PreprobeMode::kNone;
  } else if (options->preprobe == "random") {
    config.preprobe = core::PreprobeMode::kRandom;
  } else if (options->preprobe == "hitlist") {
    config.preprobe = core::PreprobeMode::kHitlist;
  } else {
    std::fprintf(stderr, "bad --preprobe: %s\n", options->preprobe.c_str());
    return 2;
  }

  // Resilience knobs (DESIGN.md §9).
  config.max_retransmits = static_cast<std::uint8_t>(
      std::clamp(options->retransmit, 0, 255));
  config.retransmit_timeout = static_cast<util::Nanos>(
      options->retransmit_timeout_ms * static_cast<double>(
                                           util::kMillisecond));
  config.adaptive_backoff = options->backoff;

  // Checkpoint/resume needs the single-engine virtual-time scan: the raw
  // backend cannot replay a timeline, and a sharded scan checkpoints
  // through the ShardedTracerConfig set API instead.
  if ((!options->checkpoint_file.empty() || !options->resume_file.empty()) &&
      (options->backend != "sim" || options->shards > 0)) {
    std::fprintf(stderr,
                 "--checkpoint-out/--resume-from require the unsharded sim "
                 "backend\n");
    return 2;
  }
  if (options->any_fault() && options->backend != "sim") {
    std::fprintf(stderr, "--fault-* flags require the sim backend\n");
    return 2;
  }

  std::optional<io::ScanCheckpoint> resume_checkpoint;
  if (!options->resume_file.empty()) {
    auto loaded = io::load_checkpoint_file(options->resume_file);
    if (!loaded) {
      std::fprintf(stderr, "%s: not a FlashRoute scan checkpoint\n",
                   options->resume_file.c_str());
      return 1;
    }
    resume_checkpoint = std::move(*loaded);
    config.resume_from = &*resume_checkpoint;
    std::printf("resuming from %s: %s elapsed, %llu rounds done\n",
                options->resume_file.c_str(),
                util::format_duration(resume_checkpoint->scan_elapsed).c_str(),
                static_cast<unsigned long long>(
                    resume_checkpoint->rounds_completed));
  }

  std::uint64_t checkpoints_written = 0;
  if (!options->checkpoint_file.empty()) {
    config.checkpoint_interval = static_cast<util::Nanos>(
        options->checkpoint_interval_ms *
        static_cast<double>(util::kMillisecond));
    config.checkpoint_sink =
        [&options, &checkpoints_written](const io::ScanCheckpoint& cp) {
          // Atomic publish (DESIGN.md §14): a crash mid-write must never
          // leave a torn file where --resume-from expects a checkpoint.
          if (!io::save_checkpoint_atomic(options->checkpoint_file, cp)) {
            std::fprintf(stderr, "cannot write %s; aborting scan\n",
                         options->checkpoint_file.c_str());
            return false;
          }
          ++checkpoints_written;
          return true;
        };
  }

  std::unique_ptr<core::ScanRuntime> runtime;
  std::unique_ptr<sim::Topology> topology;
  std::unique_ptr<sim::SimNetwork> network;
  sim::SimScanRuntime* sim_runtime = nullptr;  // for gauge registration
  std::vector<std::uint32_t> hitlist;

  if (options->backend == "sim") {
    sim::SimParams params;
    params.prefix_bits = options->prefix_bits;
    params.first_prefix = config.first_prefix;
    params.seed = options->seed;
    params.faults.probe_loss = options->fault_probe_loss;
    params.faults.response_loss = options->fault_response_loss;
    params.faults.duplicate_prob = options->fault_duplicate;
    params.faults.reorder_prob = options->fault_reorder;
    params.faults.corrupt_prob = options->fault_corrupt;
    params.faults.blackhole_fraction = options->fault_blackhole;
    params.faults.flap_fraction = options->fault_flap;
    params.faults.send_fail_prob = options->fault_send_fail;
    topology = std::make_unique<sim::Topology>(params);
    network = std::make_unique<sim::SimNetwork>(*topology);
    const double pps =
        options->pps > 0
            ? options->pps
            : sim::scaled_probe_rate(100'000.0, options->prefix_bits);
    config.probes_per_second = pps;
    config.vantage = net::Ipv4Address(params.vantage_address);
    // A resumed scan restarts the virtual clock at the checkpoint's cursor
    // so rate pacing and the fault schedule continue the same timeline.
    auto sim_rt = std::make_unique<sim::SimScanRuntime>(
        *network, pps,
        resume_checkpoint ? resume_checkpoint->virtual_now : 0);
    sim_runtime = sim_rt.get();
    runtime = std::move(sim_rt);
    if (config.preprobe == core::PreprobeMode::kHitlist) {
      hitlist = topology->generate_hitlist();
      config.hitlist = &hitlist;
    }
  } else if (options->backend == "raw") {
    if (options->shards > 0) {
      std::fprintf(stderr,
                   "--shards requires the sim backend (the raw backend has a "
                   "single send socket)\n");
      return 2;
    }
    if (options->first_prefix == "1.0.0.0") {
      // Good-citizenship default: the user did not pick a range, so target
      // the RFC 2544 benchmarking block instead of allocated address space.
      std::fprintf(stderr,
                   "raw backend: no --first-prefix given; defaulting to the "
                   "benchmarking range 198.18.0.0\n");
      config.first_prefix = net::prefix24_index(
          net::Ipv4Address::from_octets(198, 18, 0, 0));
    }
    const double pps = options->pps > 0 ? options->pps : 1'000.0;
    config.probes_per_second = pps;
    if (config.preprobe == core::PreprobeMode::kHitlist) {
      std::fprintf(stderr,
                   "raw backend has no hitlist source; use --preprobe=random\n");
      return 2;
    }
    try {
      runtime = std::make_unique<net::RawSocketRuntime>(pps);
    } catch (const net::TransportError& error) {
      std::fprintf(stderr, "raw backend unavailable: %s\n", error.what());
      return 1;
    }
  } else {
    std::fprintf(stderr, "bad --backend: %s\n", options->backend.c_str());
    return 2;
  }

  core::ExclusionList exclusions;
  if (!options->exclusion_file.empty()) {
    std::ifstream in(options->exclusion_file);
    if (!in || !exclusions.load(in)) {
      std::fprintf(stderr, "bad exclusion list: %s\n",
                   options->exclusion_file.c_str());
      return 2;
    }
    config.exclusions = &exclusions;
    std::printf("loaded %zu exclusion ranges\n", exclusions.size());
  }

  std::vector<std::uint32_t> file_targets;
  if (!options->targets_file.empty()) {
    std::ifstream in(options->targets_file);
    std::size_t skipped = 0;
    auto loaded = in ? core::load_target_list(in, config.first_prefix,
                                              config.num_prefixes(), &skipped)
                     : std::nullopt;
    if (!loaded) {
      std::fprintf(stderr, "bad target list: %s\n",
                   options->targets_file.c_str());
      return 2;
    }
    file_targets = std::move(*loaded);
    config.target_override = &file_targets;
    if (skipped > 0) {
      std::fprintf(stderr, "warning: %zu targets outside the scanned range\n",
                   skipped);
    }
  }

  std::ofstream pcap_out;
  std::unique_ptr<io::CapturingRuntime> capturing;
  core::ScanRuntime* active_runtime = runtime.get();
  if (!options->pcap_file.empty()) {
    if (options->shards > 0) {
      std::fprintf(stderr, "--pcap cannot capture a sharded scan\n");
      return 2;
    }
    pcap_out.open(options->pcap_file, std::ios::binary);
    if (!pcap_out) {
      std::fprintf(stderr, "cannot write %s\n", options->pcap_file.c_str());
      return 1;
    }
    capturing = std::make_unique<io::CapturingRuntime>(*runtime, pcap_out);
    active_runtime = capturing.get();
  }

  // Telemetry (DESIGN.md §7): counters/histograms register before freeze;
  // the lane count is 1 for a classic scan and the logical shard count for
  // a sharded one, fixed below once the decomposition is known.
  obs::MetricsRegistry metrics_registry;
  std::unique_ptr<obs::ScanTracer> scan_tracer;
  const bool metrics_on = !options->metrics_file.empty();
  const auto metrics_interval = static_cast<util::Nanos>(
      options->metrics_interval_ms * static_cast<double>(util::kMillisecond));
  if (metrics_on) {
    config.telemetry.registry = &metrics_registry;
    config.telemetry.ids =
        obs::register_scan_metrics(metrics_registry, options->resilience());
  }

  std::unique_ptr<core::Tracer> tracer;
  std::unique_ptr<core::ShardedTracer> sharded_tracer;
  std::unique_ptr<sim::SimShardRuntimeProvider> shard_provider;
  core::ScanResult result;
  if (options->shards > 0) {
    core::ShardedTracerConfig sharded_config;
    sharded_config.base = config;
    sharded_config.num_workers = options->shards;
    // A fixed decomposition of 8 logical shards (fewer only when the scan
    // has fewer than 8 /24s).  Deliberately NOT derived from the worker
    // count — that is what makes the results identical for any --shards=N.
    sharded_config.shard_prefix_bits = std::max(config.prefix_bits - 3, 0);
    shard_provider = std::make_unique<sim::SimShardRuntimeProvider>(
        *topology, sharded_config);
    if (metrics_on) {
      metrics_registry.freeze(sharded_config.num_shards());
      scan_tracer = std::make_unique<obs::ScanTracer>(metrics_registry,
                                                      metrics_interval);
      sharded_config.base.telemetry.tracer = scan_tracer.get();
      // Shard i's counters and gauges both land on lane i (the per-shard
      // lane itself is assigned inside ShardedTracer::shard_config).
      shard_provider->register_gauges(metrics_registry);
    }
    sharded_tracer = std::make_unique<core::ShardedTracer>(sharded_config,
                                                           *shard_provider);
    std::printf("sharded scan: %d logical shards on %d workers\n",
                sharded_config.num_shards(),
                std::min(options->shards, sharded_config.num_shards()));
    result = sharded_tracer->run();
  } else {
    if (metrics_on) {
      metrics_registry.freeze(1);
      scan_tracer = std::make_unique<obs::ScanTracer>(metrics_registry,
                                                      metrics_interval);
      config.telemetry.tracer = scan_tracer.get();
      config.telemetry.lane = metrics_registry.lane(0);
      config.telemetry.lane_id = 0;
      if (sim_runtime != nullptr) {
        sim_runtime->register_gauges(metrics_registry, 0);
      }
    }
    tracer = std::make_unique<core::Tracer>(config, *active_runtime);
    result = tracer->run();
  }
  if (capturing) {
    std::printf("capture written to %s\n", options->pcap_file.c_str());
  }

  if (metrics_on) {
    std::ofstream mout(options->metrics_file);
    if (!mout) {
      std::fprintf(stderr, "cannot write %s\n", options->metrics_file.c_str());
      return 1;
    }
    obs::SnapshotExporter exporter(mout);
    exporter.write_intervals(*scan_tracer, metrics_registry);
    exporter.write_summary(*scan_tracer, metrics_registry, result.scan_time);
    std::printf("metrics written to %s\n", options->metrics_file.c_str());
  }

  std::printf("scan complete: %zu interfaces, %s probes, %s%s\n",
              result.interfaces.size(),
              util::format_count(result.probes_sent).c_str(),
              util::format_duration(result.scan_time).c_str(),
              options->backend == "sim" ? " (virtual time)" : "");
  std::printf("targets reached: %s; mismatched (rewritten) responses: %s\n",
              util::format_count(result.destinations_reached).c_str(),
              util::format_count(result.mismatches).c_str());
  if (options->resilience()) {
    std::printf("resilience: %s send failures, %s retransmits, "
                "%s timeouts, %s rate backoffs\n",
                util::format_count(result.send_failures).c_str(),
                util::format_count(result.retransmits).c_str(),
                util::format_count(result.probe_timeouts).c_str(),
                util::format_count(result.rate_backoffs).c_str());
  }
  if (!options->checkpoint_file.empty()) {
    std::printf("%llu checkpoint(s) written to %s\n",
                static_cast<unsigned long long>(checkpoints_written),
                options->checkpoint_file.c_str());
  }

  const io::TargetResolver resolver = [&](std::uint32_t offset) {
    return tracer ? tracer->target_of(offset)
                  : sharded_tracer->target_of(offset);
  };
  if (!options->routes_file.empty()) {
    std::ofstream out(options->routes_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options->routes_file.c_str());
      return 1;
    }
    if (options->routes_format == "csv") {
      io::write_routes_csv(result, resolver, config.first_prefix, out);
    } else if (options->routes_format == "text") {
      io::write_routes_text(result, resolver, config.first_prefix, out);
    } else {
      std::fprintf(stderr, "bad --routes-format: %s\n",
                   options->routes_format.c_str());
      return 2;
    }
    std::printf("routes written to %s (%s)\n", options->routes_file.c_str(),
                options->routes_format.c_str());
  }
  if (!options->archive_file.empty()) {
    std::ofstream out(options->archive_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   options->archive_file.c_str());
      return 1;
    }
    io::write_archive(result,
                      {config.first_prefix, config.prefix_bits,
                       options->seed},
                      out);
    std::printf("archive written to %s\n", options->archive_file.c_str());
  }
  return 0;
}
