// The Census-hitlist bias study (§5.1), as a guided walk-through.
//
// The paper's side finding: the ISI Census hitlist — the "most responsive
// address per /24" — preferentially names gateway appliances at stub
// entrances, so tracerouting hitlist targets measures shorter routes and
// misses interior interfaces.  This example runs both scans, walks one
// affected prefix in detail (the two routes side by side), and then prints
// the aggregate evidence.
//
// Build & run:  ./build/examples/hitlist_bias_study

#include <algorithm>
#include <cstdio>

#include "analysis/route_compare.h"
#include "core/targets.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

namespace {

core::ScanResult exhaustive(const sim::Topology& topology,
                            const std::vector<std::uint32_t>* targets) {
  core::TracerConfig config;
  config.first_prefix = topology.params().first_prefix;
  config.prefix_bits = topology.params().prefix_bits;
  config.vantage = net::Ipv4Address(topology.params().vantage_address);
  config.probes_per_second =
      sim::scaled_probe_rate(100'000.0, config.prefix_bits);
  config.preprobe = core::PreprobeMode::kNone;
  config.split_ttl = 32;
  config.forward_probing = false;
  config.redundancy_removal = false;
  config.target_override = targets;
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, config.probes_per_second);
  core::Tracer tracer(config, runtime);
  return tracer.run();
}

void print_route(const char* label, const std::vector<core::RouteHop>& hops,
                 std::uint8_t distance) {
  std::printf("  %s (distance %d):\n", label, distance);
  auto sorted = hops;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::RouteHop& a, const core::RouteHop& b) {
              return a.ttl < b.ttl;
            });
  std::uint8_t last = 0;
  for (const core::RouteHop& hop : sorted) {
    if (hop.ttl == last) continue;
    last = hop.ttl;
    std::printf("    %2d  %-15s%s\n", hop.ttl,
                net::Ipv4Address(hop.ip).to_string().c_str(),
                (hop.flags & core::RouteHop::kFromDestination) ? "  <- dest"
                                                               : "");
  }
}

}  // namespace

int main() {
  sim::SimParams params;
  params.prefix_bits = 12;
  params.seed = 11;
  const sim::Topology topology(params);
  const auto hitlist = topology.generate_hitlist();

  std::printf("scanning %u /24 blocks twice: random representatives vs the "
              "census hitlist...\n\n",
              params.num_prefixes());
  const auto random_scan = exhaustive(topology, nullptr);
  const auto hitlist_scan = exhaustive(topology, &hitlist);

  // Find a prefix where the bias is visible: both targets responded and the
  // random route is strictly longer.
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    if (random_scan.destination_distance[i] == 0 ||
        hitlist_scan.destination_distance[i] == 0) {
      continue;
    }
    if (random_scan.destination_distance[i] <=
        hitlist_scan.destination_distance[i] + 1) {
      continue;
    }
    const std::uint32_t prefix = params.first_prefix + i;
    std::printf("example prefix %s/24:\n",
                net::Ipv4Address(prefix << 8).to_string().c_str());
    print_route("hitlist target route", hitlist_scan.routes[i],
                hitlist_scan.destination_distance[i]);
    print_route("random target route", random_scan.routes[i],
                random_scan.destination_distance[i]);
    std::printf(
        "  the hitlist names the gateway appliance; the random target sits "
        "behind it, exposing the stub's interior interfaces.\n\n");
    break;
  }

  std::printf("aggregate evidence:\n");
  std::printf("  interfaces: random %zu vs hitlist %zu (%.1f%% fewer)\n",
              random_scan.interfaces.size(), hitlist_scan.interfaces.size(),
              100.0 * (1.0 - static_cast<double>(
                                 hitlist_scan.interfaces.size()) /
                                 static_cast<double>(
                                     random_scan.interfaces.size())));
  const auto both = analysis::compare_route_lengths(
      random_scan, hitlist_scan, /*require_both_reached=*/true);
  std::printf("  both-responsive prefixes: random route longer in %s, "
              "hitlist longer in %s\n",
              util::format_count(both.a_longer).c_str(),
              util::format_count(both.b_longer).c_str());
  const auto jaccard = analysis::jaccard_by_distance_from_destination(
      hitlist_scan, random_scan, 10);
  if (!jaccard.empty()) {
    std::printf("  Jaccard of interface sets, by hops before destination:");
    for (const auto& [distance, value] : jaccard) {
      std::printf(" %d:%.2f", distance, value);
    }
    std::printf("\n  (lowest next to the destinations: the hidden interior)\n");
  }
  return 0;
}
