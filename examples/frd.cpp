// frd — the FlashRoute continuous-scanning daemon (DESIGN.md §12, §14).
//
// Listens on an AF_UNIX socket for frctl clients, multiplexes their scan
// jobs onto a shared worker pool under a global probes-per-second budget,
// streams finished snapshots into a multi-job scan archive, and answers
// archive-backed diff queries.  Stop it with `frctl shutdown` — the daemon
// drains (rejecting new work, preempting running jobs at their next
// checkpoint barrier), cancels whatever never finished, and writes the
// job_summary line.  A daemon killed outright instead leaves an archive the
// next start recovers by truncating the torn tail.
//
// With --journal= and --state-dir= the daemon is crash-safe: every
// admission and lifecycle transition is journaled before it becomes
// visible, barrier checkpoints are published atomically, and a restart on
// the same paths re-admits queued jobs, resumes interrupted ones from
// their last barrier, and deduplicates retried submits by request key.
// SIGTERM/SIGINT trigger the same graceful drain as `frctl shutdown`
// (bounded by --drain-deadline-ms); kill -9 is recovered at next boot.
//
// Examples:
//   frd --socket=/tmp/frd.sock --archive=/tmp/frd.bin --workers=2
//       --events=/tmp/frd_events.jsonl --journal=/tmp/frd.journal
//       --state-dir=/tmp/frd_state       (one command line)
//   frctl --socket=/tmp/frd.sock submit --name=morning --prefix-bits=8
//   frctl --socket=/tmp/frd.sock shutdown

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "svc/daemon.h"
#include "util/clock.h"

using namespace flashroute;

namespace {

struct FrdOptions {
  std::string socket_path = "/tmp/frd.sock";
  std::string archive_path = "frd_archive.bin";
  std::string events_path;  // empty = no event stream
  std::string journal_path;  // empty = journaling off
  std::string state_dir;
  svc::Durability durability = svc::Durability::kFlush;
  int drain_deadline_ms = 0;
  int workers = 2;
  double budget_pps = 100'000.0;
  int max_queued = 8;
  double rate_multiplier = 0.0;
  std::uint64_t fair_slack = 0;
  bool help = false;
};

void print_usage() {
  std::puts(
      "frd — continuous-scanning daemon (FlashRoute reproduction)\n"
      "\n"
      "  --socket=PATH         AF_UNIX listening socket (default /tmp/frd.sock)\n"
      "  --archive=PATH        multi-job scan archive (default frd_archive.bin)\n"
      "  --events=PATH         JSONL job-event stream ('-' = stdout; a file is\n"
      "                        opened in append mode so restarts merge streams)\n"
      "  --journal=PATH        write-ahead job journal; enables crash recovery\n"
      "  --state-dir=PATH      checkpoint directory (required with --journal)\n"
      "  --durability=MODE     journal durability: none | flush | fsync\n"
      "                        (default flush)\n"
      "  --drain-deadline-ms=N graceful-drain budget on SIGTERM/shutdown;\n"
      "                        0 = wait for running slices (default 0)\n"
      "  --workers=N           concurrent scan workers (default 2)\n"
      "  --budget=PPS          global probes-per-second budget (default 100000)\n"
      "  --max-queued=N        admission queue bound (default 8)\n"
      "  --rate-multiplier=X   wall-credit multiplier for per-job budgets\n"
      "                        (default 0 = unmetered, fair-share only)\n"
      "  --fair-slack=N        fair-share hysteresis in probes (default 0)\n"
      "\n"
      "Stop with: frctl --socket=PATH shutdown   (or SIGTERM/SIGINT)");
}

std::optional<FrdOptions> parse_args(int argc, char** argv) {
  FrdOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string> v;
    const auto value_of = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if ((v = value_of("--socket"))) {
      options.socket_path = *v;
    } else if ((v = value_of("--archive"))) {
      options.archive_path = *v;
    } else if ((v = value_of("--events"))) {
      options.events_path = *v;
    } else if ((v = value_of("--journal"))) {
      options.journal_path = *v;
    } else if ((v = value_of("--state-dir"))) {
      options.state_dir = *v;
    } else if ((v = value_of("--durability"))) {
      const auto mode = svc::parse_durability(*v);
      if (!mode.has_value()) {
        std::fprintf(stderr, "invalid --durability=%s (none|flush|fsync)\n",
                     v->c_str());
        return std::nullopt;
      }
      options.durability = *mode;
    } else if ((v = value_of("--drain-deadline-ms"))) {
      options.drain_deadline_ms = std::stoi(*v);
    } else if ((v = value_of("--workers"))) {
      options.workers = std::stoi(*v);
    } else if ((v = value_of("--budget"))) {
      options.budget_pps = std::stod(*v);
    } else if ((v = value_of("--max-queued"))) {
      options.max_queued = std::stoi(*v);
    } else if ((v = value_of("--rate-multiplier"))) {
      options.rate_multiplier = std::stod(*v);
    } else if ((v = value_of("--fair-slack"))) {
      options.fair_slack = std::stoull(*v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (!options.journal_path.empty() && options.state_dir.empty()) {
    std::fprintf(stderr, "--journal requires --state-dir\n");
    return std::nullopt;
  }
  return options;
}

// Signal plumbing: handlers may only call the async-signal-safe
// request_shutdown_async() (atomic store + pipe write).  The pointer is
// published before the handlers are installed and never changes after.
svc::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown_async();
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) return 2;
  if (options->help) {
    print_usage();
    return 0;
  }

  std::ofstream events_file;
  std::ostream* events = nullptr;
  if (options->events_path == "-") {
    events = &std::cout;
  } else if (!options->events_path.empty()) {
    // Append, not truncate: a restarted daemon merges its event stream
    // with the crashed run's, and the schema checker validates the
    // concatenation (seq restarts at 1 per job segment).
    events_file.open(options->events_path, std::ios::app);
    if (!events_file) {
      std::fprintf(stderr, "frd: cannot open events file %s\n",
                   options->events_path.c_str());
      return 2;
    }
    events = &events_file;
  }

  svc::DaemonOptions daemon_options;
  daemon_options.socket_path = options->socket_path;
  daemon_options.archive_path = options->archive_path;
  daemon_options.events = events;
  daemon_options.journal_path = options->journal_path;
  daemon_options.state_dir = options->state_dir;
  daemon_options.durability = options->durability;
  daemon_options.drain_deadline =
      static_cast<util::Nanos>(options->drain_deadline_ms) * util::kMillisecond;
  daemon_options.scheduler.num_workers = options->workers;
  daemon_options.scheduler.global_pps_budget = options->budget_pps;
  daemon_options.scheduler.max_queued = options->max_queued;
  daemon_options.scheduler.rate_multiplier = options->rate_multiplier;
  daemon_options.scheduler.fair_share_slack = options->fair_slack;

  svc::Daemon daemon(daemon_options);
  if (!daemon.start()) {
    std::fprintf(stderr, "frd: failed to bind %s or open %s\n",
                 options->socket_path.c_str(), options->archive_path.c_str());
    return 1;
  }

  g_daemon = &daemon;
  struct sigaction action{};
  action.sa_handler = handle_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("frd: listening on %s (workers=%d budget=%.0f pps%s)\n",
              options->socket_path.c_str(), options->workers,
              options->budget_pps,
              options->journal_path.empty() ? "" : ", journaled");
  std::fflush(stdout);

  daemon.wait();
  std::printf("frd: clean shutdown\n");
  return 0;
}
