// frctl — control client for the frd continuous-scanning daemon.
//
// Subcommands (all take --socket=PATH, default /tmp/frd.sock):
//
//   submit [spec flags]   submit a scan job; prints "submitted id=N ..."
//                         exit 0 admitted, 3 rejected, 1 transport error
//   status <id>           one job's state and progress
//   list                  every job the daemon knows
//   wait <id>             block until the job is terminal
//   wait-all              block until every job is terminal
//   cancel <id>           cancel a job (waiting: immediate; running: at its
//                         next round barrier)
//   diff <before> <after> churn report between two archived snapshots
//   verify <id>           size + FNV-1a digest of a job's archived payload
//   shutdown              drain and stop the daemon
//
// Crash-recovery ergonomics (DESIGN.md §14): --retries=N retries the whole
// command with capped exponential backoff when the daemon is unreachable
// or dies mid-exchange (ECONNREFUSED / ECONNRESET while it restarts).
// Pair it with submit --request-key=K: a journaled daemon deduplicates the
// key across restarts, so a blind retry can never double-admit.  Exit 4
// means "gave up after retries" — distinct from a plain transport error
// (exit 1) so scripts can tell a dead daemon from a flapping one.
//
// Output is line-oriented key=value, so shell scripts (and the CI smoke)
// can grep it without a JSON parser.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.h"
#include "util/clock.h"

using namespace flashroute;

namespace {

constexpr int kExitTransport = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRejected = 3;
constexpr int kExitRetriesExhausted = 4;

void print_usage() {
  std::puts(
      "frctl — frd control client\n"
      "\n"
      "  frctl [--socket=PATH] [--connect-timeout-ms=N]\n"
      "        [--retries=N] [--retry-backoff-ms=N] COMMAND ...\n"
      "\n"
      "commands:\n"
      "  submit [--name=S] [--prefix-bits=N] [--first-prefix=HEX]\n"
      "         [--pps=R] [--priority=N] [--weight=X]\n"
      "         [--topology-seed=N] [--scan-seed=N] [--target-seed=N]\n"
      "         [--split-ttl=N] [--gap-limit=N] [--max-ttl=N]\n"
      "         [--checkpoint-interval-ms=X] [--min-round-ms=X]\n"
      "         [--preprobe-random] [--no-routes] [--request-key=K]\n"
      "  status <id> | list | wait <id> | wait-all | cancel <id>\n"
      "  diff <before-id> <after-id> | verify <id> | shutdown\n"
      "\n"
      "--retries=N retries a transiently failing command (daemon\n"
      "restarting) with capped exponential backoff; exit 4 = gave up.\n"
      "Use submit --request-key=K so retries never double-admit.");
}

void print_view(const svc::JobView& view) {
  std::printf(
      "job=%llu state=%s name=%s priority=%d pps=%.0f probes=%llu "
      "slices=%llu checkpoint=%d detail=%s\n",
      static_cast<unsigned long long>(view.id),
      svc::job_state_name(view.state), view.name.c_str(), view.priority,
      view.probes_per_second, static_cast<unsigned long long>(view.probes),
      static_cast<unsigned long long>(view.slices),
      view.has_checkpoint ? 1 : 0, view.detail.c_str());
}

/// One full attempt at the command.  `transient` is set when the failure
/// is plausibly the daemon restarting (worth a backoff + retry): the
/// connection never came up, or the peer vanished mid-exchange.
int run_once(const std::string& socket_path, int connect_timeout_ms,
             const std::vector<std::string>& args, bool& transient) {
  transient = false;
  const std::string& command = args[0];

  auto client = svc::Client::connect(socket_path, connect_timeout_ms);
  if (!client.has_value()) {
    std::fprintf(stderr, "frctl: cannot connect to %s\n", socket_path.c_str());
    transient = true;
    return kExitTransport;
  }
  const auto transport_error = [&transient]() {
    std::fprintf(stderr, "frctl: daemon unreachable or protocol error\n");
    transient = true;
    return kExitTransport;
  };

  if (command == "submit") {
    svc::JobSpec spec;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      std::optional<std::string> v;
      const auto value_of =
          [&](const char* name) -> std::optional<std::string> {
        const std::string prefix = std::string(name) + "=";
        if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
        return std::nullopt;
      };
      if ((v = value_of("--name"))) {
        spec.name = *v;
      } else if ((v = value_of("--prefix-bits"))) {
        spec.prefix_bits = std::stoi(*v);
      } else if ((v = value_of("--first-prefix"))) {
        spec.first_prefix =
            static_cast<std::uint32_t>(std::stoul(*v, nullptr, 0));
      } else if ((v = value_of("--pps"))) {
        spec.probes_per_second = std::stod(*v);
      } else if ((v = value_of("--priority"))) {
        spec.priority = std::stoi(*v);
      } else if ((v = value_of("--weight"))) {
        spec.weight = std::stod(*v);
      } else if ((v = value_of("--topology-seed"))) {
        spec.topology_seed = std::stoull(*v);
      } else if ((v = value_of("--scan-seed"))) {
        spec.scan_seed = std::stoull(*v);
      } else if ((v = value_of("--target-seed"))) {
        spec.target_seed = std::stoull(*v);
      } else if ((v = value_of("--split-ttl"))) {
        spec.split_ttl = static_cast<std::uint8_t>(std::stoi(*v));
      } else if ((v = value_of("--gap-limit"))) {
        spec.gap_limit = static_cast<std::uint8_t>(std::stoi(*v));
      } else if ((v = value_of("--max-ttl"))) {
        spec.max_ttl = static_cast<std::uint8_t>(std::stoi(*v));
      } else if ((v = value_of("--checkpoint-interval-ms"))) {
        spec.checkpoint_interval =
            static_cast<util::Nanos>(std::stod(*v) * util::kMillisecond);
      } else if ((v = value_of("--min-round-ms"))) {
        spec.min_round_duration =
            static_cast<util::Nanos>(std::stod(*v) * util::kMillisecond);
      } else if ((v = value_of("--request-key"))) {
        spec.request_key = *v;
      } else if (arg == "--preprobe-random") {
        spec.preprobe_random = true;
      } else if (arg == "--no-routes") {
        spec.collect_routes = false;
      } else {
        std::fprintf(stderr, "unknown submit flag: %s\n", arg.c_str());
        return kExitUsage;
      }
    }
    const auto submission = client->submit(spec);
    if (!submission.has_value()) return transport_error();
    std::printf("submitted id=%llu admitted=%d reason=%s detail=%s\n",
                static_cast<unsigned long long>(submission->job_id),
                submission->admitted ? 1 : 0, submission->reason.c_str(),
                submission->detail.c_str());
    return submission->admitted ? 0 : kExitRejected;
  }

  if (command == "status" || command == "wait") {
    if (args.size() != 2) {
      print_usage();
      return kExitUsage;
    }
    const std::uint64_t id = std::stoull(args[1]);
    const auto view =
        command == "wait" ? client->wait_job(id) : client->status(id);
    if (!view.has_value()) {
      std::fprintf(stderr, "frctl: no such job %llu (or daemon gone)\n",
                   static_cast<unsigned long long>(id));
      return kExitTransport;
    }
    print_view(*view);
    return 0;
  }

  if (command == "list") {
    const auto views = client->list();
    if (!views.has_value()) return transport_error();
    for (const svc::JobView& view : *views) print_view(view);
    return 0;
  }

  if (command == "wait-all") {
    if (!client->wait_all()) return transport_error();
    std::printf("all jobs terminal\n");
    return 0;
  }

  if (command == "cancel") {
    if (args.size() != 2) {
      print_usage();
      return kExitUsage;
    }
    const auto outcome = client->cancel(std::stoull(args[1]));
    if (!outcome.has_value()) return transport_error();
    const char* text = "not_found";
    switch (*outcome) {
      case svc::CancelOutcome::kNotFound:
        text = "not_found";
        break;
      case svc::CancelOutcome::kAlreadyTerminal:
        text = "already_terminal";
        break;
      case svc::CancelOutcome::kCancelled:
        text = "cancelled";
        break;
      case svc::CancelOutcome::kSignalled:
        text = "signalled";
        break;
    }
    std::printf("cancel outcome=%s\n", text);
    return *outcome == svc::CancelOutcome::kNotFound ? 1 : 0;
  }

  if (command == "diff") {
    if (args.size() != 3) {
      print_usage();
      return kExitUsage;
    }
    const auto diff =
        client->diff(std::stoull(args[1]), std::stoull(args[2]));
    if (!diff.has_value()) return transport_error();
    if (!diff->ok) {
      std::fprintf(stderr, "frctl: diff failed: %s\n", diff->error.c_str());
      return 1;
    }
    std::printf(
        "diff interfaces_before=%llu interfaces_after=%llu appeared=%llu "
        "vanished=%llu routes_compared=%llu changed_hops=%llu "
        "changed_length=%llu\n",
        static_cast<unsigned long long>(diff->interfaces_before),
        static_cast<unsigned long long>(diff->interfaces_after),
        static_cast<unsigned long long>(diff->interfaces_appeared),
        static_cast<unsigned long long>(diff->interfaces_vanished),
        static_cast<unsigned long long>(diff->routes_compared),
        static_cast<unsigned long long>(diff->routes_changed_hops),
        static_cast<unsigned long long>(diff->routes_changed_length));
    return 0;
  }

  if (command == "verify") {
    if (args.size() != 2) {
      print_usage();
      return kExitUsage;
    }
    const auto verify = client->verify(std::stoull(args[1]));
    if (!verify.has_value()) return transport_error();
    if (!verify->found) {
      std::fprintf(stderr, "frctl: job has no archived payload\n");
      return 1;
    }
    std::printf("verify size=%llu fnv1a=0x%016llx\n",
                static_cast<unsigned long long>(verify->payload_size),
                static_cast<unsigned long long>(verify->payload_fnv1a));
    return 0;
  }

  if (command == "shutdown") {
    if (!client->shutdown()) return transport_error();
    std::printf("shutdown acknowledged\n");
    return 0;
  }

  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  print_usage();
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/frd.sock";
  int connect_timeout_ms = 5000;
  int retries = 0;
  int retry_backoff_ms = 100;
  constexpr int kBackoffCapMs = 2000;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--connect-timeout-ms=", 0) == 0) {
      connect_timeout_ms = std::stoi(arg.substr(21));
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = std::stoi(arg.substr(10));
    } else if (arg.rfind("--retry-backoff-ms=", 0) == 0) {
      retry_backoff_ms = std::stoi(arg.substr(19));
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    print_usage();
    return kExitUsage;
  }

  int backoff_ms = retry_backoff_ms > 0 ? retry_backoff_ms : 100;
  for (int attempt = 0;; ++attempt) {
    bool transient = false;
    const int code = run_once(socket_path, connect_timeout_ms, args,
                              transient);
    if (!transient) return code;
    if (attempt >= retries) {
      if (retries > 0) {
        std::fprintf(stderr, "frctl: gave up after %d retries\n", retries);
        return kExitRetriesExhausted;
      }
      return code;
    }
    std::fprintf(stderr, "frctl: transient failure; retry %d/%d in %d ms\n",
                 attempt + 1, retries, backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = backoff_ms * 2 > kBackoffCapMs ? kBackoffCapMs
                                                : backoff_ms * 2;
  }
}
