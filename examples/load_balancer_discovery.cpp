// Load-balancer discovery: the discovery-optimized mode of §5.2.
//
// Per-flow load balancers route different flows over different parallel
// branches; a normal Paris-style scan sees exactly one branch per target.
// FlashRoute's discovery-optimized mode re-scans backward with shifted
// source ports (new flow labels) from random starting TTLs, and the shared
// stop set keeps those extra scans cheap.
//
// This example runs a plain FlashRoute-32 scan and then adds extra scans one
// at a time, showing the marginal interface yield of each — the practical
// knob an operator would tune.
//
// Build & run:  ./build/examples/load_balancer_discovery

#include <cstdio>

#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

int main() {
  sim::SimParams params;
  params.prefix_bits = 13;
  params.seed = 99;
  // Make load-balanced sections common so the effect is visible at this
  // small scale.
  params.diamond_fraction = 0.2;
  params.stub_multihome_prob = 0.4;
  sim::Topology topology(params);
  const auto hitlist = topology.generate_hitlist();

  const double pps = sim::scaled_probe_rate(100'000.0, params.prefix_bits);

  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = pps;
  config.split_ttl = 32;  // §5.2: split 32 maximizes the shared stop set
  config.preprobe = core::PreprobeMode::kHitlist;
  config.hitlist = &hitlist;

  std::printf("%12s %12s %14s %12s %16s\n", "extra scans", "interfaces",
              "probes", "time", "marginal ifaces");
  std::size_t previous = 0;
  for (int extra = 0; extra <= 5; ++extra) {
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, pps);
    config.extra_scans = extra;
    core::Tracer tracer(config, runtime);
    const auto result = tracer.run();
    std::printf("%12d %12zu %14s %12s %16s\n", extra,
                result.interfaces.size(),
                util::format_count(result.probes_sent).c_str(),
                util::format_duration(result.scan_time).c_str(),
                extra == 0
                    ? "-"
                    : util::format_count(
                          static_cast<std::int64_t>(result.interfaces.size()) -
                          static_cast<std::int64_t>(previous))
                          .c_str());
    previous = result.interfaces.size();
  }
  std::printf(
      "\nEach extra scan probes every destination backward from a random\n"
      "TTL with a shifted source port; marginal yield decays as the\n"
      "parallel branches get exhausted (cf. paper Sec 5.2).\n");
  return 0;
}
