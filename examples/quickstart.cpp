// Quickstart: trace a simulated universe with FlashRoute and print a route.
//
// This is the smallest end-to-end use of the library:
//   1. build a deterministic simulated Internet (sim::Topology/SimNetwork);
//   2. run a FlashRoute scan against it in virtual time;
//   3. inspect the results: discovered interfaces, a reconstructed route,
//      and the scan's probe/time accounting.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "core/tracer.h"
#include "net/ipv4.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

int main() {
  // A small universe: 4096 /24 blocks starting at 1.0.0.0.
  sim::SimParams params;
  params.prefix_bits = 12;
  params.seed = 2026;
  sim::Topology topology(params);
  sim::SimNetwork network(topology);

  // Probe at the paper's 100 Kpps, scaled to the universe size so the
  // round-feedback dynamics match a full-scale scan.
  const double pps = sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  sim::SimScanRuntime runtime(network, pps);

  // FlashRoute-16: split TTL 16, gap limit 5, redundancy removal, random
  // preprobing with span-5 prediction — the paper's default configuration.
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = pps;
  config.preprobe = core::PreprobeMode::kRandom;

  core::Tracer tracer(config, runtime);
  const core::ScanResult result = tracer.run();

  std::printf("scanned %u /24 blocks\n", config.num_prefixes());
  std::printf("  probes sent:       %s (%s in preprobing)\n",
              util::format_count(result.probes_sent).c_str(),
              util::format_count(result.preprobe_probes).c_str());
  std::printf("  scan time:         %s (virtual)\n",
              util::format_duration(result.scan_time).c_str());
  std::printf("  interfaces found:  %zu\n", result.interfaces.size());
  std::printf("  targets reached:   %s\n",
              util::format_count(result.destinations_reached).c_str());
  std::printf("  distances measured/predicted: %s / %s\n",
              util::format_count(result.distances_measured).c_str(),
              util::format_count(result.distances_predicted).c_str());

  // Print the deepest reconstructed route.
  std::size_t best = 0;
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    if (result.destination_distance[i] > result.destination_distance[best]) {
      best = i;
    }
  }
  if (result.destination_distance[best] != 0) {
    auto hops = result.routes[best];
    std::sort(hops.begin(), hops.end(),
              [](const core::RouteHop& a, const core::RouteHop& b) {
                return a.ttl < b.ttl;
              });
    std::printf("\ndeepest route (target %s, %d hops):\n",
                net::Ipv4Address(tracer.target_of(
                                     static_cast<std::uint32_t>(best)))
                    .to_string()
                    .c_str(),
                result.destination_distance[best]);
    std::uint8_t last_ttl = 0;
    for (const core::RouteHop& hop : hops) {
      if (hop.ttl == last_ttl) continue;  // duplicate responses
      last_ttl = hop.ttl;
      std::printf("  %2d  %-15s%s\n", hop.ttl,
                  net::Ipv4Address(hop.ip).to_string().c_str(),
                  (hop.flags & core::RouteHop::kFromDestination)
                      ? "  <- destination"
                      : "");
    }
  }
  return 0;
}
