// Snapshot churn: the paper's motivating use case in action (§1).
//
// "Shortening the time for topology measurements is especially critical
// because the shorter the time to complete the measurement the closer to a
// snapshot the results will be and the easier it is to understand the
// dynamics of Internet routing changes at fine time granularity."
//
// This example takes repeated FlashRoute-16 snapshots of the same simulated
// universe — whose routing genuinely drifts over time epochs — and reports
// the churn between consecutive snapshots: interfaces appearing/vanishing
// and routes changing.  Because each snapshot takes ~30 virtual minutes,
// the measured churn closely tracks the world's actual dynamics; a tool
// that needed hours per scan would smear these changes together.
//
// Build & run:  ./build/examples/snapshot_churn [num_snapshots]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/churn.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

int main(int argc, char** argv) {
  const int snapshots = argc > 1 ? std::atoi(argv[1]) : 4;

  sim::SimParams params;
  params.prefix_bits = 12;
  params.seed = 5;
  params.route_dynamics_prob = 0.08;  // a lively corner of the Internet
  const sim::Topology topology(params);
  const auto hitlist = topology.generate_hitlist();

  const double pps = sim::scaled_probe_rate(100'000.0, params.prefix_bits);
  core::TracerConfig config;
  config.first_prefix = params.first_prefix;
  config.prefix_bits = params.prefix_bits;
  config.vantage = net::Ipv4Address(params.vantage_address);
  config.probes_per_second = pps;
  config.preprobe = core::PreprobeMode::kHitlist;
  config.hitlist = &hitlist;

  // One network (so rate limiters persist realistically) and one clock that
  // keeps advancing across snapshots: each scan observes a later epoch.
  sim::SimNetwork network(topology);
  sim::SimScanRuntime runtime(network, pps);

  std::vector<core::ScanResult> results;
  for (int i = 0; i < snapshots; ++i) {
    core::Tracer tracer(config, runtime);
    results.push_back(tracer.run());
    std::printf("snapshot %d at virtual t=%s: %zu interfaces, %s probes\n",
                i, util::format_duration(runtime.now()).c_str(),
                results.back().interfaces.size(),
                util::format_count(results.back().probes_sent).c_str());
  }

  std::printf("\n%12s %10s %10s %12s %14s\n", "pair", "appeared", "vanished",
              "routes +/-", "len changed");
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto churn =
        analysis::compare_snapshots(results[i - 1], results[i]);
    std::printf("%6zu -> %2zu %10s %10s %11.1f%% %14s\n", i - 1, i,
                util::format_count(churn.interfaces_appeared).c_str(),
                util::format_count(churn.interfaces_vanished).c_str(),
                100.0 * churn.route_change_rate(),
                util::format_count(churn.routes_changed_length).c_str());
  }
  std::printf(
      "\nEach pair of consecutive ~30-minute snapshots differs by the "
      "world's genuine routing drift (epoch-level spine changes) plus "
      "measurement noise (rate-limited responses); a slower tool would "
      "conflate several drift epochs into every scan.\n");
  return 0;
}
