// Calibration report: per-configuration scan summaries over one world.
//
// This is the tuning loop used to calibrate the simulator's parameters
// toward the paper's observed ratios (DESIGN.md Sec 5): it prints the
// responsive-target rate, hitlist coverage, distance quantiles, and a scan
// summary for every major tool configuration.  Re-run it after changing
// anything in sim/params.h.
//
// Build & run:  ./build/examples/calibration_report [prefix_bits]

#include <cstdio>
#include <string>

#include "baselines/scamper.h"
#include "baselines/yarrp.h"
#include "core/targets.h"
#include "core/tracer.h"
#include "sim/network.h"
#include "sim/runtime.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace flashroute;

namespace {

void print(const char* name, const core::ScanResult& r) {
  std::printf("%-28s interfaces=%8zu probes=%10llu time=%s reached=%llu conv=%llu meas=%llu pred=%llu mism=%llu\n",
              name, r.interfaces.size(),
              static_cast<unsigned long long>(r.probes_sent),
              util::format_duration(r.scan_time).c_str(),
              static_cast<unsigned long long>(r.destinations_reached),
              static_cast<unsigned long long>(r.convergence_stops),
              static_cast<unsigned long long>(r.distances_measured),
              static_cast<unsigned long long>(r.distances_predicted),
              static_cast<unsigned long long>(r.mismatches));
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimParams params;
  params.prefix_bits = (argc > 1) ? std::stoi(argv[1]) : 14;
  sim::Topology topology(params);
  const auto hitlist = topology.generate_hitlist();
  std::printf("universe=%u stubs=%u dark=%u pool_ifaces=%llu\n",
              params.num_prefixes(), topology.num_stubs(),
              topology.num_dark_blocks(),
              static_cast<unsigned long long>(
                  topology.allocated_pool_interfaces()));

  // Distance distribution of responsive targets.
  util::Histogram dist;
  std::uint64_t responsive = 0, hitlist_present = 0;
  for (std::uint32_t i = 0; i < params.num_prefixes(); ++i) {
    const std::uint32_t prefix = params.first_prefix + i;
    const auto target = core::random_target(42, prefix);
    if (auto d = topology.trigger_ttl(net::Ipv4Address(target), 1, 0)) {
      dist.add(*d);
    }
    if (topology.host_responds(net::Ipv4Address(target), net::kProtoUdp)) {
      ++responsive;
    }
    if (hitlist[i] != 0) ++hitlist_present;
  }
  std::printf("responsive random targets: %.2f%%  hitlist entries: %.2f%%\n",
              100.0 * static_cast<double>(responsive) / params.num_prefixes(),
              100.0 * static_cast<double>(hitlist_present) /
                  params.num_prefixes());
  const auto quantile_or = [&](double q) -> long long {
    return dist.total() ? static_cast<long long>(dist.quantile(q)) : -1;
  };
  std::printf("trigger ttl quantiles: p10=%lld p50=%lld p90=%lld p99=%lld\n",
              quantile_or(0.10), quantile_or(0.50), quantile_or(0.90),
              quantile_or(0.99));

  const double scale = static_cast<double>(params.num_prefixes()) / (1 << 24);
  const double pps = 100'000.0 * scale;
  core::TracerConfig base;
  base.first_prefix = params.first_prefix;
  base.prefix_bits = params.prefix_bits;
  base.vantage = net::Ipv4Address(params.vantage_address);
  base.probes_per_second = pps;

  auto run_tracer = [&](const char* name, core::TracerConfig config) {
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, pps);
    print(name, core::Tracer(config, runtime).run());
  };

  {
    auto c = base;
    c.preprobe = core::PreprobeMode::kHitlist;
    c.hitlist = &hitlist;
    run_tracer("FlashRoute-16 hitlist", c);
  }
  {
    auto c = base;
    c.preprobe = core::PreprobeMode::kRandom;
    run_tracer("FlashRoute-16 random", c);
  }
  {
    auto c = base;
    c.preprobe = core::PreprobeMode::kNone;
    run_tracer("FlashRoute-16 nopre", c);
  }
  {
    auto c = base;
    c.split_ttl = 32;
    c.preprobe = core::PreprobeMode::kHitlist;
    c.hitlist = &hitlist;
    run_tracer("FlashRoute-32 hitlist", c);
  }
  {
    auto c = base;
    c.split_ttl = 32;
    c.preprobe = core::PreprobeMode::kRandom;
    run_tracer("FlashRoute-32 random(fold)", c);
  }
  {
    auto c = base;
    c.split_ttl = 32;
    c.preprobe = core::PreprobeMode::kNone;
    run_tracer("FlashRoute-32 nopre", c);
  }
  {
    auto c = base;
    c.preprobe = core::PreprobeMode::kNone;
    c.redundancy_removal = false;
    run_tracer("FR-16 nopre no-redund", c);
  }
  {
    auto c = base;
    c.split_ttl = 32;
    c.preprobe = core::PreprobeMode::kNone;
    c.forward_probing = false;
    c.redundancy_removal = false;
    run_tracer("Yarrp-32-UDP (sim)", c);
  }

  {
    baselines::YarrpConfig yc;
    yc.first_prefix = params.first_prefix;
    yc.prefix_bits = params.prefix_bits;
    yc.vantage = net::Ipv4Address(params.vantage_address);
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, pps);
    print("Yarrp-32 tcp", baselines::Yarrp(yc, runtime).run());
  }
  {
    baselines::YarrpConfig yc;
    yc.first_prefix = params.first_prefix;
    yc.prefix_bits = params.prefix_bits;
    yc.vantage = net::Ipv4Address(params.vantage_address);
    yc.exhaustive_ttl = 16;
    yc.fill_mode = true;
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, pps);
    print("Yarrp-16 tcp fill", baselines::Yarrp(yc, runtime).run());
  }
  {
    baselines::ScamperConfig sc;
    sc.first_prefix = params.first_prefix;
    sc.prefix_bits = params.prefix_bits;
    sc.vantage = net::Ipv4Address(params.vantage_address);
    sim::SimNetwork network(topology);
    sim::SimScanRuntime runtime(network, 10'000.0 * scale);
    print("Scamper-16", baselines::Scamper(sc, runtime).run());
  }
  return 0;
}
