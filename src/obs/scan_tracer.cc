#include "obs/scan_tracer.h"

#include <cassert>

namespace flashroute::obs {

const char* phase_name(ScanPhase phase) noexcept {
  switch (phase) {
    case ScanPhase::kInit:
      return "init";
    case ScanPhase::kPreprobe:
      return "preprobe";
    case ScanPhase::kMain:
      return "main";
    case ScanPhase::kExtra:
      return "extra";
    case ScanPhase::kDone:
      return "done";
  }
  return "?";
}

ScanTracer::ScanTracer(MetricsRegistry& registry, util::Nanos interval)
    : registry_(registry), interval_(interval) {
  assert(registry.frozen() && "ScanTracer requires a frozen registry");
  lanes_.reserve(static_cast<std::size_t>(registry.num_lanes()));
  for (int i = 0; i < registry.num_lanes(); ++i) {
    auto st = std::make_unique<LaneState>();
    st->metrics = registry.lane(i);
    st->last.assign(registry.num_counters(), 0);
    lanes_.push_back(std::move(st));
  }
}

void ScanTracer::capture(int lane, LaneState& st, util::Nanos now) {
  TraceInterval iv;
  iv.t = now;
  iv.phase = st.phase;
  iv.deltas.resize(st.last.size());
  for (std::size_t c = 0; c < st.last.size(); ++c) {
    const std::uint64_t cur =
        st.metrics.counter(static_cast<CounterId>(c));
    iv.deltas[c] = cur - st.last[c];
    st.last[c] = cur;
  }
  iv.gauges = registry_.sample_lane_gauges(lane);
  st.intervals.push_back(std::move(iv));
  st.interval_begin = now;
}

void ScanTracer::begin_phase(int lane, ScanPhase phase, util::Nanos now) {
  auto& st = *lanes_[static_cast<std::size_t>(lane)];
  if (!st.started) {
    // First phase anchors the tick grid; no interval precedes it.
    st.started = true;
    st.interval_begin = now;
    if (interval_ > 0) st.next_tick = now + interval_;
  } else {
    // Close out the outgoing phase so its tail shows up in the stream.
    capture(lane, st, now);
  }
  st.phase = phase;
  st.transitions.push_back({now, phase});
}

void ScanTracer::finish(int lane, util::Nanos now) {
  auto& st = *lanes_[static_cast<std::size_t>(lane)];
  if (st.started) capture(lane, st, now);
  st.phase = ScanPhase::kDone;
  st.transitions.push_back({now, ScanPhase::kDone});
}

}  // namespace flashroute::obs
