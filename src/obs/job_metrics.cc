#include "obs/job_metrics.h"

namespace flashroute::obs {

JobMetricIds register_job_metrics(MetricsRegistry& registry) {
  JobMetricIds ids;
  ids.jobs_submitted = registry.add_counter("svc.jobs_submitted");
  ids.jobs_admitted = registry.add_counter("svc.jobs_admitted");
  ids.jobs_rejected = registry.add_counter("svc.jobs_rejected");
  ids.jobs_preempted = registry.add_counter("svc.jobs_preempted");
  ids.jobs_resumed = registry.add_counter("svc.jobs_resumed");
  ids.jobs_completed = registry.add_counter("svc.jobs_completed");
  ids.jobs_failed = registry.add_counter("svc.jobs_failed");
  ids.jobs_cancelled = registry.add_counter("svc.jobs_cancelled");
  ids.jobs_recovered = registry.add_counter("svc.jobs_recovered");
  ids.slices_dispatched = registry.add_counter("svc.slices_dispatched");
  ids.probes_executed = registry.add_counter("svc.probes_executed");
  return ids;
}

}  // namespace flashroute::obs
