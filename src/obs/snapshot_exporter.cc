#include "obs/snapshot_exporter.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace flashroute::obs {

std::string SnapshotExporter::json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string SnapshotExporter::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void SnapshotExporter::write_intervals(const ScanTracer& tracer,
                                       const MetricsRegistry& registry) {
  const auto& names = registry.counter_names();
  for (int lane = 0; lane < tracer.num_lanes(); ++lane) {
    for (const auto& iv : tracer.intervals(lane)) {
      out_ << "{\"type\":\"interval\",\"lane\":" << lane
           << ",\"t_ns\":" << iv.t << ",\"phase\":\"" << phase_name(iv.phase)
           << "\",\"deltas\":{";
      bool first = true;
      for (std::size_t c = 0; c < iv.deltas.size(); ++c) {
        if (iv.deltas[c] == 0) continue;
        if (!first) out_ << ',';
        first = false;
        out_ << '"' << json_escape(names[c]) << "\":" << iv.deltas[c];
      }
      out_ << "},\"gauges\":{";
      first = true;
      for (const auto& [name, value] : iv.gauges) {
        if (!first) out_ << ',';
        first = false;
        out_ << '"' << json_escape(name) << "\":" << json_double(value);
      }
      out_ << "}}\n";
    }
  }
}

void SnapshotExporter::write_summary(const ScanTracer& tracer,
                                     const MetricsRegistry& registry,
                                     util::Nanos scan_time) {
  const MetricsSnapshot snap = registry.snapshot();

  out_ << "{\"type\":\"summary\",\"scan_time_ns\":" << scan_time
       << ",\"lanes\":" << tracer.num_lanes()
       << ",\"interval_ns\":" << tracer.interval() << ",\"phases\":[";
  bool first = true;
  for (int lane = 0; lane < tracer.num_lanes(); ++lane) {
    for (const auto& tr : tracer.transitions(lane)) {
      if (!first) out_ << ',';
      first = false;
      out_ << "{\"lane\":" << lane << ",\"t_ns\":" << tr.t << ",\"phase\":\""
           << phase_name(tr.phase) << "\"}";
    }
  }
  out_ << "],\"counters\":{";
  first = true;
  for (std::size_t c = 0; c < snap.counter_names.size(); ++c) {
    if (!first) out_ << ',';
    first = false;
    out_ << '"' << json_escape(snap.counter_names[c])
         << "\":" << snap.counters[c];
  }
  out_ << "},\"histograms\":{";
  first = true;
  for (std::size_t h = 0; h < snap.histogram_names.size(); ++h) {
    if (!first) out_ << ',';
    first = false;
    const auto& hist = snap.histograms[h];
    out_ << '"' << json_escape(snap.histogram_names[h])
         << "\":{\"total\":" << hist.total() << ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < util::Log2Histogram::kBuckets; ++b) {
      if (hist.bucket_count(b) == 0) continue;
      if (!first_bucket) out_ << ',';
      first_bucket = false;
      out_ << '[' << b << ',' << hist.bucket_count(b) << ']';
    }
    out_ << "]}";
  }
  // Gauges are an array, not an object: the same gauge name exists once
  // per lane in sharded runs, so name alone is not a unique key.
  out_ << "},\"gauges\":[";
  first = true;
  for (std::size_t g = 0; g < snap.gauge_names.size(); ++g) {
    if (!first) out_ << ',';
    first = false;
    out_ << "{\"lane\":" << snap.gauge_lanes[g] << ",\"name\":\""
         << json_escape(snap.gauge_names[g])
         << "\",\"value\":" << json_double(snap.gauges[g]) << '}';
  }
  out_ << "]}\n";
}

}  // namespace flashroute::obs
