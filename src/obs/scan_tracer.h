// ScanTracer: records WHEN things happened — phase transitions
// (preprobing → main rounds → extra scans) and per-interval counter deltas
// — against the util::Clock abstraction, so under SimClock every capture
// lands on a deterministic virtual-time tick and two same-seed scans emit
// byte-identical streams (DESIGN.md §7).
//
// Each lane (shard) has its own private LaneState, padded and touched only
// by that shard's thread; the engine calls tick(lane, now) from its probe
// loop, which is one integer compare in the common no-capture case.
// Captured intervals are buffered in-lane and only read back after the
// scan by SnapshotExporter — no cross-thread traffic during the run.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::obs {

/// The scan phases the engines report.  Values are stable (exported).
enum class ScanPhase : std::uint8_t {
  kInit = 0,       // before the first probe
  kPreprobe = 1,   // hop-distance preprobing (FlashRoute §3.2)
  kMain = 2,       // main backward/forward rounds
  kExtra = 3,      // discovery-optimized extra scans (§5.2)
  kDone = 4,       // scan finished
};

const char* phase_name(ScanPhase phase) noexcept;

/// One captured interval: counter deltas + lane gauges over [t_begin, t).
struct TraceInterval {
  util::Nanos t = 0;  // virtual end-of-interval timestamp
  ScanPhase phase = ScanPhase::kInit;
  std::vector<std::uint64_t> deltas;                   // per counter id
  std::vector<std::pair<std::string, double>> gauges;  // lane gauges
};

/// One phase transition.
struct TraceTransition {
  util::Nanos t = 0;
  ScanPhase phase = ScanPhase::kInit;
};

class ScanTracer {
 public:
  /// `interval` is the snapshot cadence in virtual nanoseconds; <= 0
  /// disables interval capture (transitions are still recorded).
  ScanTracer(MetricsRegistry& registry, util::Nanos interval);

  /// Marks a phase transition on a lane, capturing the interval that the
  /// outgoing phase was accumulating.  The first call on a lane anchors
  /// its tick grid at `now`.
  void begin_phase(int lane, ScanPhase phase, util::Nanos now);

  /// Hot-loop hook: captures an interval when `now` crossed the lane's
  /// next tick.  One compare + branch when it hasn't.
  FR_HOT void tick(int lane, util::Nanos now) {
    auto& st = *lanes_[static_cast<std::size_t>(lane)];
    if (interval_ <= 0 || now < st.next_tick) return;
    // fr-lint: allow(hot-call): interval capture runs only at tick-grid
    // boundaries (at most once per metrics interval), never per probe.
    capture(lane, st, now);
    // Advance past `now` on the fixed grid so a long stall emits one
    // catch-up interval, not a burst of empty ones.
    st.next_tick += ((now - st.next_tick) / interval_ + 1) * interval_;
  }

  /// Final capture + kDone transition for a lane.
  void finish(int lane, util::Nanos now);

  int num_lanes() const noexcept { return static_cast<int>(lanes_.size()); }
  util::Nanos interval() const noexcept { return interval_; }

  const std::vector<TraceInterval>& intervals(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->intervals;
  }
  const std::vector<TraceTransition>& transitions(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->transitions;
  }

 private:
  // Heap-allocated per lane so neighbouring lanes' mutable state (cursor
  // counters, next_tick) never shares a cache line.
  struct alignas(64) LaneState {
    MetricsLane metrics;
    ScanPhase phase = ScanPhase::kInit;
    bool started = false;
    util::Nanos interval_begin = 0;
    // Max-initialised so tick() is inert until begin_phase anchors the grid.
    util::Nanos next_tick = std::numeric_limits<util::Nanos>::max();
    std::vector<std::uint64_t> last;  // counter values at last capture
    std::vector<TraceInterval> intervals;
    std::vector<TraceTransition> transitions;
  };

  void capture(int lane, LaneState& st, util::Nanos now);

  MetricsRegistry& registry_;
  util::Nanos interval_;
  std::vector<std::unique_ptr<LaneState>> lanes_;
};

}  // namespace flashroute::obs
