// The standard metric set every probing engine (core::Tracer, the Yarrp
// and Scamper baselines) reports, and ScanTelemetry — the nullable handle
// a TracerConfig carries into the engine.
//
// Telemetry is opt-in at runtime: a default ScanTelemetry has a null lane,
// enabled() is false, and every hook in the hot path reduces to one
// predictable branch — no atomics, no allocation, nothing compiled out.

#pragma once

#include "obs/metrics.h"
#include "util/annotations.h"
#include "obs/scan_tracer.h"
#include "util/clock.h"

namespace flashroute::obs {

/// Counter / histogram ids shared by all engines (registered once per
/// registry by register_scan_metrics).
struct ScanMetricIds {
  // Counters.
  CounterId probes_sent = 0;
  CounterId preprobe_probes = 0;
  CounterId responses = 0;
  CounterId mismatches = 0;
  CounterId destinations_reached = 0;
  CounterId interfaces_discovered = 0;
  CounterId convergence_stops = 0;

  // Resilience counters — registered only when register_scan_metrics is
  // asked for them (the summary snapshot emits every registered counter,
  // so unconditional registration would change existing telemetry bytes).
  // `resilience` says whether the ids below are live; it must be checked
  // before counting them because CounterId 0 is a valid id.
  bool resilience = false;
  CounterId retransmits = 0;
  CounterId send_failures = 0;
  CounterId probe_timeouts = 0;
  CounterId rate_backoffs = 0;
  CounterId checkpoints_written = 0;

  // Log2 histograms.
  HistogramId rtt_us = 0;        // response round-trip time, microseconds
  HistogramId hop_distance = 0;  // hop distance of each discovered interface
  HistogramId gap_run = 0;       // unresponsive-run length at gap-limit stops
};

/// Registers the standard scan metrics on a (not yet frozen) registry.
/// With `resilience`, also registers the retransmission / backoff /
/// checkpoint counter family (DESIGN.md §9).
ScanMetricIds register_scan_metrics(MetricsRegistry& registry,
                                    bool resilience = false);

/// The handle an engine carries: lane + tracer + ids.  Copyable, cheap,
/// and valid in its disabled (default) state — the lane is held by value
/// (two words), so a default ScanTelemetry is self-contained and every
/// hook below is one branch.  The registry/tracer outlive the scan (the
/// CLI / test owns them).
struct ScanTelemetry {
  MetricsRegistry* registry = nullptr;
  ScanTracer* tracer = nullptr;
  MetricsLane lane;  // invalid by default = telemetry off
  int lane_id = 0;
  ScanMetricIds ids;

  FR_HOT bool enabled() const noexcept { return lane.valid(); }

  FR_HOT void count(CounterId id, std::uint64_t delta = 1) const noexcept {
    if (lane.valid()) lane.inc(id, delta);
  }
  FR_HOT void sample(HistogramId id, std::uint64_t value) const noexcept {
    if (lane.valid()) lane.record(id, value);
  }
  void begin_phase(ScanPhase phase, util::Nanos now) const {
    if (tracer != nullptr) tracer->begin_phase(lane_id, phase, now);
  }
  FR_HOT void tick(util::Nanos now) const {
    if (tracer != nullptr) tracer->tick(lane_id, now);
  }
  void finish(util::Nanos now) const {
    if (tracer != nullptr) tracer->finish(lane_id, now);
  }
};

}  // namespace flashroute::obs
