#include "obs/metrics.h"

#include <cassert>
#include <utility>

namespace flashroute::obs {

CounterId MetricsRegistry::add_counter(std::string name) {
  assert(!frozen() && "add_counter after freeze()");
  counter_names_.push_back(std::move(name));
  return static_cast<CounterId>(counter_names_.size() - 1);
}

HistogramId MetricsRegistry::add_histogram(std::string name) {
  assert(!frozen() && "add_histogram after freeze()");
  histogram_names_.push_back(std::move(name));
  return static_cast<HistogramId>(histogram_names_.size() - 1);
}

void MetricsRegistry::add_gauge(std::string name, int lane,
                                std::function<double()> sample) {
  gauges_.push_back({std::move(name), lane, std::move(sample)});
}

void MetricsRegistry::freeze(int num_lanes) {
  assert(!frozen() && "freeze() called twice");
  assert(num_lanes > 0);
  num_lanes_ = num_lanes;
  hist_base_ = static_cast<std::uint32_t>(counter_names_.size());
  const std::uint32_t cells_per_lane =
      hist_base_ + static_cast<std::uint32_t>(histogram_names_.size()) *
                       util::Log2Histogram::kBuckets;
  // Round the lane up to whole cache-line blocks so adjacent lanes never
  // share a line; at least one block even for an empty registry.
  blocks_per_lane_ = (cells_per_lane + 7) / 8;
  if (blocks_per_lane_ == 0) blocks_per_lane_ = 1;
  // Construct in place: CellBlock holds atomics, which are not copyable,
  // so vector::assign's copy-fill is unavailable; value-initialization
  // zeroes every cell (C++20 atomic default ctor).
  blocks_ = std::vector<detail::CellBlock>(
      static_cast<std::size_t>(blocks_per_lane_) *
      static_cast<std::size_t>(num_lanes));
}

MetricsLane MetricsRegistry::lane(int index) {
  assert(frozen() && "lane() before freeze()");
  assert(index >= 0 && index < num_lanes_);
  return MetricsLane(
      blocks_.data() +
          static_cast<std::size_t>(index) * blocks_per_lane_,
      hist_base_);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counter_names = counter_names_;
  snap.histogram_names = histogram_names_;
  snap.counters.assign(counter_names_.size(), 0);
  snap.histograms.assign(histogram_names_.size(), util::Log2Histogram{});
  for (int lane = 0; lane < num_lanes_; ++lane) {
    const detail::CellBlock* base =
        blocks_.data() + static_cast<std::size_t>(lane) * blocks_per_lane_;
    const auto cell = [&](std::uint32_t index) {
      return base[index / 8].cells[index % 8].load(std::memory_order_relaxed);
    };
    for (std::uint32_t c = 0; c < counter_names_.size(); ++c) {
      snap.counters[c] += cell(c);
    }
    for (std::uint32_t h = 0; h < histogram_names_.size(); ++h) {
      const std::uint32_t first =
          hist_base_ + h * util::Log2Histogram::kBuckets;
      for (int b = 0; b < util::Log2Histogram::kBuckets; ++b) {
        const std::uint64_t n = cell(first + static_cast<std::uint32_t>(b));
        if (n != 0) snap.histograms[h].add_bucket(b, n);
      }
    }
  }
  snap.gauge_names.reserve(gauges_.size());
  snap.gauge_lanes.reserve(gauges_.size());
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauge_names.push_back(g.name);
    snap.gauge_lanes.push_back(g.lane);
    snap.gauges.push_back(g.sample ? g.sample() : 0.0);
  }
  return snap;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::sample_lane_gauges(int lane) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& g : gauges_) {
    if (g.lane != lane) continue;
    out.emplace_back(g.name, g.sample ? g.sample() : 0.0);
  }
  return out;
}

}  // namespace flashroute::obs
