// SnapshotExporter: serializes a scan's telemetry as JSON Lines — one
// `interval` record per captured tick (lane-major, virtual-time order
// within a lane) followed by exactly one final `summary` record with the
// merged counters, histograms, gauges and the phase-transition log.
//
// The stream is a pure function of the captured data, which under SimClock
// is a pure function of the scan seed — so two same-seed runs write
// byte-identical files (tests/obs_export_test.cc), and the stream itself
// is usable as a regression artifact.  scripts/check_metrics_schema.py
// validates the schema.

#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/scan_tracer.h"
#include "util/clock.h"

namespace flashroute::obs {

class SnapshotExporter {
 public:
  explicit SnapshotExporter(std::ostream& out) : out_(out) {}

  /// Writes every captured interval of every lane, lane-major.  Interval
  /// records carry only the non-zero counter deltas.
  void write_intervals(const ScanTracer& tracer,
                       const MetricsRegistry& registry);

  /// Writes the single closing summary record.
  void write_summary(const ScanTracer& tracer,
                     const MetricsRegistry& registry,
                     util::Nanos scan_time);

  /// Formats a double deterministically for the JSON stream ("%.12g").
  static std::string json_double(double v);

  /// Escapes a string for a JSON literal (quotes not included).
  static std::string json_escape(const std::string& s);

 private:
  std::ostream& out_;
};

}  // namespace flashroute::obs
