// Lock-free scan telemetry: a registry of named counters, log2-bucketed
// histograms and sampled gauges, laid out as cache-line-padded per-shard
// "lanes" so the probe/response hot path never contends (DESIGN.md §7).
//
// Concurrency contract
//   * Each lane has exactly ONE writer thread (the shard's scan loop).  A
//     writer bumps its own cells with relaxed atomic load+store — no RMW,
//     no fence, no sharing — so with a modern compiler the increment costs
//     the same as a plain `++` on private memory.
//   * Lanes are padded to 64-byte blocks: two shards never touch the same
//     cache line (no false sharing).
//   * snapshot() may run concurrently with the writers (the CLI's periodic
//     flush, a dashboard thread): it reads every cell with a relaxed atomic
//     load and merges lanes into plain uint64 sums.  Readers may observe a
//     slightly stale but always torn-free value; TSan is clean
//     (tests/obs_metrics_test.cc).
//   * Registration (add_counter/add_histogram) happens before freeze();
//     gauges may be registered any time before the first snapshot.
//   * There is deliberately no mutex anywhere in this subsystem, so the
//     capability annotations of DESIGN.md §13 have nothing to guard here;
//     the write/snapshot linearization claim is instead proven
//     interleaving-exhaustively by tests/model_metrics_test.cc (the
//     fr_model litmus harness) on top of the FR_SINGLE_WRITER lint rule.
//
// Runtime toggle: telemetry off means no MetricsLane is handed to the
// engine (a null pointer), so the hot path executes one predictable branch
// and *zero* extra atomic operations — nothing needs to be compiled out.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/stats.h"

namespace flashroute::obs {

/// Index of a registered counter / histogram, handed out by the registry.
using CounterId = std::uint32_t;
using HistogramId = std::uint32_t;

namespace detail {

/// One cache line of counter cells.  Lanes are built from whole blocks so
/// no two lanes share a line.
struct alignas(64) CellBlock {
  // fr-atomic: lane counter cells — single-writer relaxed store, relaxed
  // snapshot loads (MetricsLane is the FR_SINGLE_WRITER scope that writes).
  std::array<std::atomic<std::uint64_t>, 8> cells{};
};
static_assert(sizeof(CellBlock) == 64);

}  // namespace detail

/// A single shard's private view of the registry's cell slab.  Cheap to
/// copy (two pointers); the engine stores a pointer to one and bumps it
/// from exactly one thread.
class FR_SINGLE_WRITER MetricsLane {
 public:
  MetricsLane() = default;

  /// A default-constructed lane is invalid; inc/record on it are UB (the
  /// ScanTelemetry wrapper checks before calling).
  FR_HOT bool valid() const noexcept { return blocks_ != nullptr; }

  /// Single-writer increment: relaxed load + relaxed store.  Deliberately
  /// NOT fetch_add — there is one writer per lane, so a read-modify-write
  /// (lock-prefixed on x86) would buy nothing and cost ~20 cycles.
  FR_HOT void inc(CounterId id, std::uint64_t delta = 1) const noexcept {
    auto& cell = cell_at(id);
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  /// Records one sample into a log2-bucketed histogram.
  FR_HOT void record(HistogramId id, std::uint64_t value) const noexcept {
    auto& cell = cell_at(
        hist_base_ + id * util::Log2Histogram::kBuckets +
        static_cast<std::uint32_t>(util::Log2Histogram::bucket_of(value)));
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  /// Reads one counter cell (relaxed; used by ScanTracer delta capture,
  /// which runs on the lane's own writer thread).
  FR_HOT std::uint64_t counter(CounterId id) const noexcept {
    return cell_at(id).load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  MetricsLane(detail::CellBlock* blocks, std::uint32_t hist_base)
      : blocks_(blocks), hist_base_(hist_base) {}

  FR_HOT std::atomic<std::uint64_t>& cell_at(std::uint32_t index) const noexcept {
    return blocks_[index / 8].cells[index % 8];
  }

  detail::CellBlock* blocks_ = nullptr;
  std::uint32_t hist_base_ = 0;  // cell index where histogram cells start
};

/// A merged, plain-value view of every metric — what the exporter writes.
struct MetricsSnapshot {
  std::vector<std::string> counter_names;
  std::vector<std::uint64_t> counters;  // summed across lanes

  std::vector<std::string> histogram_names;
  std::vector<util::Log2Histogram> histograms;  // merged across lanes

  std::vector<std::string> gauge_names;
  std::vector<int> gauge_lanes;  // owning lane of each gauge
  std::vector<double> gauges;    // sampled at snapshot time
};

/// Owns the metric name table and the padded cell slab; hands out lanes.
///
/// Lifecycle: add_counter()/add_histogram() → freeze(num_lanes) →
/// lane(i) handed to each shard → writers run → snapshot() any time.
class MetricsRegistry {
 public:
  /// Registers a named counter; must be called before freeze().
  CounterId add_counter(std::string name);

  /// Registers a named log2 histogram; must be called before freeze().
  HistogramId add_histogram(std::string name);

  /// Registers a sampled gauge (e.g. route-cache hit rate) owned by a
  /// lane.  The callback is invoked on the snapshotting thread, so it must
  /// be safe to call concurrently with the scan (the sim counters it reads
  /// are plain uint64s written by the lane's own thread; snapshots taken
  /// mid-scan may be stale by a few probes, which is fine for a gauge).
  /// Allowed after freeze(), but not after the first snapshot.
  void add_gauge(std::string name, int lane, std::function<double()> sample);

  /// Allocates the cell slab for `num_lanes` single-writer lanes.
  void freeze(int num_lanes);

  bool frozen() const noexcept { return !blocks_.empty(); }
  int num_lanes() const noexcept { return num_lanes_; }
  std::size_t num_counters() const noexcept { return counter_names_.size(); }
  std::size_t num_histograms() const noexcept {
    return histogram_names_.size();
  }

  /// The lane for shard `index` (0-based).  Requires freeze().
  MetricsLane lane(int index);

  /// Merges every lane (relaxed loads) and samples every gauge.
  MetricsSnapshot snapshot() const;

  /// Samples just the gauges registered for one lane, in registration
  /// order.  Called by ScanTracer on the lane's own thread at interval
  /// ticks, so the values are deterministic under virtual time.
  std::vector<std::pair<std::string, double>> sample_lane_gauges(
      int lane) const;

  const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }
  const std::vector<std::string>& histogram_names() const noexcept {
    return histogram_names_;
  }

 private:
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;

  struct Gauge {
    std::string name;
    int lane = 0;
    std::function<double()> sample;
  };
  std::vector<Gauge> gauges_;

  // One slab, lane-strided: lane i owns blocks [i*stride, (i+1)*stride).
  std::vector<detail::CellBlock> blocks_;
  std::uint32_t blocks_per_lane_ = 0;
  std::uint32_t hist_base_ = 0;
  int num_lanes_ = 0;
};

}  // namespace flashroute::obs
