#include "obs/scan_metrics.h"

namespace flashroute::obs {

ScanMetricIds register_scan_metrics(MetricsRegistry& registry,
                                    bool resilience) {
  ScanMetricIds ids;
  ids.probes_sent = registry.add_counter("scan.probes_sent");
  ids.preprobe_probes = registry.add_counter("scan.preprobe_probes");
  ids.responses = registry.add_counter("scan.responses");
  ids.mismatches = registry.add_counter("scan.mismatches");
  ids.destinations_reached = registry.add_counter("scan.destinations_reached");
  ids.interfaces_discovered =
      registry.add_counter("scan.interfaces_discovered");
  ids.convergence_stops = registry.add_counter("scan.convergence_stops");
  if (resilience) {
    ids.resilience = true;
    ids.retransmits = registry.add_counter("scan.retransmits");
    ids.send_failures = registry.add_counter("scan.send_failures");
    ids.probe_timeouts = registry.add_counter("scan.probe_timeouts");
    ids.rate_backoffs = registry.add_counter("scan.rate_backoffs");
    ids.checkpoints_written = registry.add_counter("scan.checkpoints_written");
  }
  ids.rtt_us = registry.add_histogram("scan.rtt_us");
  ids.hop_distance = registry.add_histogram("scan.hop_distance");
  ids.gap_run = registry.add_histogram("scan.gap_run");
  return ids;
}

}  // namespace flashroute::obs
