// Per-stage cycle attribution for the batched probe pipeline.
//
// The full-scale bench showed a ~10x gap between the process-pipeline
// microbenchmark and the end-to-end scan; closing it requires knowing where
// each probe's cycle budget goes, not guessing.  The ledger splits the
// batched pipeline into its four stages — gather/encode, batch submit,
// response delivery, and the sim network's per-probe processing — and
// accumulates wall time per stage at *batch* granularity: two
// MonotonicClock reads bracket a whole up-to-64-probe stage, so attribution
// costs a couple of nanoseconds per probe.  A null ledger pointer (the
// default everywhere) reduces every hook to one branch.
//
// Counters are relaxed atomics so the sharded engine's workers can share a
// single ledger; totals are read after the scan joins its workers.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::obs {

class CycleLedger {
 public:
  enum Stage : int {
    /// DCB-ring gather + template-encode into the reusable batch buffer.
    kEncode = 0,
    /// try_send_batch, end to end.  When the sim runtime also attributes
    /// kProcess, this stage *includes* that time — report send-only cost as
    /// kSend minus kProcess.
    kSend = 1,
    /// drain_batch: delivery-structure expiry plus sink dispatch.
    kDeliver = 2,
    /// SimNetwork::process_batch — route resolution, silence draws, and
    /// response synthesis (sim runtimes only).
    kProcess = 3,
    kStages = 4,
  };

  FR_HOT void add(Stage stage, util::Nanos elapsed,
                  std::uint64_t units) noexcept {
    const auto i = static_cast<std::size_t>(stage);
    nanos_[i].fetch_add(static_cast<std::uint64_t>(elapsed),
                        std::memory_order_relaxed);
    units_[i].fetch_add(units, std::memory_order_relaxed);
  }

  std::uint64_t nanos(Stage stage) const noexcept {
    return nanos_[static_cast<std::size_t>(stage)].load(
        std::memory_order_relaxed);
  }

  /// Probes (kEncode/kSend/kProcess) or delivered responses (kDeliver)
  /// attributed to the stage.
  std::uint64_t units(Stage stage) const noexcept {
    return units_[static_cast<std::size_t>(stage)].load(
        std::memory_order_relaxed);
  }

  double nanos_per_unit(Stage stage) const noexcept {
    const std::uint64_t n = units(stage);
    return n == 0 ? 0.0
                  : static_cast<double>(nanos(stage)) / static_cast<double>(n);
  }

  void reset() noexcept {
    for (auto& c : nanos_) c.store(0, std::memory_order_relaxed);
    for (auto& c : units_) c.store(0, std::memory_order_relaxed);
  }

 private:
  // fr-atomic: relaxed per-stage accumulators shared by sharded workers;
  // totals read after the scan joins.
  std::array<std::atomic<std::uint64_t>, kStages> nanos_{};
  // fr-atomic: relaxed per-stage unit counts, same discipline as nanos_.
  std::array<std::atomic<std::uint64_t>, kStages> units_{};
};

}  // namespace flashroute::obs
