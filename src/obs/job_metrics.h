// Job-lifecycle counters for the scan-job service (src/svc/, DESIGN.md §12).
//
// The daemon's control thread and each worker own one single-writer metrics
// lane (the PR 3 discipline: relaxed load+store, no RMW, no sharing), so
// lifecycle accounting never contends with a running scan.  The counter
// family mirrors the job-event JSONL stream: the summary record embeds the
// merged snapshot, and scripts/check_metrics_schema.py --job-events
// cross-checks the two against each other.

#pragma once

#include "obs/metrics.h"

namespace flashroute::obs {

/// Counter ids for the svc.* family (registered once per registry by
/// register_job_metrics, before freeze()).
struct JobMetricIds {
  CounterId jobs_submitted = 0;
  CounterId jobs_admitted = 0;
  CounterId jobs_rejected = 0;
  CounterId jobs_preempted = 0;
  CounterId jobs_resumed = 0;
  CounterId jobs_completed = 0;
  CounterId jobs_failed = 0;
  CounterId jobs_cancelled = 0;
  /// Jobs rebuilt from the journal at daemon boot (DESIGN.md §14).
  CounterId jobs_recovered = 0;
  /// One per scheduler dispatch (first slice and every resume).
  CounterId slices_dispatched = 0;
  /// Probes executed across all jobs, accumulated at slice boundaries.
  CounterId probes_executed = 0;
};

/// Registers the svc.* counter family on a (not yet frozen) registry.
JobMetricIds register_job_metrics(MetricsRegistry& registry);

}  // namespace flashroute::obs
