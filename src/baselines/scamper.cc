#include "baselines/scamper.h"

#include <algorithm>
#include <array>

#include "core/targets.h"
#include "net/icmp.h"
#include "util/permutation.h"

namespace flashroute::baselines {

namespace {
constexpr util::Nanos kIdleStep = 10 * util::kMillisecond;
}

Scamper::Scamper(const ScamperConfig& config, core::ScanRuntime& runtime)
    : config_(config),
      runtime_(runtime),
      codec_(config.vantage),
      timeouts_(std::max<util::Nanos>(config.probe_timeout / 32, 1)) {
  sink_ = [this](std::span<const std::byte> packet, util::Nanos arrival) {
    on_packet(packet, arrival);
  };
}

std::uint32_t Scamper::target_of(std::uint32_t prefix_offset) const noexcept {
  if (config_.target_override != nullptr &&
      prefix_offset < config_.target_override->size() &&
      (*config_.target_override)[prefix_offset] != 0) {
    return (*config_.target_override)[prefix_offset];
  }
  return core::random_target(config_.target_seed,
                             config_.first_prefix + prefix_offset);
}

void Scamper::admit_next() {
  const std::uint32_t n = config_.num_prefixes();
  while (active_.size() < config_.window && admit_cursor_ < n) {
    const auto index =
        static_cast<std::uint32_t>((*permutation_)(admit_cursor_++));
    const std::uint32_t destination = target_of(index);
    if (net::is_probe_excluded(net::Ipv4Address(destination))) continue;
    TraceState state;
    state.destination = destination;
    state.phase = Phase::kForward;
    state.ttl = config_.first_ttl;
    state.forward_horizon = static_cast<std::uint8_t>(
        std::min<int>(config_.first_ttl - 1 + config_.gap_limit, 255));
    active_.emplace(index, state);
    ready_.push_back(index);
  }
}

void Scamper::send_probe(std::uint32_t index, TraceState& state) {
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  const std::size_t size =
      codec_.encode_udp(net::Ipv4Address(state.destination), state.ttl,
                        /*preprobe=*/false, runtime_.now(), buffer);
  if (size == 0) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (runtime_.try_send(std::span<const std::byte>(buffer.data(), size))) {
    ++result_.probes_sent;
    tel.count(tel.ids.probes_sent);
    if (config_.collect_probe_log) {
      result_.probe_log.push_back(
          {runtime_.now(), state.destination, state.ttl});
    }
  } else {
    // A probe lost at the sender behaves like one lost in flight: the
    // timeout below retries it (within budget) or advances past the hop.
    ++result_.send_failures;
    if (tel.ids.resilience) tel.count(tel.ids.send_failures);
  }
  if (tel.tracer != nullptr) tel.tick(runtime_.now());
  state.awaiting = true;
  ++state.attempts;
  ++state.probe_token;
  timeouts_.schedule(runtime_.now() + config_.probe_timeout,
                     {index, state.probe_token});
}

void Scamper::finish(std::uint32_t index) {
  active_.erase(index);
  admit_next();
}

void Scamper::step(std::uint32_t index) {
  const auto it = active_.find(index);
  if (it == active_.end()) return;
  TraceState& state = it->second;
  if (state.awaiting) return;  // a probe is already outstanding

  if (state.phase == Phase::kForward &&
      (state.ttl > state.forward_horizon || state.ttl > config_.max_ttl)) {
    state.phase = Phase::kBackward;
    state.ttl = static_cast<std::uint8_t>(config_.first_ttl - 1);
    state.known_streak = 0;
  }
  if (state.phase == Phase::kBackward && state.ttl == 0) {
    state.phase = Phase::kDone;
  }
  if (state.phase == Phase::kDone) {
    finish(index);
    return;
  }
  send_probe(index, state);
}

void Scamper::advance_forward(TraceState& state, bool responded,
                              bool reached) {
  if (reached) {
    state.phase = Phase::kBackward;
    state.ttl = static_cast<std::uint8_t>(config_.first_ttl - 1);
    state.known_streak = 0;
    return;
  }
  if (responded) {
    state.forward_horizon = static_cast<std::uint8_t>(std::max<int>(
        state.forward_horizon,
        std::min<int>(state.ttl + config_.gap_limit, 255)));
  }
  ++state.ttl;  // bounds re-checked in step()
}

void Scamper::advance_backward(TraceState& state, bool responded,
                               bool known) {
  if (responded) {
    if (known) {
      ++state.known_streak;
    } else {
      state.known_streak = 0;
    }
    const std::uint8_t t = state.ttl;
    bool stop = false;
    if (t == 1) {
      stop = true;
    } else if (t >= config_.redundancy_pause_high) {
      stop = state.known_streak >= 2;  // one hop later than FlashRoute
    } else if (t <= config_.redundancy_pause_low) {
      stop = known;  // full Doubletree termination resumes (Fig 7 plunge)
    }
    // Between the two thresholds redundancy elimination is suspended —
    // the flat 14..6 section of Fig 7's blue curve.
    if (stop) {
      state.phase = Phase::kDone;
      if (known && t > 1) {
        ++result_.convergence_stops;
        config_.telemetry.count(config_.telemetry.ids.convergence_stops);
      }
      return;
    }
  } else {
    state.known_streak = 0;
  }
  --state.ttl;  // ttl==0 handled in step()
}

core::ScanResult Scamper::run() {
  const std::uint32_t n = config_.num_prefixes();
  result_ = core::ScanResult{};
  if (config_.collect_routes) result_.routes.assign(n, {});
  result_.destination_distance.assign(n, 0);
  result_.trigger_ttl.assign(n, 0);

  const util::RandomPermutation permutation(n, config_.seed);
  permutation_ = &permutation;
  admit_cursor_ = 0;

  const util::Nanos start = runtime_.now();
  config_.telemetry.begin_phase(obs::ScanPhase::kMain, start);
  admit_next();

  while (!active_.empty()) {
    runtime_.drain(sink_);

    // Expire outstanding probes whose response never came.
    timeouts_.expire_due(runtime_.now(), [this](const Timeout& timeout) {
      const auto it = active_.find(timeout.index);
      if (it == active_.end() || !it->second.awaiting ||
          it->second.probe_token != timeout.token) {
        return;  // stale: the probe was already answered
      }
      TraceState& state = it->second;
      state.awaiting = false;
      if (state.attempts <= config_.max_retries) {
        // Budget left: re-probe the same hop before moving on.
        ++result_.retransmits;
        const obs::ScanTelemetry& tel = config_.telemetry;
        if (tel.ids.resilience) tel.count(tel.ids.retransmits);
        send_probe(timeout.index, state);
        return;
      }
      ++result_.probe_timeouts;
      if (config_.telemetry.ids.resilience) {
        config_.telemetry.count(config_.telemetry.ids.probe_timeouts);
      }
      state.attempts = 0;
      if (state.phase == Phase::kForward) {
        advance_forward(state, /*responded=*/false, /*reached=*/false);
      } else {
        advance_backward(state, /*responded=*/false, /*known=*/false);
      }
      ready_.push_back(timeout.index);
    });

    if (ready_.empty()) {
      // Everything in flight: idle towards the earliest timeout, in small
      // steps so arriving responses resume probing promptly.
      util::Nanos wake = runtime_.now() + kIdleStep;
      if (const auto deadline = timeouts_.next_deadline()) {
        wake = std::min(wake, std::max(*deadline, runtime_.now()));
      }
      runtime_.idle_until(wake, sink_);
      continue;
    }

    while (!ready_.empty()) {
      const std::uint32_t index = ready_.front();
      ready_.pop_front();
      step(index);
    }
  }

  runtime_.idle_until(runtime_.now() + util::kSecond, sink_);
  result_.scan_time = runtime_.now() - start;
  config_.telemetry.finish(runtime_.now());
  permutation_ = nullptr;
  return result_;
}

void Scamper::on_packet(std::span<const std::byte> packet,
                        util::Nanos arrival) {
  const auto parsed = net::parse_response(packet);
  if (!parsed || !parsed->is_icmp) return;
  const auto probe = codec_.decode(*parsed);
  if (!probe) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (!probe->source_port_matches) {
    ++result_.mismatches;
    tel.count(tel.ids.mismatches);
    return;
  }
  const std::uint32_t prefix = probe->destination.value() >> 8;
  if (prefix < config_.first_prefix ||
      prefix - config_.first_prefix >= config_.num_prefixes()) {
    return;
  }
  const std::uint32_t index = prefix - config_.first_prefix;
  ++result_.responses;
  if (tel.enabled()) {
    tel.count(tel.ids.responses);
    const util::Nanos rtt = core::ProbeCodec::rtt(*probe, arrival);
    tel.sample(tel.ids.rtt_us,
               static_cast<std::uint64_t>(std::max<util::Nanos>(rtt, 0)) /
                   1000);
    tel.tick(arrival);
  }

  const bool reached = parsed->is_destination_unreachable();
  const bool was_known =
      result_.interfaces.contains(parsed->responder.value());

  // Record the hop regardless of whether the trace still awaits it.
  if (parsed->is_time_exceeded()) {
    const bool is_new =
        result_.interfaces.insert(parsed->responder.value()).second;
    if (is_new) {
      tel.count(tel.ids.interfaces_discovered);
      tel.sample(tel.ids.hop_distance, probe->initial_ttl);
    }
    if (config_.collect_routes) {
      result_.routes[index].push_back(
          {parsed->responder.value(), probe->initial_ttl, 0});
    }
  } else if (reached) {
    const int distance =
        std::max(1, static_cast<int>(probe->initial_ttl) -
                        static_cast<int>(probe->residual_ttl) + 1);
    const auto clamped =
        static_cast<std::uint8_t>(std::min(distance, 255));
    if (config_.collect_routes) {
      result_.routes[index].push_back({parsed->responder.value(), clamped,
                                       core::RouteHop::kFromDestination});
    }
    if (result_.destination_distance[index] == 0 ||
        clamped < result_.destination_distance[index]) {
      if (result_.destination_distance[index] == 0) {
        ++result_.destinations_reached;
        tel.count(tel.ids.destinations_reached);
      }
      result_.destination_distance[index] = clamped;
    }
    if (result_.trigger_ttl[index] == 0 ||
        probe->initial_ttl < result_.trigger_ttl[index]) {
      result_.trigger_ttl[index] = probe->initial_ttl;
    }
  } else {
    return;
  }

  const auto it = active_.find(index);
  if (it == active_.end()) return;
  TraceState& state = it->second;
  if (!state.awaiting || probe->initial_ttl != state.ttl) return;

  state.awaiting = false;
  ++state.probe_token;  // cancels the pending timeout
  state.attempts = 0;
  if (state.phase == Phase::kForward) {
    advance_forward(state, /*responded=*/true, reached);
  } else {
    advance_backward(state, /*responded=*/true, was_known);
  }
  ready_.push_back(index);
}

}  // namespace flashroute::baselines
