// Yarrp baseline (Beverly, IMC'16; Yarrp6, IMC'18) — the state of the art
// FlashRoute is compared against in §4.2.
//
// Yarrp is stateless: it walks a random permutation of every
// (prefix, TTL) pair and fires one probe per element, never adapting to
// feedback.  We reproduce:
//
//  * the ZMap-style keyed permutation over the (prefix, TTL) domain;
//  * Paris-TCP-ACK probes by default (elapsed time in the TCP sequence
//    number); UDP optional — the real Yarrp's UDP encoding overflows the
//    packet-length field (§4.2.1 footnote), which is why the paper
//    *simulates* Yarrp-32-UDP with a restricted FlashRoute configuration;
//  * Yarrp6 "fill mode" (Yarrp-16): exhaustive probing up to a reduced
//    maximum TTL, plus one sequential extra hop whenever the farthest probed
//    hop responds and is not the target — an inherent forward gap limit of
//    one, the cause of Yarrp-16's poor interface yield in Table 3;
//  * neighborhood protection: probes within N hops of the vantage are
//    suppressed once no new interface has appeared there for 30 s (§4.2.1).

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/probe_codec.h"
#include "core/result.h"
#include "core/runtime.h"
#include "net/ipv4.h"
#include "obs/scan_metrics.h"
#include "util/annotations.h"

namespace flashroute::baselines {

struct YarrpConfig {
  std::uint32_t first_prefix = 0x010000;
  int prefix_bits = 16;
  net::Ipv4Address vantage{0xCB00710A};
  double probes_per_second = 100'000.0;

  /// Every TTL in [1, exhaustive_ttl] is probed for every prefix.
  std::uint8_t exhaustive_ttl = 32;
  /// Fill mode (Yarrp-16): responses at the frontier trigger one sequential
  /// extra probe, up to fill_max_ttl.
  bool fill_mode = false;
  std::uint8_t fill_max_ttl = 32;

  enum class ProbeType { kTcpAck, kUdp };
  ProbeType probe_type = ProbeType::kTcpAck;

  /// Neighborhood protection: 0 = off, else protect hops 1..N.
  int protected_hops = 0;
  util::Nanos protection_window = 30 * util::kSecond;

  std::uint64_t seed = 11;
  std::uint64_t target_seed = 42;
  bool collect_routes = true;
  bool collect_probe_log = false;

  /// Gather probes into ProbeBatch blocks and submit through
  /// ScanRuntime::try_send_batch (DESIGN.md §11).  Only Yarrp's pure
  /// stateless mode batches — fill mode and neighborhood protection feed
  /// responses back into the walk, so those configurations stay scalar and
  /// the flag is ignored.  Batched walks are byte-identical to scalar
  /// same-seed walks (same packets, same telemetry stream).
  bool batch_probes = true;
  const std::vector<std::uint32_t>* target_override = nullptr;

  /// Scan telemetry (DESIGN.md §7); default-disabled.  Yarrp is a
  /// single-phase walk, so it reports one kMain phase.
  obs::ScanTelemetry telemetry;

  std::uint32_t num_prefixes() const noexcept {
    return std::uint32_t{1} << prefix_bits;
  }
};

class Yarrp {
 public:
  Yarrp(const YarrpConfig& config, core::ScanRuntime& runtime);

  [[nodiscard]] core::ScanResult run();

 private:
  struct FillProbe {
    std::uint32_t destination;
    std::uint8_t ttl;
  };

  std::uint32_t target_of(std::uint32_t prefix_offset) const noexcept;
  void send_probe(std::uint32_t destination, std::uint8_t ttl);
  FR_HOT void stage_probe(std::uint32_t destination, std::uint8_t ttl);
  FR_HOT void flush_batch();
  void on_packet(std::span<const std::byte> packet, util::Nanos arrival);
  void flush_fill_queue();

  YarrpConfig config_;
  core::ScanRuntime& runtime_;
  core::ProbeCodec codec_;
  core::ScanResult result_;
  core::ScanRuntime::Sink sink_;
  std::deque<FillProbe> fill_queue_;
  /// last time a *new* interface appeared at hop h (1-based, protection).
  std::vector<util::Nanos> last_new_interface_;
  std::vector<bool> dest_done_;  ///< target answered (stops fill chains)
  /// Batched-submit state (pure mode only; see YarrpConfig::batch_probes).
  core::ProbeBatch batch_;
  std::array<util::Nanos, core::ProbeBatch::kMaxPackets> batch_ticks_{};
  std::uint32_t batch_budget_ = 1;
  bool batch_mode_ = false;
};

}  // namespace flashroute::baselines
