// Scamper-like baseline (Luckie, IMC'10) — the long-running CAIDA prober the
// paper compares against in §4.2.
//
// Unlike Yarrp/FlashRoute, Scamper traces each destination with a classic
// sequential state machine (one outstanding probe per destination, matched
// to its response or timed out), holding a window of destinations in flight
// and pacing the aggregate probe rate — capped at 10 Kpps, its maximum
// (§4.2.1).  Configured as the paper does: Paris-UDP, first-TTL 16, max TTL
// 32, gap limit 5, retries restricted to one probe per hop.
//
// Backward probing uses Doubletree's stop set, but reproducing Fig 7
// faithfully requires Scamper's *actual* (not nominal) behaviour, which the
// paper reverse-engineered: redundancy elimination kicks in one hop later
// than FlashRoute's (we require two consecutive already-known hops above
// `redundancy_pause_high`), is suspended between `redundancy_pause_high`
// and `redundancy_pause_low` (the flat 14..6 region of the blue curve), and
// resumes in full below `redundancy_pause_low` (the plunge at 6).

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/probe_codec.h"
#include "core/result.h"
#include "core/runtime.h"
#include "net/ipv4.h"
#include "obs/scan_metrics.h"
#include "util/permutation.h"
#include "util/timing_wheel.h"

namespace flashroute::baselines {

struct ScamperConfig {
  std::uint32_t first_prefix = 0x010000;
  int prefix_bits = 16;
  net::Ipv4Address vantage{0xCB00710A};
  double probes_per_second = 10'000.0;  // Scamper's ceiling (§4.2.1)

  std::uint8_t first_ttl = 16;  // the split TTL, Scamper's "first-TTL"
  std::uint8_t max_ttl = 32;
  std::uint8_t gap_limit = 5;

  /// Destinations traced concurrently.
  std::uint32_t window = 4096;
  util::Nanos probe_timeout = 2 * util::kSecond;

  /// Probes re-sent at the same TTL after a timeout before giving up on the
  /// hop — Scamper's classic accuracy-for-probes trade (its `-q` attempts
  /// knob).  0 reproduces the paper's configuration (one probe per hop).
  std::uint8_t max_retries = 0;

  // Empirical Fig-7 redundancy model (see header comment).
  std::uint8_t redundancy_pause_high = 14;
  std::uint8_t redundancy_pause_low = 6;

  std::uint64_t seed = 13;
  std::uint64_t target_seed = 42;
  bool collect_routes = true;
  bool collect_probe_log = false;

  /// Accepted for API symmetry with Tracer/Yarrp (DESIGN.md §11) but a
  /// no-op: Scamper's state machine has at most one outstanding probe per
  /// destination and every send is gated on the previous response or
  /// timeout, so there is never a second probe to gather into a batch.
  /// The engine always runs the scalar cadence regardless of this flag.
  bool batch_probes = true;
  const std::vector<std::uint32_t>* target_override = nullptr;

  /// Scan telemetry (DESIGN.md §7); default-disabled.  Scamper's windowed
  /// state machine is a single phase, reported as kMain.
  obs::ScanTelemetry telemetry;

  std::uint32_t num_prefixes() const noexcept {
    return std::uint32_t{1} << prefix_bits;
  }
};

class Scamper {
 public:
  Scamper(const ScamperConfig& config, core::ScanRuntime& runtime);

  [[nodiscard]] core::ScanResult run();

 private:
  enum class Phase : std::uint8_t { kForward, kBackward, kDone };

  struct TraceState {
    std::uint32_t destination = 0;
    Phase phase = Phase::kForward;
    std::uint8_t ttl = 0;            ///< TTL of the outstanding/next probe
    std::uint8_t forward_horizon = 0;
    std::uint8_t known_streak = 0;   ///< consecutive known backward hops
    std::uint8_t attempts = 0;       ///< probes sent for the current TTL
    bool awaiting = false;
    std::uint32_t probe_token = 0;   ///< invalidates stale timeouts
  };

  /// Timing-wheel payload; the deadline lives in the wheel itself.  Probe
  /// timeouts are scheduled in strictly increasing virtual-time order, so
  /// the wheel's (deadline, insertion) expiry order matches the former
  /// priority queue's exactly — the Fig-7 regression depends on it.
  struct Timeout {
    std::uint32_t index;
    std::uint32_t token;
  };

  std::uint32_t target_of(std::uint32_t prefix_offset) const noexcept;
  void admit_next();
  void step(std::uint32_t index);       ///< send the next probe or finish
  void advance_forward(TraceState& state, bool responded, bool reached);
  void advance_backward(TraceState& state, bool responded, bool known);
  void send_probe(std::uint32_t index, TraceState& state);
  void on_packet(std::span<const std::byte> packet, util::Nanos arrival);
  void finish(std::uint32_t index);

  ScamperConfig config_;
  core::ScanRuntime& runtime_;
  core::ProbeCodec codec_;
  core::ScanResult result_;
  core::ScanRuntime::Sink sink_;

  std::unordered_map<std::uint32_t, TraceState> active_;  // by prefix offset
  std::deque<std::uint32_t> ready_;
  util::TimingWheel<Timeout> timeouts_;
  std::uint64_t admit_cursor_ = 0;
  const util::RandomPermutation* permutation_ = nullptr;
};

}  // namespace flashroute::baselines
