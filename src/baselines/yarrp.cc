#include "baselines/yarrp.h"

#include <array>
#include <bit>

#include "core/targets.h"
#include "net/checksum.h"
#include "net/icmp.h"
#include "util/permutation.h"

namespace flashroute::baselines {

Yarrp::Yarrp(const YarrpConfig& config, core::ScanRuntime& runtime)
    : config_(config), runtime_(runtime), codec_(config.vantage) {
  sink_ = [this](std::span<const std::byte> packet, util::Nanos arrival) {
    on_packet(packet, arrival);
  };
}

std::uint32_t Yarrp::target_of(std::uint32_t prefix_offset) const noexcept {
  if (config_.target_override != nullptr &&
      prefix_offset < config_.target_override->size() &&
      (*config_.target_override)[prefix_offset] != 0) {
    return (*config_.target_override)[prefix_offset];
  }
  return core::random_target(config_.target_seed,
                             config_.first_prefix + prefix_offset);
}

void Yarrp::send_probe(std::uint32_t destination, std::uint8_t ttl) {
  std::array<std::byte, core::ProbeCodec::kMaxProbeSize> buffer;
  std::size_t size = 0;
  if (config_.probe_type == YarrpConfig::ProbeType::kTcpAck) {
    size = codec_.encode_tcp(net::Ipv4Address(destination), ttl,
                             runtime_.now(), buffer);
  } else {
    size = codec_.encode_udp(net::Ipv4Address(destination), ttl,
                             /*preprobe=*/false, runtime_.now(), buffer);
  }
  if (size == 0) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (!runtime_.try_send(std::span<const std::byte>(buffer.data(), size))) {
    // Yarrp is stateless by design: a probe lost at the sender is simply a
    // silent hop — no state to retry from (the contrast the resilience
    // bench measures).
    ++result_.send_failures;
    if (tel.ids.resilience) tel.count(tel.ids.send_failures);
    if (tel.tracer != nullptr) tel.tick(runtime_.now());
    return;
  }
  ++result_.probes_sent;
  tel.count(tel.ids.probes_sent);
  if (tel.tracer != nullptr) tel.tick(runtime_.now());
  if (config_.collect_probe_log) {
    result_.probe_log.push_back({runtime_.now(), destination, ttl});
  }
}

// Template-encodes one probe into the gather batch.  The encode timestamp
// is send_time_of(k) — the instant a scalar loop's pre-send now() would
// read for the k-th staged probe — so batched packets are byte-identical
// to their scalar twins; the telemetry tick is replayed at flush with the
// post-send instant send_time_of(k+1), matching the scalar stream.
void Yarrp::stage_probe(std::uint32_t destination, std::uint8_t ttl) {
  const std::uint32_t k = batch_.count();
  std::size_t size = 0;
  if (config_.probe_type == YarrpConfig::ProbeType::kTcpAck) {
    size = codec_.encode_tcp(net::Ipv4Address(destination), ttl,
                             runtime_.send_time_of(k), batch_.slot());
  } else {
    size = codec_.encode_udp(net::Ipv4Address(destination), ttl,
                             /*preprobe=*/false, runtime_.send_time_of(k),
                             batch_.slot());
  }
  if (size == 0) return;
  batch_ticks_[k] = runtime_.send_time_of(k + 1);
  batch_.commit(size);
}

// Submits the gathered block, replays the per-probe bookkeeping a scalar
// loop would have interleaved (counters and telemetry ticks in send order),
// and drains the responses that came due across the block.  The batch
// budget guarantees every drain a scalar loop would have run between these
// probes was empty, so the replayed stream is byte-identical.
void Yarrp::flush_batch() {
  if (batch_.empty()) return;
  const std::uint64_t ok = runtime_.try_send_batch(batch_);
  const obs::ScanTelemetry& tel = config_.telemetry;
  const auto sent = static_cast<std::uint64_t>(std::popcount(ok));
  result_.probes_sent += sent;
  result_.send_failures += batch_.count() - sent;
  for (std::uint32_t k = 0; k < batch_.count(); ++k) {
    if ((ok >> k) & 1) {
      tel.count(tel.ids.probes_sent);
    } else if (tel.ids.resilience) {
      tel.count(tel.ids.send_failures);
    }
    if (tel.tracer != nullptr) tel.tick(batch_ticks_[k]);
  }
  batch_.clear();
  runtime_.drain_batch(sink_);
}

core::ScanResult Yarrp::run() {
  const std::uint32_t n = config_.num_prefixes();
  result_ = core::ScanResult{};
  if (config_.collect_routes) result_.routes.assign(n, {});
  result_.destination_distance.assign(n, 0);
  result_.trigger_ttl.assign(n, 0);
  dest_done_.assign(n, false);
  last_new_interface_.assign(
      static_cast<std::size_t>(config_.protected_hops) + 1, runtime_.now());

  const util::Nanos start = runtime_.now();
  config_.telemetry.begin_phase(obs::ScanPhase::kMain, start);

  // Pure stateless mode batches; fill mode and neighborhood protection
  // consume response feedback mid-walk, so they keep the scalar cadence.
  batch_mode_ = config_.batch_probes && config_.protected_hops == 0 &&
                !config_.fill_mode && !config_.collect_probe_log;
  batch_.clear();

  // The ZMap-inspired walk: a keyed bijection over every (prefix, TTL)
  // combination, generated on the fly — no target list in memory (§2).
  const std::uint64_t domain =
      std::uint64_t{n} * config_.exhaustive_ttl;
  const util::RandomPermutation permutation(domain, config_.seed);

  for (std::uint64_t i = 0; i < domain; ++i) {
    const std::uint64_t v = permutation(i);
    const auto prefix_offset = static_cast<std::uint32_t>(
        v / config_.exhaustive_ttl);
    const auto ttl =
        static_cast<std::uint8_t>(1 + v % config_.exhaustive_ttl);
    const std::uint32_t destination = target_of(prefix_offset);
    if (net::is_probe_excluded(net::Ipv4Address(destination))) continue;

    if (batch_mode_) {
      // Yarrp drains after every probe, so the flush threshold is exactly
      // the runtime's budget: every scalar drain the batch skips is
      // provably empty (no pending arrival, no intra-batch response can
      // come due inside the window).
      if (!batch_.empty() && batch_.count() >= batch_budget_) flush_batch();
      if (batch_.empty()) batch_budget_ = runtime_.batch_budget();
      stage_probe(destination, ttl);
      continue;
    }

    if (config_.protected_hops > 0 && ttl <= config_.protected_hops &&
        runtime_.now() - last_new_interface_[ttl] >
            config_.protection_window) {
      continue;  // neighborhood protection: this hop radius has gone quiet
    }

    send_probe(destination, ttl);
    runtime_.drain(sink_);
    flush_fill_queue();
  }
  if (batch_mode_) flush_batch();

  // Let the tail of responses land (and drive any remaining fill chains).
  for (int grace = 0; grace < 3; ++grace) {
    runtime_.idle_until(runtime_.now() + util::kSecond, sink_);
    flush_fill_queue();
  }

  result_.scan_time = runtime_.now() - start;
  config_.telemetry.finish(runtime_.now());
  return result_;
}

void Yarrp::flush_fill_queue() {
  while (!fill_queue_.empty()) {
    const FillProbe fill = fill_queue_.front();
    fill_queue_.pop_front();
    send_probe(fill.destination, fill.ttl);
    runtime_.drain(sink_);
  }
}

void Yarrp::on_packet(std::span<const std::byte> packet,
                      util::Nanos arrival) {
  const auto parsed = net::parse_response(packet);
  if (!parsed) return;
  const obs::ScanTelemetry& tel = config_.telemetry;

  if (parsed->is_tcp_rst) {
    // The destination answered our TCP-ACK with a RST: route endpoint.
    const std::uint32_t responder = parsed->responder.value();
    const std::uint32_t prefix = responder >> 8;
    if (prefix < config_.first_prefix ||
        prefix - config_.first_prefix >= config_.num_prefixes()) {
      return;
    }
    // Flow check: the RST's destination port echoes our source port, the
    // checksum of the target address.
    if (parsed->tcp_dst_port !=
        net::address_checksum(net::Ipv4Address(responder))) {
      ++result_.mismatches;
      tel.count(tel.ids.mismatches);
      return;
    }
    const std::uint32_t index = prefix - config_.first_prefix;
    ++result_.responses;
    if (tel.enabled()) {
      tel.count(tel.ids.responses);
      tel.tick(arrival);
    }
    if (config_.collect_routes) {
      result_.routes[index].push_back(
          {responder, 0, core::RouteHop::kFromDestination});
    }
    if (!dest_done_[index]) {
      dest_done_[index] = true;
      ++result_.destinations_reached;
      tel.count(tel.ids.destinations_reached);
    }
    return;
  }

  const auto probe = codec_.decode(*parsed);
  if (!probe) return;
  if (!probe->source_port_matches) {
    ++result_.mismatches;
    tel.count(tel.ids.mismatches);
    return;
  }
  const std::uint32_t prefix = probe->destination.value() >> 8;
  if (prefix < config_.first_prefix ||
      prefix - config_.first_prefix >= config_.num_prefixes()) {
    return;
  }
  const std::uint32_t index = prefix - config_.first_prefix;
  ++result_.responses;
  if (tel.enabled()) {
    tel.count(tel.ids.responses);
    const util::Nanos rtt = core::ProbeCodec::rtt(*probe, arrival);
    tel.sample(tel.ids.rtt_us,
               static_cast<std::uint64_t>(std::max<util::Nanos>(rtt, 0)) /
                   1000);
    tel.tick(arrival);
  }

  if (parsed->is_time_exceeded()) {
    const std::uint8_t ttl = probe->initial_ttl;
    const bool is_new =
        result_.interfaces.insert(parsed->responder.value()).second;
    if (is_new) {
      tel.count(tel.ids.interfaces_discovered);
      tel.sample(tel.ids.hop_distance, ttl);
    }
    if (config_.collect_routes) {
      result_.routes[index].push_back({parsed->responder.value(), ttl, 0});
    }
    if (is_new && config_.protected_hops > 0 &&
        ttl <= config_.protected_hops) {
      last_new_interface_[ttl] = runtime_.now();
    }
    // Fill mode: the farthest probed hop responded and is not the target —
    // extend the trace by exactly one hop (inherent gap limit 1, §4.2.1).
    if (config_.fill_mode && !dest_done_[index] &&
        ttl >= config_.exhaustive_ttl && ttl < config_.fill_max_ttl) {
      fill_queue_.push_back({probe->destination.value(),
                             static_cast<std::uint8_t>(ttl + 1)});
    }
    return;
  }

  if (parsed->is_destination_unreachable()) {
    const int distance =
        std::max(1, static_cast<int>(probe->initial_ttl) -
                        static_cast<int>(probe->residual_ttl) + 1);
    const auto clamped =
        static_cast<std::uint8_t>(std::min(distance, 255));
    if (config_.collect_routes) {
      result_.routes[index].push_back({parsed->responder.value(), clamped,
                                       core::RouteHop::kFromDestination});
    }
    if (result_.destination_distance[index] == 0 ||
        clamped < result_.destination_distance[index]) {
      result_.destination_distance[index] = clamped;
    }
    if (result_.trigger_ttl[index] == 0 ||
        probe->initial_ttl < result_.trigger_ttl[index]) {
      result_.trigger_ttl[index] = probe->initial_ttl;
    }
    if (!dest_done_[index]) {
      dest_done_[index] = true;
      ++result_.destinations_reached;
      tel.count(tel.ids.destinations_reached);
    }
  }
}

}  // namespace flashroute::baselines
