// Route completeness: the "holes" of §4.2.2.
//
// "While both configurations find the same total number of interfaces, the
// routes discovered by FlashRoute-32 will have fewer holes" — a hole is a
// TTL the tool probed on a route without ever receiving a response, e.g.
// because the router's ICMP budget was exhausted by overprobing.  This
// module counts, per destination, the probed-but-unanswered TTLs up to the
// route's known extent, separating persistent silence (the interface never
// answers anyone) from losses specific to this scan when a reference scan
// is available.

#pragma once

#include <cstdint>
#include <vector>

#include "core/result.h"

namespace flashroute::analysis {

struct RouteHoleReport {
  std::uint64_t routes_considered = 0;  ///< destinations with a known extent
  std::uint64_t probed_positions = 0;   ///< probed TTLs within the extent
  std::uint64_t holes = 0;              ///< ...that never got a response

  double holes_per_route() const noexcept {
    return routes_considered == 0
               ? 0.0
               : static_cast<double>(holes) /
                     static_cast<double>(routes_considered);
  }
  double hole_fraction() const noexcept {
    return probed_positions == 0
               ? 0.0
               : static_cast<double>(holes) /
                     static_cast<double>(probed_positions);
  }
};

/// Counts holes from a scan that recorded both routes and its probe log.
/// A route's extent is the destination distance when reached, else the
/// deepest responding hop; probes beyond the extent (silent-tail
/// exploration) are not holes.
RouteHoleReport count_route_holes(const core::ScanResult& scan,
                                  std::uint32_t first_prefix);

}  // namespace flashroute::analysis
