#include "analysis/route_holes.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/route_compare.h"

namespace flashroute::analysis {

RouteHoleReport count_route_holes(const core::ScanResult& scan,
                                  std::uint32_t first_prefix) {
  RouteHoleReport report;
  const auto extents = route_lengths(scan);
  const std::size_t n = scan.routes.size();

  // answered[prefix] = bitmask of TTLs (1..40) with a recorded response.
  std::vector<std::uint64_t> answered(n, 0);
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    for (const core::RouteHop& hop : scan.routes[prefix]) {
      if (hop.ttl >= 1 && hop.ttl <= 40) {
        answered[prefix] |= std::uint64_t{1} << hop.ttl;
      }
    }
  }

  std::vector<std::uint64_t> probed(n, 0);
  for (const core::ProbeLogEntry& probe : scan.probe_log) {
    const std::uint32_t prefix_index = probe.destination >> 8;
    if (prefix_index < first_prefix) continue;
    const std::uint32_t offset = prefix_index - first_prefix;
    if (offset >= n) continue;
    if (probe.ttl >= 1 && probe.ttl <= 40) {
      probed[offset] |= std::uint64_t{1} << probe.ttl;
    }
  }

  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    const int extent = extents[prefix];
    if (extent == 0) continue;
    ++report.routes_considered;
    for (int ttl = 1; ttl < extent; ++ttl) {
      if ((probed[prefix] & (std::uint64_t{1} << ttl)) == 0) continue;
      ++report.probed_positions;
      if ((answered[prefix] & (std::uint64_t{1} << ttl)) == 0) {
        ++report.holes;
      }
    }
  }
  return report;
}

}  // namespace flashroute::analysis
