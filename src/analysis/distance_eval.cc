#include "analysis/distance_eval.h"

namespace flashroute::analysis {

util::Histogram distance_difference(
    const std::vector<std::uint8_t>& value,
    const std::vector<std::uint8_t>& reference) {
  util::Histogram histogram;
  const std::size_t n = std::min(value.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (value[i] == 0 || reference[i] == 0) continue;
    histogram.add(static_cast<std::int64_t>(reference[i]) -
                  static_cast<std::int64_t>(value[i]));
  }
  return histogram;
}

PredictionEvaluation evaluate_prediction(
    const std::vector<std::uint8_t>& measured,
    const std::vector<std::uint8_t>& reference, int span) {
  PredictionEvaluation eval;
  const std::size_t n = std::min(measured.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (measured[i] == 0) continue;
    ++eval.measured_blocks;
    // Nearest measured neighbour other than the block itself.
    std::uint8_t predicted = 0;
    for (int delta = 1; delta <= span && predicted == 0; ++delta) {
      if (i >= static_cast<std::size_t>(delta) &&
          measured[i - static_cast<std::size_t>(delta)] != 0) {
        predicted = measured[i - static_cast<std::size_t>(delta)];
        break;
      }
      if (i + static_cast<std::size_t>(delta) < n &&
          measured[i + static_cast<std::size_t>(delta)] != 0) {
        predicted = measured[i + static_cast<std::size_t>(delta)];
      }
    }
    if (predicted == 0) continue;
    ++eval.predictable_blocks;
    if (reference[i] == 0) continue;
    eval.difference.add(static_cast<std::int64_t>(reference[i]) -
                        static_cast<std::int64_t>(predicted));
  }
  return eval;
}

}  // namespace flashroute::analysis
