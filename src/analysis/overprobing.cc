#include "analysis/overprobing.h"

#include <unordered_set>

#include "util/clock.h"

namespace flashroute::analysis {

TopologyMap::TopologyMap(const core::ScanResult& reference,
                         std::uint32_t num_prefixes, std::uint8_t max_ttl)
    : map_(std::size_t{num_prefixes} * max_ttl, 0),
      num_prefixes_(num_prefixes),
      max_ttl_(max_ttl) {
  const std::uint32_t limit = std::min<std::uint32_t>(
      num_prefixes, static_cast<std::uint32_t>(reference.routes.size()));
  for (std::uint32_t prefix = 0; prefix < limit; ++prefix) {
    for (const core::RouteHop& hop : reference.routes[prefix]) {
      if (hop.ttl == 0 || hop.ttl > max_ttl) continue;
      map_[std::size_t{prefix} * max_ttl + (hop.ttl - 1)] = hop.ip;
    }
  }
}

std::uint32_t TopologyMap::interface_at(std::uint32_t prefix_offset,
                                        std::uint8_t ttl) const noexcept {
  if (prefix_offset >= num_prefixes_ || ttl == 0 || ttl > max_ttl_) return 0;
  return map_[std::size_t{prefix_offset} * max_ttl_ + (ttl - 1)];
}

OverprobingReport analyze_overprobing(
    const std::vector<core::ProbeLogEntry>& probe_log,
    const TopologyMap& topology, std::uint32_t first_prefix,
    std::uint64_t limit_per_window, util::Nanos window) {
  OverprobingReport report;
  const std::uint64_t limit = limit_per_window;

  // Per interface: count of probes in its current time window.
  struct WindowState {
    std::int64_t index = -1;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::uint32_t, WindowState> windows;
  std::unordered_set<std::uint32_t> overprobed;

  for (const core::ProbeLogEntry& probe : probe_log) {
    const std::uint32_t prefix = probe.destination >> 8;
    if (prefix < first_prefix) continue;
    const std::uint32_t interface_ip =
        topology.interface_at(prefix - first_prefix, probe.ttl);
    if (interface_ip == 0) continue;
    ++report.mapped_probes;

    WindowState& state = windows[interface_ip];
    const std::int64_t index = probe.time / window;
    if (state.index != index) {
      state.index = index;
      state.count = 0;
    }
    if (++state.count > limit) {
      ++report.dropped_probes;
      overprobed.insert(interface_ip);
    }
  }
  report.overprobed_interfaces = overprobed.size();
  return report;
}

}  // namespace flashroute::analysis
