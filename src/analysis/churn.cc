#include "analysis/churn.h"

#include <algorithm>
#include <set>

#include "analysis/route_compare.h"

namespace flashroute::analysis {

namespace {

/// Canonical (ttl, ip) set for one route, ignoring phase flags and
/// duplicate responses.
std::set<std::pair<std::uint8_t, std::uint32_t>> canonical_route(
    const std::vector<core::RouteHop>& hops) {
  std::set<std::pair<std::uint8_t, std::uint32_t>> result;
  for (const core::RouteHop& hop : hops) {
    if (hop.flags & core::RouteHop::kFromDestination) continue;
    result.emplace(hop.ttl, hop.ip);
  }
  return result;
}

}  // namespace

ChurnReport compare_snapshots(const core::ScanResult& before,
                              const core::ScanResult& after) {
  ChurnReport report;
  report.interfaces_before = before.interfaces.size();
  report.interfaces_after = after.interfaces.size();
  for (const auto ip : after.interfaces) {
    if (!before.interfaces.contains(ip)) ++report.interfaces_appeared;
  }
  for (const auto ip : before.interfaces) {
    if (!after.interfaces.contains(ip)) ++report.interfaces_vanished;
  }

  const auto lengths_before = route_lengths(before);
  const auto lengths_after = route_lengths(after);
  const std::size_t n = std::min(before.routes.size(), after.routes.size());
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    if (before.routes[prefix].empty() || after.routes[prefix].empty()) {
      continue;
    }
    ++report.routes_compared;
    if (canonical_route(before.routes[prefix]) !=
        canonical_route(after.routes[prefix])) {
      ++report.routes_changed_hops;
    }
    if (prefix < lengths_before.size() && prefix < lengths_after.size() &&
        lengths_before[prefix] != lengths_after[prefix]) {
      ++report.routes_changed_length;
    }
  }
  return report;
}

std::optional<ChurnReport> diff_snapshots(const io::LoadedArchive& before,
                                          const io::LoadedArchive& after) {
  if (before.header.first_prefix != after.header.first_prefix ||
      before.header.prefix_bits != after.header.prefix_bits) {
    return std::nullopt;  // different universes — the diff is meaningless
  }
  if (before.result.routes.empty() || after.result.routes.empty()) {
    return std::nullopt;  // at least one scan ran without route collection
  }
  return compare_snapshots(before.result, after.result);
}

}  // namespace flashroute::analysis
