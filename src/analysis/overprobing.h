// Scan intrusiveness analysis (§4.2.2, Table 4).
//
// The paper cannot observe router rate-limiting directly, so it replays the
// *real timing* of each tool's probes onto the topology discovered by a slow
// (10 Kpps) Scamper scan: a probe to (destination, TTL) is assumed to expire
// at the interface Scamper discovered there; an interface receiving more
// probes than the ICMP rate limit (500/s) within any one-second window of
// the scan is "overprobed", and the excess probes are "dropped".  This
// module reproduces that replay over our engines' probe logs.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "util/clock.h"

namespace flashroute::analysis {

/// Map from (prefix offset, TTL) to the interface Scamper discovered there.
class TopologyMap {
 public:
  /// Builds the map from a Scamper scan's recorded routes (time-exceeded
  /// hops only; destination responses are the hosts themselves and are
  /// included at their derived distance).
  TopologyMap(const core::ScanResult& reference, std::uint32_t num_prefixes,
              std::uint8_t max_ttl);

  /// Interface expected to see a probe expire, or 0 when unknown.
  std::uint32_t interface_at(std::uint32_t prefix_offset,
                             std::uint8_t ttl) const noexcept;

  std::uint8_t max_ttl() const noexcept { return max_ttl_; }

 private:
  std::vector<std::uint32_t> map_;  // [prefix * max_ttl + (ttl-1)]
  std::uint32_t num_prefixes_;
  std::uint8_t max_ttl_;
};

struct OverprobingReport {
  std::uint64_t overprobed_interfaces = 0;
  std::uint64_t dropped_probes = 0;
  std::uint64_t mapped_probes = 0;  // probes that landed on a known interface
};

/// Replays a time-ordered probe log against the reference topology: an
/// interface receiving more than `limit_per_window` probes within any
/// window of `window` nanoseconds is overprobed, and the excess probes are
/// dropped.  The paper uses 500 probes per one-second window at full scale;
/// down-scaled simulations keep the 500-probe limit and stretch the window
/// by the inverse scale factor, preserving the probes-per-interface-per-
/// (scaled)-second comparison.
OverprobingReport analyze_overprobing(
    const std::vector<core::ProbeLogEntry>& probe_log,
    const TopologyMap& topology, std::uint32_t first_prefix,
    std::uint64_t limit_per_window, util::Nanos window);

}  // namespace flashroute::analysis
