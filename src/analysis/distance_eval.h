// Hop-distance accuracy evaluation (Figs 3 and 4).
//
// Fig 3 compares FlashRoute's one-probe distance measurement against the
// "triggering TTL" a traditional upward TTL sweep observes for the same
// destinations.  Fig 4 evaluates proximity-span prediction: each block with
// a measured distance is re-predicted from its nearest measured neighbour
// (excluding itself) and compared with the traceroute distance.

#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace flashroute::analysis {

/// Histogram of (reference - value) over indices where both are nonzero.
/// Fig 3: value = one-probe measured distance, reference = triggering TTL.
util::Histogram distance_difference(const std::vector<std::uint8_t>& value,
                                    const std::vector<std::uint8_t>& reference);

/// Fig 4: for every index with a measured distance and at least one other
/// measured block within `span`, predict it from the nearest such neighbour
/// and compare with `reference` (the triggering TTL).  Also reports what
/// fraction of measured blocks had a neighbour to predict from.
struct PredictionEvaluation {
  util::Histogram difference;       // reference - predicted
  std::uint64_t measured_blocks = 0;
  std::uint64_t predictable_blocks = 0;  // had a measured neighbour in span
};

PredictionEvaluation evaluate_prediction(
    const std::vector<std::uint8_t>& measured,
    const std::vector<std::uint8_t>& reference, int span);

}  // namespace flashroute::analysis
