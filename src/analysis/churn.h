// Snapshot churn: comparing consecutive topology snapshots.
//
// The paper's motivation (§1): "the shorter the time to complete the
// measurement the closer to a snapshot the results will be and the easier
// it is to understand the dynamics of Internet routing changes at fine time
// granularity."  Given two scans of the same universe, this module
// quantifies exactly that dynamics signal: which interfaces appeared and
// vanished, and which destinations' routes changed hops or length.

#pragma once

#include <cstdint>
#include <optional>

#include "core/result.h"
#include "io/scan_archive.h"

namespace flashroute::analysis {

struct ChurnReport {
  // Interface-level churn.
  std::uint64_t interfaces_before = 0;
  std::uint64_t interfaces_after = 0;
  std::uint64_t interfaces_appeared = 0;
  std::uint64_t interfaces_vanished = 0;

  // Route-level churn, over prefixes with hops in both snapshots.
  std::uint64_t routes_compared = 0;
  std::uint64_t routes_changed_hops = 0;    ///< some (ttl, hop) differs
  std::uint64_t routes_changed_length = 0;  ///< route extent differs

  double interface_churn_rate() const noexcept {
    const auto total = interfaces_before + interfaces_appeared;
    return total == 0 ? 0.0
                      : static_cast<double>(interfaces_appeared +
                                            interfaces_vanished) /
                            static_cast<double>(total);
  }
  double route_change_rate() const noexcept {
    return routes_compared == 0
               ? 0.0
               : static_cast<double>(routes_changed_hops) /
                     static_cast<double>(routes_compared);
  }
};

/// Compares two snapshots of the same universe (`before` was taken first;
/// both must have routes collected).
ChurnReport compare_snapshots(const core::ScanResult& before,
                              const core::ScanResult& after);

/// Archive-level diff — the entry point the scan-job service's diff queries
/// go through (DESIGN.md §12).  Validates that the two archives cover the
/// same universe (matching first_prefix and prefix_bits) and that both
/// collected routes; returns nullopt when the snapshots are not comparable.
std::optional<ChurnReport> diff_snapshots(const io::LoadedArchive& before,
                                          const io::LoadedArchive& after);

}  // namespace flashroute::analysis
