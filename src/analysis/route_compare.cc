#include "analysis/route_compare.h"

#include <algorithm>
#include <unordered_set>

#include "util/stats.h"

namespace flashroute::analysis {

namespace {

/// Collects, for one scan, the set of interfaces seen at each hop distance
/// from their destination (1 = immediately before the destination).
std::vector<std::unordered_set<std::uint32_t>> interfaces_by_back_distance(
    const core::ScanResult& scan, int max_distance,
    const core::ScanResult* must_also_reach) {
  std::vector<std::unordered_set<std::uint32_t>> sets(
      static_cast<std::size_t>(max_distance) + 1);
  const std::size_t n = scan.routes.size();
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    const std::uint8_t dest_distance = prefix < scan.destination_distance.size()
                                           ? scan.destination_distance[prefix]
                                           : 0;
    if (dest_distance == 0) continue;
    if (must_also_reach != nullptr &&
        (prefix >= must_also_reach->destination_distance.size() ||
         must_also_reach->destination_distance[prefix] == 0)) {
      continue;
    }
    for (const core::RouteHop& hop : scan.routes[prefix]) {
      if (hop.flags & core::RouteHop::kFromDestination) continue;
      if (hop.ttl == 0 || hop.ttl >= dest_distance) continue;
      const int back = dest_distance - hop.ttl;
      if (back >= 1 && back <= max_distance) {
        sets[static_cast<std::size_t>(back)].insert(hop.ip);
      }
    }
  }
  return sets;
}

}  // namespace

std::map<int, double> jaccard_by_distance_from_destination(
    const core::ScanResult& scan_a, const core::ScanResult& scan_b,
    int max_distance, bool require_both_responsive) {
  const auto sets_a = interfaces_by_back_distance(
      scan_a, max_distance, require_both_responsive ? &scan_b : nullptr);
  const auto sets_b = interfaces_by_back_distance(
      scan_b, max_distance, require_both_responsive ? &scan_a : nullptr);
  std::map<int, double> result;
  for (int distance = 1; distance <= max_distance; ++distance) {
    const auto& a = sets_a[static_cast<std::size_t>(distance)];
    const auto& b = sets_b[static_cast<std::size_t>(distance)];
    if (a.empty() && b.empty()) continue;
    result[distance] = util::jaccard(a, b);
  }
  return result;
}

std::vector<std::uint8_t> route_lengths(const core::ScanResult& scan) {
  const std::size_t n = scan.routes.size();
  std::vector<std::uint8_t> lengths(n, 0);
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    if (prefix < scan.destination_distance.size() &&
        scan.destination_distance[prefix] != 0) {
      lengths[prefix] = scan.destination_distance[prefix];
      continue;
    }
    std::uint8_t deepest = 0;
    for (const core::RouteHop& hop : scan.routes[prefix]) {
      if (hop.flags & core::RouteHop::kFromDestination) continue;
      deepest = std::max(deepest, hop.ttl);
    }
    lengths[prefix] = deepest;
  }
  return lengths;
}

RouteLengthComparison compare_route_lengths(const core::ScanResult& scan_a,
                                            const core::ScanResult& scan_b,
                                            bool require_both_reached) {
  RouteLengthComparison cmp;
  const auto lengths_a = route_lengths(scan_a);
  const auto lengths_b = route_lengths(scan_b);
  const std::size_t n = std::min(lengths_a.size(), lengths_b.size());
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    if (require_both_reached) {
      const bool a_reached = prefix < scan_a.destination_distance.size() &&
                             scan_a.destination_distance[prefix] != 0;
      const bool b_reached = prefix < scan_b.destination_distance.size() &&
                             scan_b.destination_distance[prefix] != 0;
      if (!a_reached || !b_reached) continue;
    }
    if (lengths_a[prefix] == 0 || lengths_b[prefix] == 0) continue;
    ++cmp.comparable;
    if (lengths_a[prefix] > lengths_b[prefix]) {
      ++cmp.a_longer;
    } else if (lengths_b[prefix] > lengths_a[prefix]) {
      ++cmp.b_longer;
    } else {
      ++cmp.equal;
    }
  }
  return cmp;
}

CrossAppearance cross_appearance(const core::ScanResult& scan_a,
                                 const std::vector<std::uint32_t>& targets_a,
                                 const core::ScanResult& scan_b,
                                 const std::vector<std::uint32_t>& targets_b) {
  CrossAppearance cross;
  const std::size_t n = std::min(
      {scan_a.routes.size(), scan_b.routes.size(), targets_a.size(),
       targets_b.size()});

  const auto target_on_route = [](const core::ScanResult& scan,
                                  std::size_t prefix, std::uint32_t target) {
    for (const core::RouteHop& hop : scan.routes[prefix]) {
      if (hop.flags & core::RouteHop::kFromDestination) continue;
      if (hop.ip == target) return true;
    }
    return false;
  };

  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    if (targets_b[prefix] != 0 &&
        target_on_route(scan_a, prefix, targets_b[prefix])) {
      ++cross.b_targets_on_a_routes;
    }
    if (targets_a[prefix] != 0 &&
        target_on_route(scan_b, prefix, targets_a[prefix])) {
      ++cross.a_targets_on_b_routes;
    }
    if (prefix < scan_a.destination_distance.size() &&
        scan_a.destination_distance[prefix] != 0) {
      ++cross.a_targets_responsive;
    }
    if (prefix < scan_b.destination_distance.size() &&
        scan_b.destination_distance[prefix] != 0) {
      ++cross.b_targets_responsive;
    }
  }
  return cross;
}

LoopReport count_loops(const core::ScanResult& scan) {
  LoopReport report;
  const std::size_t n = scan.routes.size();
  for (std::size_t prefix = 0; prefix < n; ++prefix) {
    const bool reached = prefix < scan.destination_distance.size() &&
                         scan.destination_distance[prefix] != 0;
    if (reached || scan.routes[prefix].empty()) continue;
    ++report.unresponsive_routes;
    // A loop: the same interface answering at two different TTLs.
    std::unordered_set<std::uint64_t> seen_pairs;
    std::unordered_set<std::uint32_t> interfaces;
    bool looped = false;
    for (const core::RouteHop& hop : scan.routes[prefix]) {
      if (hop.flags & core::RouteHop::kFromDestination) continue;
      const std::uint64_t pair =
          (std::uint64_t{hop.ip} << 8) | hop.ttl;
      if (!seen_pairs.insert(pair).second) continue;  // duplicate response
      if (!interfaces.insert(hop.ip).second) {
        looped = true;
        break;
      }
    }
    if (looped) ++report.looped_routes;
  }
  return report;
}

}  // namespace flashroute::analysis
