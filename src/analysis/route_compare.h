// Route-set comparisons: the hitlist-bias study of §5.1 and Fig 8.
//
// Two scans of the same universe — one probing hitlist representatives, one
// probing random representatives — are compared by
//  * the Jaccard similarity of the interface sets found at each hop distance
//    *from the destination* (Fig 8: the divergence concentrates on the last
//    two hops, the stub interior the hitlist never enters);
//  * per-prefix route-length comparison (§5.1: routes to hitlist targets
//    tend to be shorter);
//  * cross-appearance: how often one scan's target shows up as an
//    intermediate hop on the other scan's route to the same prefix (§5.1:
//    hitlist addresses sit on the periphery, en route to interior hosts);
//  * loop prevalence on routes to unresponsive targets (§5.1: ~1.7%).

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/result.h"

namespace flashroute::analysis {

/// Fig 8: Jaccard index of the interface sets per hop-distance-from-
/// destination (1 = the hop right before the destination).  Only
/// destinations whose distance is known (responsive) contribute; with
/// `require_both_responsive` (the default) a prefix contributes only when
/// its target answered in *both* scans, so the comparison is over the same
/// route population (important at reduced simulation scale, where the two
/// scans' responsive populations cover the core unevenly).
std::map<int, double> jaccard_by_distance_from_destination(
    const core::ScanResult& scan_a, const core::ScanResult& scan_b,
    int max_distance = 12, bool require_both_responsive = true);

struct RouteLengthComparison {
  std::uint64_t a_longer = 0;   // prefixes where scan A's route is longer
  std::uint64_t b_longer = 0;
  std::uint64_t equal = 0;
  std::uint64_t comparable = 0; // prefixes with a route length in both scans
};

/// §5.1 route-length bias.  Route length = distance to the destination when
/// it answered, else the deepest responding hop.  When `require_both_reached`
/// is set, only prefixes whose destination answered in BOTH scans count —
/// the paper's control for the "nonexistent destination" confound.
RouteLengthComparison compare_route_lengths(const core::ScanResult& scan_a,
                                            const core::ScanResult& scan_b,
                                            bool require_both_reached);

struct CrossAppearance {
  /// Prefixes where scan B's target appears as an intermediate hop (not the
  /// destination response) on scan A's route for the same prefix.
  std::uint64_t b_targets_on_a_routes = 0;
  std::uint64_t a_targets_on_b_routes = 0;
  std::uint64_t a_targets_responsive = 0;  // targets that answered in scan A
  std::uint64_t b_targets_responsive = 0;
};

/// §5.1 periphery evidence: how often each scan's targets appear en route
/// in the other scan.  Targets are supplied per prefix offset (0 = none).
CrossAppearance cross_appearance(const core::ScanResult& scan_a,
                                 const std::vector<std::uint32_t>& targets_a,
                                 const core::ScanResult& scan_b,
                                 const std::vector<std::uint32_t>& targets_b);

struct LoopReport {
  std::uint64_t unresponsive_routes = 0;  // destination never answered
  std::uint64_t looped_routes = 0;        // ...with a repeated interface
};

/// §5.1 loop prevalence: routes to unresponsive targets that visit the same
/// interface at two different TTLs.
LoopReport count_loops(const core::ScanResult& scan);

/// Route length per prefix (0 = no hops at all): destination distance when
/// reached, else the deepest time-exceeded hop.
std::vector<std::uint8_t> route_lengths(const core::ScanResult& scan);

}  // namespace flashroute::analysis
