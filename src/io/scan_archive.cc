#include "io/scan_archive.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/varint.h"
#include "util/crash_point.h"
#include "util/sync.h"
#include "net/ipv4.h"

namespace flashroute::io {

namespace {

constexpr char kMagic[4] = {'F', 'R', 'S', 'C'};
constexpr std::uint64_t kFormatVersion = 1;

std::vector<core::RouteHop> sorted_hops(
    const std::vector<core::RouteHop>& hops) {
  auto sorted = hops;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::RouteHop& a, const core::RouteHop& b) {
              if (a.ttl != b.ttl) return a.ttl < b.ttl;
              return a.ip < b.ip;
            });
  return sorted;
}

const char* hop_kind(const core::RouteHop& hop) {
  if (hop.flags & core::RouteHop::kFromDestination) return "dest";
  if (hop.flags & core::RouteHop::kPreprobe) return "preprobe";
  if (hop.flags & core::RouteHop::kExtraScan) return "extra";
  return "hop";
}

}  // namespace

void write_routes_text(const core::ScanResult& result,
                       const TargetResolver& target_of,
                       std::uint32_t first_prefix, std::ostream& out) {
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    if (result.routes[i].empty()) continue;
    const auto offset = static_cast<std::uint32_t>(i);
    out << "target "
        << net::Ipv4Address(target_of(offset)).to_string() << " (prefix "
        << net::Ipv4Address((first_prefix + offset) << 8).to_string()
        << "/24";
    if (i < result.destination_distance.size() &&
        result.destination_distance[i] != 0) {
      out << ", distance " << int(result.destination_distance[i]);
    }
    out << ")\n";
    std::uint8_t last_ttl = 0;
    std::uint32_t last_ip = 0;
    for (const core::RouteHop& hop : sorted_hops(result.routes[i])) {
      if (hop.ttl == last_ttl && hop.ip == last_ip) continue;
      last_ttl = hop.ttl;
      last_ip = hop.ip;
      out << "  " << int(hop.ttl) << "\t"
          << net::Ipv4Address(hop.ip).to_string();
      if (hop.flags != 0) out << "\t[" << hop_kind(hop) << "]";
      out << "\n";
    }
  }
}

void write_routes_csv(const core::ScanResult& result,
                      const TargetResolver& target_of,
                      std::uint32_t first_prefix, std::ostream& out) {
  out << "prefix,target,ttl,hop,kind\n";
  for (std::size_t i = 0; i < result.routes.size(); ++i) {
    if (result.routes[i].empty()) continue;
    const auto offset = static_cast<std::uint32_t>(i);
    const std::string prefix =
        net::Ipv4Address((first_prefix + offset) << 8).to_string();
    const std::string target =
        net::Ipv4Address(target_of(offset)).to_string();
    for (const core::RouteHop& hop : sorted_hops(result.routes[i])) {
      out << prefix << ',' << target << ',' << int(hop.ttl) << ','
          << net::Ipv4Address(hop.ip).to_string() << ',' << hop_kind(hop)
          << "\n";
    }
  }
}

void write_archive(const core::ScanResult& result,
                   const ArchiveHeader& header, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_varint(out, kFormatVersion);
  write_varint(out, header.first_prefix);
  write_varint(out, static_cast<std::uint64_t>(header.prefix_bits));
  write_varint(out, header.seed);

  // Scalar counters.
  write_varint(out, result.probes_sent);
  write_varint(out, result.preprobe_probes);
  write_varint(out, result.responses);
  write_varint(out, result.mismatches);
  write_varint(out, result.destinations_reached);
  write_varint(out, result.distances_measured);
  write_varint(out, result.distances_predicted);
  write_varint(out, result.convergence_stops);
  write_varint(out, static_cast<std::uint64_t>(result.scan_time));
  write_varint(out, static_cast<std::uint64_t>(result.preprobe_time));

  // Interfaces, delta-coded over the sorted set.
  std::vector<std::uint32_t> interfaces(result.interfaces.begin(),
                                        result.interfaces.end());
  std::sort(interfaces.begin(), interfaces.end());
  write_varint(out, interfaces.size());
  std::uint32_t previous = 0;
  for (const std::uint32_t ip : interfaces) {
    write_varint(out, ip - previous);
    previous = ip;
  }

  // Per-prefix byte vectors (empty vectors are stored with length 0).
  const auto write_bytes = [&](const std::vector<std::uint8_t>& values) {
    write_varint(out, values.size());
    for (const std::uint8_t v : values) out.put(static_cast<char>(v));
  };
  write_bytes(result.destination_distance);
  write_bytes(result.trigger_ttl);
  write_bytes(result.measured_distance);
  write_bytes(result.predicted_distance);

  // Routes.
  write_varint(out, result.routes.size());
  for (const auto& route : result.routes) {
    write_varint(out, route.size());
    for (const core::RouteHop& hop : route) {
      write_varint(out, hop.ip);
      out.put(static_cast<char>(hop.ttl));
      out.put(static_cast<char>(hop.flags));
    }
  }
}

std::optional<LoadedArchive> read_archive(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || !std::equal(magic, magic + 4, kMagic)) return std::nullopt;
  const auto version = read_varint(in);
  if (!version || *version != kFormatVersion) return std::nullopt;

  LoadedArchive loaded;
  const auto read_u64 = [&](auto& field) -> bool {
    const auto value = read_varint(in);
    if (!value) return false;
    field = static_cast<std::remove_reference_t<decltype(field)>>(*value);
    return true;
  };

  if (!read_u64(loaded.header.first_prefix)) return std::nullopt;
  if (!read_u64(loaded.header.prefix_bits)) return std::nullopt;
  if (!read_u64(loaded.header.seed)) return std::nullopt;

  core::ScanResult& result = loaded.result;
  if (!read_u64(result.probes_sent)) return std::nullopt;
  if (!read_u64(result.preprobe_probes)) return std::nullopt;
  if (!read_u64(result.responses)) return std::nullopt;
  if (!read_u64(result.mismatches)) return std::nullopt;
  if (!read_u64(result.destinations_reached)) return std::nullopt;
  if (!read_u64(result.distances_measured)) return std::nullopt;
  if (!read_u64(result.distances_predicted)) return std::nullopt;
  if (!read_u64(result.convergence_stops)) return std::nullopt;
  if (!read_u64(result.scan_time)) return std::nullopt;
  if (!read_u64(result.preprobe_time)) return std::nullopt;

  const auto interface_count = read_varint(in);
  if (!interface_count) return std::nullopt;
  std::uint32_t previous = 0;
  for (std::uint64_t i = 0; i < *interface_count; ++i) {
    const auto delta = read_varint(in);
    if (!delta) return std::nullopt;
    previous += static_cast<std::uint32_t>(*delta);
    result.interfaces.insert(previous);
  }

  const auto read_bytes = [&](std::vector<std::uint8_t>& values) -> bool {
    const auto count = read_varint(in);
    if (!count || *count > (std::uint64_t{1} << 32)) return false;
    values.resize(static_cast<std::size_t>(*count));
    for (auto& v : values) {
      const int byte = in.get();
      if (byte == std::char_traits<char>::eof()) return false;
      v = static_cast<std::uint8_t>(byte);
    }
    return true;
  };
  if (!read_bytes(result.destination_distance)) return std::nullopt;
  if (!read_bytes(result.trigger_ttl)) return std::nullopt;
  if (!read_bytes(result.measured_distance)) return std::nullopt;
  if (!read_bytes(result.predicted_distance)) return std::nullopt;

  const auto route_count = read_varint(in);
  if (!route_count || *route_count > (std::uint64_t{1} << 32)) {
    return std::nullopt;
  }
  result.routes.resize(static_cast<std::size_t>(*route_count));
  for (auto& route : result.routes) {
    const auto hop_count = read_varint(in);
    if (!hop_count || *hop_count > (std::uint64_t{1} << 24)) {
      return std::nullopt;
    }
    route.resize(static_cast<std::size_t>(*hop_count));
    for (core::RouteHop& hop : route) {
      const auto ip = read_varint(in);
      if (!ip) return std::nullopt;
      hop.ip = static_cast<std::uint32_t>(*ip);
      const int ttl = in.get();
      const int flags = in.get();
      if (ttl == std::char_traits<char>::eof() ||
          flags == std::char_traits<char>::eof()) {
        return std::nullopt;
      }
      hop.ttl = static_cast<std::uint8_t>(ttl);
      hop.flags = static_cast<std::uint8_t>(flags);
    }
  }
  return loaded;
}

// --- JobArchive --------------------------------------------------------------

namespace {

constexpr char kRecordMagic[4] = {'F', 'R', 'S', 'J'};
constexpr char kRecordTrailer[4] = {'J', 'E', 'N', 'D'};
// magic + u32 size + u64 job id before the payload; trailer after it.
constexpr std::uint64_t kRecordHeaderBytes = 4 + 4 + 8;
constexpr std::uint64_t kRecordTrailerBytes = 4;
// A sanity bound far above any real single-job payload (full-universe
// archives are tens of megabytes); recovery treats larger sizes as damage.
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 32;

void put_u32_le(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64_le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

std::uint64_t read_le(const char* bytes, int n) {
  std::uint64_t value = 0;
  for (int i = 0; i < n; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

JobArchive::JobArchive(std::string path) : path_(std::move(path)) {
  const util::MutexLock lock(mutex_);
  {
    // Create the file if absent without clobbering an existing one.
    std::ofstream create(path_, std::ios::binary | std::ios::app);
    if (!create) return;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  // Walk the frames; stop (and truncate) at the first damaged record — a
  // crash mid-append leaves only a partial tail, never a hole.
  std::uint64_t offset = 0;
  while (offset + kRecordHeaderBytes + kRecordTrailerBytes <= file_size) {
    char header[kRecordHeaderBytes];
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(header, sizeof header);
    if (!in || !std::equal(header, header + 4, kRecordMagic)) break;
    const std::uint64_t payload_size = read_le(header + 4, 4);
    const std::uint64_t job_id = read_le(header + 8, 8);
    if (payload_size > kMaxPayloadBytes) break;
    const std::uint64_t record_end = offset + kRecordHeaderBytes +
                                     payload_size + kRecordTrailerBytes + 4;
    if (record_end > file_size) break;
    char trailer[kRecordTrailerBytes + 4];
    in.seekg(static_cast<std::streamoff>(offset + kRecordHeaderBytes +
                                         payload_size));
    in.read(trailer, sizeof trailer);
    if (!in || !std::equal(trailer, trailer + 4, kRecordTrailer) ||
        read_le(trailer + 4, 4) != payload_size) {
      break;
    }
    index_.push_back({job_id, offset + kRecordHeaderBytes, payload_size});
    offset = record_end;
  }
  dropped_ = file_size - offset;
  end_offset_ = offset;
  if (dropped_ > 0) {
    in.close();
    // Rewrite the valid prefix: portable truncation without <unistd.h>.
    std::string prefix(static_cast<std::size_t>(offset), '\0');
    if (offset > 0) {
      std::ifstream reread(path_, std::ios::binary);
      reread.read(prefix.data(), static_cast<std::streamsize>(offset));
      if (!reread) return;
    }
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(prefix.data(), static_cast<std::streamsize>(offset));
    out.flush();
    if (!out) return;
  }
  ok_ = true;
}

bool JobArchive::ok() const {
  const util::MutexLock lock(mutex_);
  return ok_;
}

std::uint64_t JobArchive::recovered_bytes_dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

bool JobArchive::append(std::uint64_t job_id, const core::ScanResult& result,
                        const ArchiveHeader& header) {
  std::ostringstream payload_stream;
  write_archive(result, header, payload_stream);
  const std::string payload = payload_stream.str();

  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes +
                 4);
  record.append(kRecordMagic, sizeof kRecordMagic);
  put_u32_le(record, static_cast<std::uint32_t>(payload.size()));
  put_u64_le(record, job_id);
  record.append(payload);
  record.append(kRecordTrailer, sizeof kRecordTrailer);
  put_u32_le(record, static_cast<std::uint32_t>(payload.size()));

  // One locked write+flush per record: concurrent jobs serialize here, so
  // records can never interleave.
  const util::MutexLock lock(mutex_);
  if (!ok_) return false;
  std::ofstream out(path_, std::ios::binary | std::ios::in | std::ios::ate);
  if (!out) return false;
  out.seekp(static_cast<std::streamoff>(end_offset_));
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  FR_CRASH_POINT(util::crash::kArchiveFlush);
  out.flush();
  if (!out) return false;
  index_.push_back(
      {job_id, end_offset_ + kRecordHeaderBytes, payload.size()});
  end_offset_ += record.size();
  return true;
}

std::vector<JobArchive::Entry> JobArchive::index() const {
  const util::MutexLock lock(mutex_);
  return index_;
}

bool JobArchive::find_latest(std::uint64_t job_id, Entry& entry) const {
  const util::MutexLock lock(mutex_);
  bool found = false;
  for (const Entry& candidate : index_) {
    if (candidate.job_id == job_id) {
      entry = candidate;
      found = true;
    }
  }
  return found;
}

std::optional<std::string> JobArchive::payload_bytes(
    std::uint64_t job_id) const {
  Entry entry;
  if (!find_latest(job_id, entry)) return std::nullopt;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(entry.payload_offset));
  std::string payload(static_cast<std::size_t>(entry.payload_size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) return std::nullopt;
  return payload;
}

std::optional<LoadedArchive> JobArchive::load(std::uint64_t job_id) const {
  const auto payload = payload_bytes(job_id);
  if (!payload) return std::nullopt;
  std::istringstream in(*payload);
  return read_archive(in);
}

}  // namespace flashroute::io
