#include "io/pcap.h"

#include <cstring>

namespace flashroute::io {

namespace {

constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
constexpr std::uint32_t kMagicMicros = 0xA1B2C3D4;
constexpr std::uint32_t kLinktypeRaw = 101;  // packets start at the IP header
constexpr std::uint32_t kSnapLen = 65535;

void put_u16(std::ostream& out, std::uint16_t v) {
  // Pcap headers use the writer's native byte order; we fix little-endian
  // so captures are portable, and the reader handles both.
  out.put(static_cast<char>(v & 0xFF));
  out.put(static_cast<char>(v >> 8));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Little/big-endian aware field reader driven by the capture's magic.
class FieldReader {
 public:
  FieldReader(std::istream& in, bool swap) : in_(in), swap_(swap) {}

  std::optional<std::uint32_t> u32() {
    unsigned char bytes[4];
    in_.read(reinterpret_cast<char*>(bytes), 4);
    if (!in_) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[i]) << (8 * (swap_ ? 3 - i : i));
    }
    return v;
  }

 private:
  std::istream& in_;
  bool swap_;
};

}  // namespace

void write_pcap_header(std::ostream& out) {
  put_u32(out, kMagicNanos);
  put_u16(out, 2);  // version 2.4
  put_u16(out, 4);
  put_u32(out, 0);  // thiszone
  put_u32(out, 0);  // sigfigs
  put_u32(out, kSnapLen);
  put_u32(out, kLinktypeRaw);
}

void write_pcap_packet(std::ostream& out, util::Nanos time,
                       std::span<const std::byte> packet) {
  const auto seconds = static_cast<std::uint32_t>(time / util::kSecond);
  const auto nanos = static_cast<std::uint32_t>(time % util::kSecond);
  put_u32(out, seconds);
  put_u32(out, nanos);
  const auto length = static_cast<std::uint32_t>(packet.size());
  put_u32(out, length);  // captured length
  put_u32(out, length);  // original length
  out.write(reinterpret_cast<const char*>(packet.data()),
            static_cast<std::streamsize>(packet.size()));
}

std::optional<std::vector<CapturedPacket>> read_pcap(std::istream& in) {
  unsigned char magic_bytes[4];
  in.read(reinterpret_cast<char*>(magic_bytes), 4);
  if (!in) return std::nullopt;
  std::uint32_t magic_le = 0;
  for (int i = 0; i < 4; ++i) {
    magic_le |= static_cast<std::uint32_t>(magic_bytes[i]) << (8 * i);
  }
  std::uint32_t magic_be = 0;
  for (int i = 0; i < 4; ++i) {
    magic_be |= static_cast<std::uint32_t>(magic_bytes[i]) << (8 * (3 - i));
  }

  bool swap = false;
  bool nanos = false;
  if (magic_le == kMagicNanos || magic_le == kMagicMicros) {
    nanos = magic_le == kMagicNanos;
  } else if (magic_be == kMagicNanos || magic_be == kMagicMicros) {
    swap = true;
    nanos = magic_be == kMagicNanos;
  } else {
    return std::nullopt;
  }

  FieldReader reader(in, swap);
  // version(2x16) packed as one u32, thiszone, sigfigs, snaplen, linktype.
  for (int i = 0; i < 5; ++i) {
    if (!reader.u32()) return std::nullopt;
  }

  std::vector<CapturedPacket> packets;
  while (true) {
    const auto seconds = reader.u32();
    if (!seconds) break;  // clean EOF between records
    const auto subsec = reader.u32();
    const auto captured = reader.u32();
    const auto original = reader.u32();
    if (!subsec || !captured || !original || *captured > kSnapLen) {
      return std::nullopt;
    }
    CapturedPacket packet;
    packet.time = static_cast<util::Nanos>(*seconds) * util::kSecond +
                  static_cast<util::Nanos>(*subsec) * (nanos ? 1 : 1000);
    packet.bytes.resize(*captured);
    in.read(reinterpret_cast<char*>(packet.bytes.data()),
            static_cast<std::streamsize>(*captured));
    if (!in) return std::nullopt;
    packets.push_back(std::move(packet));
  }
  return packets;
}

}  // namespace flashroute::io
