// Pcap capture of scan traffic.
//
// §4.2.3: FlashRoute "offers an option to exclude response logging,
// relegating this task to an external sniffer".  This module provides the
// sniffer side in-process: a classic pcap-format writer/reader
// (LINKTYPE_RAW: packets begin at the IPv4 header, exactly the bytes our
// engines produce and consume) and a ScanRuntime decorator that captures
// every probe and response of a scan into a capture, for offline analysis
// with this library or any standard tool that reads pcap.

#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <vector>

#include "core/runtime.h"
#include "util/clock.h"

namespace flashroute::io {

/// One captured packet: raw IPv4 bytes plus a capture timestamp.
struct CapturedPacket {
  util::Nanos time = 0;
  std::vector<std::byte> bytes;
};

/// Writes the classic pcap global header (magic 0xA1B23C4D: nanosecond
/// timestamps; linktype 101 = LINKTYPE_RAW).
void write_pcap_header(std::ostream& out);

/// Appends one packet record.
void write_pcap_packet(std::ostream& out, util::Nanos time,
                       std::span<const std::byte> packet);

/// Reads a whole capture; returns nullopt on bad magic or truncation.
/// Both nanosecond (0xA1B23C4D) and microsecond (0xA1B2C3D4) captures are
/// accepted; timestamps are normalized to nanoseconds.
std::optional<std::vector<CapturedPacket>> read_pcap(std::istream& in);

/// ScanRuntime decorator: forwards everything to the inner runtime and
/// writes each sent probe and each delivered response to a pcap stream.
/// The stream must outlive the runtime; the caller writes nothing else to
/// it while capturing.
class CapturingRuntime final : public core::ScanRuntime {
 public:
  CapturingRuntime(core::ScanRuntime& inner, std::ostream& out)
      : inner_(inner), out_(out) {
    write_pcap_header(out_);
  }

  util::Nanos now() const noexcept override { return inner_.now(); }

  /// Captures only probes that actually reached the wire: a failed inner
  /// send produced no traffic, so it must not appear in the capture.
  [[nodiscard]] bool try_send(std::span<const std::byte> packet) override {
    if (!inner_.try_send(packet)) return false;
    write_pcap_packet(out_, inner_.now(), packet);
    ++packets_sent_;
    return true;
  }

  void drain(const Sink& sink) override { inner_.drain(wrap(sink)); }

  void idle_until(util::Nanos t, const Sink& sink) override {
    inner_.idle_until(t, wrap(sink));
  }

 private:
  Sink wrap(const Sink& sink) {
    return [this, &sink](std::span<const std::byte> packet,
                         util::Nanos arrival) {
      write_pcap_packet(out_, arrival, packet);
      sink(packet, arrival);
    };
  }

  core::ScanRuntime& inner_;
  std::ostream& out_;
};

}  // namespace flashroute::io
