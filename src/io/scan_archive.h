// Scan result persistence.
//
// The paper publishes the data collected in its study; a usable tool needs
// durable scan outputs.  Three formats:
//
//  * text  — human-readable per-target route listings (traceroute-style);
//  * csv   — one row per discovered hop, for spreadsheet/pandas analysis;
//  * a versioned binary archive ("FRSC" magic) with varint coding, carrying
//    everything in core::ScanResult (routes, distances, counters) so a scan
//    can be analysed later without re-running it.  write_archive/read_archive
//    round-trip exactly.

#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "core/result.h"

namespace flashroute::io {

/// Universe metadata stored alongside the results.
struct ArchiveHeader {
  std::uint32_t first_prefix = 0;
  int prefix_bits = 0;
  std::uint64_t seed = 0;
};

/// Maps a prefix offset to the address that was probed (the engine's
/// target_of); used by the text/CSV writers to label routes.
using TargetResolver = std::function<std::uint32_t(std::uint32_t)>;

/// Human-readable route listing: one block per target with any recorded
/// hops, TTL-sorted, flagged with [dest]/[preprobe]/[extra].
void write_routes_text(const core::ScanResult& result,
                       const TargetResolver& target_of,
                       std::uint32_t first_prefix, std::ostream& out);

/// CSV: header row then `prefix,target,ttl,hop,kind` per recorded hop,
/// kind in {hop, dest, preprobe, extra}.
void write_routes_csv(const core::ScanResult& result,
                      const TargetResolver& target_of,
                      std::uint32_t first_prefix, std::ostream& out);

/// Binary archive (format version 1).  Everything in `result` is stored.
void write_archive(const core::ScanResult& result,
                   const ArchiveHeader& header, std::ostream& out);

struct LoadedArchive {
  ArchiveHeader header;
  core::ScanResult result;
};

/// Reads an archive; returns nullopt on a bad magic, unsupported version,
/// or truncated/corrupt input.
std::optional<LoadedArchive> read_archive(std::istream& in);

}  // namespace flashroute::io
