// Scan result persistence.
//
// The paper publishes the data collected in its study; a usable tool needs
// durable scan outputs.  Three formats:
//
//  * text  — human-readable per-target route listings (traceroute-style);
//  * csv   — one row per discovered hop, for spreadsheet/pandas analysis;
//  * a versioned binary archive ("FRSC" magic) with varint coding, carrying
//    everything in core::ScanResult (routes, distances, counters) so a scan
//    can be analysed later without re-running it.  write_archive/read_archive
//    round-trip exactly.

#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/result.h"
#include "util/annotations.h"
#include "util/sync.h"

namespace flashroute::io {

/// Universe metadata stored alongside the results.
struct ArchiveHeader {
  std::uint32_t first_prefix = 0;
  int prefix_bits = 0;
  std::uint64_t seed = 0;
};

/// Maps a prefix offset to the address that was probed (the engine's
/// target_of); used by the text/CSV writers to label routes.
using TargetResolver = std::function<std::uint32_t(std::uint32_t)>;

/// Human-readable route listing: one block per target with any recorded
/// hops, TTL-sorted, flagged with [dest]/[preprobe]/[extra].
void write_routes_text(const core::ScanResult& result,
                       const TargetResolver& target_of,
                       std::uint32_t first_prefix, std::ostream& out);

/// CSV: header row then `prefix,target,ttl,hop,kind` per recorded hop,
/// kind in {hop, dest, preprobe, extra}.
void write_routes_csv(const core::ScanResult& result,
                      const TargetResolver& target_of,
                      std::uint32_t first_prefix, std::ostream& out);

/// Binary archive (format version 1).  Everything in `result` is stored.
void write_archive(const core::ScanResult& result,
                   const ArchiveHeader& header, std::ostream& out);

struct LoadedArchive {
  ArchiveHeader header;
  core::ScanResult result;
};

/// Reads an archive; returns nullopt on a bad magic, unsupported version,
/// or truncated/corrupt input.
std::optional<LoadedArchive> read_archive(std::istream& in);

/// Multi-job archive file: many FRSC payloads appended by concurrent scan
/// jobs into one file (DESIGN.md §12).
///
/// Two jobs finishing at once must not interleave their records, and a
/// daemon killed mid-append must not poison the file for every later job.
/// Hence:
///
///  * every append is framed — "FRSJ" magic, little-endian u32 payload
///    size, little-endian u64 job id, the (frozen) FRSC v1 payload, then a
///    "JEND" trailer echoing the size — and serialized under an internal
///    lock, written as one buffer and flushed before the lock drops;
///  * opening scans the frames in order and truncates the file at the
///    first damaged or incomplete record (crash-mid-append recovery), so a
///    reopened archive always ends on a record boundary and the next
///    append lands cleanly.
///
/// All methods are thread-safe.
class JobArchive {
 public:
  struct Entry {
    std::uint64_t job_id = 0;
    std::uint64_t payload_offset = 0;  ///< file offset of the FRSC bytes
    std::uint64_t payload_size = 0;
  };

  /// Opens (creating if absent) and recovers `path`.
  explicit JobArchive(std::string path);

  /// False when the file could not be opened or created.
  bool ok() const FR_EXCLUDES(mutex_);

  /// Bytes dropped by truncation recovery when the archive was opened
  /// (0 = the file ended on a record boundary).
  std::uint64_t recovered_bytes_dropped() const FR_EXCLUDES(mutex_);

  /// Appends one job's result as a framed FRSC record; false on I/O error.
  bool append(std::uint64_t job_id, const core::ScanResult& result,
              const ArchiveHeader& header) FR_EXCLUDES(mutex_);

  /// Snapshot of the record index, in file order.
  std::vector<Entry> index() const FR_EXCLUDES(mutex_);

  /// Loads the latest record for `job_id`; nullopt when absent or corrupt.
  std::optional<LoadedArchive> load(std::uint64_t job_id) const
      FR_EXCLUDES(mutex_);

  /// Raw FRSC payload bytes of the latest record for `job_id` — the
  /// byte-identity currency of the preemption equivalence gates.
  std::optional<std::string> payload_bytes(std::uint64_t job_id) const
      FR_EXCLUDES(mutex_);

 private:
  /// Takes the archive lock itself (readers re-read the file unlocked
  /// afterwards: records are immutable once indexed).
  bool find_latest(std::uint64_t job_id, Entry& entry) const
      FR_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  std::string path_;
  std::vector<Entry> index_ FR_GUARDED_BY(mutex_);
  std::uint64_t end_offset_ FR_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ FR_GUARDED_BY(mutex_) = 0;
  bool ok_ FR_GUARDED_BY(mutex_) = false;
};

}  // namespace flashroute::io
