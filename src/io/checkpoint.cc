#include "io/checkpoint.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/varint.h"
#include "util/crash_point.h"

namespace flashroute::io {

namespace {

constexpr char kMagic[4] = {'F', 'R', 'C', 'K'};
constexpr std::uint64_t kFormatVersion = 1;
constexpr char kSetMagic[4] = {'F', 'R', 'C', 'S'};

void write_bytes(std::ostream& out, const std::vector<std::uint8_t>& bytes) {
  write_varint(out, bytes.size());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool read_bytes(std::istream& in, std::vector<std::uint8_t>& bytes) {
  const auto size = read_varint(in);
  if (!size) return false;
  bytes.resize(*size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return in.good() || bytes.empty();
}

}  // namespace

void write_checkpoint(const ScanCheckpoint& checkpoint, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_varint(out, kFormatVersion);
  write_varint(out, checkpoint.config_digest);
  write_varint(out, static_cast<std::uint64_t>(checkpoint.virtual_now));
  write_varint(out, static_cast<std::uint64_t>(checkpoint.scan_elapsed));
  write_varint(out, checkpoint.rounds_completed);
  write_varint(out, checkpoint.backoff_level);
  write_varint(out, checkpoint.ring_head);

  write_bytes(out, checkpoint.next_backward);
  write_bytes(out, checkpoint.next_forward);
  write_bytes(out, checkpoint.forward_horizon);
  write_bytes(out, checkpoint.dcb_flags);
  write_bytes(out, checkpoint.retransmit_left);

  // Probe log (FRSC v1 does not carry it; replays need it preserved across
  // a resume).
  write_varint(out, checkpoint.result.probe_log.size());
  util::Nanos last_time = 0;
  for (const core::ProbeLogEntry& entry : checkpoint.result.probe_log) {
    write_varint(out, static_cast<std::uint64_t>(entry.time - last_time));
    last_time = entry.time;
    write_varint(out, entry.destination);
    write_varint(out, entry.ttl);
    write_varint(out, entry.preprobe ? 1 : 0);
  }

  // Resilience counters (also absent from the frozen FRSC v1 payload).
  write_varint(out, checkpoint.result.send_failures);
  write_varint(out, checkpoint.result.retransmits);
  write_varint(out, checkpoint.result.probe_timeouts);
  write_varint(out, checkpoint.result.rate_backoffs);

  // The partial result itself rides in the existing archive format.
  write_archive(checkpoint.result, checkpoint.header, out);
}

std::optional<ScanCheckpoint> read_checkpoint(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (!in.good() || std::char_traits<char>::compare(magic, kMagic, 4) != 0) {
    return std::nullopt;
  }
  const auto version = read_varint(in);
  if (!version || *version != kFormatVersion) return std::nullopt;

  ScanCheckpoint checkpoint;
  const auto digest = read_varint(in);
  const auto virtual_now = read_varint(in);
  const auto elapsed = read_varint(in);
  const auto rounds = read_varint(in);
  const auto backoff = read_varint(in);
  const auto head = read_varint(in);
  if (!digest || !virtual_now || !elapsed || !rounds || !backoff || !head) {
    return std::nullopt;
  }
  checkpoint.config_digest = *digest;
  checkpoint.virtual_now = static_cast<util::Nanos>(*virtual_now);
  checkpoint.scan_elapsed = static_cast<util::Nanos>(*elapsed);
  checkpoint.rounds_completed = *rounds;
  checkpoint.backoff_level = static_cast<std::uint32_t>(*backoff);
  checkpoint.ring_head = static_cast<std::uint32_t>(*head);

  if (!read_bytes(in, checkpoint.next_backward) ||
      !read_bytes(in, checkpoint.next_forward) ||
      !read_bytes(in, checkpoint.forward_horizon) ||
      !read_bytes(in, checkpoint.dcb_flags) ||
      !read_bytes(in, checkpoint.retransmit_left)) {
    return std::nullopt;
  }

  const auto log_size = read_varint(in);
  if (!log_size) return std::nullopt;
  checkpoint.result.probe_log.reserve(*log_size);
  util::Nanos last_time = 0;
  for (std::uint64_t i = 0; i < *log_size; ++i) {
    const auto delta = read_varint(in);
    const auto destination = read_varint(in);
    const auto ttl = read_varint(in);
    const auto preprobe = read_varint(in);
    if (!delta || !destination || !ttl || !preprobe) return std::nullopt;
    core::ProbeLogEntry entry;
    last_time += static_cast<util::Nanos>(*delta);
    entry.time = last_time;
    entry.destination = static_cast<std::uint32_t>(*destination);
    entry.ttl = static_cast<std::uint8_t>(*ttl);
    entry.preprobe = *preprobe != 0;
    checkpoint.result.probe_log.push_back(entry);
  }

  const auto send_failures = read_varint(in);
  const auto retransmits = read_varint(in);
  const auto probe_timeouts = read_varint(in);
  const auto rate_backoffs = read_varint(in);
  if (!send_failures || !retransmits || !probe_timeouts || !rate_backoffs) {
    return std::nullopt;
  }

  auto archive = read_archive(in);
  if (!archive) return std::nullopt;
  // read_archive rebuilt every FRSC-carried field; graft the FRCK extras
  // back on (the probe log parsed above, the counters parsed just now).
  archive->result.probe_log = std::move(checkpoint.result.probe_log);
  archive->result.send_failures = *send_failures;
  archive->result.retransmits = *retransmits;
  archive->result.probe_timeouts = *probe_timeouts;
  archive->result.rate_backoffs = *rate_backoffs;
  checkpoint.header = archive->header;
  checkpoint.result = std::move(archive->result);
  return checkpoint;
}

void write_checkpoint_set(const std::vector<ScanCheckpoint>& checkpoints,
                          std::ostream& out) {
  out.write(kSetMagic, sizeof kSetMagic);
  write_varint(out, kFormatVersion);
  write_varint(out, checkpoints.size());
  for (const ScanCheckpoint& checkpoint : checkpoints) {
    write_checkpoint(checkpoint, out);
  }
}

std::optional<std::vector<ScanCheckpoint>> read_checkpoint_set(
    std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (!in.good() ||
      std::char_traits<char>::compare(magic, kSetMagic, 4) != 0) {
    return std::nullopt;
  }
  const auto version = read_varint(in);
  if (!version || *version != kFormatVersion) return std::nullopt;
  const auto count = read_varint(in);
  if (!count) return std::nullopt;
  std::vector<ScanCheckpoint> checkpoints;
  checkpoints.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto checkpoint = read_checkpoint(in);
    if (!checkpoint) return std::nullopt;
    checkpoints.push_back(std::move(*checkpoint));
  }
  return checkpoints;
}

// --- atomic file publish -----------------------------------------------------

namespace {

// Serialized bytes → tmp file → fflush → [fsync] → rename(2).  FILE* rather
// than ofstream because an ofstream cannot fsync: close() only hands the
// pages to the kernel, which is exactly the window a power loss exploits.
bool publish_bytes_atomic(const std::string& path, const std::string& bytes,
                          bool sync) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = ok && std::fflush(file) == 0;
  ok = ok && (!sync || ::fsync(::fileno(file)) == 0);
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  FR_CRASH_POINT(util::crash::kCheckpointPublish);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool save_checkpoint_atomic(const std::string& path,
                            const ScanCheckpoint& checkpoint, bool sync) {
  std::ostringstream out;
  write_checkpoint(checkpoint, out);
  if (!out) return false;
  return publish_bytes_atomic(path, out.str(), sync);
}

bool save_checkpoint_set_atomic(const std::string& path,
                                const std::vector<ScanCheckpoint>& checkpoints,
                                bool sync) {
  std::ostringstream out;
  write_checkpoint_set(checkpoints, out);
  if (!out) return false;
  return publish_bytes_atomic(path, out.str(), sync);
}

std::optional<ScanCheckpoint> load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_checkpoint(in);
}

std::optional<std::vector<ScanCheckpoint>> load_checkpoint_set_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_checkpoint_set(in);
}

bool ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  if (errno != EEXIST) return false;
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool discard_checkpoint(const std::string& path) {
  if (std::remove(path.c_str()) == 0) return true;
  return errno == ENOENT;
}

}  // namespace flashroute::io
