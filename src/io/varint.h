// LEB128-style varint encoding for the binary scan archive.
//
// Scan archives store millions of small integers (TTLs, deltas, counters);
// varint coding keeps a full-universe archive a few dozen megabytes instead
// of hundreds.

#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>

namespace flashroute::io {

/// Writes `value` as a base-128 varint (1..10 bytes).
inline void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

/// Reads a varint; returns nullopt on EOF, truncation, or overlong input.
[[nodiscard]] inline std::optional<std::uint64_t> read_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) return std::nullopt;
    value |= (static_cast<std::uint64_t>(byte) & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // > 10 bytes: malformed
}

}  // namespace flashroute::io
