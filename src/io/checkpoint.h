// Checkpoint/resume persistence for an in-progress scan (DESIGN.md §9).
//
// A checkpoint is taken at a main-phase round barrier after the engine has
// quiesced (retransmission wheel drained, responses idled out), so the
// captured state has no in-flight probes.  The "FRCK" container embeds the
// partial core::ScanResult through the existing FRSC archive writer —
// checkpoints reuse the frozen v1 result encoding rather than inventing a
// second one — and adds what FRSC does not carry: the probe log, the
// resilience counters, the engine's per-destination control state, and the
// virtual-time cursor needed to resume the timeline exactly where it
// stopped.
//
// Resume contract (core::Tracer): restoring a checkpoint and finishing the
// scan produces merged results identical to the same scan never having been
// interrupted, fault schedules included — the fault plane draws on virtual
// send times, which the restored clock continues without a gap.

#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/result.h"
#include "io/scan_archive.h"
#include "util/clock.h"

namespace flashroute::io {

/// Everything needed to resume a scan mid-sweep.  The per-DCB vectors are
/// indexed by prefix offset and have one entry per destination.
struct ScanCheckpoint {
  ArchiveHeader header;

  /// Digest of the resume-relevant TracerConfig fields; a checkpoint only
  /// resumes into a tracer configured identically (checked by the caller).
  std::uint64_t config_digest = 0;

  /// Virtual time of the runtime when the checkpoint was taken; the resumed
  /// runtime starts its clock here so rate limiters, fault draws, and epoch
  /// boundaries continue the uninterrupted timeline.
  util::Nanos virtual_now = 0;
  /// Scan time accumulated before the checkpoint (added to the resumed
  /// run's own elapsed time when reporting ScanResult::scan_time).
  util::Nanos scan_elapsed = 0;

  /// Main-phase rounds completed before the checkpoint.
  std::uint64_t rounds_completed = 0;
  /// Adaptive-backoff level in effect (0 = full configured rate).
  std::uint32_t backoff_level = 0;
  /// Ring cursor (prefix offset) at the barrier, or DcbArray::kNone when
  /// the ring had emptied.  The head drifts from the permutation start as
  /// destinations retire, so the rebuilt ring must be re-pointed at it.
  std::uint32_t ring_head = 0;

  // Per-DCB engine state (empty vectors = checkpoint of a finished scan).
  std::vector<std::uint8_t> next_backward;
  std::vector<std::uint8_t> next_forward;
  std::vector<std::uint8_t> forward_horizon;
  std::vector<std::uint8_t> dcb_flags;
  std::vector<std::uint8_t> retransmit_left;

  /// Results accumulated so far (interfaces, routes, counters, probe log).
  core::ScanResult result;
};

/// Writes a checkpoint ("FRCK" magic, format version 1).
void write_checkpoint(const ScanCheckpoint& checkpoint, std::ostream& out);

/// Reads a checkpoint; returns nullopt on bad magic, unsupported version,
/// or truncated/corrupt input.
std::optional<ScanCheckpoint> read_checkpoint(std::istream& in);

/// Writes a sharded scan's checkpoint set: a count followed by each shard's
/// checkpoint, in shard order.
void write_checkpoint_set(const std::vector<ScanCheckpoint>& checkpoints,
                          std::ostream& out);

/// Reads a checkpoint set written by write_checkpoint_set.
std::optional<std::vector<ScanCheckpoint>> read_checkpoint_set(
    std::istream& in);

// --- atomic file publish (DESIGN.md §14) -------------------------------------
//
// A checkpoint written straight into its destination path can be torn by a
// crash mid-write, poisoning --resume-from and daemon recovery.  The
// atomic variants write to `<path>.tmp`, flush + fsync, then rename(2)
// into place: readers only ever observe the old complete file or the new
// complete file, never a prefix.
//
// `sync` controls the fsync before the rename.  Rename atomicity alone
// already covers process death (the pages live in the kernel either way);
// the fsync only buys power-loss ordering, so callers running at journal
// durability below fsync pass false and skip the per-barrier stall.

/// Atomically publishes one checkpoint to `path`; false on I/O error.
bool save_checkpoint_atomic(const std::string& path,
                            const ScanCheckpoint& checkpoint,
                            bool sync = true);

/// Atomically publishes a checkpoint set to `path`; false on I/O error.
bool save_checkpoint_set_atomic(const std::string& path,
                                const std::vector<ScanCheckpoint>& checkpoints,
                                bool sync = true);

/// Loads one checkpoint from `path`; nullopt when absent or corrupt.
std::optional<ScanCheckpoint> load_checkpoint_file(const std::string& path);

/// Loads a checkpoint set from `path`; nullopt when absent or corrupt.
std::optional<std::vector<ScanCheckpoint>> load_checkpoint_set_file(
    const std::string& path);

/// Creates `path` as a directory if absent; true when it exists after.
bool ensure_directory(const std::string& path);

/// Removes a published checkpoint; true when the file is gone after
/// (including when it never existed).
bool discard_checkpoint(const std::string& path);

}  // namespace flashroute::io
