// The packet-level behaviour of the simulated Internet.
//
// `SimNetwork` receives the same IPv4 probe bytes a real deployment would
// put on the wire, walks the probe along the forwarding path its Topology
// resolves — honouring TTL decrement semantics, TTL-rewriting middleboxes,
// dark tails and forwarding loops — and returns the response bytes a real
// router or host would emit, with a delivery time reflecting the per-hop RTT.
//
// Per-interface ICMP generation is limited with a token bucket (default
// 500/s per Ravaioli et al., the assumption of the paper's §4.2.2 analysis),
// so an over-aggressive scan genuinely loses responses here, exactly the
// intrusiveness phenomenon Table 4 studies.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/icmp.h"
#include "sim/topology.h"
#include "util/clock.h"
#include "util/token_bucket.h"

namespace flashroute::sim {

struct NetworkStats {
  std::uint64_t probes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t out_of_universe = 0;
  std::uint64_t time_exceeded_sent = 0;
  std::uint64_t destination_responses = 0;  // port-unreachable / TCP RST
  std::uint64_t silent_interface = 0;
  std::uint64_t silent_host = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t dropped_dark = 0;  // probe died with no responder in range

  std::uint64_t responses() const noexcept {
    return time_exceeded_sent + destination_responses;
  }
};

/// A response packet and the virtual time at which it reaches the vantage.
struct Delivery {
  util::Nanos arrival;
  std::vector<std::byte> packet;
};

class SimNetwork {
 public:
  explicit SimNetwork(const Topology& topology);

  /// Processes one probe sent at `send_time`.  Returns the response and its
  /// arrival time, or nullopt when the network stays silent.  `send_time`
  /// must be non-decreasing across calls (the rate limiters refill
  /// monotonically).
  std::optional<Delivery> process(std::span<const std::byte> probe,
                                  util::Nanos send_time);

  const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetworkStats{}; }

  /// Ground-truth rate-limit drops per interface (for validating the
  /// Table 4 overprobing analysis against what "actually" happened).
  const std::unordered_map<std::uint32_t, std::uint64_t>& rate_limit_drops()
      const noexcept {
    return rate_limit_drops_;
  }

  const Topology& topology() const noexcept { return topology_; }

 private:
  bool admit_response(std::uint32_t responder_ip, util::Nanos t);
  util::Nanos arrival_time(util::Nanos send_time, int hop,
                           std::uint64_t jitter_key) const noexcept;

  const Topology& topology_;
  NetworkStats stats_;
  std::unordered_map<std::uint32_t, util::TokenBucket> rate_limiters_;
  std::unordered_map<std::uint32_t, std::uint64_t> rate_limit_drops_;
  std::uint64_t seed_rtt_;
};

}  // namespace flashroute::sim
