// The packet-level behaviour of the simulated Internet.
//
// `SimNetwork` receives the same IPv4 probe bytes a real deployment would
// put on the wire, walks the probe along the forwarding path its Topology
// resolves — honouring TTL decrement semantics, TTL-rewriting middleboxes,
// dark tails and forwarding loops — and returns the response bytes a real
// router or host would emit, with a delivery time reflecting the per-hop RTT.
//
// Per-interface ICMP generation is limited with a token bucket (default
// 500/s per Ravaioli et al., the assumption of the paper's §4.2.2 analysis),
// so an over-aggressive scan genuinely loses responses here, exactly the
// intrusiveness phenomenon Table 4 studies.
//
// Hot path (DESIGN.md §6): `process_into` is allocation-free in steady
// state.  Route resolution goes through a direct-mapped per-(destination,
// flow, epoch) cache (sim/route_cache.h; bypassable, bit-identical either
// way), responses are encoded straight into a caller-provided buffer —
// normally a recycled sim/response_pool.h slot — and the per-responder ICMP
// limiters live in a flat table indexed by interface-pool offset
// (sim/rate_limit_table.h).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "net/icmp.h"
#include "sim/fault_plane.h"
#include "sim/rate_limit_table.h"
#include "sim/response_pool.h"
#include "sim/route_cache.h"
#include "sim/topology.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::sim {

struct NetworkStats {
  std::uint64_t probes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t out_of_universe = 0;
  std::uint64_t time_exceeded_sent = 0;
  std::uint64_t destination_responses = 0;  // port-unreachable / TCP RST
  std::uint64_t silent_interface = 0;
  std::uint64_t silent_host = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t dropped_dark = 0;  // probe died with no responder in range
  std::uint64_t route_cache_hits = 0;
  std::uint64_t route_cache_misses = 0;  // probes resolved, cache bypassed too

  std::uint64_t responses() const noexcept {
    return time_exceeded_sent + destination_responses;
  }
};

/// A response encoded into the caller's buffer and the virtual time at which
/// it reaches the vantage.  When the fault plane duplicates the response,
/// `duplicate_arrival` is the (later) arrival time of the second copy;
/// 0 means no duplicate.
struct ProcessedResponse {
  util::Nanos arrival;
  std::size_t size;
  util::Nanos duplicate_arrival = 0;
};

/// A response packet and the virtual time at which it reaches the vantage
/// (allocating convenience form).
struct Delivery {
  util::Nanos arrival;
  std::vector<std::byte> packet;
};

/// One response produced by process_batch: payload already encoded into the
/// caller's pool slot, to be scheduled for delivery at `arrival`.
struct BatchDelivery {
  util::Nanos arrival;
  ResponsePool::Slot slot;
  std::uint32_t size;
};

class SimNetwork {
 public:
  explicit SimNetwork(const Topology& topology);

  /// Overrides the topology's fault parameters (bench sweeps reuse one
  /// expensive Topology across fault configurations).
  SimNetwork(const Topology& topology, const FaultParams& faults);

  /// Processes one probe sent at `send_time`, encoding any response into
  /// `out` (which must hold at least net::kMaxResponseSize bytes).  Returns
  /// the response size and arrival time, or nullopt when the network stays
  /// silent.  `send_time` must be non-decreasing across calls (the rate
  /// limiters refill monotonically).  Never allocates in steady state.
  [[nodiscard]] FR_HOT std::optional<ProcessedResponse> process_into(
      std::span<const std::byte> probe, util::Nanos send_time,
      std::span<std::byte> out);

  /// Allocating wrapper over process_into (tests, tools).
  [[nodiscard]] std::optional<Delivery> process(std::span<const std::byte> probe,
                                  util::Nanos send_time);

  /// Batched process_into over a whole ProbeBatch submit: packet k was sent
  /// at `first_send_time + (k+1) * interval` (the virtual-clock instant a
  /// scalar send loop would have stamped), packets absent from `sent_mask`
  /// never reached the network (local send faults).  Responses are encoded
  /// into freshly claimed `pool` slots and appended to `out` — fault-plane
  /// duplicates directly after their original, exactly the scalar claim
  /// order — and the count written is returned (`out` must hold at least
  /// 2 * ProbeBatch::kMaxPackets entries).  One call replaces up to 64
  /// virtual per-probe dispatches; dest-adjacent batch probes reuse the
  /// same hot route-cache line, and the pool claim/duplicate-copy handling
  /// is centralized here instead of per send.
  [[nodiscard]] FR_HOT std::uint32_t process_batch(
      const core::ProbeBatch& batch, std::uint64_t sent_mask,
      util::Nanos first_send_time, util::Nanos interval, ResponsePool& pool,
      BatchDelivery* out);

  const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetworkStats{}; }

  /// Ground-truth rate-limit drops per interface (for validating the
  /// Table 4 overprobing analysis against what "actually" happened).
  /// Materialized from the flat limiter table — not a hot-path accessor.
  std::unordered_map<std::uint32_t, std::uint64_t> rate_limit_drops() const {
    return rate_limiters_.drops();
  }

  const Topology& topology() const noexcept { return topology_; }

  /// The fault-injection plane, or nullptr when every fault knob is zero
  /// (the plane is then never constructed — the default path is unchanged).
  FR_HOT FaultPlane* fault_plane() noexcept {
    return fault_plane_ ? &*fault_plane_ : nullptr;
  }
  const FaultPlane* fault_plane() const noexcept {
    return fault_plane_ ? &*fault_plane_ : nullptr;
  }

 private:
  FR_HOT bool admit_response(std::uint32_t responder_ip, util::Nanos t);
  FR_HOT std::optional<ProcessedResponse> finish_response(
      std::uint32_t dst_value, std::uint8_t ttl, util::Nanos send_time,
      util::Nanos arrival, std::size_t size, std::span<std::byte> out);
  FR_HOT util::Nanos arrival_time(util::Nanos send_time, int hop,
                                  std::uint64_t jitter_key) const noexcept;

  const Topology& topology_;
  NetworkStats stats_;
  RateLimitTable rate_limiters_;
  /// Memoizes Topology::resolve; null when params.route_cache_bits == 0.
  std::optional<RouteCache> route_cache_;
  /// Scratch for cache-bypassed resolution (avoids a 64-slot array on the
  /// stack per probe and lets Route::reset skip the hops array).  Bypassing
  /// re-derives the full response plan per probe — that is the cost the
  /// route cache amortizes.
  Route scratch_route_;
  RouteSilence scratch_silence_;
  /// Current dynamics epoch, memoized over the non-decreasing send times so
  /// the 64-bit division only runs at epoch boundaries.
  std::int64_t current_epoch_ = 0;
  util::Nanos epoch_end_ = 0;
  std::uint64_t seed_rtt_;
  /// Engaged only when FaultParams::any() — one branch on the hot path
  /// otherwise (DESIGN.md §9).
  std::optional<FaultPlane> fault_plane_;
};

}  // namespace flashroute::sim
