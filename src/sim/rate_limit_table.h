// Flat per-responder ICMP rate-limiter storage.
//
// The seed kept one std::unordered_map<ip, TokenBucket> plus a second
// std::unordered_map<ip, drops> — two chained-hash lookups (and a node
// allocation) per rate-limited response.  Responder addresses come in two
// shapes, and this table exploits both:
//
//  * interface-pool IPs (core routers, access chains, gateways, spines,
//    load-balancer branches) are densely allocated from
//    params.interface_pool_base upward — those index straight into a flat
//    array by pool offset: no hashing, no probing, no allocation;
//  * everything else (appliances, stub-interior interfaces, hosts — sparse
//    across the universe) lands in an open-addressing table with linear
//    probing that rehashes amortized and allocates nothing in steady state.
//
// The drop counter lives inside the entry, so the rate-limited path is one
// lookup instead of the seed's try_emplace + drops[ip] pair.
//
// Buckets are pre-created full at t=0 in the dense array; this is
// behaviourally identical to the seed's create-on-first-probe-at-t (the
// bucket starts full either way, and refill clamps at burst).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/rng.h"
#include "util/token_bucket.h"

namespace flashroute::sim {

class RateLimitTable {
 public:
  struct Entry {
    std::uint32_t ip = 0;  ///< key; 0 = empty (no valid responder is 0.0.0.0)
    std::uint64_t drops = 0;
    util::TokenBucket bucket{0.0, 0.0};
  };

  /// Pool IPs in [pool_base, pool_base + pool_size) take the dense path.
  RateLimitTable(double rate_per_second, double burst, std::uint32_t pool_base,
                 std::uint32_t pool_size)
      : rate_(rate_per_second),
        burst_(burst),
        pool_base_(pool_base),
        dense_(pool_size, Entry{0, 0, util::TokenBucket(rate_per_second,
                                                        burst, 0)}),
        sparse_(kInitialSparseCapacity) {}

  /// The limiter entry for `ip`, created full at time `t` on first touch.
  FR_HOT Entry& entry(std::uint32_t ip, util::Nanos t) {
    const std::uint32_t offset = ip - pool_base_;  // wraps below pool_base
    if (offset < dense_.size()) return dense_[offset];
    return sparse_entry(ip, t);
  }

  /// Ground-truth drops per responder, materialized off the hot path.
  std::unordered_map<std::uint32_t, std::uint64_t> drops() const {
    std::unordered_map<std::uint32_t, std::uint64_t> out;
    for (std::uint32_t i = 0; i < dense_.size(); ++i) {
      if (dense_[i].drops > 0) out.emplace(pool_base_ + i, dense_[i].drops);
    }
    for (const Entry& e : sparse_) {
      if (e.ip != 0 && e.drops > 0) out.emplace(e.ip, e.drops);
    }
    return out;
  }

 private:
  static constexpr std::size_t kInitialSparseCapacity = 1024;  // power of two

  FR_HOT Entry& sparse_entry(std::uint32_t ip, util::Nanos t) {
    // fr-lint: allow(hot-call): amortized rehash — steady state (no new
    // sparse responders) never takes this branch.
    if ((sparse_used_ + 1) * 4 > sparse_.size() * 3) rehash();
    const std::size_t mask = sparse_.size() - 1;
    std::size_t i = util::mix64(ip) & mask;
    while (sparse_[i].ip != 0 && sparse_[i].ip != ip) i = (i + 1) & mask;
    Entry& e = sparse_[i];
    if (e.ip == 0) {
      e.ip = ip;
      e.bucket = util::TokenBucket(rate_, burst_, t);
      ++sparse_used_;
    }
    return e;
  }

  void rehash() {
    std::vector<Entry> old = std::move(sparse_);
    sparse_.assign(old.size() * 2, Entry{});
    const std::size_t mask = sparse_.size() - 1;
    for (Entry& e : old) {
      if (e.ip == 0) continue;
      std::size_t i = util::mix64(e.ip) & mask;
      while (sparse_[i].ip != 0) i = (i + 1) & mask;
      sparse_[i] = e;
    }
  }

  double rate_;
  double burst_;
  std::uint32_t pool_base_;
  std::vector<Entry> dense_;
  std::vector<Entry> sparse_;
  std::size_t sparse_used_ = 0;
};

}  // namespace flashroute::sim
