// Fixed-slot buffer pool for simulated response packets.
//
// The simulator used to heap-allocate a fresh std::vector<std::byte> for
// every response it crafted and every delivery-queue entry that carried one.
// This pool gives the delivery queues the same recycling discipline as the
// SPSC receive ring (util/spsc_ring.h): responses are encoded directly into
// a pooled slot, the queue entry stores only {slot index, size}, and the
// slot returns to the free list once the packet has been handed to the
// engine.
//
// Lifetime rules (also documented in DESIGN.md §6):
//  * acquire() hands out a slot; the caller owns it until release().
//  * buffer(slot) spans are stable: storage grows in fixed blocks that are
//    never moved or freed, so a span stays valid across later acquires.
//  * Steady state allocates nothing — the pool only grows while the
//    in-flight response count is still climbing toward its high-water mark
//    (one block per kBlockSlots slots).
//  * The pool is externally synchronized, like the SimNetwork it serves
//    (per-lane in the sharded runtimes).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/icmp.h"
#include "util/annotations.h"

namespace flashroute::sim {

class ResponsePool {
 public:
  using Slot = std::uint32_t;

  ResponsePool() { free_.reserve(kBlockSlots); }

  /// Claims a slot, growing the backing storage when the free list is empty.
  FR_HOT Slot acquire() {
    // fr-lint: allow(hot-call): pool growth happens only while the in-flight
    // high-water mark is still climbing; steady state never calls grow().
    if (free_.empty()) grow();
    const Slot slot = free_.back();
    free_.pop_back();
    return slot;
  }

  /// The slot's buffer (kMaxResponseSize bytes, stable address).
  FR_HOT std::span<std::byte> buffer(Slot slot) noexcept {
    return (*blocks_[slot / kBlockSlots])[slot % kBlockSlots];
  }
  FR_HOT std::span<const std::byte> buffer(Slot slot) const noexcept {
    return (*blocks_[slot / kBlockSlots])[slot % kBlockSlots];
  }

  FR_HOT void release(Slot slot) {
    // fr-lint: allow(hot-banned): free_ capacity is pre-reserved by grow()
    // for every slot that can exist, so this push_back never reallocates.
    free_.push_back(slot);
  }

  std::size_t capacity() const noexcept {
    return blocks_.size() * kBlockSlots;
  }

 private:
  static constexpr std::size_t kBlockSlots = 64;
  using Block =
      std::array<std::array<std::byte, net::kMaxResponseSize>, kBlockSlots>;

  void grow() {
    const Slot base = static_cast<Slot>(capacity());
    blocks_.push_back(std::make_unique<Block>());
    free_.reserve(capacity());
    for (Slot i = 0; i < kBlockSlots; ++i) {
      free_.push_back(static_cast<Slot>(base + kBlockSlots - 1 - i));  // low slots first
    }
  }

  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<Slot> free_;
};

}  // namespace flashroute::sim
