// Direct-mapped memoization of Topology::resolve.
//
// FlashRoute probes each /24 dozens of times with an identical
// (destination, flow, epoch) triple — one representative target per prefix,
// a Paris-constant flow label, and rounds that finish well inside one
// dynamics epoch — yet the seed simulator re-expanded the stub's route
// template from scratch for every probe.  Path caching is the standard trick
// for making per-packet route models tractable at scale (Leguay et al.,
// "Describing and Simulating Internet Routes"); because Topology::resolve is
// a pure function of the exact triple, memoizing it is *provably*
// bit-identical: a hit returns the very Route a fresh resolution would
// produce, so cached and cache-bypassed scans yield the same ScanResult
// (tests/sim_hotpath_test.cc proves this seed by seed).
//
// Each entry memoizes the route *and* its RouteSilence — the per-hop
// interface_responds / host_responds answers for the probe's protocol, which
// are pure over (route, protocol).  The plan fills *lazily*: fill() resets
// it empty and the response path computes each hop/host answer on first
// query (Topology::hop_silent_at / host_answers_lazy).  A scan asks about
// 1-2 positions of a route per fill, so annotating all ~20-30 hops eagerly
// was the dominant miss cost; laziness keeps hits just as cheap (memoized
// bits) and makes misses ~5x cheaper, bit-identically — the draws are pure.
//
// The cache is direct-mapped: one tag check plus an array read on the common
// path, no probing chains, no allocation after construction.  Collisions
// simply overwrite (it is a cache, not a map).  Each SimNetwork owns one
// instance, so the engine's per-lane threading discipline carries over
// unchanged; the Topology itself stays immutable and shared.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/topology.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace flashroute::sim {

class RouteCache {
 public:
  /// One memoized resolution: the route plus its response plan.
  struct Entry {
    std::uint32_t destination = 0;
    std::uint64_t flow = 0;
    std::int64_t epoch = 0;
    std::uint8_t protocol = 0;
    bool valid = false;
    Route route;
    RouteSilence silence;
  };

  /// `bits` = log2 of the entry count (each entry holds a full Route).
  explicit RouteCache(int bits)
      : mask_((std::size_t{1} << bits) - 1),
        entries_(std::size_t{1} << bits) {}

  /// The cached entry for the key, or nullptr on a miss.  Mutable: the
  /// response path memoizes lazy silence answers into the entry's plan.
  FR_HOT Entry* find(net::Ipv4Address destination, std::uint64_t flow,
                     std::int64_t epoch, std::uint8_t protocol) noexcept {
    Entry& entry = entries_[slot(destination, flow, epoch)];
    if (entry.valid && entry.destination == destination.value() &&
        entry.flow == flow && entry.epoch == epoch &&
        entry.protocol == protocol) {
      return &entry;
    }
    return nullptr;
  }

  /// Resolves the key through `topology` into its cache slot (overwriting
  /// whatever lived there — it is a cache, not a map) and returns the
  /// freshly cached entry, or nullptr when the destination lies outside the
  /// universe (never cached; resolve bails before touching the slot's route
  /// in that case, and the cleared tag gates any reuse).
  FR_HOT Entry* fill(const Topology& topology, net::Ipv4Address destination,
                     std::uint64_t flow, std::int64_t epoch,
                     std::uint8_t protocol) noexcept {
    Entry& entry = entries_[slot(destination, flow, epoch)];
    if (!topology.resolve(destination, flow, epoch, entry.route)) {
      entry.valid = false;
      return nullptr;
    }
    entry.silence.reset_lazy();
    entry.destination = destination.value();
    entry.flow = flow;
    entry.epoch = epoch;
    entry.protocol = protocol;
    entry.valid = true;
    return &entry;
  }

  std::size_t capacity() const noexcept { return entries_.size(); }

 private:
  FR_HOT std::size_t slot(net::Ipv4Address destination, std::uint64_t flow,
                   std::int64_t epoch) const noexcept {
    return util::hash_combine(destination.value(), flow,
                              static_cast<std::uint64_t>(epoch)) &
           mask_;
  }

  std::size_t mask_;
  std::vector<Entry> entries_;
};

}  // namespace flashroute::sim
