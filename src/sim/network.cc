#include "sim/network.h"

#include <cstring>

#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"

namespace flashroute::sim {

SimNetwork::SimNetwork(const Topology& topology)
    : SimNetwork(topology, topology.params().faults) {}

SimNetwork::SimNetwork(const Topology& topology, const FaultParams& faults)
    : topology_(topology),
      rate_limiters_(topology.params().icmp_rate_limit_pps,
                     topology.params().icmp_rate_limit_burst,
                     topology.params().interface_pool_base,
                     static_cast<std::uint32_t>(
                         topology.allocated_pool_interfaces())),
      seed_rtt_(util::hash_combine(topology.params().seed, 0x727474)) {
  if (const int bits = topology.params().effective_route_cache_bits();
      bits > 0) {
    route_cache_.emplace(bits);
  }
  if (faults.any()) fault_plane_.emplace(faults, topology.params().seed);
}

FR_HOT bool SimNetwork::admit_response(std::uint32_t responder_ip, util::Nanos t) {
  RateLimitTable::Entry& limiter = rate_limiters_.entry(responder_ip, t);
  if (limiter.bucket.try_consume(t)) return true;
  ++stats_.rate_limited;
  ++limiter.drops;
  return false;
}

FR_HOT util::Nanos SimNetwork::arrival_time(util::Nanos send_time, int hop,
                                     std::uint64_t jitter_key) const noexcept {
  const auto& params = topology_.params();
  const util::Nanos jitter =
      params.rtt_jitter > 0
          ? static_cast<util::Nanos>(util::stable_bounded(
                seed_rtt_, jitter_key,
                static_cast<std::uint64_t>(params.rtt_jitter)))
          : 0;
  return send_time + params.rtt_base + params.rtt_per_hop * hop + jitter;
}

FR_HOT std::optional<ProcessedResponse> SimNetwork::process_into(
    std::span<const std::byte> probe, util::Nanos send_time,
    std::span<std::byte> out) {
  ++stats_.probes;

  // Decode the probe.  Every probe the codecs emit is a canonical
  // options-free IPv4 header (version 4, IHL 5) over UDP or TCP — those take
  // the fast path: five field loads at fixed offsets, no ByteReader, no
  // optionals.  Anything else (IP options, other protocols, truncated or
  // garbage bytes) falls back to the full parser, which classifies it
  // exactly as before.
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint32_t dst_value = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  const auto u8 = [&probe](std::size_t i) {
    return std::to_integer<std::uint32_t>(probe[i]);
  };
  bool decoded = false;
  if (probe.size() >= net::Ipv4Header::kSize + net::UdpHeader::kSize &&
      u8(0) == 0x45) {
    protocol = static_cast<std::uint8_t>(u8(9));
    if (protocol == net::kProtoUdp ||
        (protocol == net::kProtoTcp &&
         probe.size() >= net::Ipv4Header::kSize + net::TcpHeader::kSize)) {
      ttl = static_cast<std::uint8_t>(u8(8));
      dst_value = u8(16) << 24 | u8(17) << 16 | u8(18) << 8 | u8(19);
      src_port = static_cast<std::uint16_t>(u8(20) << 8 | u8(21));
      dst_port = static_cast<std::uint16_t>(u8(22) << 8 | u8(23));
      decoded = true;
    }
  }
  if (!decoded) {
    net::ByteReader reader(probe);
    const auto ip = net::Ipv4Header::parse(reader);
    if (!ip) {
      ++stats_.malformed;
      return std::nullopt;
    }
    if (ip->protocol == net::kProtoUdp) {
      const auto udp = net::UdpHeader::parse(reader);
      if (!udp) {
        ++stats_.malformed;
        return std::nullopt;
      }
      src_port = udp->src_port;
      dst_port = udp->dst_port;
    } else if (ip->protocol == net::kProtoTcp) {
      const auto tcp = net::TcpHeader::parse(reader);
      if (!tcp) {
        ++stats_.malformed;
        return std::nullopt;
      }
      src_port = tcp->src_port;
      dst_port = tcp->dst_port;
    } else {
      ++stats_.malformed;
      return std::nullopt;
    }
    ttl = ip->ttl;
    protocol = ip->protocol;
    dst_value = ip->dst.value();
  }
  if (ttl == 0) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const net::Ipv4Address dst_address(dst_value);

  // Probe-direction faults: blackholed prefixes, flapping links, random
  // loss.  Drawn from (destination, ttl, send_time) — stateless, so the
  // schedule replays identically across runs and resumes.
  if (fault_plane_ &&
      fault_plane_->drop_probe(dst_value, ttl, send_time)) {
    return std::nullopt;
  }

  // Per-flow label: what a Paris-style load balancer hashes (§3, Paris
  // traceroute keeps these constant so one target sees one path).
  const std::uint64_t flow =
      util::hash_combine(dst_value, src_port, dst_port, protocol);
  // Memoize the epoch: send times are non-decreasing (a documented contract
  // of process_into), so the division only runs when an epoch boundary is
  // actually crossed.
  if (send_time >= epoch_end_) {
    current_epoch_ = send_time / topology_.params().dynamics_epoch;
    epoch_end_ = (current_epoch_ + 1) * topology_.params().dynamics_epoch;
  }
  const std::int64_t epoch = current_epoch_;

  const Route* route;
  RouteSilence* silence;
  if (route_cache_) {
    RouteCache::Entry* entry =
        route_cache_->find(dst_address, flow, epoch, protocol);
    if (entry != nullptr) {
      ++stats_.route_cache_hits;
    } else {
      ++stats_.route_cache_misses;
      entry = route_cache_->fill(topology_, dst_address, flow, epoch, protocol);
    }
    if (entry == nullptr) {
      ++stats_.out_of_universe;
      return std::nullopt;
    }
    route = &entry->route;
    silence = &entry->silence;
  } else {
    ++stats_.route_cache_misses;
    if (!topology_.resolve(dst_address, flow, epoch, scratch_route_)) {
      ++stats_.out_of_universe;
      return std::nullopt;
    }
    scratch_silence_.reset_lazy();
    route = &scratch_route_;
    silence = &scratch_silence_;
  }

  // Where does the probe's TTL run out?  A TTL-rewriting middlebox at
  // (1-based) hop m resets the residual TTL of packets it forwards, so a
  // probe that passes it expires reset-1 hops later regardless of its
  // original TTL (but a packet expiring *at* the middlebox still expires
  // there).  Closed form of the hop-by-hop decrement walk; `residual` is
  // the TTL the packet would arrive at the far end with.
  int residual;
  int expire_pos;
  const int ttl_signed = ttl;
  if (route->middlebox_pos >= 1 && route->middlebox_pos <= route->num_hops &&
      ttl_signed > route->middlebox_pos) {
    const int reborn = route->middlebox_pos + route->middlebox_reset - 1;
    if (route->middlebox_reset >= 2 && reborn <= route->num_hops) {
      expire_pos = reborn;
      residual = 1;
    } else {
      expire_pos = 0;
      residual = route->middlebox_pos + route->middlebox_reset - 1 -
                 route->num_hops;
    }
  } else if (ttl_signed <= route->num_hops) {
    expire_pos = ttl_signed;
    residual = 1;
  } else {
    expire_pos = 0;
    residual = ttl_signed - route->num_hops;
  }

  if (expire_pos == 0 && !route->delivers) {
    if (route->loops) {
      // The dark tail bounces between two hops; the probe expires
      // `residual` hops into the loop.
      expire_pos = route->num_hops + residual;
    } else {
      ++stats_.dropped_dark;
      return std::nullopt;
    }
  }

  if (expire_pos != 0) {
    if (topology_.hop_silent_at(*route, expire_pos, protocol, *silence)) {
      ++stats_.silent_interface;
      return std::nullopt;
    }
    const std::uint32_t responder = route->hop_at(expire_pos);
    if (!admit_response(responder, send_time)) return std::nullopt;
    const std::size_t size = net::craft_icmp_response_into(
        net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded,
        net::Ipv4Address(responder), probe, /*residual_ttl=*/1, out);
    if (size == 0) {
      ++stats_.malformed;
      return std::nullopt;
    }
    ++stats_.time_exceeded_sent;
    const std::uint64_t jitter_key = util::hash_combine(
        dst_value, ttl, flow, static_cast<std::uint64_t>(epoch));
    return finish_response(dst_value, ttl, send_time,
                           arrival_time(send_time, expire_pos, jitter_key),
                           size, out);
  }

  // Delivered to a host: `residual` is the TTL it arrives with.
  const net::Ipv4Address host(route->delivered_address);
  if (!topology_.host_answers_lazy(*route, protocol, *silence)) {
    ++stats_.silent_host;
    return std::nullopt;
  }
  if (!admit_response(host.value(), send_time)) return std::nullopt;

  std::size_t size;
  if (protocol == net::kProtoTcp) {
    size = net::craft_tcp_rst_into(probe, out);
  } else {
    size = net::craft_icmp_response_into(
        net::kIcmpDestUnreachable, net::kIcmpCodePortUnreachable, host, probe,
        static_cast<std::uint8_t>(residual), out,
        route->rewritten ? std::optional(host) : std::nullopt);
  }
  if (size == 0) {
    ++stats_.malformed;
    return std::nullopt;
  }
  ++stats_.destination_responses;
  const std::uint64_t jitter_key = util::hash_combine(
      dst_value, ttl, flow, static_cast<std::uint64_t>(epoch) ^ 1);
  return finish_response(
      dst_value, ttl, send_time,
      arrival_time(send_time, route->num_hops + 1, jitter_key), size, out);
}

// Response-direction faults, applied after the router/host has "sent" the
// response (the generation counters above stay truthful): loss swallows it,
// corruption flips delivered bytes, reordering adds bounded delay, and
// duplication schedules a trailing second copy.
FR_HOT std::optional<ProcessedResponse> SimNetwork::finish_response(
    std::uint32_t dst_value, std::uint8_t ttl, util::Nanos send_time,
    util::Nanos arrival, std::size_t size, std::span<std::byte> out) {
  if (!fault_plane_) return ProcessedResponse{arrival, size};
  FaultPlane& plane = *fault_plane_;
  if (plane.drop_response(dst_value, ttl, send_time)) return std::nullopt;
  (void)plane.corrupt_response(dst_value, ttl, send_time, out.first(size));
  arrival += plane.reorder_delay(dst_value, ttl, send_time);
  const util::Nanos lag = plane.duplicate_lag(dst_value, ttl, send_time);
  return ProcessedResponse{arrival, size, lag > 0 ? arrival + lag : 0};
}

FR_HOT std::uint32_t SimNetwork::process_batch(
    const core::ProbeBatch& batch, std::uint64_t sent_mask,
    util::Nanos first_send_time, util::Nanos interval, ResponsePool& pool,
    BatchDelivery* out) {
  std::uint32_t produced = 0;
  util::Nanos send_time = first_send_time;
  for (std::uint32_t k = 0; k < batch.count(); ++k) {
    send_time += interval;
    if (((sent_mask >> k) & 1) == 0) continue;
    const ResponsePool::Slot slot = pool.acquire();
    const auto response =
        process_into(batch.packet(k), send_time, pool.buffer(slot));
    if (!response) {
      pool.release(slot);
      continue;
    }
    out[produced++] = BatchDelivery{
        response->arrival, slot, static_cast<std::uint32_t>(response->size)};
    if (response->duplicate_arrival > 0) {
      const ResponsePool::Slot copy = pool.acquire();
      std::memcpy(pool.buffer(copy).data(), pool.buffer(slot).data(),
                  response->size);
      out[produced++] =
          BatchDelivery{response->duplicate_arrival, copy,
                        static_cast<std::uint32_t>(response->size)};
    }
  }
  return produced;
}

std::optional<Delivery> SimNetwork::process(std::span<const std::byte> probe,
                                            util::Nanos send_time) {
  std::vector<std::byte> packet(net::kMaxResponseSize);
  const auto response = process_into(probe, send_time, packet);
  if (!response) return std::nullopt;
  packet.resize(response->size);
  return Delivery{response->arrival, std::move(packet)};
}

}  // namespace flashroute::sim
