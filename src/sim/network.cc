#include "sim/network.h"

#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"

namespace flashroute::sim {

SimNetwork::SimNetwork(const Topology& topology)
    : topology_(topology),
      seed_rtt_(util::hash_combine(topology.params().seed, 0x727474)) {}

bool SimNetwork::admit_response(std::uint32_t responder_ip, util::Nanos t) {
  auto [it, inserted] = rate_limiters_.try_emplace(
      responder_ip, topology_.params().icmp_rate_limit_pps,
      topology_.params().icmp_rate_limit_burst, t);
  if (it->second.try_consume(t)) return true;
  ++stats_.rate_limited;
  ++rate_limit_drops_[responder_ip];
  return false;
}

util::Nanos SimNetwork::arrival_time(util::Nanos send_time, int hop,
                                     std::uint64_t jitter_key) const noexcept {
  const auto& params = topology_.params();
  const util::Nanos jitter =
      params.rtt_jitter > 0
          ? static_cast<util::Nanos>(util::stable_bounded(
                seed_rtt_, jitter_key,
                static_cast<std::uint64_t>(params.rtt_jitter)))
          : 0;
  return send_time + params.rtt_base + params.rtt_per_hop * hop + jitter;
}

std::optional<Delivery> SimNetwork::process(std::span<const std::byte> probe,
                                            util::Nanos send_time) {
  ++stats_.probes;

  net::ByteReader reader(probe);
  const auto ip = net::Ipv4Header::parse(reader);
  if (!ip || ip->ttl == 0) {
    ++stats_.malformed;
    return std::nullopt;
  }

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  if (ip->protocol == net::kProtoUdp) {
    const auto udp = net::UdpHeader::parse(reader);
    if (!udp) {
      ++stats_.malformed;
      return std::nullopt;
    }
    src_port = udp->src_port;
    dst_port = udp->dst_port;
  } else if (ip->protocol == net::kProtoTcp) {
    const auto tcp = net::TcpHeader::parse(reader);
    if (!tcp) {
      ++stats_.malformed;
      return std::nullopt;
    }
    src_port = tcp->src_port;
    dst_port = tcp->dst_port;
  } else {
    ++stats_.malformed;
    return std::nullopt;
  }

  // Per-flow label: what a Paris-style load balancer hashes (§3, Paris
  // traceroute keeps these constant so one target sees one path).
  const std::uint64_t flow =
      util::hash_combine(ip->dst.value(), src_port, dst_port, ip->protocol);
  const std::int64_t epoch =
      send_time / topology_.params().dynamics_epoch;

  Route route;
  if (!topology_.resolve(ip->dst, flow, epoch, route)) {
    ++stats_.out_of_universe;
    return std::nullopt;
  }

  // Walk the path, decrementing TTL.  A TTL-rewriting middlebox resets the
  // residual TTL of packets it forwards (but a packet expiring *at* the
  // middlebox still expires there).
  int residual = ip->ttl;
  int expire_pos = 0;
  for (int pos = 1; pos <= route.num_hops; ++pos) {
    if (residual == 1) {
      expire_pos = pos;
      break;
    }
    if (pos == route.middlebox_pos) residual = route.middlebox_reset;
    --residual;
  }

  if (expire_pos == 0 && !route.delivers) {
    if (route.loops) {
      // The dark tail bounces between two hops; the probe expires
      // `residual` hops into the loop.
      expire_pos = route.num_hops + residual;
    } else {
      ++stats_.dropped_dark;
      return std::nullopt;
    }
  }

  if (expire_pos != 0) {
    const std::uint32_t responder = route.hop_at(expire_pos);
    if (!topology_.interface_responds(responder, ip->protocol)) {
      ++stats_.silent_interface;
      return std::nullopt;
    }
    if (!admit_response(responder, send_time)) return std::nullopt;
    auto packet = net::craft_icmp_response(
        net::kIcmpTimeExceeded, net::kIcmpCodeTtlExceeded,
        net::Ipv4Address(responder), probe, /*residual_ttl=*/1);
    if (!packet) {
      ++stats_.malformed;
      return std::nullopt;
    }
    ++stats_.time_exceeded_sent;
    const std::uint64_t jitter_key = util::hash_combine(
        ip->dst.value(), ip->ttl, flow, static_cast<std::uint64_t>(epoch));
    return Delivery{arrival_time(send_time, expire_pos, jitter_key),
                    std::move(*packet)};
  }

  // Delivered to a host: `residual` is the TTL it arrives with.
  const net::Ipv4Address host(route.delivered_address);
  if (!topology_.host_responds(host, ip->protocol)) {
    ++stats_.silent_host;
    return std::nullopt;
  }
  if (!admit_response(host.value(), send_time)) return std::nullopt;

  std::optional<std::vector<std::byte>> packet;
  if (ip->protocol == net::kProtoTcp) {
    packet = net::craft_tcp_rst(probe);
  } else {
    packet = net::craft_icmp_response(
        net::kIcmpDestUnreachable, net::kIcmpCodePortUnreachable, host, probe,
        static_cast<std::uint8_t>(residual),
        route.rewritten ? std::optional(host) : std::nullopt);
  }
  if (!packet) {
    ++stats_.malformed;
    return std::nullopt;
  }
  ++stats_.destination_responses;
  const std::uint64_t jitter_key = util::hash_combine(
      ip->dst.value(), ip->ttl, flow, static_cast<std::uint64_t>(epoch) ^ 1);
  return Delivery{arrival_time(send_time, route.num_hops + 1, jitter_key),
                  std::move(*packet)};
}

}  // namespace flashroute::sim
