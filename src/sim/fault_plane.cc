#include "sim/fault_plane.h"

namespace flashroute::sim {

namespace {

// Direction/kind tags folded into the per-kind sub-seeds so the same
// (destination, ttl, send_time) tuple draws independently for each fault.
constexpr std::uint64_t kTagProbeLoss = 0x70726C73;     // "prls"
constexpr std::uint64_t kTagResponseLoss = 0x72736C73;  // "rsls"
constexpr std::uint64_t kTagDuplicate = 0x64757065;     // "dupe"
constexpr std::uint64_t kTagReorder = 0x72657264;       // "rerd"
constexpr std::uint64_t kTagCorrupt = 0x63727074;       // "crpt"
constexpr std::uint64_t kTagBlackhole = 0x626C6B68;     // "blkh"
constexpr std::uint64_t kTagFlap = 0x666C6170;          // "flap"
constexpr std::uint64_t kTagFlapPhase = 0x666C7068;     // "flph"
constexpr std::uint64_t kTagSendFail = 0x736E6466;      // "sndf"

}  // namespace

FaultPlane::FaultPlane(const FaultParams& params, std::uint64_t topology_seed)
    : params_(params) {
  const std::uint64_t base =
      util::hash_combine(topology_seed, params.fault_seed);
  seed_probe_loss_ = util::hash_combine(base, kTagProbeLoss);
  seed_response_loss_ = util::hash_combine(base, kTagResponseLoss);
  seed_duplicate_ = util::hash_combine(base, kTagDuplicate);
  seed_reorder_ = util::hash_combine(base, kTagReorder);
  seed_corrupt_ = util::hash_combine(base, kTagCorrupt);
  seed_blackhole_ = util::hash_combine(base, kTagBlackhole);
  seed_flap_ = util::hash_combine(base, kTagFlap);
  seed_flap_phase_ = util::hash_combine(base, kTagFlapPhase);
  seed_send_fail_ = util::hash_combine(base, kTagSendFail);
}

}  // namespace flashroute::sim
