// Deterministic Internet topology model.
//
// The model reproduces the structural phenomena the paper's probing
// strategies interact with:
//
//  * routes from one vantage point form a tree (Doubletree's premise, Fig 1):
//    a random recursive tree of provider-core routers, so paths to different
//    stubs share long common sections near the source;
//  * per-flow load balancers create diamond sections (Fig 2): some core
//    edges expand into 2-3 parallel one-hop branches selected by flow hash,
//    so a different source port reveals different interfaces;
//  * stubs advertise contiguous blocks of /24s that share their forward path
//    — the basis of proximity-span distance prediction (§3.3.3);
//  * each routed /24 has a "gateway appliance" interface inside the prefix;
//    hosts sit 0..2 hops behind it.  The hitlist preferentially names the
//    appliance, which is the paper's §5.1 bias;
//  * probes to unassigned addresses die inside the provider (dark blocks) or
//    at the stub gateway, occasionally entering a forwarding loop (§5.1);
//  * TTL-rewriting and destination-rewriting middleboxes sit at stub
//    entrances (§3.3.2, §5.3);
//  * stub spine length jitters over time epochs, modelling route dynamicity.
//
// The topology is immutable after construction; all queries are const and
// deterministic, so concurrent probing engines can share one instance.

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "net/ipv4.h"
#include "sim/params.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace flashroute::sim {

/// A resolved forwarding path for one (destination, flow, epoch) triple.
struct Route {
  static constexpr int kMaxHops = 64;

  /// hops[i] answers time-exceeded at TTL i+1 (interface IPs, host order).
  std::array<std::uint32_t, kMaxHops> hops{};
  int num_hops = 0;  ///< routers before delivery or drop

  bool delivers = false;           ///< reaches an assigned host
  std::uint32_t delivered_address = 0;  ///< responder (after any rewriting)
  bool rewritten = false;          ///< destination rewritten en route (§5.3)

  bool loops = false;              ///< dark tail bounces between two hops
  std::uint32_t loop_a = 0;
  std::uint32_t loop_b = 0;

  int middlebox_pos = 0;           ///< 1-based hop of TTL-reset box, 0 = none
  std::uint8_t middlebox_reset = 0;

  /// Resets the scalar fields for reuse.  The `hops` array is deliberately
  /// left stale: resolve() only writes (and callers only read) entries
  /// [0, num_hops), so zero-filling all 64 slots per resolution would be
  /// pure hot-path waste.  Debug builds assert the read bound in hop_at.
  FR_HOT void reset() noexcept {
    num_hops = 0;
    delivers = false;
    delivered_address = 0;
    rewritten = false;
    loops = false;
    loop_a = 0;
    loop_b = 0;
    middlebox_pos = 0;
    middlebox_reset = 0;
  }

  /// Interface that would see the probe expire at 1-based position `pos`.
  /// Positions beyond num_hops are valid only when `loops`.
  FR_HOT std::uint32_t hop_at(int pos) const noexcept {
    assert(pos >= 1);
    if (pos <= num_hops) return hops[static_cast<std::size_t>(pos - 1)];
    assert(loops);
    return ((pos - num_hops) % 2 == 1) ? loop_a : loop_b;
  }
};

/// The response plan of a resolved route for one transport protocol: which
/// hop positions would stay silent if a probe expired there, and whether the
/// delivered-to host answers.  Pure over (route, protocol) — the route cache
/// memoizes it next to the Route so a cache hit answers every per-probe
/// question without touching the Topology again (DESIGN.md §6).
struct RouteSilence {
  std::uint64_t hop_silent = 0;  ///< bit i set: hops[i] never answers
  /// Lazily-filled plans track which answers have been computed: bit i of
  /// hop_known validates bit i of hop_silent, and the loop/host answers
  /// carry their own known flags.  A scan probes only 1-2 TTLs of a route
  /// per cache fill, so computing all ~20-30 hop draws eagerly was the
  /// dominant cache-miss cost; the draws are pure over (ip, protocol), so
  /// on-demand evaluation is bit-identical to the eager plan.
  std::uint64_t hop_known = 0;
  bool loop_a_silent = false;
  bool loop_b_silent = false;
  bool host_answers = false;
  bool loop_known = false;
  bool host_known = false;

  /// Empties the plan for a fresh (route, protocol) pairing.
  FR_HOT void reset_lazy() noexcept {
    hop_silent = 0;
    hop_known = 0;
    loop_known = false;
    host_known = false;
  }
};

class Topology {
 public:
  explicit Topology(const SimParams& params);

  /// Resolves the forwarding path for `destination` under flow label `flow`
  /// at dynamics epoch `epoch`.  Returns false when the destination lies
  /// outside the simulated universe.
  [[nodiscard]] FR_HOT bool resolve(net::Ipv4Address destination, std::uint64_t flow,
                      std::int64_t epoch, Route& route) const noexcept;

  /// Minimum TTL that elicits a response from the destination itself
  /// (num_hops + 1), or nullopt when the destination never answers.
  std::optional<int> trigger_ttl(net::Ipv4Address destination,
                                 std::uint64_t flow,
                                 std::int64_t epoch) const noexcept;

  // --- Host & interface behaviour ------------------------------------------

  /// Whether this exact address is an assigned host (the per-/24 appliance
  /// always is; other octets are assigned with host_exist_prob).
  FR_HOT bool host_exists(net::Ipv4Address address) const noexcept;

  /// Whether the host answers a probe of the given transport protocol
  /// (kProtoUdp -> ICMP port-unreachable, kProtoTcp -> RST).
  FR_HOT bool host_responds(net::Ipv4Address address,
                            std::uint8_t protocol) const noexcept;

  /// Whether a router interface answers time-exceeded for this protocol
  /// (persistently silent interfaces never do; some are silent to TCP only).
  FR_HOT bool interface_responds(std::uint32_t interface_ip,
                                 std::uint8_t protocol) const noexcept;

  /// Precomputes the per-hop interface_responds / host_responds answers for
  /// a resolved route into a RouteSilence.  Equivalent to querying them
  /// probe by probe — the route cache amortizes this over every TTL probed
  /// toward the same (destination, flow, epoch).
  FR_HOT void annotate_silence(const Route& route, std::uint8_t protocol,
                               RouteSilence& out) const noexcept;

  /// Lazy per-position variant of annotate_silence: answers whether the
  /// interface at 1-based position `pos` (beyond num_hops: the loop tail)
  /// stays silent, computing and memoizing the draw in `plan` on first use.
  /// Querying the same plan eagerly or lazily yields identical bits.
  FR_HOT bool hop_silent_at(const Route& route, int pos,
                            std::uint8_t protocol,
                            RouteSilence& plan) const noexcept;

  /// Lazy host-answer query, memoized in `plan` like hop_silent_at.
  FR_HOT bool host_answers_lazy(const Route& route, std::uint8_t protocol,
                                RouteSilence& plan) const noexcept;

  // --- Metadata --------------------------------------------------------------
  FR_HOT const SimParams& params() const noexcept { return params_; }
  FR_HOT bool in_universe(net::Ipv4Address address) const noexcept;
  FR_HOT bool prefix_routed(std::uint32_t prefix_index) const noexcept;
  FR_HOT std::uint32_t appliance_address(
      std::uint32_t prefix_index) const noexcept;
  std::uint32_t num_stubs() const noexcept {
    return static_cast<std::uint32_t>(stubs_.size());
  }
  std::uint32_t num_dark_blocks() const noexcept {
    return static_cast<std::uint32_t>(dark_blocks_.size());
  }
  /// Interfaces allocated from the provider pool (core, access, gateways,
  /// spines, load-balancer branches) — excludes per-/24 stub-interior IPs.
  std::uint64_t allocated_pool_interfaces() const noexcept {
    return next_pool_ip_ - params_.interface_pool_base;
  }

  /// The hitlist: for each prefix in the universe, the "most responsive"
  /// address (0 when the census would have found none).  Biased toward the
  /// gateway appliance per §5.1.
  std::vector<std::uint32_t> generate_hitlist() const;

  /// Dynamics: spine length of a stub at a given epoch.
  FR_HOT int spine_length(std::uint32_t stub_id,
                          std::int64_t epoch) const noexcept;

  /// Host responsiveness class of the stub owning this prefix (densely
  /// populated vs nearly empty; see SimParams::stub_responsive_prob).
  FR_HOT bool stub_is_responsive(std::uint32_t prefix_index) const noexcept;

 private:
  /// One position of a stub's provider-path template.  width == 0: a fixed
  /// interface; width > 0: a load-balancer branch — the interface is
  /// base_ip + (branch hash % width).
  struct TemplateHop {
    std::uint32_t base_ip = 0;
    std::uint8_t width = 0;
    std::uint64_t edge_key = 0;
  };

  struct Stub {
    std::vector<TemplateHop> path;  ///< root .. gateway (gateway last)
    std::array<std::uint32_t, 4> spine_ips{};
    std::uint8_t spine_base = 0;
    std::uint8_t mbox_reset = 0;  ///< 0 = no TTL-reset middlebox
    bool rewrite = false;         ///< destination-rewriting middlebox
  };

  void apply_filtered_tail(const Stub& stub, util::Xoshiro256& rng);

  struct DarkBlock {
    std::uint32_t provider_stub = 0;
    std::uint8_t drop_back = 0;  ///< probes die drop_back hops before gateway
    bool loop = false;
  };

  /// Per-prefix topology state of the succinct modes, derived statelessly
  /// from (prefix offset, seeds) — never stored in kSuccinct, expanded into
  /// `materialized_entries_` in kSuccinctMaterialized.
  struct SuccinctEntry {
    std::uint32_t block_key = 0;  ///< first offset of the advertised block
    std::uint32_t stub = 0;       ///< template index (routed) / provider (dark)
    std::uint8_t drop_back = 0;
    bool routed = false;
    bool dark_loop = false;
  };

  static constexpr std::int32_t kUnmapped = -1;

  std::uint32_t alloc_pool_ip() noexcept { return next_pool_ip_++; }
  FR_HOT int expand_template(const Stub& stub, std::uint64_t flow, int limit,
                             std::array<std::uint32_t, Route::kMaxHops>& hops)
      const noexcept;
  FR_HOT std::uint32_t template_hop_ip(const TemplateHop& hop,
                                       std::uint64_t flow) const noexcept;
  FR_HOT std::uint8_t internal_octet(std::uint32_t prefix_index,
                                     int level) const noexcept;
  /// Stateless succinct derivation: superblock-hashed block size, aligned
  /// block start, routed/dark draw, template assignment — all from the
  /// derived seeds, O(1) per prefix, no per-prefix storage.
  FR_HOT SuccinctEntry derive_entry(std::uint32_t offset) const noexcept;
  /// Mode dispatch: materialized table lookup or on-demand derivation.
  FR_HOT SuccinctEntry entry_at(std::uint32_t offset) const noexcept;
  FR_HOT int spine_length_keyed(int spine_base, std::uint64_t key_id,
                                std::int64_t epoch) const noexcept;
  /// host_exists() for an address known to sit in a routed prefix whose
  /// dynamics key is already in hand (resolve() extracted it for the route
  /// walk).  Skips the two entry_at() re-derivations the public query pays —
  /// the responsiveness and existence draws are identical, so the answer is
  /// bit-for-bit the same.
  FR_HOT bool host_exists_routed(net::Ipv4Address address,
                                 std::uint64_t dyn_key) const noexcept;
  /// host_responds() for the delivered address of a resolved route.  Every
  /// route with `delivers` set has host_exists(delivered_address) true by
  /// construction (resolve() either verified the draw or delivered to the
  /// always-assigned appliance), so only the protocol draw remains.
  FR_HOT bool host_responds_delivered(net::Ipv4Address address,
                                      std::uint8_t protocol) const noexcept;

  SimParams params_;
  std::uint32_t next_pool_ip_;

  /// Per-prefix mapping (kMaterialized only): >= 0 stub index; <= -2 dark
  /// block index (-(v)-2); kUnmapped never occurs after construction.
  std::vector<std::int32_t> prefix_map_;
  /// kMaterialized: one stub per advertised routed block.  Succinct modes:
  /// the fixed template pool (2^template_pool_bits entries).
  std::vector<Stub> stubs_;
  std::vector<DarkBlock> dark_blocks_;
  /// kSuccinctMaterialized only: derive_entry() expanded per prefix.
  std::vector<SuccinctEntry> materialized_entries_;
  /// Interfaces silenced by a filtered stub tail (Fig 6's silent stretches).
  std::unordered_set<std::uint32_t> forced_silent_;

  // Derived seeds for independent stochastic aspects.
  std::uint64_t seed_host_;
  std::uint64_t seed_depth_;
  std::uint64_t seed_udp_;
  std::uint64_t seed_tcp_;
  std::uint64_t seed_silent_;
  std::uint64_t seed_silent_tcp_;
  std::uint64_t seed_dyn_;
  std::uint64_t seed_loop_;
  std::uint64_t seed_hitlist_;
  std::uint64_t seed_internal_;
  // Succinct-mode derivation seeds (unused by kMaterialized).
  std::uint64_t seed_block_;
  std::uint64_t seed_routed_;
  std::uint64_t seed_assign_;
  std::uint64_t seed_dark_prov_;
  std::uint64_t seed_dark_back_;
  std::uint64_t seed_dark_loop_;
};

}  // namespace flashroute::sim
