// Tunable parameters of the simulated Internet.
//
// The paper evaluates FlashRoute against the real IPv4 Internet; this
// repository substitutes a deterministic model whose knobs are calibrated to
// the observations the paper itself reports (see DESIGN.md §5):
//
//  * ~4.0% of random per-/24 targets answer the one-probe distance
//    measurement; hitlist targets answer ~10% (§4.1.3);
//  * interface reuse across routes plunges near hop 16 and essentially no
//    route exceeds 32 hops (§3.2.1);
//  * most routers limit ICMP generation to <= 500 replies/s (§4.2.2,
//    citing Ravaioli et al.);
//  * TTL-rewriting middleboxes sit at stub-network entrances and cause the
//    >1-hop tail of Fig 3; routing dynamics cause the ±1 mass;
//  * destination-rewriting middleboxes touch 0.007%-0.054% of probes (§5.3);
//  * forwarding loops appear on ~1.7% of routes to unresponsive targets
//    (§5.1);
//  * hitlist addresses preferentially name the gateway appliance at a stub's
//    entrance, shielding interior interfaces from discovery (§5.1).

#pragma once

#include <cstdint>

#include "util/annotations.h"

#include "util/clock.h"

namespace flashroute::sim {

/// Deterministic fault-injection knobs (sim/fault_plane.h; DESIGN.md §9).
/// All defaults are zero: `any()` is false and SimNetwork never constructs
/// a FaultPlane, so the default simulation is bit-identical to a build
/// without the plane.  Every fault is drawn statelessly from (probe
/// content, virtual send time), so fault schedules replay identically
/// across runs, shard decompositions, and checkpoint resumes.
struct FaultParams {
  /// Probability a probe vanishes en route (before reaching any responder).
  double probe_loss = 0.0;
  /// Probability a crafted response vanishes on the way back.
  double response_loss = 0.0;
  /// Probability a response is delivered twice (duplicated in flight).
  double duplicate_prob = 0.0;
  /// Probability a response is delayed past later traffic (reordering),
  /// and the bound on the extra delay.
  double reorder_prob = 0.0;
  util::Nanos reorder_max_delay = 50 * util::kMillisecond;
  /// Probability a response arrives with corrupted payload bytes.
  double corrupt_prob = 0.0;
  /// Fraction of /24 prefixes that are persistently blackholed (probes to
  /// them are swallowed for the whole scan).
  double blackhole_fraction = 0.0;
  /// Fraction of /24 prefixes behind a flapping link: probes are dropped
  /// while the link is in the "down" share of each virtual-time period.
  double flap_fraction = 0.0;
  util::Nanos flap_period = 10 * util::kSecond;
  double flap_down_share = 0.5;
  /// Probability a local send fails transiently (EAGAIN-style): the probe
  /// never reaches the network and try_send reports false.
  double send_fail_prob = 0.0;

  /// Extra seed folded into every fault draw, so fault schedules can be
  /// varied independently of the topology seed.
  std::uint64_t fault_seed = 0xFA17;

  bool any() const noexcept {
    return probe_loss > 0.0 || response_loss > 0.0 || duplicate_prob > 0.0 ||
           reorder_prob > 0.0 || corrupt_prob > 0.0 ||
           blackhole_fraction > 0.0 || flap_fraction > 0.0 ||
           send_fail_prob > 0.0;
  }
};

/// How the per-prefix topology state is represented (ISSUE 6).
///
///  * kMaterialized — the legacy generator: one Stub object (heap-allocated
///    path vector) per advertised block plus a full per-prefix map.  Rich,
///    but its memory grows linearly with the universe — prohibitive at 2^24.
///  * kSuccinct — full-scale mode: a small fixed pool of shared path
///    templates plus a stateless hash derivation from (prefix, seeds); no
///    per-prefix state at all, so topology memory is O(pool), not O(2^24).
///  * kSuccinctMaterialized — the same derivation expanded into per-prefix
///    tables at construction; exists to prove the on-demand derivation
///    resolves bit-identical routes (tests/sim_topology_equivalence_test).
enum class TopologyMode {
  kMaterialized,
  kSuccinct,
  kSuccinctMaterialized,
};

struct SimParams {
  // --- Universe ------------------------------------------------------------
  std::uint64_t seed = 1;

  /// Topology representation (see TopologyMode).  The default stays the
  /// legacy materialized generator — bit-identical to every earlier build;
  /// full-scale scans switch to kSuccinct.
  TopologyMode topology_mode = TopologyMode::kMaterialized;

  /// log2 of the shared path-template pool used by the succinct modes.
  int template_pool_bits = 8;

  /// The universe contains 2^prefix_bits /24 blocks starting at
  /// `first_prefix` (a /24 index, i.e. address >> 8).  The default models one
  /// /8 (65,536 blocks) starting at 1.0.0.0; the full IPv4 space of the paper
  /// corresponds to prefix_bits = 24, first_prefix = 0.
  int prefix_bits = 16;
  std::uint32_t first_prefix = 0x010000;  // 1.0.0.0

  /// Address probes appear to come from (the vantage point).
  std::uint32_t vantage_address = 0xCB00710A;  // 203.0.113.10

  /// Base of the pool interface IPs are allocated from (core routers, access
  /// chains, gateways, stub spines).  Stub-interior interfaces get addresses
  /// inside their own /24 instead, which is what makes hitlist addresses
  /// appear as intermediate hops on routes to random targets (§5.1).
  std::uint32_t interface_pool_base = 0xC8000000;  // 200.0.0.0

  // --- Allocation & routing ------------------------------------------------
  /// Fraction of advertised blocks that are actually routed; the rest are
  /// dark space whose probes die inside the provider core.
  double routed_fraction = 0.62;

  /// A stub advertises a contiguous block of 2^b /24s, b uniform in
  /// [0, max_block_bits].  Adjacent /24s of one stub share their forward
  /// path, which is what FlashRoute's proximity-span prediction exploits
  /// (§3.3.3).
  int max_block_bits = 6;

  /// Number of provider-core routers; 0 means auto (universe/32, min 64).
  int core_routers = 0;

  /// Depth bias of the core tree: each new router attaches to the deepest of
  /// this many uniformly drawn candidates.  1 gives a classic random
  /// recursive tree (expected depth ~ln n); higher values deepen routes so
  /// target distances match the paper's observations (median ≈ 15-16, very
  /// few paths beyond 32).
  int tree_attach_draws = 2;

  /// Fraction of core-tree edges replaced by a per-flow load-balancer
  /// diamond (two or three parallel one-hop branches chosen by flow hash,
  /// the Paris-traceroute phenomenon).
  double diamond_fraction = 0.12;
  double diamond_three_way_fraction = 0.30;

  /// Stub access chains: 1..max_access_chain routers between the core
  /// attachment point and the stub gateway.
  int max_access_chain = 3;

  /// Multihomed stubs: with this probability the last access hop before the
  /// gateway is a wide per-flow ECMP fan (4..15 parallel branches).  One
  /// flow per destination cannot exhaust such fans during a normal scan —
  /// these are the alternative-route interfaces the discovery-optimized
  /// mode's shifted source ports reveal (§5.2).
  double stub_multihome_prob = 0.12;
  int multihome_min_width = 16;
  int multihome_max_width = 48;

  /// Stub spine: 0..max_spine shared routers between the gateway and the
  /// per-/24 segments.
  int max_spine = 3;

  // --- Hosts ---------------------------------------------------------------
  /// Host responsiveness clusters by stub: a minority of stubs is densely
  /// populated, the rest are nearly empty.  This clustering is what keeps
  /// the paper's preprobing *coverage* modest (38.2% for hitlist, 22.95%
  /// for random, §4.1.3) despite span-5 prediction: measured blocks bunch
  /// together instead of spreading a prediction umbrella over everything.
  double stub_responsive_prob = 0.35;
  /// Probability that a uniformly random host address is assigned, by stub
  /// class.  Overall: 0.62 (routed) * (0.35*0.22 + 0.65*0.01) * 0.72
  /// (response) ≈ the paper's 4.0% preprobing success on random targets.
  double host_exist_prob_responsive = 0.22;
  double host_exist_prob_quiet = 0.01;
  double host_udp_response_prob = 0.72;
  double host_tcp_response_prob = 0.55;

  /// Hosts sit 0..max_host_depth router hops behind their /24's appliance.
  /// The depth distribution is skewed toward the segment entrance (most
  /// hosts share the appliance's distance ±0) — this is what makes
  /// proximity-span predictions land exactly right ~59% of the time (Fig 4)
  /// while still leaving interior routers for the hitlist bias to hide
  /// (§5.1).  Cumulative percentile thresholds for depths 0,1,2 (remainder
  /// is depth 3, capped at max_host_depth).
  int max_host_depth = 3;
  int host_depth_cum_pct_0 = 70;
  int host_depth_cum_pct_1 = 90;
  int host_depth_cum_pct_2 = 97;

  // --- Hitlist -------------------------------------------------------------
  /// Census coverage per routed /24, by stub responsiveness class; the
  /// effective hitlist measurement rate lands near the paper's 10%.
  double hitlist_present_responsive = 0.60;
  double hitlist_present_quiet = 0.08;
  double hitlist_is_appliance_prob = 0.85;  // gateway-appliance bias (§5.1)
  double appliance_udp_response_prob = 0.55;
  double appliance_tcp_response_prob = 0.40;

  // --- Router interface behaviour -------------------------------------------
  /// Persistently silent interfaces (never answer time-exceeded).
  double interface_silent_prob = 0.12;

  /// Filtered stub tails: some stubs silence the last 1..5 router hops
  /// before their segment appliances (firewalls, MPLS segments).  Forward
  /// probing needs a gap limit at least as long as the stretch to discover
  /// what lies beyond — the mechanism behind Fig 6's knee at GapLimit 5.
  /// Cumulative percentile thresholds for tail lengths 0..4 (remainder: 5).
  int filtered_tail_cum_pct[5] = {55, 73, 85, 93, 98};
  /// Extra persistent silence towards TCP probes: UDP discovers slightly
  /// more interfaces, as the paper observes (§4.2.1, citing [16]).
  double interface_tcp_extra_silent_prob = 0.03;

  /// ICMP generation limit per interface (Ravaioli et al.; §4.2.2).
  double icmp_rate_limit_pps = 500.0;
  double icmp_rate_limit_burst = 500.0;

  // --- Middleboxes & pathologies --------------------------------------------
  /// Per-stub probability of a TTL-rewriting middlebox at the gateway.
  double ttl_reset_middlebox_prob = 0.015;
  /// TTL value such a middlebox writes (sampled per middlebox from
  /// {ttl_reset_low, ttl_reset_high}).
  std::uint8_t ttl_reset_low = 32;
  std::uint8_t ttl_reset_high = 64;

  /// Per-stub probability of a destination-rewriting middlebox (§5.3).
  double rewrite_middlebox_prob = 0.0015;

  /// Loops on paths to nonexistent/unrouted destinations (§5.1: 1.7%).
  double dark_loop_prob = 0.017;

  /// Probes to unassigned addresses in a routed /24: with this probability
  /// the segment appliance forwards them onto the (dead) LAN — the probe
  /// then dies one hop *beyond* the appliance, making the measured route to
  /// an unassigned random target longer than the route to the hitlist
  /// target of the same prefix (the §5.1 route-length bias); otherwise the
  /// gateway ingress-filters them.
  double unassigned_reach_appliance_prob = 0.55;

  // --- Dynamics & timing -----------------------------------------------------
  /// Per-epoch probability that a stub's spine length shifts by one hop —
  /// the routing dynamicity behind the ±1 mass of Fig 3.
  double route_dynamics_prob = 0.04;
  util::Nanos dynamics_epoch = 60 * util::kSecond;

  util::Nanos rtt_base = 2 * util::kMillisecond;
  util::Nanos rtt_per_hop = 2'500'000;  // 2.5 ms per hop
  util::Nanos rtt_jitter = 3 * util::kMillisecond;

  // --- Simulator hot path ----------------------------------------------------
  /// Route-cache size, as log2 of the entry count, for SimNetwork's
  /// direct-mapped memoization of Topology::resolve (sim/route_cache.h).
  /// 0 bypasses the cache entirely (every probe re-resolves; results are
  /// bit-identical either way).  -1 sizes it automatically from the
  /// universe: prefix_bits - 2, clamped to [8, 14], for scans below 2^20 —
  /// and *disables* it at prefix_bits >= 20.  At scale the hit rate is
  /// structurally capped by backward+forward pair reuse (~0.30 at 2^24,
  /// identical for 16- and 17-bit tables: the ring walk cycles the whole
  /// universe between revisits, so no feasible table captures more), and
  /// with the single-derivation resolve path a miss is cheap enough that
  /// the lookup+insert paid on the other ~70% of probes costs more than
  /// the hits save — measured 1.98 Mpps cache-off vs 1.67 Mpps with a
  /// 16-bit cache at 2^24, and 1.90 vs 1.58 at 2^20 (DESIGN.md §11).
  int route_cache_bits = -1;

  // --- Fault injection -------------------------------------------------------
  /// Adversity model (loss, duplication, reordering, corruption, blackholes,
  /// flapping links, transient send failures).  All-zero by default: the
  /// simulation is then byte-identical to one without the fault plane.
  FaultParams faults;

  // Derived helpers.
  FR_HOT std::uint32_t num_prefixes() const noexcept {
    return std::uint32_t{1} << prefix_bits;
  }
  FR_HOT std::uint32_t last_prefix() const noexcept {
    return first_prefix + num_prefixes() - 1;
  }
  int effective_core_routers() const noexcept {
    if (core_routers > 0) return core_routers;
    const auto auto_size = static_cast<int>(num_prefixes() / 128);
    return auto_size < 64 ? 64 : auto_size;
  }
  int effective_route_cache_bits() const noexcept {
    if (route_cache_bits >= 0) return route_cache_bits;
    if (prefix_bits >= 20) return 0;  // net-negative at scale; see above
    const int auto_bits = prefix_bits - 2;
    return auto_bits < 8 ? 8 : (auto_bits > 14 ? 14 : auto_bits);
  }
};

/// Scales a full-IPv4-scale probing rate (e.g. the paper's 100 Kpps) down to
/// a smaller simulated universe.  Keeping probes-per-destination-per-second
/// constant preserves the paper's round dynamics: within one round, early
/// destinations' responses arrive in time to steer later destinations (the
/// regime in which the Doubletree stop set does its work), and scan-time
/// *ratios* between tools carry over.
inline double scaled_probe_rate(double full_scale_pps,
                                int prefix_bits) noexcept {
  return full_scale_pps *
         static_cast<double>(std::uint64_t{1} << prefix_bits) /
         static_cast<double>(std::uint64_t{1} << 24);
}

}  // namespace flashroute::sim
